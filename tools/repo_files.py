#!/usr/bin/env python3
"""Shared repo file discovery for the source-hygiene tools.

One place that knows which files each checker covers, so md_check.py and
check_invariants.py cannot drift apart. Stdlib-only, like its consumers.
"""

import pathlib

#: src/ modules, as built by gralmatch_add_module (src/CMakeLists.txt).
MODULES = (
    "blocking", "common", "core", "data", "datagen", "eval", "exec",
    "graph", "matching", "net", "nn", "obs", "serve", "shard", "stream",
    "text",
)


def markdown_files(repo_root):
    """The markdown set md_check.py lints: the top-level prose files plus
    everything under docs/. Missing files are skipped (ISSUE.md is only
    present while a change is in flight)."""
    root = pathlib.Path(repo_root)
    files = [root / name
             for name in ("README.md", "ROADMAP.md", "CHANGES.md", "ISSUE.md")]
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def source_files(repo_root, modules=None):
    """All first-party C++ files under src/ (optionally restricted to the
    given module names), sorted for stable diagnostics."""
    root = pathlib.Path(repo_root)
    names = MODULES if modules is None else tuple(modules)
    out = []
    for mod in names:
        for pattern in ("*.h", "*.cc"):
            out.extend(sorted((root / "src" / mod).glob(pattern)))
    return out


def test_suite_files(repo_root):
    """tests/*_test.cc — one gtest suite per file, by repo convention."""
    root = pathlib.Path(repo_root)
    return sorted((root / "tests").glob("*_test.cc"))

#!/usr/bin/env python3
"""Self-test for tools/check_invariants.py.

Builds a miniature repo in a temp dir seeded with exactly one violation of
each rule, and asserts every violation is reported at its file:line — then
asserts the linter is clean on the real tree it ships in. Registered as the
ctest entry `tools.check_invariants_selftest` (tests/CMakeLists.txt), so a
rule that silently stops firing fails CI the same way a broken C++ test
would.
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import check_invariants  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Minimal CI workflow for the fixture: the sanitize job filters ctest
#: (asan-full-suite violation) and the TSan job builds exec_test but only
#: labels core_test (tsan-consistency, both directions) while the fixture's
#: concurrent suite conc_test is in neither (tsan-coverage).
FIXTURE_CI = """\
name: CI
jobs:
  sanitize:
    steps:
      - name: Test
        run: ctest --test-dir build -L '^(core_test)$'
  sanitize-thread:
    steps:
      - name: Build
        run: |
          cmake --build build -j2 \\
            --target exec_test
      - name: Test under TSan
        run: |
          ctest --test-dir build \\
            -L '^(core_test)$'
"""


def write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return relpath


class FixtureTreeTest(unittest.TestCase):
    """One seeded violation per rule, each asserted with its file:line."""

    @classmethod
    def setUpClass(cls):
        cls._tmp = tempfile.TemporaryDirectory(prefix="check_invariants_")
        root = pathlib.Path(cls._tmp.name)
        cls.root = root

        # framed-bytes: memcpy on line 2, reinterpret_cast on line 3 of a
        # serve file; a sockaddr cast that must NOT be flagged in net.
        write(root, "src/serve/bad_bytes.cc",
              "#include <cstring>\n"
              "void f(char* d, const char* s) { std::memcpy(d, s, 4); }\n"
              "int g(const char* p) { return *reinterpret_cast<const int*>(p); }\n")
        write(root, "src/net/sockets_ok.cc",
              "void h(const void* a) {\n"
              "  (void)reinterpret_cast<const sockaddr*>(a);\n"
              "}\n")

        # tmp-staging: a naked staging literal on line 1 (and none in the
        # allowlisted framing.cc, which the fixture does not even need).
        write(root, "src/core/bad_tmp.cc",
              'const char* kStaging = "out.grlm.tmp";\n')

        # test-registration: orphan_test.cc exists but is not registered;
        # conc_test.cc is registered but concurrent and outside the TSan leg.
        write(root, "tests/orphan_test.cc", "int main() { return 0; }\n")
        write(root, "tests/conc_test.cc",
              "#include \"exec/thread_pool.h\"\n"
              "// uses ThreadPool\nint main() { return 0; }\n")
        write(root, "tests/core_test.cc", "int main() { return 0; }\n")
        write(root, "tests/exec_test.cc", "int main() { return 0; }\n")
        write(root, "tests/CMakeLists.txt",
              "gralmatch_add_test(conc_test gralmatch::exec)\n"
              "gralmatch_add_test(core_test gralmatch::core)\n"
              "gralmatch_add_test(exec_test gralmatch::exec)\n")

        # obs-inertness: the checkpoint serializer naming the metrics layer
        # (include on line 1, symbol use on line 3); a comment mention on
        # line 2 that must NOT be flagged.
        write(root, "src/serve/checkpoint.cc",
              '#include "obs/metrics.h"\n'
              "// a MetricsRegistry mention in prose is fine\n"
              "void t(gralmatch::obs::MetricsRegistry* m) { (void)m; }\n")

        # module-dag: common including exec is an upward edge (line 1).
        write(root, "src/common/bad_dag.h",
              '#include "exec/thread_pool.h"\n')

        # raw-mutex: bare std::mutex outside common/mutex.h (line 2).
        write(root, "src/exec/bad_sync.h",
              "#include <mutex>\n"
              "struct S { std::mutex mu; };\n")

        write(root, ".github/workflows/ci.yml", FIXTURE_CI)

        cls.findings = check_invariants.run(root)

    @classmethod
    def tearDownClass(cls):
        cls._tmp.cleanup()

    def assert_finding(self, location, rule):
        matches = [f for f in self.findings
                   if f.startswith(location + ":") and f"[{rule}]" in f]
        self.assertTrue(
            matches,
            f"expected a [{rule}] finding at {location}; got:\n" +
            "\n".join(self.findings))

    def test_framed_bytes_memcpy(self):
        self.assert_finding("src/serve/bad_bytes.cc:2", "framed-bytes")

    def test_framed_bytes_reinterpret_cast(self):
        self.assert_finding("src/serve/bad_bytes.cc:3", "framed-bytes")

    def test_framed_bytes_sockaddr_exempt(self):
        flagged = [f for f in self.findings if "sockets_ok.cc" in f]
        self.assertEqual(flagged, [],
                         "sockaddr casts are kernel ABI, not framed bytes")

    def test_tmp_staging(self):
        self.assert_finding("src/core/bad_tmp.cc:1", "tmp-staging")

    def test_test_registration(self):
        self.assert_finding("tests/orphan_test.cc:1", "test-registration")

    def test_asan_full_suite(self):
        self.assert_finding(".github/workflows/ci.yml:3", "asan-full-suite")

    def test_tsan_consistency_built_not_run(self):
        matches = [f for f in self.findings
                   if "[tsan-consistency]" in f and "exec_test" in f]
        self.assertTrue(matches, "\n".join(self.findings))

    def test_tsan_consistency_run_not_built(self):
        matches = [f for f in self.findings
                   if "[tsan-consistency]" in f and "core_test" in f]
        self.assertTrue(matches, "\n".join(self.findings))

    def test_tsan_coverage(self):
        self.assert_finding("tests/conc_test.cc:1", "tsan-coverage")

    def test_module_dag(self):
        self.assert_finding("src/common/bad_dag.h:1", "module-dag")

    def test_obs_inertness_include(self):
        self.assert_finding("src/serve/checkpoint.cc:1", "obs-inertness")

    def test_obs_inertness_symbol(self):
        self.assert_finding("src/serve/checkpoint.cc:3", "obs-inertness")

    def test_obs_inertness_comment_exempt(self):
        flagged = [f for f in self.findings
                   if f.startswith("src/serve/checkpoint.cc:2:")]
        self.assertEqual(flagged, [],
                         "comment mentions of the metrics layer are prose, "
                         "not a dependency")

    def test_raw_mutex(self):
        self.assert_finding("src/exec/bad_sync.h:2", "raw-mutex")

    def test_no_unexpected_findings(self):
        # Every fixture finding is one of the seeded ones: no rule
        # misfires on the clean fixture files.
        seeded = ("bad_bytes.cc", "bad_tmp.cc", "orphan_test.cc",
                  "conc_test.cc", "ci.yml", "bad_dag.h", "bad_sync.h",
                  "checkpoint.cc")
        for f in self.findings:
            self.assertTrue(any(s in f for s in seeded),
                            f"unexpected finding: {f}")


class RealTreeTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        findings = check_invariants.run(REPO_ROOT)
        self.assertEqual(findings, [],
                         "the shipped tree must satisfy its own invariants")


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Repo-invariant linter: rules the compiler cannot check.

The companion of tools/md_check.py for source hygiene, and of the
`-Wthread-safety` clang CI leg for concurrency discipline: each rule below
is an invariant the repo's documentation promises (docs/static-analysis.md,
docs/formats.md, docs/architecture.md) but that neither the type system nor
the thread-safety analysis can enforce. Stdlib-only so CI needs nothing
beyond python3. Exit status: 0 clean, 1 findings, 2 usage error.

Rules (each finding is printed as `file:line: [rule] message`):

  framed-bytes     Wire/checkpoint byte access in the framed modules
                   (serve, net, shard, stream) goes through BinaryReader /
                   BinaryWriter / serve/framing.h helpers — no raw memcpy
                   or reinterpret_cast on framed bytes. Socket-ABI sockaddr
                   casts are exempt (they are kernel ABI, not framed
                   bytes). The legacy GRLM weight format (src/nn) predates
                   binary_io and is outside these modules; see
                   docs/static-analysis.md.

  tmp-staging      No naked ".tmp" staging paths: only WriteFileAtomically
                   (src/serve/framing.cc) may construct staging names, and
                   only the sharded-checkpoint GC may *recognize* them.
                   Anything else re-introduces the torn-staging race that
                   WriteFileAtomically exists to prevent.

  test-registration  Every tests/*_test.cc suite is registered via
                   gralmatch_add_test in tests/CMakeLists.txt (otherwise it
                   silently never runs anywhere).

  asan-full-suite  The ASan+UBSan CI job runs the *unfiltered* ctest suite:
                   its ctest invocation must carry no -L/-R filter, so a
                   newly registered suite is automatically covered.

  tsan-consistency The TSan job's cmake --target list and its ctest -L
                   label regex must name the same suites (a suite built but
                   not run — or run but not built — is a silent CI hole).

  tsan-coverage    Every test suite that exercises concurrency (mentions
                   ThreadPool / ParallelFor / ParallelMap / std::thread /
                   std::atomic / num_threads) must be in the TSan leg.

  module-dag       #includes across src/ modules must follow the
                   documented module DAG (docs/architecture.md, mirrored in
                   src/CMakeLists.txt): an include of a module outside the
                   transitive closure of the including module's declared
                   dependencies is an undeclared (or upward) edge.

  obs-inertness    The files that define serialized bytes
                   (serve/checkpoint.*, serve/framing.*, net/wire.*) never
                   reference the obs module: instrumentation is promised
                   inert (docs/observability.md), and code that cannot
                   name a MetricsRegistry cannot leak one into checkpoint
                   or wire bytes. Phase timing for those paths belongs at
                   call sites.

  raw-mutex        No bare std::mutex / std::condition_variable /
                   std::lock_guard / std::unique_lock in src/ outside
                   common/mutex.h: concurrent code uses the annotated
                   gralmatch::Mutex / MutexLock / CondVar wrappers so
                   clang's Thread Safety Analysis can see every lock.
"""

import argparse
import pathlib
import re
import sys

try:
    import repo_files
except ImportError:  # invoked as tools/check_invariants.py from repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import repo_files

# --- rule configuration ----------------------------------------------------

#: Modules whose on-disk/on-wire formats are framed (magic/version/length/
#: checksum); raw byte reinterpretation is banned here.
FRAMED_MODULES = ("serve", "net", "shard", "stream")

#: The one file allowed to build ".tmp" staging names, and the one file
#: allowed to recognize them (stale-staging GC) — with the reason on record.
TMP_ALLOWLIST = {
    "src/serve/framing.cc": "WriteFileAtomically owns staging-name construction",
    "src/serve/sharded_checkpoint.cc":
        "checkpoint GC must recognize stale staging files to delete them",
}

#: Direct module dependency edges, exactly the target_link_libraries edges
#: declared in src/*/CMakeLists.txt (docs/architecture.md shows the DAG).
#: check_dag() uses the transitive closure: a PUBLIC link exposes its own
#: public deps' headers.
MODULE_DEPS = {
    "common": (),
    "exec": ("common",),
    "obs": ("common",),
    "text": ("common",),
    "data": ("common",),
    "graph": ("common",),
    "nn": ("common",),
    "blocking": ("common", "data", "exec", "text"),
    "datagen": ("data", "text"),
    "eval": ("data", "graph"),
    "matching": ("blocking", "data", "nn", "text"),
    "core": ("blocking", "data", "exec", "graph", "matching", "obs"),
    "stream": ("blocking", "common", "core", "data", "exec", "graph",
               "matching", "obs"),
    "shard": ("blocking", "common", "core", "data", "exec", "graph",
              "matching", "obs", "stream"),
    "serve": ("common", "core", "data", "matching", "obs", "shard", "stream"),
    "net": ("common", "exec", "obs", "serve"),
}

#: Files that define serialized bytes or the framing discipline and must
#: stay observability-free: docs/observability.md promises instrumentation
#: is inert (never in checkpoint or wire bytes), and the cheapest proof is
#: that the code producing those bytes cannot even name the obs module.
#: Timing for these paths lives at call sites (e.g. the sharded-checkpoint
#: helpers, examples/serve_loop.cpp).
OBS_FREE_FILES = {
    "src/serve/checkpoint.h": "single-file checkpoint bytes",
    "src/serve/checkpoint.cc": "single-file checkpoint bytes",
    "src/serve/framing.h": "shared frame discipline (magic/version/checksum)",
    "src/serve/framing.cc": "shared frame discipline (magic/version/checksum)",
    "src/net/wire.h": "RPC frame encode/decode",
    "src/net/wire.cc": "RPC frame encode/decode",
}

OBS_SYMBOL_RE = re.compile(r'#include\s+"obs/|\bobs::|\bMetricsRegistry\b')

#: A test suite mentioning any of these exercises concurrency and must run
#: under TSan (calibrated against the tree; see tsan-coverage above).
CONCURRENCY_MARKERS = re.compile(
    r"ThreadPool|ParallelFor|ParallelMap|std::thread|std::atomic|num_threads")

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')
SOCKADDR_CAST_RE = re.compile(r"reinterpret_cast<(?:const\s+)?sockaddr\s*\*>")
RAW_SYNC_RE = re.compile(
    r"std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock)\b")


def strip_comments(line):
    """Drop // comments (good enough for these rules; the tree has no
    byte-twiddling inside /* */ blocks)."""
    return line.split("//", 1)[0]


def rel(path, repo_root):
    return path.relative_to(repo_root).as_posix()


# --- rules -----------------------------------------------------------------

def check_framed_bytes(repo_root):
    errors = []
    for path in repo_files.source_files(repo_root, FRAMED_MODULES):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            code = strip_comments(line)
            if "memcpy" in code:
                errors.append(
                    f"{rel(path, repo_root)}:{lineno}: [framed-bytes] raw "
                    "memcpy in a framed module — use BinaryReader/"
                    "BinaryWriter (common/binary_io.h)")
            if "reinterpret_cast" in code and not SOCKADDR_CAST_RE.search(code):
                errors.append(
                    f"{rel(path, repo_root)}:{lineno}: [framed-bytes] raw "
                    "reinterpret_cast in a framed module — use BinaryReader/"
                    "BinaryWriter or the serve/framing.h helpers")
    return errors


def check_tmp_staging(repo_root):
    errors = []
    for path in repo_files.source_files(repo_root):
        if rel(path, repo_root) in TMP_ALLOWLIST:
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            code = strip_comments(line)
            if re.search(r'"[^"]*\.tmp[^"]*"', code):
                errors.append(
                    f"{rel(path, repo_root)}:{lineno}: [tmp-staging] "
                    "\".tmp\" staging path outside WriteFileAtomically — "
                    "stage durable writes through serve/framing.h")
    return errors


def registered_suites(repo_root):
    """Suite names registered with gralmatch_add_test in tests/CMakeLists."""
    cmake = (repo_root / "tests" / "CMakeLists.txt").read_text(encoding="utf-8")
    return set(re.findall(r"gralmatch_add_test\(\s*(\w+)", cmake))


def check_test_registration(repo_root):
    errors = []
    registered = registered_suites(repo_root)
    for path in repo_files.test_suite_files(repo_root):
        if path.stem not in registered:
            errors.append(
                f"{rel(path, repo_root)}:1: [test-registration] suite "
                f"{path.stem} is not registered via gralmatch_add_test in "
                "tests/CMakeLists.txt — it never runs")
    return errors


def job_block(ci_text, job_name):
    """The indented body of one top-level workflow job, with its starting
    line number (1-based)."""
    m = re.search(rf"^  {job_name}:\n(.*?)(?=^  \w[\w-]*:|\Z)", ci_text,
                  re.M | re.S)
    if not m:
        return None, 0
    return m.group(1), ci_text[:m.start()].count("\n") + 1


def tsan_sets(ci_text):
    """(built_targets, labelled_suites, line_of_job) from the TSan job."""
    block, lineno = job_block(ci_text, "sanitize-thread")
    if block is None:
        return set(), set(), 0
    built = set()
    m = re.search(r"--target\s+(.*?)(?=\n\s*\n|\n\s*- name|\Z)", block, re.S)
    if m:
        built = set(re.findall(r"\b(\w+_test)\b", m.group(1)))
    labelled = set()
    m = re.search(r"-L\s+'\^\(([^)]*)\)\$'", block)
    if m:
        labelled = set(m.group(1).split("|"))
    return built, labelled, lineno


def check_ci_legs(repo_root):
    errors = []
    ci_path = repo_root / ".github" / "workflows" / "ci.yml"
    if not ci_path.is_file():
        return [f".github/workflows/ci.yml:1: [asan-full-suite] CI workflow "
                "file is missing"]
    ci_text = ci_path.read_text(encoding="utf-8")
    ci_rel = rel(ci_path, repo_root)

    # ASan leg runs the unfiltered suite.
    block, lineno = job_block(ci_text, "sanitize")
    if block is None:
        errors.append(f"{ci_rel}:1: [asan-full-suite] no `sanitize:` job "
                      "(the ASan+UBSan leg) in the workflow")
    else:
        ctest = re.search(r"^(.*ctest .*)$", block, re.M)
        if ctest is None:
            errors.append(f"{ci_rel}:{lineno}: [asan-full-suite] the "
                          "sanitize job never runs ctest")
        elif re.search(r"\s-[LR]\s", ctest.group(1)):
            errors.append(
                f"{ci_rel}:{lineno}: [asan-full-suite] the sanitize job "
                "filters ctest with -L/-R — it must run the full suite so "
                "new suites are covered automatically")

    # TSan leg: build list == label list, and both cover every concurrent
    # suite.
    built, labelled, lineno = tsan_sets(ci_text)
    if not built or not labelled:
        errors.append(f"{ci_rel}:1: [tsan-consistency] could not find the "
                      "sanitize-thread job's --target list and ctest -L "
                      "label regex")
        return errors
    for suite in sorted(built - labelled):
        errors.append(
            f"{ci_rel}:{lineno}: [tsan-consistency] {suite} is built by the "
            "TSan job but missing from its ctest -L regex (built, never run)")
    for suite in sorted(labelled - built):
        errors.append(
            f"{ci_rel}:{lineno}: [tsan-consistency] {suite} is in the TSan "
            "ctest -L regex but not built by the job (run would find no "
            "tests)")
    tsan = built & labelled
    for path in repo_files.test_suite_files(repo_root):
        if path.stem in tsan:
            continue
        if CONCURRENCY_MARKERS.search(path.read_text(encoding="utf-8")):
            errors.append(
                f"{rel(path, repo_root)}:1: [tsan-coverage] suite "
                f"{path.stem} exercises concurrency but is not in the TSan "
                "CI leg (add it to the job's --target list AND -L regex in "
                ".github/workflows/ci.yml)")
    return errors


def dag_closure():
    closure = {}

    def visit(mod):
        if mod not in closure:
            deps = set(MODULE_DEPS[mod])
            for d in MODULE_DEPS[mod]:
                deps |= visit(d)
            closure[mod] = deps
        return closure[mod]

    for mod in MODULE_DEPS:
        visit(mod)
    return closure


def check_module_dag(repo_root):
    errors = []
    closure = dag_closure()
    for path in repo_files.source_files(repo_root):
        mod = path.parent.name
        allowed = closure.get(mod, set()) | {mod}
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target_mod = m.group(1).split("/", 1)[0]
            if target_mod in MODULE_DEPS and target_mod not in allowed:
                errors.append(
                    f"{rel(path, repo_root)}:{lineno}: [module-dag] "
                    f"{mod} must not include \"{m.group(1)}\" — {target_mod} "
                    "is not in its declared dependency closure (see "
                    "docs/architecture.md and src/CMakeLists.txt)")
    return errors


def check_obs_inertness(repo_root):
    errors = []
    for relpath, what in sorted(OBS_FREE_FILES.items()):
        path = repo_root / relpath
        if not path.is_file():
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if OBS_SYMBOL_RE.search(strip_comments(line)):
                errors.append(
                    f"{relpath}:{lineno}: [obs-inertness] obs reference in "
                    f"{what} — serialization and framing code must not see "
                    "the metrics layer (docs/observability.md); time these "
                    "paths at their call sites")
    return errors


def check_raw_mutex(repo_root):
    errors = []
    for path in repo_files.source_files(repo_root):
        if rel(path, repo_root) == "src/common/mutex.h":
            continue  # the one wrapper implementation
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            m = RAW_SYNC_RE.search(strip_comments(line))
            if m:
                errors.append(
                    f"{rel(path, repo_root)}:{lineno}: [raw-mutex] bare "
                    f"std::{m.group(1)} — use the annotated gralmatch::Mutex"
                    " / MutexLock / CondVar (common/mutex.h) so "
                    "-Wthread-safety can check the locking")
    return errors


ALL_RULES = (
    check_framed_bytes,
    check_tmp_staging,
    check_test_registration,
    check_ci_legs,
    check_module_dag,
    check_obs_inertness,
    check_raw_mutex,
)


def run(repo_root):
    errors = []
    for rule in ALL_RULES:
        errors.extend(rule(repo_root))
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Repo-invariant linter (see module docstring).")
    parser.add_argument("--repo-root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    repo_root = pathlib.Path(args.repo_root).resolve()
    if not (repo_root / "src").is_dir():
        sys.stderr.write(f"no src/ under {repo_root} — wrong --repo-root?\n")
        return 2
    errors = run(repo_root)
    for err in errors:
        print(err)
    if errors:
        print(f"\n{len(errors)} invariant violation(s).")
        return 1
    print("OK: all repo invariants hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Markdown hygiene checker for the repo's prose: README.md, ROADMAP.md,
CHANGES.md, ISSUE.md (when present) and docs/. File discovery is shared
with tools/check_invariants.py via tools/repo_files.py.

Two layers, both stdlib-only so CI needs nothing beyond python3:

1. Link check (always whole-tree): every relative link in the checked
   files must point at an existing file, and every fragment (`#anchor`,
   in-page or cross-page) must match a heading anchor in the target,
   using GitHub's slugification rules. External links (http/https/mailto)
   are not fetched — CI must not flake on the network.

2. Lint (diff-scoped with --diff-base): markdownlint-style mechanical
   rules — hard tabs, trailing whitespace (except the two-space line
   break), missing final newline. With `--diff-base <ref>` only lines
   added relative to that ref are flagged, so pre-existing text is
   grandfathered; without it the whole file is linted.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import pathlib
import re
import subprocess
import sys

try:
    import repo_files
except ImportError:  # invoked as tools/md_check.py from the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import repo_files

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading, seen):
    """GitHub anchor slug: lowercase, drop punctuation, spaces to hyphens,
    then -1, -2, ... suffixes for duplicates."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def heading_anchors(path):
    anchors, seen, in_fence = set(), {}, False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    return anchors


def iter_links(path):
    """Yield (line_number, target) for non-image links outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)  # ignore inline code
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(stripped):
                yield lineno, m.group(1)


def check_links(files, repo_root):
    errors = []
    anchor_cache = {}

    def anchors_of(p):
        if p not in anchor_cache:
            anchor_cache[p] = heading_anchors(p)
        return anchor_cache[p]

    for path in files:
        for lineno, target in iter_links(path):
            if EXTERNAL_RE.match(target):
                continue  # external: not fetched
            raw, _, fragment = target.partition("#")
            if raw:
                dest = (path.parent / raw).resolve()
                if not dest.exists():
                    errors.append(
                        f"{path.relative_to(repo_root)}:{lineno}: "
                        f"broken link: {target} "
                        f"(no such file: {raw})")
                    continue
            else:
                dest = path  # pure in-page fragment
            if fragment:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    continue  # anchors only checked in markdown
                if fragment.lower() not in anchors_of(dest):
                    errors.append(
                        f"{path.relative_to(repo_root)}:{lineno}: "
                        f"broken anchor: {target} "
                        f"(no heading slugs to '#{fragment}' in "
                        f"{dest.relative_to(repo_root)})")
    return errors


def added_lines(repo_root, base, path):
    """Set of 1-based line numbers added in `path` relative to `base`."""
    try:
        out = subprocess.run(
            ["git", "diff", "--unified=0", base, "--",
             str(path.relative_to(repo_root))],
            cwd=repo_root, capture_output=True, text=True, check=True).stdout
    except subprocess.CalledProcessError as exc:
        sys.stderr.write(f"git diff failed: {exc.stderr}\n")
        sys.exit(2)
    lines = set()
    for m in re.finditer(r"^@@ [^@]*\+(\d+)(?:,(\d+))? @@", out, re.M):
        start = int(m.group(1))
        count = int(m.group(2)) if m.group(2) is not None else 1
        lines.update(range(start, start + count))
    return lines


def lint_file(path, repo_root, scope):
    """scope=None lints everything; otherwise only line numbers in scope."""
    findings = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if scope is not None and lineno not in scope:
            continue
        if "\t" in line:
            findings.append(
                f"{path.relative_to(repo_root)}:{lineno}: hard tab")
        if line != line.rstrip() and not line.endswith("  "):
            findings.append(
                f"{path.relative_to(repo_root)}:{lineno}: "
                "trailing whitespace")
    if text and not text.endswith("\n") and (scope is None or lines and
                                             len(lines) in scope):
        findings.append(
            f"{path.relative_to(repo_root)}:{len(lines)}: "
            "no final newline")
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--diff-base", default=None,
                        help="git ref: lint only lines added since this ref "
                             "(links are always checked whole-tree)")
    args = parser.parse_args()

    repo_root = pathlib.Path(args.repo_root).resolve()
    files = repo_files.markdown_files(repo_root)
    if not files:
        sys.stderr.write("no markdown files found — wrong --repo-root?\n")
        return 2

    errors = check_links(files, repo_root)
    for path in files:
        scope = (added_lines(repo_root, args.diff_base, path)
                 if args.diff_base else None)
        if scope is not None and not scope:
            continue
        errors.extend(lint_file(path, repo_root, scope))

    for err in errors:
        print(err)
    if errors:
        print(f"\n{len(errors)} finding(s) in "
              f"{len(files)} file(s) checked.")
        return 1
    print(f"OK: {len(files)} markdown file(s) clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

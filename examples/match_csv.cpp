// Command-line entity group matcher for user-supplied data: reads a CSV of
// multi-source records (as produced by export_benchmark, or your own data
// in the same shape), blocks, scores, runs GraLMatch and writes the entity
// groups back to CSV.
//
// If the input has no ground truth (entity_id column of -1), the matcher is
// trained on *pseudo-labels*: identifier-overlap pairs as positives and
// random cross-source pairs as negatives — the pseudo-labeling idea the
// paper cites from the data-augmentation EM literature, and the realistic
// cold-start mode for a new data feed.
//
//   ./examples/match_csv --in records.csv --out groups.csv
//       [--kind company|security|product] [--gamma 25] [--mu 5] [--seed S]

#include <cstdio>
#include <fstream>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "core/pipeline.h"
#include "data/csv.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "matching/pair_sampling.h"
#include "text/similarity.h"

using namespace gralmatch;

namespace {

/// Pseudo-labelled training pairs for label-free inputs: ID-overlap
/// candidates as positives — and when the data carries no identifiers
/// (e.g. product offers), near-identical text pairs among token-overlap
/// candidates — plus random cross-source pairs as negatives.
std::vector<LabeledPair> PseudoLabelPairs(const Dataset& data, uint64_t seed) {
  std::vector<LabeledPair> out;
  CandidateSet id_pairs;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(data, &id_pairs);
  for (const auto& cand : id_pairs.ToVector()) {
    out.push_back({cand.pair, 1});
  }
  if (out.empty()) {
    CandidateSet text_pairs;
    TokenOverlapBlocker token_blocker;
    token_blocker.AddCandidates(data, &text_pairs);
    for (const auto& cand : text_pairs.ToVector()) {
      const Record& a = data.records.at(cand.pair.a);
      const Record& b = data.records.at(cand.pair.b);
      if (TrigramSimilarity(a.AllText(), b.AllText()) >= 0.85) {
        id_pairs.Add(cand.pair, kBlockerTokenOverlap);  // exclude as negative
        out.push_back({cand.pair, 1});
      }
    }
  }
  Rng rng(seed);
  size_t negatives = out.size() * 5;
  size_t attempts = 0;
  while (out.size() < negatives + id_pairs.size() &&
         attempts++ < negatives * 20 + 100) {
    RecordId a = static_cast<RecordId>(rng.Uniform(data.records.size()));
    RecordId b = static_cast<RecordId>(rng.Uniform(data.records.size()));
    if (a == b) continue;
    if (data.records.at(a).source() == data.records.at(b).source()) continue;
    RecordPair pair(a, b);
    if (id_pairs.ProvenanceOf(pair) != 0) continue;
    out.push_back({pair, 0});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  std::string in_path = flags.GetString("in", "");
  std::string out_path = flags.GetString("out", "groups.csv");
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: match_csv --in records.csv [--out groups.csv]\n"
                 "       [--kind company|security|product] [--gamma N] "
                 "[--mu N] [--seed S] [--num_threads T]\n");
    return 2;
  }
  std::string kind_str = flags.GetString("kind", "company");
  RecordKind kind = kind_str == "security"  ? RecordKind::kSecurity
                    : kind_str == "product" ? RecordKind::kProduct
                                            : RecordKind::kCompany;

  Dataset data;
  Status st = ReadRecordsCsv(in_path, kind, &data.records, &data.truth);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", in_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  bool has_truth = false;
  for (size_t i = 0; i < data.records.size() && !has_truth; ++i) {
    has_truth = data.truth.entity_of(static_cast<RecordId>(i)) != kInvalidEntity;
  }
  std::printf("Read %zu records from %zu sources (%s ground truth).\n",
              data.records.size(), data.records.NumSources(),
              has_truth ? "with" : "without");

  // Blocking: identifiers when present, token overlap always.
  CandidateSet candidates;
  IdOverlapBlocker id_blocker;
  id_blocker.AddCandidates(data, &candidates);
  TokenOverlapBlocker token_blocker;
  token_blocker.AddCandidates(data, &candidates);
  std::printf("Blocking produced %zu candidate pairs.\n", candidates.size());

  // Matcher: supervised when ground truth exists, pseudo-labelled otherwise.
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 13));
  std::vector<LabeledPair> train;
  if (has_truth) {
    Rng rng(seed);
    GroupSplit split = SplitByGroups(data.truth, &rng);
    PairSamplingOptions opts;
    opts.seed = seed;
    train = SamplePairs(data, split, SplitPart::kTrain, opts);
    std::printf("Training on %zu labelled pairs.\n", train.size());
  } else {
    train = PseudoLabelPairs(data, seed);
    std::printf("Training on %zu pseudo-labelled pairs (identifier overlap "
                "positives).\n",
                train.size());
  }
  if (train.empty()) {
    std::fprintf(stderr, "no training pairs could be constructed\n");
    return 1;
  }
  TfidfLogRegMatcher matcher;
  matcher.Train(data.records, train);

  // GraLMatch.
  PipelineConfig config;
  config.cleanup.gamma = static_cast<size_t>(flags.GetInt("gamma", 25));
  config.cleanup.mu = static_cast<size_t>(
      flags.GetInt("mu", static_cast<int64_t>(data.records.NumSources())));
  config.pre_cleanup_threshold = 50;
  config.num_threads = ResolveNumThreads(flags.GetInt("num_threads", 1));
  EntityGroupPipeline pipeline(config);
  PipelineResult result = pipeline.Run(data, candidates.ToVector(), matcher);
  std::printf("GraLMatch produced %zu entity groups (largest %zu).\n",
              result.groups.size(), LargestComponent(result.groups));

  if (has_truth) {
    PrfMetrics post = GroupPrf(result.groups, data.truth);
    std::printf("Against ground truth: P=%.1f%% R=%.1f%% F1=%.1f%% "
                "purity=%.2f\n",
                100 * post.Precision(), 100 * post.Recall(), 100 * post.F1(),
                ClusterPurity(result.groups, data.truth));
  }

  // Write group assignment: record row index (matching the input order),
  // group id, source, and the first attribute for eyeballing.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record", "group", "source", "first_attribute"});
  auto group_of = result.GroupOfRecord(data.records.size());
  for (size_t i = 0; i < data.records.size(); ++i) {
    const Record& rec = data.records.at(static_cast<RecordId>(i));
    std::string first = rec.attributes().empty()
                            ? ""
                            : rec.attributes().front().second;
    rows.push_back({std::to_string(i), std::to_string(group_of[i]),
                    std::to_string(rec.source()), first});
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string csv = WriteCsv(rows);
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  std::printf("Wrote %s.\n", out_path.c_str());
  return 0;
}

// Serving over the wire: the net layer end to end. A synthetic securities
// feed streams through the IncrementalPipeline, each batch published as an
// epoch to a MatchService fronted by a NetServer on an ephemeral loopback
// port — while concurrent NetClient threads fire pipelined query bursts at
// it. Every burst must resolve against one epoch (its replies' epochs
// agree, and GroupOf/Members within the burst are mutually consistent);
// after the run, every record's answer over the wire must equal the direct
// MatchService::View() answer. Exits nonzero on any violation.
//
// The whole stack runs instrumented (obs/metrics.h): the pipeline, the
// service and the server share one MetricsRegistry, and the final scrape
// goes over the wire via the kMetrics opcode — the same path a production
// collector would use. `--metrics-dump text|json` prints the scrape.
//
//   ./examples/net_serve [--groups N] [--batches K] [--clients C]
//       [--num_threads T] [--metrics-dump text|json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "datagen/financial_gen.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "stream/incremental_pipeline.h"

using namespace gralmatch;

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  const size_t num_groups =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("groups", 80)));
  const size_t num_batches =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("batches", 8)));
  const size_t num_clients =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("clients", 3)));

  SyntheticConfig gen_config;
  gen_config.seed = 404;
  gen_config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  const std::vector<Record>& records = bench.securities.records.records();
  const size_t batch_size = (records.size() + num_batches - 1) / num_batches;

  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 8;
  config.pipeline.cleanup.mu = 4;
  config.pipeline.pre_cleanup_threshold = 12;
  config.pipeline.match_threshold = 0.5;
  config.pipeline.num_threads =
      ResolveNumThreads(flags.GetInt("num_threads", 2));
  HeuristicIdMatcher matcher;

  // One registry across the whole stack: pipeline phases, publish latency,
  // and the server's RPC/shedding instruments all land in it.
  obs::MetricsRegistry registry;
  config.pipeline.metrics = &registry;

  IncrementalPipeline pipeline(config);
  MatchService service(&registry);
  NetServerOptions options;
  options.max_connections = num_clients + 1;
  options.metrics = &registry;
  auto server = NetServer::Start(&service, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();
  std::printf("Serving %zu security records (%zu batches) on loopback port "
              "%u to %zu clients.\n",
              records.size(), num_batches, port, num_clients);

  // Client threads fire pipelined bursts for the whole run. Each burst must
  // come back internally consistent: one epoch, and the queried record in
  // its own group's member list.
  std::atomic<bool> done{false};
  std::atomic<size_t> total_queries{0};
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t t = 0; t < num_clients; ++t) {
    clients.emplace_back([&, t] {
      auto client = NetClient::Connect(port);
      if (!client.ok()) {
        std::fprintf(stderr, "client %zu connect failed: %s\n", t,
                     client.status().ToString().c_str());
        std::abort();
      }
      size_t queries = 0;
      uint32_t rng_state = static_cast<uint32_t>(t) * 2654435761u + 1u;
      while (!done.load(std::memory_order_acquire)) {
        rng_state = rng_state * 1664525u + 1013904223u;
        const int64_t r = static_cast<int64_t>(rng_state % records.size());
        auto replies = (*client)->Call(
            {NetRequest::GroupOf(r), NetRequest::Stats()});
        if (!replies.ok() || !(*replies)[0].status.ok() ||
            !(*replies)[1].status.ok()) {
          std::fprintf(stderr, "client %zu: burst failed\n", t);
          std::abort();
        }
        if ((*replies)[0].epoch != (*replies)[1].epoch) {
          std::fprintf(stderr, "client %zu: burst spanned epochs %llu/%llu\n",
                       t,
                       static_cast<unsigned long long>((*replies)[0].epoch),
                       static_cast<unsigned long long>((*replies)[1].epoch));
          std::abort();
        }
        auto members = (*client)->Members((*replies)[0].group);
        // Members is a second call and may land on a newer epoch; only a
        // same-epoch answer is checked against the burst.
        if (members.ok() && members->epoch == (*replies)[0].epoch &&
            (*replies)[0].group != kNoGroup) {
          bool found = false;
          for (RecordId m : members->members) found = found || m == r;
          if (!found) {
            std::fprintf(stderr, "client %zu: record %lld missing from its "
                                 "own group at epoch %llu\n",
                         t, static_cast<long long>(r),
                         static_cast<unsigned long long>(members->epoch));
            std::abort();
          }
        }
        ++queries;
      }
      total_queries.fetch_add(queries);
    });
  }

  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = std::min(b * batch_size, records.size());
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    Result<IngestReport> ingested = pipeline.Ingest(batch, matcher);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.status().ToString().c_str());
      return 1;
    }
    const uint64_t epoch = service.Publish(pipeline.Snapshot().ValueOrDie(),
                                           pipeline.records().size());
    std::printf("  epoch %2llu: +%zu records published\n",
                static_cast<unsigned long long>(epoch),
                ingested->records_added);
  }
  done.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  // Final sweep: the wire answers must equal the direct view's, record for
  // record.
  auto checker = NetClient::Connect(port);
  if (!checker.ok()) {
    std::fprintf(stderr, "checker connect failed\n");
    return 1;
  }
  const MatchSnapshotPtr view = service.View();
  for (size_t r = 0; r < records.size(); ++r) {
    auto reply = (*checker)->GroupOf(static_cast<int64_t>(r));
    if (!reply.ok() ||
        reply->group != view->GroupOf(static_cast<RecordId>(r))) {
      std::fprintf(stderr, "FAIL: wire GroupOf(%zu) differs from the direct "
                           "view\n",
                   r);
      return 1;
    }
  }
  auto stats = (*checker)->Stats();
  if (!stats.ok() || !(*stats == view->stats())) {
    std::fprintf(stderr, "FAIL: wire Stats differs from the direct view\n");
    return 1;
  }

  // Scrape the live server over the wire — the kMetrics opcode answers
  // with the registry's text dump, exactly what a collector would pull.
  auto scrape = (*checker)->Metrics();
  if (!scrape.ok() ||
      scrape->find("net_requests_served_total") == std::string::npos ||
      scrape->find("pipeline_scoring_seconds_count") == std::string::npos) {
    std::fprintf(stderr, "FAIL: wire metrics scrape missing expected "
                         "instruments\n");
    return 1;
  }

  const NetServerCounters counters = (*server)->counters();
  (*server)->Stop();
  std::printf("\nFinal epoch %llu: %zu records, %zu groups; %zu client "
              "queries answered in %llu batches over %llu connections.\n",
              static_cast<unsigned long long>(stats->epoch),
              stats->num_records, stats->num_groups, total_queries.load(),
              static_cast<unsigned long long>(counters.batches),
              static_cast<unsigned long long>(counters.connections_accepted));
  std::printf("PASS: every wire answer equals the direct view's.\n");

  const std::string dump_mode = flags.GetString("metrics-dump", "");
  if (dump_mode == "json") {
    std::printf("%s\n", obs::DumpMetricsJson(registry).c_str());
  } else if (!dump_mode.empty()) {
    std::printf("%s", obs::DumpMetricsText(registry).c_str());
  }
  return 0;
}

// Quickstart: the complete GraLMatch workflow on a small synthetic dataset
// in ~60 lines of user code — generate a multi-source benchmark, block
// candidate pairs, score them with a trained pairwise matcher, run the
// GraLMatch Graph Cleanup, and print the resulting entity groups.
//
//   ./examples/quickstart [--groups N] [--seed S] [--num_threads T]

#include <cstdio>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "core/pipeline.h"
#include "exec/thread_pool.h"
#include "datagen/financial_gen.h"
#include "eval/metrics.h"
#include "matching/baselines.h"
#include "matching/pair_sampling.h"

using namespace gralmatch;

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);

  // 1. Generate a multi-source companies benchmark (5 data sources with
  //    naming variations, corporate events and identifier pathologies).
  SyntheticConfig gen_config;
  gen_config.num_groups = static_cast<size_t>(flags.GetInt("groups", 300));
  gen_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  std::printf("Generated %zu company records (%zu entities) and %zu security "
              "records.\n",
              bench.companies.records.size(), bench.companies.truth.NumEntities(),
              bench.securities.records.size());

  // 2. Blocking: ID Overlap (joined through issued securities) plus Token
  //    Overlap for text-aligned candidates.
  CandidateSet candidates;
  IdOverlapBlocker id_blocker(&bench.securities.records);
  id_blocker.AddCandidates(bench.companies, &candidates);
  TokenOverlapBlocker token_blocker;
  token_blocker.AddCandidates(bench.companies, &candidates);
  std::printf("Blocking produced %zu candidate pairs.\n", candidates.size());

  // 3. Pairwise matcher: a classical TF-IDF + logistic regression model
  //    trained on sampled pairs (swap in a TransformerMatcher for the
  //    language-model pipeline; see the financial_matching example).
  Rng rng(11);
  GroupSplit split = SplitByGroups(bench.companies.truth, &rng);
  PairSamplingOptions sample_opts;
  auto train_pairs =
      SamplePairs(bench.companies, split, SplitPart::kTrain, sample_opts);
  TfidfLogRegMatcher matcher;
  matcher.Train(bench.companies.records, train_pairs);
  std::printf("Trained %s on %zu labelled pairs.\n", matcher.name().c_str(),
              train_pairs.size());

  // 4. End-to-end pipeline: pairwise prediction -> Pre Graph Cleanup ->
  //    GraLMatch Graph Cleanup -> entity groups.
  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;  // one record per data source
  pipe_config.pre_cleanup_threshold = 50;
  // Scoring and cleanup fan out over worker threads; the resulting groups
  // are identical at any thread count. 0 means "use all cores"; negative
  // values clamp to serial.
  pipe_config.num_threads = ResolveNumThreads(flags.GetInt("num_threads", 1));
  EntityGroupPipeline pipeline(pipe_config);
  PipelineResult result =
      pipeline.Run(bench.companies, candidates.ToVector(), matcher);

  // 5. Evaluate the three stages of §5.3.2.
  PrfMetrics pairwise = PairwisePrf(result.predicted_pairs, bench.companies.truth);
  PrfMetrics pre = GroupPrf(result.pre_cleanup_components, bench.companies.truth);
  PrfMetrics post = GroupPrf(result.groups, bench.companies.truth);
  std::printf("\nStage 1  pairwise:      P=%5.1f%%  R=%5.1f%%  F1=%5.1f%%\n",
              100 * pairwise.Precision(), 100 * pairwise.Recall(),
              100 * pairwise.F1());
  std::printf("Stage 2  pre-cleanup:   P=%5.1f%%  R=%5.1f%%  F1=%5.1f%%  "
              "(largest component: %zu records)\n",
              100 * pre.Precision(), 100 * pre.Recall(), 100 * pre.F1(),
              LargestComponent(result.pre_cleanup_components));
  std::printf("Stage 3  post-cleanup:  P=%5.1f%%  R=%5.1f%%  F1=%5.1f%%  "
              "(cluster purity: %.2f)\n",
              100 * post.Precision(), 100 * post.Recall(), 100 * post.F1(),
              ClusterPurity(result.groups, bench.companies.truth));

  // 6. Show a few recovered groups.
  std::printf("\nSample entity groups:\n");
  size_t shown = 0;
  for (const auto& group : result.groups) {
    if (group.size() < 3) continue;
    std::printf("  group of %zu:\n", group.size());
    for (NodeId r : group) {
      const Record& rec = bench.companies.records.at(r);
      std::printf("    [source %d] %s (%s)\n", rec.source(),
                  std::string(rec.Get("name")).c_str(),
                  std::string(rec.Get("city")).c_str());
    }
    if (++shown == 3) break;
  }
  return 0;
}

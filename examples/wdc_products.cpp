// WDC-Products-style matching (§5.1.4): heterogeneous group sizes and 80%
// corner cases. Demonstrates the paper's finding that Algorithm 1's
// mu = #sources assumption over-splits large product groups — and shows a
// simple remedy (raising mu) that trades precision back for recall.
//
//   ./examples/wdc_products [--entities N] [--seed S]

#include <cstdio>

#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "core/embeddedness.h"
#include "core/label_propagation.h"
#include "core/pipeline.h"
#include "datagen/wdc_gen.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "matching/pair_sampling.h"

using namespace gralmatch;

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  WdcConfig gen_config;
  gen_config.num_entities = static_cast<size_t>(flags.GetInt("entities", 400));
  gen_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  Dataset products = WdcProductsGenerator(gen_config).Generate();

  // Group-size histogram: the heterogeneity that breaks a fixed mu.
  std::printf("Generated %zu offers of %zu products.\n", products.records.size(),
              products.truth.NumEntities());
  size_t histogram[13] = {0};
  for (const auto& [e, members] : products.truth.Groups()) {
    ++histogram[members.size() < 12 ? members.size() : 12];
  }
  std::printf("Group sizes: ");
  for (size_t s = 1; s < 13; ++s) {
    if (histogram[s]) std::printf("%zux%zu ", histogram[s], s);
  }
  std::printf("\n\n");

  // Token Overlap blocking + classical matcher.
  TokenOverlapBlocker::Options topts;
  topts.top_n = 10;
  topts.max_token_df = 0.30;
  TokenOverlapBlocker blocker(topts);
  CandidateSet candidates;
  blocker.AddCandidates(products, &candidates);

  Rng rng(5);
  GroupSplit split = SplitByGroups(products.truth, &rng);
  PairSamplingOptions opts;
  auto train = SamplePairs(products, split, SplitPart::kTrain, opts);
  TfidfLogRegMatcher matcher;
  matcher.Train(products.records, train);

  std::printf("%zu candidate pairs, matcher trained on %zu pairs.\n\n",
              candidates.size(), train.size());

  // Sweep mu: the paper's finding is that mu = #sources over-splits.
  std::printf("%-10s %-10s %-10s %-10s %s\n", "mu", "Post-P", "Post-R",
              "Post-F1", "Purity");
  for (size_t mu : {3ul, 5ul, 8ul, 12ul, 20ul}) {
    PipelineConfig config;
    config.cleanup.gamma = 25;
    config.cleanup.mu = mu;
    config.num_threads = ResolveNumThreads(flags.GetInt("num_threads", 1));
    EntityGroupPipeline pipeline(config);
    PipelineResult result =
        pipeline.Run(products, candidates.ToVector(), matcher);
    PrfMetrics post = GroupPrf(result.groups, products.truth);
    std::printf("%-10zu %-10.1f %-10.1f %-10.1f %.2f\n", mu,
                100 * post.Precision(), 100 * post.Recall(), 100 * post.F1(),
                ClusterPurity(result.groups, products.truth));
  }
  std::printf(
      "\nSmall mu chops the large product groups (recall loss, the paper's "
      "WDC observation); larger mu lets heterogeneous group sizes survive.\n");

  // The paper's suggested future work: a cleanup that does not assume a
  // fixed group size. Label propagation converges per-community, so large
  // true groups survive while weakly-linked glued groups split.
  {
    Graph graph(products.records.size());
    EntityGroupPipeline scorer;
    PipelineResult scored = scorer.Run(products, candidates.ToVector(), matcher);
    // Discard audited: predicted pairs are in-range by construction; the
    // edge id is unused here.
    for (const auto& pair : scored.predicted_pairs) {
      (void)graph.AddEdge(pair.a, pair.b);
    }
    auto lp_groups = LabelPropagationGroups(graph);
    PrfMetrics lp = GroupPrf(lp_groups, products.truth);
    std::printf("\nLabel propagation cleanup (size-agnostic):  P=%.1f R=%.1f "
                "F1=%.1f purity=%.2f\n",
                100 * lp.Precision(), 100 * lp.Recall(), 100 * lp.F1(),
                ClusterPurity(lp_groups, products.truth));

    auto emb_groups = EmbeddednessGroups(&graph);
    PrfMetrics emb = GroupPrf(emb_groups, products.truth);
    std::printf("Embeddedness cleanup (size-agnostic):       P=%.1f R=%.1f "
                "F1=%.1f purity=%.2f\n",
                100 * emb.Precision(), 100 * emb.Recall(), 100 * emb.F1(),
                ClusterPurity(emb_groups, products.truth));
  }
  return 0;
}

// Financial records end-to-end: the paper's real-world scenario. Matches
// companies first (ID Overlap + Token Overlap blocking, transformer
// matcher, GraLMatch cleanup), then uses the matched company groups to
// block securities (Issuer Match) and matches those too — demonstrating
// how securities with generic names and disjoint identifiers are only
// reachable through their issuers (§5.3.1).
//
//   ./examples/financial_matching [--groups N] [--seed S] [--epochs E]

#include <cstdio>

#include "blocking/id_overlap.h"
#include "blocking/issuer_match.h"
#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "eval/metrics.h"
#include "exec/thread_pool.h"
#include "matching/pair_sampling.h"
#include "matching/transformer_matcher.h"
#include "matching/variants.h"

using namespace gralmatch;

namespace {

TransformerMatcher TrainMatcher(const Dataset& data, const GroupSplit& split,
                                size_t epochs, uint64_t seed) {
  TransformerMatcherConfig config =
      MakeVariantConfig(ModelVariant::kDistilBert128All, seed, 32, 96);
  config.trainer.epochs = epochs;
  config.trainer.lr = 1.5e-3f;
  TransformerMatcher matcher(config);

  RecordTable train_records;
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (split.part(static_cast<RecordId>(i)) == SplitPart::kTrain) {
      train_records.Add(data.records.at(static_cast<RecordId>(i)));
    }
  }
  matcher.BuildVocab(train_records);

  PairSamplingOptions opts;
  opts.max_positives = 800;
  auto train = SamplePairs(data, split, SplitPart::kTrain, opts);
  opts.max_positives = 300;
  auto val = SamplePairs(data, split, SplitPart::kValidation, opts);
  std::printf("  fine-tuning on %zu pairs (%zu validation)...\n", train.size(),
              val.size());
  Stopwatch watch;
  matcher.FineTune(data.records, train, val);
  std::printf("  done in %s.\n", watch.ElapsedHuman().c_str());
  return matcher;
}

void Report(const char* label, const PipelineResult& result,
            const GroundTruth& truth) {
  PrfMetrics pre = GroupPrf(result.pre_cleanup_components, truth);
  PrfMetrics post = GroupPrf(result.groups, truth);
  std::printf("  %s: pre-cleanup F1=%5.1f%% (largest component %zu) -> "
              "post-cleanup F1=%5.1f%%, purity %.2f\n",
              label, 100 * pre.F1(),
              LargestComponent(result.pre_cleanup_components), 100 * post.F1(),
              ClusterPurity(result.groups, truth));
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  SyntheticConfig gen_config;
  gen_config.num_groups = static_cast<size_t>(flags.GetInt("groups", 250));
  gen_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 21));
  size_t epochs = static_cast<size_t>(flags.GetInt("epochs", 2));
  size_t num_threads = ResolveNumThreads(flags.GetInt("num_threads", 1));

  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  std::printf("Benchmark: %zu company / %zu security records across %zu "
              "sources.\n\n",
              bench.companies.records.size(), bench.securities.records.size(),
              bench.companies.records.NumSources());

  // ---- Phase 1: companies ------------------------------------------------
  std::printf("[1/2] Matching companies\n");
  Rng rng(gen_config.seed);
  GroupSplit company_split = SplitByGroups(bench.companies.truth, &rng);
  TransformerMatcher company_matcher =
      TrainMatcher(bench.companies, company_split, epochs, gen_config.seed);

  CandidateSet company_candidates;
  IdOverlapBlocker company_id_blocker(&bench.securities.records);
  company_id_blocker.AddCandidates(bench.companies, &company_candidates);
  TokenOverlapBlocker token_blocker;
  token_blocker.AddCandidates(bench.companies, &company_candidates);

  PipelineConfig company_pipe;
  company_pipe.cleanup.gamma = 25;
  company_pipe.cleanup.mu = 5;
  company_pipe.pre_cleanup_threshold = 50;
  company_pipe.num_threads = num_threads;
  EntityGroupPipeline company_pipeline(company_pipe);
  PipelineResult company_result = company_pipeline.Run(
      bench.companies, company_candidates.ToVector(), company_matcher);
  Report("companies", company_result, bench.companies.truth);

  // ---- Phase 2: securities, blocked through matched issuers --------------
  std::printf("\n[2/2] Matching securities (issuers = phase-1 groups)\n");
  GroupSplit security_split = SplitByGroups(bench.securities.truth, &rng);
  TransformerMatcher security_matcher =
      TrainMatcher(bench.securities, security_split, epochs, gen_config.seed ^ 1);

  std::vector<int64_t> company_groups =
      company_result.GroupOfRecord(bench.companies.records.size());
  CandidateSet security_candidates;
  IdOverlapBlocker security_id_blocker;
  security_id_blocker.AddCandidates(bench.securities, &security_candidates);
  IssuerMatchBlocker issuer_blocker(&company_groups);
  issuer_blocker.AddCandidates(bench.securities, &security_candidates);

  size_t issuer_only = 0;
  for (const auto& cand : security_candidates.ToVector()) {
    if (cand.provenance == kBlockerIssuerMatch) ++issuer_only;
  }
  std::printf("  %zu candidate pairs (%zu reachable only through the Issuer "
              "Match blocking).\n",
              security_candidates.size(), issuer_only);

  PipelineConfig security_pipe;
  security_pipe.cleanup.gamma = 25;
  security_pipe.cleanup.mu = 5;
  security_pipe.num_threads = num_threads;
  EntityGroupPipeline security_pipeline(security_pipe);
  PipelineResult security_result = security_pipeline.Run(
      bench.securities, security_candidates.ToVector(), security_matcher);
  Report("securities", security_result, bench.securities.truth);

  std::printf("\nDone: %zu company groups, %zu security groups.\n",
              company_result.groups.size(), security_result.groups.size());
  return 0;
}

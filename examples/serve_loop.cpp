// Ingest-while-querying: the serving story end to end. A synthetic
// securities feed arrives in batches; the ingest thread streams each batch
// through the IncrementalPipeline and publishes an epoch snapshot to a
// MatchService, while reader threads concurrently answer GroupOf / Members /
// Stats queries against whatever epoch is current — every reader always
// sees one consistent epoch.
//
// With --checkpoint the run also exercises durability: after the first half
// of the batches the pipeline state is saved, the pipeline is destroyed,
// and ingestion resumes from the restored checkpoint — the final result
// must be identical to a run that never restarted (and the restore itself
// bitwise-identical to the saved state).
//
// The run is instrumented (obs/metrics.h): pipeline phase latencies and
// publish timings land in one MetricsRegistry, the checkpoint drill is
// timed at the call site (serve/checkpoint.h itself stays obs-free), and
// the restored pipeline is re-wired via set_metrics() — the registry
// pointer never enters checkpoint bytes. `--metrics-dump text|json`
// prints the final scrape.
//
//   ./examples/serve_loop [--groups N] [--batches K] [--readers R]
//       [--num_threads T] [--checkpoint PATH] [--metrics-dump text|json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/match_service.h"
#include "stream/incremental_pipeline.h"

using namespace gralmatch;

namespace {

/// From-scratch reference on the union of all batches (the batch-equivalence
/// oracle the stream/serve tests pin).
PipelineResult Reference(const RecordTable& records,
                         const IncrementalPipelineConfig& config,
                         const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  IdOverlapBlocker().AddCandidates(ds, &candidates);
  TokenOverlapBlocker(config.token).AddCandidates(ds, &candidates);
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

bool SameResult(const PipelineResult& a, const PipelineResult& b) {
  return a.predicted_pairs == b.predicted_pairs && a.groups == b.groups &&
         a.pre_cleanup_components == b.pre_cleanup_components;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  const size_t num_groups =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("groups", 80)));
  const size_t num_batches =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("batches", 8)));
  const size_t num_readers =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("readers", 3)));
  const std::string checkpoint_path = flags.GetString("checkpoint", "");

  SyntheticConfig gen_config;
  gen_config.seed = 404;
  gen_config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  const std::vector<Record>& records = bench.securities.records.records();
  const size_t batch_size = (records.size() + num_batches - 1) / num_batches;
  std::printf("Feed: %zu security records in %zu batches of <=%zu.\n",
              records.size(), num_batches, batch_size);

  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 8;
  config.pipeline.cleanup.mu = 4;
  config.pipeline.pre_cleanup_threshold = 12;
  config.pipeline.match_threshold = 0.5;
  config.pipeline.num_threads =
      ResolveNumThreads(flags.GetInt("num_threads", 2));
  HeuristicIdMatcher matcher;

  // One registry for the run: pipeline phases, publish latency, and the
  // call-site-timed checkpoint drill all record into it.
  obs::MetricsRegistry registry;
  config.pipeline.metrics = &registry;

  auto pipeline = std::make_unique<IncrementalPipeline>(config);
  MatchService service(&registry);

  // Readers hammer the service for the whole run: they see epoch 0 (empty)
  // until the first publish, then whichever epoch is current.
  std::atomic<bool> done{false};
  std::atomic<size_t> total_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t t = 0; t < num_readers; ++t) {
    readers.emplace_back([&service, &done, &total_queries, t] {
      size_t queries = 0;
      uint32_t rng_state = static_cast<uint32_t>(t) * 2654435761u + 1u;
      while (!done.load(std::memory_order_acquire)) {
        MatchSnapshotPtr view = service.View();
        const ServeStats stats = view->stats();
        if (stats.num_records == 0) continue;
        rng_state = rng_state * 1664525u + 1013904223u;
        const RecordId r = static_cast<RecordId>(rng_state % stats.num_records);
        const GroupId gid = view->GroupOf(r);
        // Within one view, GroupOf and Members always agree — a torn read
        // across epochs would trip this.
        const auto& members = view->Members(gid);
        bool found = false;
        for (RecordId m : members) found = found || m == r;
        if (!found) {
          std::fprintf(stderr, "reader %zu: record %d missing from its own "
                               "group at epoch %llu\n",
                       t, r, static_cast<unsigned long long>(stats.epoch));
          std::abort();
        }
        ++queries;
      }
      total_queries.fetch_add(queries);
    });
  }

  auto ingest_batch = [&](size_t index) {
    // Clamp both ends: more batches than records leaves trailing indexes
    // with an empty (but well-defined) slice.
    const size_t begin = std::min(index * batch_size, records.size());
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    Result<IngestReport> ingested = pipeline->Ingest(batch, matcher);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.status().ToString().c_str());
      std::abort();
    }
    const IngestReport& report = *ingested;
    const uint64_t epoch =
        service.Publish(pipeline->Snapshot().ValueOrDie(),
                        pipeline->records().size());
    std::printf("  epoch %2llu: +%zu records, %zu scored, %zu cache hits, "
                "%zu/%zu components rebuilt\n",
                static_cast<unsigned long long>(epoch), report.records_added,
                report.pairs_scored, report.cache_hits,
                report.components_rebuilt,
                report.components_rebuilt + report.components_reused);
  };

  const size_t half = num_batches / 2;
  std::printf("Ingesting first %zu batches...\n", half);
  for (size_t b = 0; b < half; ++b) ingest_batch(b);

  if (!checkpoint_path.empty()) {
    // Durability drill: save, destroy, restore, and verify the restored
    // snapshot matches the live one bitwise before continuing.
    const PipelineResult before = pipeline->Snapshot().ValueOrDie();
    // The checkpoint layer is deliberately obs-free (nothing in it may
    // observe the registry), so durability is timed here at the call site.
    Status st;
    {
      obs::TraceScope save_span(
          registry.GetHistogram("checkpoint_save_seconds"));
      st = SaveCheckpoint(*pipeline, checkpoint_path);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    pipeline.reset();
    Result<std::unique_ptr<IncrementalPipeline>> restored = [&] {
      obs::TraceScope load_span(
          registry.GetHistogram("checkpoint_load_seconds"));
      return LoadCheckpoint(checkpoint_path, matcher);
    }();
    if (!restored.ok()) {
      std::fprintf(stderr, "checkpoint load failed: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    pipeline = restored.MoveValueUnsafe();
    // The metrics pointer is runtime-only state, never serialized: a
    // restored pipeline comes back uninstrumented until re-wired.
    pipeline->set_metrics(&registry);
    if (!SameResult(pipeline->Snapshot().ValueOrDie(), before)) {
      std::fprintf(stderr, "restored snapshot differs from saved state\n");
      return 1;
    }
    std::printf("Checkpointed %zu records to %s, restarted from it "
                "(snapshot identical).\n",
                pipeline->records().size(), checkpoint_path.c_str());
  }

  std::printf("Ingesting remaining batches while readers query...\n");
  for (size_t b = half; b < num_batches; ++b) ingest_batch(b);

  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  const ServeStats stats = service.Stats();
  std::printf("\nFinal epoch %llu: %zu records, %zu groups (%zu matched), "
              "%zu positive pairs; readers answered %zu queries during "
              "ingestion.\n",
              static_cast<unsigned long long>(stats.epoch), stats.num_records,
              stats.num_groups, stats.num_matched_groups,
              stats.num_predicted_pairs, total_queries.load());

  // The streaming + restart run must equal a from-scratch batch run. The
  // oracle runs uninstrumented so the dump below reflects only the serving
  // run.
  IncrementalPipelineConfig reference_config = config;
  reference_config.pipeline.metrics = nullptr;
  if (!SameResult(pipeline->Snapshot().ValueOrDie(),
                  Reference(pipeline->records(), reference_config, matcher))) {
    std::fprintf(stderr, "FAIL: final snapshot differs from the from-scratch "
                         "reference\n");
    return 1;
  }
  std::printf("PASS: final snapshot equals the from-scratch reference.\n");

  const std::string dump_mode = flags.GetString("metrics-dump", "");
  if (dump_mode == "json") {
    std::printf("%s\n", obs::DumpMetricsJson(registry).c_str());
  } else if (!dump_mode.empty()) {
    std::printf("%s", obs::DumpMetricsText(registry).c_str());
  }
  return 0;
}

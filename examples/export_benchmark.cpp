// Benchmark exporter: generates the synthetic companies & securities
// datasets (and the WDC-style products dataset) and writes them to CSV with
// ground-truth entity ids — the equivalent of the dataset release that
// accompanies the paper. Re-import with ReadRecordsCsv (data/csv.h).
//
//   ./examples/export_benchmark --out DIR [--groups N] [--seed S]
//                               [--wdc_entities N]

#include <cstdio>
#include <filesystem>

#include "common/cli.h"
#include "data/csv.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"

using namespace gralmatch;

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  std::string out_dir = flags.GetString("out", "gralmatch_datasets");
  SyntheticConfig gen_config;
  gen_config.num_groups = static_cast<size_t>(flags.GetInt("groups", 1000));
  gen_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  WdcConfig wdc_config;
  wdc_config.num_entities =
      static_cast<size_t>(flags.GetInt("wdc_entities", 500));
  wdc_config.seed = gen_config.seed ^ 0xF00D;

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", out_dir.c_str());
    return 1;
  }

  std::printf("Generating synthetic benchmark (%zu groups, seed %llu)...\n",
              gen_config.num_groups,
              static_cast<unsigned long long>(gen_config.seed));
  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  Dataset products = WdcProductsGenerator(wdc_config).Generate();

  struct Export {
    const char* file;
    const RecordTable* records;
    const GroundTruth* truth;
  };
  const Export exports[] = {
      {"companies.csv", &bench.companies.records, &bench.companies.truth},
      {"securities.csv", &bench.securities.records, &bench.securities.truth},
      {"products.csv", &products.records, &products.truth},
  };
  for (const Export& e : exports) {
    std::string path = out_dir + "/" + e.file;
    Status st = WriteRecordsCsv(path, *e.records, e.truth);
    if (!st.ok()) {
      std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu records)\n", path.c_str(), e.records->size());
  }
  std::printf(
      "\nColumns: source, entity_id (ground truth; records sharing an id are "
      "matches), then the record attributes. Securities reference their "
      "issuing company record through issuer_ref (a row index into "
      "companies.csv). Metadata columns starting with '_' (e.g. _event) mark "
      "drift events and must be hidden from matchers.\n");
  return 0;
}

// Sharded serving story end to end: a synthetic securities feed streams in
// batches through a ShardedPipeline (content-hash routed across --shards
// shard-local states, candidates exchanged globally, scored shard-parallel,
// merged into global components). Mid-stream the run exercises durability:
// the pipeline is checkpointed to a manifest + per-shard files, destroyed,
// restored from disk, and ingestion resumes.
//
// The run exits nonzero unless the final snapshot is identical to BOTH
//   (a) a from-scratch batch EntityGroupPipeline::Run on the union, and
//   (b) an unsharded (S=1) run of the same schedule,
// i.e. it drives the shard-count-invariance and checkpoint contracts that
// tests/shard_test.cc pins, through the public API.
//
// The sharded run is instrumented (obs/metrics.h): routing / exchange /
// scoring / merge phase latencies, mutation counters, and the sharded
// checkpoint save/load timings all land in one MetricsRegistry (the
// unsharded control runs uninstrumented so the dump reflects the sharded
// path only). `--metrics-dump text|json` prints the final scrape.
//
//   ./examples/sharded_loop [--groups N] [--batches K] [--shards S]
//       [--num_threads T] [--checkpoint_dir PATH] [--metrics-dump text|json]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/cli.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "obs/metrics.h"
#include "serve/sharded_checkpoint.h"
#include "shard/sharded_pipeline.h"

using namespace gralmatch;

namespace {

PipelineResult Reference(const RecordTable& records,
                         const IncrementalPipelineConfig& config,
                         const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  IdOverlapBlocker().AddCandidates(ds, &candidates);
  TokenOverlapBlocker(config.token).AddCandidates(ds, &candidates);
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

bool SameResult(const PipelineResult& a, const PipelineResult& b) {
  return a.predicted_pairs == b.predicted_pairs && a.groups == b.groups &&
         a.pre_cleanup_components == b.pre_cleanup_components;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  const size_t num_groups =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("groups", 80)));
  const size_t num_batches =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("batches", 8)));
  const size_t num_shards =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("shards", 4)));
  const std::string checkpoint_dir =
      flags.GetString("checkpoint_dir", "sharded_loop_ckpt");

  SyntheticConfig gen_config;
  gen_config.seed = 404;
  gen_config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(gen_config).Generate();
  const std::vector<Record>& records = bench.securities.records.records();
  const size_t batch_size = (records.size() + num_batches - 1) / num_batches;
  std::printf("Feed: %zu security records in %zu batches of <=%zu across "
              "%zu shards.\n",
              records.size(), num_batches, batch_size, num_shards);

  ShardedPipelineConfig config;
  config.base.pipeline.cleanup.gamma = 8;
  config.base.pipeline.cleanup.mu = 4;
  config.base.pipeline.pre_cleanup_threshold = 12;
  config.base.pipeline.match_threshold = 0.5;
  config.base.pipeline.num_threads =
      ResolveNumThreads(flags.GetInt("num_threads", 2));
  config.num_shards = num_shards;
  config.router_seed = 7;
  HeuristicIdMatcher matcher;

  // The sharded pipeline and the checkpoint drill record into one registry;
  // the unsharded control below stays uninstrumented so the dump reflects
  // the sharded path only.
  obs::MetricsRegistry registry;
  config.base.pipeline.metrics = &registry;

  auto sharded = std::make_unique<ShardedPipeline>(config);
  // The unsharded control runs the same schedule; shard-count invariance
  // says the two snapshots never diverge.
  IncrementalPipelineConfig control_config = config.base;
  control_config.pipeline.metrics = nullptr;
  IncrementalPipeline unsharded(control_config);

  auto ingest_batch = [&](size_t index) {
    const size_t begin = std::min(index * batch_size, records.size());
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    Result<IngestReport> sharded_report = sharded->Ingest(batch, matcher);
    Result<IngestReport> mono_report = unsharded.Ingest(batch, matcher);
    if (!sharded_report.ok() || !mono_report.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   (!sharded_report.ok() ? sharded_report.status()
                                         : mono_report.status())
                       .ToString()
                       .c_str());
      std::exit(1);
    }
    std::printf("  batch %2zu: +%zu records, %zu scored, %zu cache hits, "
                "%zu/%zu components rebuilt\n",
                index + 1, sharded_report->records_added,
                sharded_report->pairs_scored, sharded_report->cache_hits,
                sharded_report->components_rebuilt,
                sharded_report->components_rebuilt +
                    sharded_report->components_reused);
  };

  const size_t half = num_batches / 2;
  std::printf("Ingesting first %zu batches...\n", half);
  for (size_t b = 0; b < half; ++b) ingest_batch(b);

  // Durability drill: manifest + per-shard files, destroy, restore, verify.
  // Passing the registry times the save/load into the checkpoint_*_seconds
  // histograms; the bytes written are identical either way.
  Status saved = SaveShardedCheckpoint(*sharded, checkpoint_dir, &registry);
  if (!saved.ok()) {
    std::fprintf(stderr, "sharded checkpoint save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  const PipelineResult before = sharded->Snapshot().ValueOrDie();
  sharded.reset();
  auto restored = LoadShardedCheckpoint(checkpoint_dir, matcher,
                                        /*num_threads_override=*/0, &registry);
  if (!restored.ok()) {
    std::fprintf(stderr, "sharded checkpoint load failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  sharded = restored.MoveValueUnsafe();
  // The registry pointer never enters the manifest or shard bodies, so the
  // restored pipeline comes back uninstrumented until re-wired.
  sharded->set_metrics(&registry);
  if (!SameResult(sharded->Snapshot().ValueOrDie(), before)) {
    std::fprintf(stderr, "restored snapshot differs from saved state\n");
    return 1;
  }
  std::printf("Checkpointed %zu records to %s/ (manifest + %zu shard "
              "files), restarted from it (snapshot identical).\n",
              sharded->records().size(), checkpoint_dir.c_str(),
              sharded->num_shards());

  std::printf("Ingesting remaining batches...\n");
  for (size_t b = half; b < num_batches; ++b) ingest_batch(b);

  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    std::printf("  shard %zu owns %zu records\n", s,
                sharded->ShardRecordCount(s));
  }

  const PipelineResult final_snapshot = sharded->Snapshot().ValueOrDie();
  if (!SameResult(final_snapshot, unsharded.Snapshot().ValueOrDie())) {
    std::fprintf(stderr, "FAIL: sharded snapshot differs from the "
                         "unsharded (S=1) run\n");
    return 1;
  }
  if (!SameResult(final_snapshot,
                  Reference(sharded->records(), control_config, matcher))) {
    std::fprintf(stderr, "FAIL: final snapshot differs from the "
                         "from-scratch reference\n");
    return 1;
  }
  std::printf("PASS: sharded + restarted run equals both the unsharded run "
              "and the from-scratch reference (%zu matcher calls, %zu cache "
              "hits).\n",
              sharded->total_matcher_calls(), sharded->total_cache_hits());

  const std::string dump_mode = flags.GetString("metrics-dump", "");
  if (dump_mode == "json") {
    std::printf("%s\n", obs::DumpMetricsJson(registry).c_str());
  } else if (!dump_mode.empty()) {
    std::printf("%s", obs::DumpMetricsText(registry).c_str());
  }
  return 0;
}

// Recreates the narrative of Figures 2-4 of the paper on a hand-built
// miniature: the "Crowdstrike" record group spread over four data sources
// with naming variations, the "Crowdstreet" near-collision, an acquisition
// whose identifier overwrites make one group only transitively matchable,
// and the false positive pairwise edge that glues two groups together
// until GraLMatch removes it.
//
//   ./examples/drift_events

#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "graph/betweenness.h"
#include "matching/matcher.h"

using namespace gralmatch;

namespace {

void PrintRecords(const Dataset& ds) {
  std::printf("%-4s %-8s %-30s %-14s %s\n", "#", "source", "name", "isin",
              "entity");
  for (size_t i = 0; i < ds.records.size(); ++i) {
    const Record& rec = ds.records.at(static_cast<RecordId>(i));
    std::printf("%-4zu %-8d %-30s %-14s %d\n", i, rec.source(),
                std::string(rec.Get("name")).c_str(),
                std::string(rec.Get("isin")).c_str(),
                ds.truth.entity_of(static_cast<RecordId>(i)));
  }
}

/// The paper's Figure 2/4 matcher behaviour in miniature: matches identical
/// ISINs and obvious name alignments, plus one deliberate false positive
/// between Crowdstrike and Crowdstreet records.
class FigureMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "figure-matcher"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    if (!a.Get("isin").empty() && a.Get("isin") == b.Get("isin")) return 0.95;
    std::string_view na = a.Get("name"), nb = b.Get("name");
    if (na == nb) return 0.9;  // exact name alignment (Herotel vs Herotel)
    // Text alignment: "Crowdstrike"-family names match each other...
    bool strike_a = na.find("strike") != std::string_view::npos ||
                    na.find("Strike") != std::string_view::npos;
    bool strike_b = nb.find("strike") != std::string_view::npos ||
                    nb.find("Strike") != std::string_view::npos;
    if (strike_a && strike_b) return 0.9;
    // ...and the long shared character sequences of "Crowdstreet" produce
    // the false positive of Figure 4.
    bool street_a = na.find("street") != std::string_view::npos;
    bool street_b = nb.find("street") != std::string_view::npos;
    if ((strike_a && street_b) || (street_a && strike_b)) {
      return (na.find("Crowd Strike") != std::string_view::npos ||
              nb.find("Crowd Strike") != std::string_view::npos)
                 ? 0.7   // one false positive pair slips through
                 : 0.2;
    }
    if (street_a && street_b) return 0.9;
    return 0.05;
  }
};

}  // namespace

int main() {
  // Four sources, three entities: Crowdstrike (0), Crowdstreet (1), and the
  // acquired "Herotel" whose records were partially overwritten by acquirer
  // "Hearst" (2; all its records are matches per §3.2).
  Dataset ds;
  auto add = [&](SourceId src, const char* name, const char* isin, EntityId e) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    if (isin && *isin) rec.Set("isin", isin);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, e);
    return id;
  };

  // Crowdstrike group: four naming variations (Figure 2).
  add(0, "Crowdstrike Plt.", "US31807756E", 0);
  add(1, "Crowd Strike Platforms", "US318077DSIE", 0);
  add(2, "Crowdstrike Holdings", "US31807756E", 0);
  add(3, "CrowdStrike", "US318077DSIE", 0);
  // Crowdstreet group: the near-collision.
  add(0, "Crowdstreet Inc", "US9022617", 1);
  add(1, "Crowdstreet", "US9022617", 1);
  add(2, "Crowd street Properties", "", 1);
  // Herotel/Hearst acquisition: record 8's identifiers were overwritten
  // with Hearst's (Figure 3); records 7 and 9/10 share nothing directly.
  add(0, "Herotel", "ZA55511111", 2);
  add(1, "Herotel", "US4444HRST", 2);  // overwritten identifiers
  add(2, "Hearst", "US4444HRST", 2);
  add(3, "Hearst Corporation", "US4444HRST", 2);

  std::printf("=== Figure 2: the records ===\n");
  PrintRecords(ds);

  // All cross-source pairs are candidates in this miniature.
  std::vector<Candidate> candidates;
  for (RecordId a = 0; a < static_cast<RecordId>(ds.records.size()); ++a) {
    for (RecordId b = a + 1; b < static_cast<RecordId>(ds.records.size()); ++b) {
      if (ds.records.at(a).source() == ds.records.at(b).source()) continue;
      candidates.push_back({RecordPair(a, b), kBlockerTokenOverlap});
    }
  }

  FigureMatcher matcher;
  PipelineConfig config;
  config.cleanup.gamma = 8;
  config.cleanup.mu = 4;  // four data sources
  EntityGroupPipeline pipeline(config);
  PipelineResult result = pipeline.Run(ds, candidates, matcher);

  std::printf("\n=== Figure 3: transitive matches ===\n");
  std::printf("Pairwise predictions: %zu edges.\n", result.predicted_pairs.size());
  bool herotel_direct = false;
  for (const auto& pair : result.predicted_pairs) {
    if (pair == RecordPair(7, 9) || pair == RecordPair(7, 10)) {
      herotel_direct = true;
    }
  }
  std::printf("Herotel #7 vs Hearst #9/#10 predicted directly: %s\n",
              herotel_direct ? "yes" : "no (only transitively via #8!)");

  std::printf("\n=== Figure 4: pre vs post cleanup ===\n");
  PrfMetrics pre = GroupPrf(result.pre_cleanup_components, ds.truth);
  std::printf("Pre-cleanup: %zu component(s), largest %zu, precision %.0f%%\n",
              result.pre_cleanup_components.size(),
              LargestComponent(result.pre_cleanup_components),
              100 * pre.Precision());

  PrfMetrics post = GroupPrf(result.groups, ds.truth);
  std::printf("Post-cleanup groups:\n");
  for (const auto& group : result.groups) {
    std::printf("  {");
    for (size_t i = 0; i < group.size(); ++i) {
      std::printf("%s#%d", i ? ", " : "", group[i]);
    }
    std::printf("}\n");
  }
  std::printf("Post-cleanup precision %.0f%%, recall %.0f%%, purity %.2f\n",
              100 * post.Precision(), 100 * post.Recall(),
              ClusterPurity(result.groups, ds.truth));
  std::printf("\nThe false Crowdstrike-Crowdstreet edge was removed by the "
              "GraLMatch Graph Cleanup; the Herotel group was recovered "
              "through its transitive path only.\n");
  return 0;
}

// Recreates the narrative of Figures 2-4 of the paper on a hand-built
// miniature — but as a *stream*, driving the real incremental API: the
// "Crowdstrike" record group spread over four data sources arrives first,
// then the "Crowdstreet" near-collision, and finally a corporate-event batch
// (an acquisition whose identifier overwrites make one group only
// transitively matchable, plus the false positive pairwise edge that glues
// two groups together until GraLMatch removes it). After every ingest the
// incremental pipeline reports how little it recomputed; the snapshot is
// checked against a from-scratch run of the batch pipeline — the
// batch-equivalence guarantee of the stream module. A final corrections
// batch then retracts the false positive's source record via
// Update/Remove and re-checks the snapshot against a from-scratch run on
// the survivors: schedule equivalence, the CRUD extension of the same
// guarantee.
//
//   ./examples/drift_events

#include <cstdio>
#include <string>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "matching/matcher.h"
#include "stream/incremental_pipeline.h"

using namespace gralmatch;

namespace {

/// The paper's Figure 2/4 matcher behaviour in miniature: matches identical
/// ISINs and obvious name alignments, plus one deliberate false positive
/// between Crowdstrike and Crowdstreet records.
class FigureMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "figure-matcher"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    if (!a.Get("isin").empty() && a.Get("isin") == b.Get("isin")) return 0.95;
    std::string_view na = a.Get("name"), nb = b.Get("name");
    if (na == nb) return 0.9;  // exact name alignment (Herotel vs Herotel)
    // Text alignment: "Crowdstrike"-family names match each other...
    bool strike_a = na.find("strike") != std::string_view::npos ||
                    na.find("Strike") != std::string_view::npos;
    bool strike_b = nb.find("strike") != std::string_view::npos ||
                    nb.find("Strike") != std::string_view::npos;
    if (strike_a && strike_b) return 0.9;
    // ...and the long shared character sequences of "Crowdstreet" produce
    // the false positive of Figure 4.
    bool street_a = na.find("street") != std::string_view::npos;
    bool street_b = nb.find("street") != std::string_view::npos;
    if ((strike_a && street_b) || (street_a && strike_b)) {
      return (na.find("Crowd Strike") != std::string_view::npos ||
              nb.find("Crowd Strike") != std::string_view::npos)
                 ? 0.7   // one false positive pair slips through
                 : 0.2;
    }
    if (street_a && street_b) return 0.9;
    return 0.05;
  }
};

Record MakeRecord(SourceId source, const char* name, const char* isin) {
  Record rec(source, RecordKind::kCompany);
  rec.Set("name", name);
  if (isin && *isin) rec.Set("isin", isin);
  return rec;
}

void PrintGroups(const PipelineResult& result) {
  for (const auto& group : result.groups) {
    std::printf("  {");
    for (size_t i = 0; i < group.size(); ++i) {
      std::printf("%s#%d", i ? ", " : "", group[i]);
    }
    std::printf("}\n");
  }
}

void PrintReport(const IngestReport& report) {
  std::printf("  ingest: +%zu records, +%zu/-%zu candidates, %zu scored, "
              "%zu cache hits, %zu components rebuilt, %zu reused\n",
              report.records_added, report.candidates_added,
              report.candidates_removed, report.pairs_scored,
              report.cache_hits, report.components_rebuilt,
              report.components_reused);
}

}  // namespace

int main() {
  // Configure the incremental pipeline with the real blockers: ID Overlap
  // pairs identical ISINs; Token Overlap pairs names sharing a token (the
  // miniature's names are short, so one shared token qualifies and every
  // token stays eligible).
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 8;
  config.pipeline.cleanup.mu = 4;  // four data sources
  config.token.top_n = 5;
  config.token.min_overlap = 1;
  config.token.max_token_df = 1.0;
  IncrementalPipeline pipeline(config);
  FigureMatcher matcher;

  // --- Batch 1: the Crowdstrike group, four naming variations (Figure 2).
  // #1's spaced spelling shares no *token* with the others, so only its
  // identifier ties it into the group — and its "Crowd" token is what the
  // Crowdstreet near-collision will later latch onto.
  std::vector<Record> batch1 = {
      MakeRecord(0, "Crowdstrike Plt.", "US31807756E"),
      MakeRecord(1, "Crowd Strike Platforms", "US318077DSIE"),
      MakeRecord(2, "Crowdstrike Holdings", "US318077DSIE"),
      MakeRecord(3, "CrowdStrike", "US318077DSIE"),
  };
  std::printf("=== Batch 1: Crowdstrike arrives (Figure 2) ===\n");
  PrintReport(pipeline.Ingest(batch1, matcher).ValueOrDie());
  PrintGroups(pipeline.Snapshot().ValueOrDie());

  // --- Batch 2: the Crowdstreet near-collision.
  std::vector<Record> batch2 = {
      MakeRecord(0, "Crowdstreet Inc", "US9022617"),
      MakeRecord(1, "Crowdstreet", "US9022617"),
      MakeRecord(2, "Crowd street Properties", ""),
  };
  std::printf("\n=== Batch 2: Crowdstreet near-collision ===\n");
  PrintReport(pipeline.Ingest(batch2, matcher).ValueOrDie());
  PrintGroups(pipeline.Snapshot().ValueOrDie());

  // --- Batch 3: the corporate event (Figure 3). Herotel is acquired by
  // Hearst; record #8's identifiers were overwritten with the acquirer's,
  // so #7 and #9/#10 only match transitively through #8. The batch also
  // carries the false-positive glue edge of Figure 4.
  std::vector<Record> batch3 = {
      MakeRecord(0, "Herotel", "ZA55511111"),
      MakeRecord(1, "Herotel", "US4444HRST"),  // overwritten identifiers
      MakeRecord(2, "Hearst", "US4444HRST"),
      MakeRecord(3, "Hearst Corporation", "US4444HRST"),
  };
  std::printf("\n=== Batch 3: acquisition drift + false positive ===\n");
  IngestReport report = pipeline.Ingest(batch3, matcher).ValueOrDie();
  PrintReport(report);
  std::printf("  (the Crowd* components were untouched by this batch: "
              "%zu spliced through unchanged)\n",
              report.components_reused);

  PipelineResult result = pipeline.Snapshot().ValueOrDie();
  bool herotel_direct = false;
  for (const auto& pair : result.predicted_pairs) {
    if (pair == RecordPair(7, 9) || pair == RecordPair(7, 10)) {
      herotel_direct = true;
    }
  }
  std::printf("Herotel #7 vs Hearst #9/#10 predicted directly: %s\n",
              herotel_direct ? "yes" : "no (only transitively via #8!)");
  std::printf("Post-cleanup groups (the false #1-#6 Crowdstrike-Crowdstreet "
              "edge had the maximum betweenness and was removed; #6 stays a "
              "singleton because token blocking never aligned its spaced "
              "spelling with the other Crowdstreet records):\n");
  PrintGroups(result);

  // --- The batch-equivalence guarantee, demonstrated: a from-scratch run
  // of the batch pipeline over the union of the three batches.
  Dataset ds;
  ds.records = pipeline.records();
  CandidateSet candidates;
  IdOverlapBlocker().AddCandidates(ds, &candidates);
  TokenOverlapBlocker(config.token).AddCandidates(ds, &candidates);
  PipelineResult reference = EntityGroupPipeline(config.pipeline)
                                 .Run(ds, candidates.ToVector(), matcher);
  const bool equivalent =
      result.predicted_pairs == reference.predicted_pairs &&
      result.pre_cleanup_components == reference.pre_cleanup_components &&
      result.groups == reference.groups;
  std::printf("\nIncremental snapshot == from-scratch batch run: %s\n",
              equivalent ? "yes (batch equivalence holds)" : "NO — BUG");
  std::printf("Matcher calls across all ingests: %zu (each pair scored at "
              "most once; cache hits: %zu)\n",
              pipeline.total_matcher_calls(), pipeline.total_cache_hits());

  // --- Batch 4: corrections. Source 1 retracts the spaced "Crowd Strike
  // Platforms" spelling — a data-entry error, and the very name that fed
  // Figure 4's false-positive edge — and republishes the fixed spelling;
  // source 2 delists "Crowd street Properties". Updates are exact
  // remove + re-add in one dirty pass; removals retract candidates
  // exactly and evict the dead records' cached scores.
  std::printf("\n=== Batch 4: corrections (update + removal) ===\n");
  const size_t calls_before = pipeline.total_matcher_calls();
  RecordUpdate correction;
  correction.id = 1;
  correction.record = MakeRecord(1, "CrowdStrike Platforms", "US318077DSIE");
  PrintReport(pipeline.Update({correction}, matcher).ValueOrDie());
  IngestReport removal = pipeline.Remove({6}, matcher).ValueOrDie();
  std::printf("  remove: -%zu records, -%zu candidates, %zu cache "
              "evictions\n",
              removal.records_removed, removal.candidates_removed,
              removal.cache_evictions);
  std::printf("  matcher calls for both corrections: %zu — the corrected "
              "record's pairs are new, every surviving pair came from the "
              "cache\n",
              pipeline.total_matcher_calls() - calls_before);
  result = pipeline.Snapshot().ValueOrDie();
  std::printf("Groups after the corrections (the corrected record re-enters "
              "as #%zu and now token-matches its group directly; the false "
              "edge no longer exists for cleanup to cut):\n",
              pipeline.records().size() - 1);
  PrintGroups(result);

  // --- Schedule equivalence, the CRUD extension of the guarantee above:
  // after updates and removals the reference is a from-scratch batch run
  // on the *survivors*. Compact the live records, run the batch pipeline,
  // and map its compact ids back to the sparse live ids (the map is
  // monotone, so pair and group orderings are preserved).
  Dataset survivors;
  std::vector<RecordId> original;
  for (size_t id = 0; id < pipeline.records().size(); ++id) {
    if (!pipeline.is_alive(static_cast<RecordId>(id))) continue;
    original.push_back(static_cast<RecordId>(id));
    survivors.records.Add(pipeline.records().at(static_cast<RecordId>(id)));
  }
  CandidateSet survivor_candidates;
  IdOverlapBlocker().AddCandidates(survivors, &survivor_candidates);
  TokenOverlapBlocker(config.token).AddCandidates(survivors,
                                                  &survivor_candidates);
  PipelineResult survivor_reference =
      EntityGroupPipeline(config.pipeline)
          .Run(survivors, survivor_candidates.ToVector(), matcher);
  for (RecordPair& pair : survivor_reference.predicted_pairs) {
    pair = RecordPair(original[static_cast<size_t>(pair.a)],
                      original[static_cast<size_t>(pair.b)]);
  }
  for (auto& group : survivor_reference.groups) {
    for (NodeId& id : group) id = original[static_cast<size_t>(id)];
  }
  const bool schedule_equivalent =
      result.predicted_pairs == survivor_reference.predicted_pairs &&
      result.groups == survivor_reference.groups;
  std::printf("\nSnapshot == from-scratch run on the survivors: %s\n",
              schedule_equivalent ? "yes (schedule equivalence holds)"
                                  : "NO — BUG");
  return (equivalent && schedule_equivalent) ? 0 : 1;
}

// End-to-end integration tests: generate a small synthetic financial
// benchmark, block, match with the fast classical matcher, run GraLMatch
// and verify the paper's qualitative claims (pre-cleanup precision collapse,
// post-cleanup recovery, securities matching via issuer blocking).

#include <gtest/gtest.h>

#include "blocking/id_overlap.h"
#include "blocking/issuer_match.h"
#include "blocking/token_overlap.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "eval/metrics.h"
#include "matching/baselines.h"
#include "matching/cascade_matcher.h"
#include "matching/pair_sampling.h"
#include "matching/transformer_matcher.h"

namespace gralmatch {
namespace {

class FinancialEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config;
    config.seed = 505;
    config.num_groups = 250;
    bench_ = new FinancialBenchmark(FinancialGenerator(config).Generate());

    // Train the classical matcher on sampled pairs from the full dataset.
    Rng rng(1);
    GroupSplit split = SplitByGroups(bench_->companies.truth, &rng);
    PairSamplingOptions opts;
    auto train = SamplePairs(bench_->companies, split, SplitPart::kTrain, opts);
    matcher_ = new TfidfLogRegMatcher();
    matcher_->Train(bench_->companies.records, train);
  }

  static void TearDownTestSuite() {
    delete bench_;
    delete matcher_;
    bench_ = nullptr;
    matcher_ = nullptr;
  }

  static CandidateSet CompanyCandidates() {
    CandidateSet out;
    IdOverlapBlocker id_blocker(&bench_->securities.records);
    id_blocker.AddCandidates(bench_->companies, &out);
    TokenOverlapBlocker::Options topts;
    topts.top_n = 5;
    TokenOverlapBlocker token_blocker(topts);
    token_blocker.AddCandidates(bench_->companies, &out);
    return out;
  }

  static FinancialBenchmark* bench_;
  static TfidfLogRegMatcher* matcher_;
};

FinancialBenchmark* FinancialEndToEnd::bench_ = nullptr;
TfidfLogRegMatcher* FinancialEndToEnd::matcher_ = nullptr;

TEST_F(FinancialEndToEnd, BlockingFindsMostTruePairs) {
  CandidateSet candidates = CompanyCandidates();
  ASSERT_GT(candidates.size(), 0u);

  uint64_t found_true = 0;
  for (const auto& cand : candidates.ToVector()) {
    if (bench_->companies.truth.IsMatch(cand.pair)) ++found_true;
  }
  uint64_t total_true = bench_->companies.truth.NumTrueMatches();
  EXPECT_GT(static_cast<double>(found_true) / total_true, 0.6)
      << "blocking recall too low: " << found_true << "/" << total_true;
}

TEST_F(FinancialEndToEnd, CleanupImprovesGroupPrecision) {
  CandidateSet candidates = CompanyCandidates();

  PipelineConfig config;
  config.cleanup.gamma = 25;
  config.cleanup.mu = 5;
  config.pre_cleanup_threshold = 50;
  EntityGroupPipeline pipeline(config);
  PipelineResult result =
      pipeline.Run(bench_->companies, candidates.ToVector(), *matcher_);

  PrfMetrics pre = GroupPrf(result.pre_cleanup_components,
                            bench_->companies.truth);
  PrfMetrics post = GroupPrf(result.groups, bench_->companies.truth);

  EXPECT_GE(post.Precision(), pre.Precision());
  EXPECT_GT(post.Precision(), 0.6);
  EXPECT_GT(post.F1(), 0.3);

  double pre_purity =
      ClusterPurity(result.pre_cleanup_components, bench_->companies.truth);
  double post_purity = ClusterPurity(result.groups, bench_->companies.truth);
  EXPECT_GE(post_purity, pre_purity);

  // Cleanup enforces the group-size bound mu.
  EXPECT_LE(LargestComponent(result.groups), 10u);
}

TEST_F(FinancialEndToEnd, SecuritiesMatchableViaIssuerBlocking) {
  // Step 1: match companies (use ground truth groups as the "previous
  // matching" to isolate the securities blocking behaviour).
  std::vector<int64_t> company_group(bench_->companies.records.size(), -1);
  for (size_t i = 0; i < bench_->companies.records.size(); ++i) {
    company_group[i] = bench_->companies.truth.entity_of(
        static_cast<RecordId>(i));
  }

  CandidateSet candidates;
  IdOverlapBlocker id_blocker;
  id_blocker.AddCandidates(bench_->securities, &candidates);
  IssuerMatchBlocker issuer_blocker(&company_group);
  issuer_blocker.AddCandidates(bench_->securities, &candidates);

  uint64_t found_true = 0;
  for (const auto& cand : candidates.ToVector()) {
    if (bench_->securities.truth.IsMatch(cand.pair)) ++found_true;
  }
  uint64_t total_true = bench_->securities.truth.NumTrueMatches();
  EXPECT_GT(static_cast<double>(found_true) / total_true, 0.75)
      << found_true << "/" << total_true;

  // Issuer blocking must contribute pairs that ID overlap alone misses
  // (NoIdOverlaps groups, generic names).
  size_t issuer_only = 0;
  for (const auto& cand : candidates.ToVector()) {
    if (cand.provenance == kBlockerIssuerMatch &&
        bench_->securities.truth.IsMatch(cand.pair)) {
      ++issuer_only;
    }
  }
  EXPECT_GT(issuer_only, 0u);
}

TEST_F(FinancialEndToEnd, IdHeuristicAloneIsImprecise) {
  // The industry heuristic (ID overlap => match) suffers from the
  // merger-induced identifier overwrites: its precision on securities is
  // below a matcher that also checks text, and below 1 in absolute terms.
  CandidateSet candidates;
  IdOverlapBlocker id_blocker;
  id_blocker.AddCandidates(bench_->securities, &candidates);

  HeuristicIdMatcher heuristic;
  uint64_t tp = 0, fp = 0;
  for (const auto& cand : candidates.ToVector()) {
    const Record& a = bench_->securities.records.at(cand.pair.a);
    const Record& b = bench_->securities.records.at(cand.pair.b);
    if (!heuristic.IsMatch(a, b)) continue;
    if (bench_->securities.truth.IsMatch(cand.pair)) ++tp;
    else ++fp;
  }
  ASSERT_GT(tp + fp, 0u);
  double precision = static_cast<double>(tp) / (tp + fp);
  EXPECT_LT(precision, 1.0);
  EXPECT_GT(precision, 0.8);  // but it is still a strong signal
}

// ---------------------------------------------------------------------------
// Parallel execution determinism: the pipeline output must be identical for
// every num_threads, and wall-clock-free CleanupStats counters must agree.
// ---------------------------------------------------------------------------

void ExpectSameCountersAs(const CleanupStats& actual,
                          const CleanupStats& expected) {
  EXPECT_EQ(actual.pre_cleanup_edges_removed,
            expected.pre_cleanup_edges_removed);
  EXPECT_EQ(actual.min_cut_calls, expected.min_cut_calls);
  EXPECT_EQ(actual.min_cut_edges_removed, expected.min_cut_edges_removed);
  EXPECT_EQ(actual.betweenness_calls, expected.betweenness_calls);
  EXPECT_EQ(actual.betweenness_edges_removed,
            expected.betweenness_edges_removed);
}

TEST_F(FinancialEndToEnd, PipelineIdenticalAcrossThreadCounts) {
  CandidateSet candidates = CompanyCandidates();
  auto candidate_vec = candidates.ToVector();

  PipelineConfig config;
  config.cleanup.gamma = 25;
  config.cleanup.mu = 5;
  config.pre_cleanup_threshold = 50;
  PipelineResult baseline = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, *matcher_);
  EXPECT_GT(baseline.inference_seconds, 0.0);

  for (size_t threads : {2u, 8u}) {
    config.num_threads = threads;
    PipelineResult result = EntityGroupPipeline(config).Run(
        bench_->companies, candidate_vec, *matcher_);
    EXPECT_EQ(result.predicted_pairs, baseline.predicted_pairs)
        << "threads=" << threads;
    EXPECT_EQ(result.pre_cleanup_components, baseline.pre_cleanup_components)
        << "threads=" << threads;
    EXPECT_EQ(result.groups, baseline.groups) << "threads=" << threads;
    ExpectSameCountersAs(result.cleanup_stats, baseline.cleanup_stats);
    EXPECT_GT(result.inference_seconds, 0.0) << "threads=" << threads;
  }
}

/// Forwarding wrapper that deliberately does NOT override ScoreBatch, so it
/// scores through the default per-pair loop — the reference side of the
/// batched-vs-per-pair differential tests.
class PerPairOnlyMatcher : public PairwiseMatcher {
 public:
  explicit PerPairOnlyMatcher(const PairwiseMatcher* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    return inner_->MatchProbability(a, b);
  }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }

 private:
  const PairwiseMatcher* inner_;
};

TEST_F(FinancialEndToEnd, BatchedTransformerScoringIdenticalToPerPair) {
  // The batched scoring path (ScorePairsBatched -> TransformerMatcher::
  // ScoreBatch -> packed PredictBatch) must reproduce the per-pair walk
  // bitwise for every thread count and batch size: identical predicted
  // pairs, components, groups and counters.
  CandidateSet candidates = CompanyCandidates();
  auto candidate_vec = candidates.ToVector();
  ASSERT_GT(candidate_vec.size(), 400u);
  candidate_vec.resize(400);  // keep the transformer sweep fast

  TransformerMatcherConfig tconfig;
  tconfig.max_seq_len = 16;
  tconfig.d_model = 16;
  tconfig.num_layers = 1;
  tconfig.d_ff = 32;
  TransformerMatcher transformer(tconfig);
  transformer.BuildVocab(bench_->companies.records);
  PerPairOnlyMatcher per_pair(&transformer);

  PipelineConfig config;
  config.pre_cleanup_threshold = 50;
  config.score_batch_size = 1;
  PipelineResult baseline = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, per_pair);

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t batch : {1u, 7u, 64u}) {
      config.num_threads = threads;
      config.score_batch_size = batch;
      PipelineResult result = EntityGroupPipeline(config).Run(
          bench_->companies, candidate_vec, transformer);
      EXPECT_EQ(result.predicted_pairs, baseline.predicted_pairs)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result.pre_cleanup_components, baseline.pre_cleanup_components)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result.groups, baseline.groups)
          << "threads=" << threads << " batch=" << batch;
      ExpectSameCountersAs(result.cleanup_stats, baseline.cleanup_stats);
    }
  }
}

TEST_F(FinancialEndToEnd, CascadePipelineMatchesExactReferenceOutsideTheBand) {
  // A cascade whose band never fires behaves exactly like its expensive
  // matcher inside the full pipeline (gate scores are in [0,1]; an empty
  // band [0.4, 0.3] escalates nothing, exact_reference escalates all).
  CandidateSet candidates = CompanyCandidates();
  auto candidate_vec = candidates.ToVector();

  HeuristicIdMatcher expensive;
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.4;
  opts.upper_threshold = 0.3;  // empty band: gate resolves everything
  CascadeMatcher gate_only(matcher_, &expensive, opts);
  opts.exact_reference = true;
  CascadeMatcher reference(matcher_, &expensive, opts);

  PipelineConfig config;
  config.pre_cleanup_threshold = 50;
  PipelineResult expensive_result = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, expensive);
  PipelineResult reference_result = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, reference);
  PipelineResult gate_result = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, *matcher_);
  PipelineResult gate_only_result = EntityGroupPipeline(config).Run(
      bench_->companies, candidate_vec, gate_only);

  // exact_reference == the expensive matcher alone; empty band == the gate.
  EXPECT_EQ(reference_result.predicted_pairs, expensive_result.predicted_pairs);
  EXPECT_EQ(reference_result.groups, expensive_result.groups);
  EXPECT_EQ(gate_only_result.predicted_pairs, gate_result.predicted_pairs);
  EXPECT_EQ(gate_only_result.groups, gate_result.groups);
  EXPECT_EQ(gate_only.stats().escalated, 0u);
  EXPECT_EQ(gate_only.stats().gate_resolved, candidate_vec.size());
  EXPECT_EQ(reference.stats().escalated + reference.stats().gate_resolved,
            candidate_vec.size());
}

TEST_F(FinancialEndToEnd, BlockersIdenticalAcrossThreadCounts) {
  auto candidates_with_threads = [this](size_t threads) {
    CandidateSet out;
    IdOverlapBlocker::Options id_opts;
    id_opts.num_threads = threads;
    IdOverlapBlocker id_blocker(&bench_->securities.records, id_opts);
    id_blocker.AddCandidates(bench_->companies, &out);
    TokenOverlapBlocker::Options topts;
    topts.top_n = 5;
    topts.num_threads = threads;
    TokenOverlapBlocker token_blocker(topts);
    token_blocker.AddCandidates(bench_->companies, &out);
    return out.ToVector();
  };

  auto baseline = candidates_with_threads(1);
  ASSERT_GT(baseline.size(), 0u);
  for (size_t threads : {2u, 8u}) {
    auto parallel = candidates_with_threads(threads);
    ASSERT_EQ(parallel.size(), baseline.size()) << "threads=" << threads;
    for (size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(parallel[i].pair, baseline[i].pair)
          << "threads=" << threads << " i=" << i;
      ASSERT_EQ(parallel[i].provenance, baseline[i].provenance)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(FinancialEndToEnd, InferenceSecondsPopulatedOnEveryRunPath) {
  CandidateSet candidates = CompanyCandidates();
  auto candidate_vec = candidates.ToVector();
  ASSERT_GT(candidate_vec.size(), 0u);

  PipelineConfig config;
  config.pre_cleanup_threshold = 50;
  for (size_t threads : {1u, 4u}) {
    config.num_threads = threads;
    PipelineResult result = EntityGroupPipeline(config).Run(
        bench_->companies, candidate_vec, *matcher_);
    // Run() times the scoring stage outside the (possibly parallel) loop;
    // the stage scores thousands of pairs, so the wall-clock is non-zero.
    EXPECT_GT(result.inference_seconds, 0.0) << "threads=" << threads;
    EXPECT_GT(result.cleanup_stats.seconds, 0.0) << "threads=" << threads;
  }
}

TEST(WdcIntegration, RunOnPredictionsIdenticalAcrossThreadCounts) {
  WdcConfig config;
  config.num_entities = 150;
  config.seed = 77;
  Dataset products = WdcProductsGenerator(config).Generate();

  std::vector<Candidate> positives;
  for (const auto& pair : products.truth.AllTruePairs()) {
    positives.push_back({pair, kBlockerTokenOverlap});
  }

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  PipelineResult baseline = EntityGroupPipeline(pipe_config)
                                .RunOnPredictions(products.records.size(),
                                                  positives);

  for (size_t threads : {2u, 8u}) {
    pipe_config.num_threads = threads;
    PipelineResult result = EntityGroupPipeline(pipe_config)
                                .RunOnPredictions(products.records.size(),
                                                  positives);
    EXPECT_EQ(result.predicted_pairs, baseline.predicted_pairs);
    EXPECT_EQ(result.pre_cleanup_components, baseline.pre_cleanup_components);
    EXPECT_EQ(result.groups, baseline.groups) << "threads=" << threads;
    ExpectSameCountersAs(result.cleanup_stats, baseline.cleanup_stats);
  }
}

TEST(WdcIntegration, HeterogeneousGroupsHurtFixedMu) {
  // The paper's WDC finding: with heterogeneous group sizes, Algorithm 1's
  // mu = #sources assumption over-splits large groups (recall loss).
  WdcConfig config;
  config.num_entities = 150;
  config.seed = 99;
  Dataset products = WdcProductsGenerator(config).Generate();

  // Perfect predictions: all true pairs as positives.
  std::vector<Candidate> positives;
  for (const auto& pair : products.truth.AllTruePairs()) {
    positives.push_back({pair, kBlockerTokenOverlap});
  }

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  EntityGroupPipeline pipeline(pipe_config);
  PipelineResult result =
      pipeline.RunOnPredictions(products.records.size(), positives);

  PrfMetrics post = GroupPrf(result.groups, products.truth);
  // Precision stays high (the splits are within true groups)...
  EXPECT_GT(post.Precision(), 0.95);
  // ...but recall drops strictly below 1 because groups larger than mu were
  // chopped, despite the input predictions being perfect.
  EXPECT_LT(post.Recall(), 0.999);
}

}  // namespace
}  // namespace gralmatch

// Tests for the blocking module: candidate-set provenance, ID Overlap
// (securities and companies modes), Token Overlap and Issuer Match.

#include <gtest/gtest.h>

#include "blocking/blocker.h"
#include "blocking/id_overlap.h"
#include "blocking/issuer_match.h"
#include "blocking/token_overlap.h"

namespace gralmatch {
namespace {

TEST(CandidateSetTest, DeduplicatesAndUnionsProvenance) {
  CandidateSet set;
  set.Add(RecordPair(1, 2), kBlockerIdOverlap);
  set.Add(RecordPair(2, 1), kBlockerTokenOverlap);  // same pair
  set.Add(RecordPair(3, 4), kBlockerTokenOverlap);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.ProvenanceOf(RecordPair(1, 2)),
            kBlockerIdOverlap | kBlockerTokenOverlap);
  EXPECT_EQ(set.ProvenanceOf(RecordPair(3, 4)),
            static_cast<uint32_t>(kBlockerTokenOverlap));
  EXPECT_EQ(set.ProvenanceOf(RecordPair(9, 10)), 0u);

  auto v = set.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].pair, RecordPair(1, 2));  // deterministic order
}

TEST(CandidateSetTest, MergeCombinesSets) {
  CandidateSet a, b;
  a.Add(RecordPair(0, 1), kBlockerIdOverlap);
  b.Add(RecordPair(0, 1), kBlockerIssuerMatch);
  b.Add(RecordPair(2, 3), kBlockerIdOverlap);
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.ProvenanceOf(RecordPair(0, 1)),
            kBlockerIdOverlap | kBlockerIssuerMatch);
}

Dataset MakeSecuritiesDataset() {
  Dataset ds;
  ds.name = "securities";
  auto add = [&](SourceId src, const char* isin, const char* cusip,
                 EntityId entity) {
    Record rec(src, RecordKind::kSecurity);
    if (isin) rec.Set("isin", isin);
    if (cusip) rec.Set("cusip", cusip);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, entity);
    return id;
  };
  add(0, "US1", "C1", 100);      // 0
  add(1, "US1", nullptr, 100);   // 1: shares ISIN with 0
  add(2, nullptr, "C1", 100);    // 2: shares CUSIP with 0
  add(0, "US2", nullptr, 200);   // 3
  add(1, "US2", nullptr, 200);   // 4: shares ISIN with 3
  add(1, "US9", nullptr, 300);   // 5: no overlaps
  return ds;
}

TEST(IdOverlapTest, SecuritiesModeFindsSharedIdentifiers) {
  Dataset ds = MakeSecuritiesDataset();
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 1)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 2)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(3, 4)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(1, 2)), 0u) << "no shared value";
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 5)), 0u);
}

TEST(IdOverlapTest, SameSourcePairsExcluded) {
  Dataset ds;
  Record a(0, RecordKind::kSecurity);
  a.Set("isin", "X");
  Record b(0, RecordKind::kSecurity);  // same source
  b.Set("isin", "X");
  ds.truth.Assign(ds.records.Add(std::move(a)), 1);
  ds.truth.Assign(ds.records.Add(std::move(b)), 1);
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(IdOverlapTest, MultiValuedIdentifiersMatch) {
  Dataset ds;
  Record a(0, RecordKind::kSecurity);
  a.Set("isin", "A|B");
  Record b(1, RecordKind::kSecurity);
  b.Set("isin", "B|C");
  ds.truth.Assign(ds.records.Add(std::move(a)), 1);
  ds.truth.Assign(ds.records.Add(std::move(b)), 1);
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(IdOverlapTest, CompaniesModeJoinsThroughSecurities) {
  // Companies 0 (src 0) and 1 (src 1) issue securities sharing an ISIN;
  // company 2 (src 2) does not.
  Dataset companies;
  companies.truth.Assign(
      companies.records.Add(Record(0, RecordKind::kCompany)), 1);
  companies.truth.Assign(
      companies.records.Add(Record(1, RecordKind::kCompany)), 1);
  companies.truth.Assign(
      companies.records.Add(Record(2, RecordKind::kCompany)), 2);

  RecordTable securities;
  auto add_sec = [&](SourceId src, const char* isin, RecordId issuer) {
    Record rec(src, RecordKind::kSecurity);
    rec.Set("isin", isin);
    rec.Set("issuer_ref", std::to_string(issuer));
    securities.Add(std::move(rec));
  };
  add_sec(0, "SHARED", 0);
  add_sec(1, "SHARED", 1);
  add_sec(2, "OTHER", 2);

  CandidateSet out;
  IdOverlapBlocker blocker(&securities);
  blocker.AddCandidates(companies, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_NE(out.ProvenanceOf(RecordPair(0, 1)), 0u);
}

Dataset MakeTextDataset() {
  Dataset ds;
  auto add = [&](SourceId src, const char* name, EntityId entity) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, entity);
    return id;
  };
  add(0, "Crowd Strike Platforms", 1);   // 0
  add(1, "Crowd Strike Platforms Inc", 1);  // 1
  add(2, "Crowd Street Properties", 2);  // 2
  add(0, "Quantum Energy Resources", 3); // 3
  add(1, "Quantum Energy Resources Ltd", 3);  // 4
  add(2, "Totally Unrelated Newco", 4);  // 5
  return ds;
}

TEST(TokenOverlapTest, FindsTextAlignedPairs) {
  Dataset ds = MakeTextDataset();
  TokenOverlapBlocker::Options opts;
  opts.top_n = 3;
  opts.min_overlap = 2;
  opts.max_token_df = 1.0;  // tiny dataset: keep all tokens
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  EXPECT_NE(out.ProvenanceOf(RecordPair(0, 1)), 0u);
  EXPECT_NE(out.ProvenanceOf(RecordPair(3, 4)), 0u);
  // "Crowd" overlap alone (1 token) must not qualify at min_overlap=2...
  // 0 and 2 share "crowd" only -> excluded.
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 2)), 0u);
  // The isolated record pairs with nothing.
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 5)), 0u);
}

TEST(TokenOverlapTest, TopNLimitsCandidatesPerRecord) {
  // One record overlapping with many others across sources.
  Dataset ds;
  auto add = [&](SourceId src, const std::string& name) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, id);
    return id;
  };
  add(0, "alpha beta gamma");
  for (int i = 0; i < 10; ++i) {
    add(1, "alpha beta gamma delta" + std::to_string(i));
  }
  TokenOverlapBlocker::Options opts;
  opts.top_n = 4;
  opts.min_overlap = 2;
  opts.max_token_df = 1.0;
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  // Record 0 keeps at most top_n partners; partners also keep record 0, so
  // the total stays bounded by the union (each of the 10 keeps record 0 as
  // its only cross-source partner).
  size_t with_zero = 0;
  for (const auto& cand : out.ToVector()) {
    if (cand.pair.a == 0) ++with_zero;
  }
  EXPECT_EQ(with_zero, 10u);  // symmetric direction keeps them
}

TEST(TokenOverlapTest, SameSourceNeverPaired) {
  Dataset ds;
  auto add = [&](SourceId src, const char* name, EntityId e) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    ds.truth.Assign(ds.records.Add(std::move(rec)), e);
  };
  add(0, "same tokens here", 1);
  add(0, "same tokens here", 1);
  TokenOverlapBlocker::Options opts;
  opts.max_token_df = 1.0;
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(IssuerMatchTest, PairsSecuritiesOfMatchedIssuers) {
  // Companies 0, 1, 2; 0 and 1 are in the same (previously matched) group.
  std::vector<int64_t> company_group = {5, 5, 6};

  Dataset securities;
  auto add_sec = [&](SourceId src, RecordId issuer, EntityId entity) {
    Record rec(src, RecordKind::kSecurity);
    rec.Set("name", "Common Stock");
    rec.Set("issuer_ref", std::to_string(issuer));
    RecordId id = securities.records.Add(std::move(rec));
    securities.truth.Assign(id, entity);
    return id;
  };
  add_sec(0, 0, 100);  // 0 issued by company 0
  add_sec(1, 1, 100);  // 1 issued by company 1 (same group)
  add_sec(2, 2, 200);  // 2 issued by company 2 (other group)

  IssuerMatchBlocker blocker(&company_group);
  CandidateSet out;
  blocker.AddCandidates(securities, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 1)),
            static_cast<uint32_t>(kBlockerIssuerMatch));
}

TEST(IssuerMatchTest, UngroupedAndMissingIssuersSkipped) {
  std::vector<int64_t> company_group = {-1, -1};
  Dataset securities;
  Record a(0, RecordKind::kSecurity);
  a.Set("issuer_ref", "0");
  Record b(1, RecordKind::kSecurity);
  b.Set("issuer_ref", "1");
  Record c(1, RecordKind::kSecurity);  // no issuer_ref at all
  securities.truth.Assign(securities.records.Add(std::move(a)), 1);
  securities.truth.Assign(securities.records.Add(std::move(b)), 1);
  securities.truth.Assign(securities.records.Add(std::move(c)), 1);

  IssuerMatchBlocker blocker(&company_group);
  CandidateSet out;
  blocker.AddCandidates(securities, &out);
  EXPECT_EQ(out.size(), 0u);
}

}  // namespace
}  // namespace gralmatch

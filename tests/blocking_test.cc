// Tests for the blocking module: candidate-set provenance, ID Overlap
// (securities and companies modes), Token Overlap and Issuer Match.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "blocking/id_overlap.h"
#include "blocking/incremental_index.h"
#include "blocking/issuer_match.h"
#include "blocking/token_overlap.h"
#include "common/rng.h"

namespace gralmatch {
namespace {

TEST(CandidateSetTest, DeduplicatesAndUnionsProvenance) {
  CandidateSet set;
  set.Add(RecordPair(1, 2), kBlockerIdOverlap);
  set.Add(RecordPair(2, 1), kBlockerTokenOverlap);  // same pair
  set.Add(RecordPair(3, 4), kBlockerTokenOverlap);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.ProvenanceOf(RecordPair(1, 2)),
            kBlockerIdOverlap | kBlockerTokenOverlap);
  EXPECT_EQ(set.ProvenanceOf(RecordPair(3, 4)),
            static_cast<uint32_t>(kBlockerTokenOverlap));
  EXPECT_EQ(set.ProvenanceOf(RecordPair(9, 10)), 0u);

  auto v = set.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].pair, RecordPair(1, 2));  // deterministic order
}

TEST(CandidateSetTest, MergeCombinesSets) {
  CandidateSet a, b;
  a.Add(RecordPair(0, 1), kBlockerIdOverlap);
  b.Add(RecordPair(0, 1), kBlockerIssuerMatch);
  b.Add(RecordPair(2, 3), kBlockerIdOverlap);
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.ProvenanceOf(RecordPair(0, 1)),
            kBlockerIdOverlap | kBlockerIssuerMatch);
}

Dataset MakeSecuritiesDataset() {
  Dataset ds;
  ds.name = "securities";
  auto add = [&](SourceId src, const char* isin, const char* cusip,
                 EntityId entity) {
    Record rec(src, RecordKind::kSecurity);
    if (isin) rec.Set("isin", isin);
    if (cusip) rec.Set("cusip", cusip);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, entity);
    return id;
  };
  add(0, "US1", "C1", 100);      // 0
  add(1, "US1", nullptr, 100);   // 1: shares ISIN with 0
  add(2, nullptr, "C1", 100);    // 2: shares CUSIP with 0
  add(0, "US2", nullptr, 200);   // 3
  add(1, "US2", nullptr, 200);   // 4: shares ISIN with 3
  add(1, "US9", nullptr, 300);   // 5: no overlaps
  return ds;
}

TEST(IdOverlapTest, SecuritiesModeFindsSharedIdentifiers) {
  Dataset ds = MakeSecuritiesDataset();
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 1)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 2)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(3, 4)),
            static_cast<uint32_t>(kBlockerIdOverlap));
  EXPECT_EQ(out.ProvenanceOf(RecordPair(1, 2)), 0u) << "no shared value";
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 5)), 0u);
}

TEST(IdOverlapTest, SameSourcePairsExcluded) {
  Dataset ds;
  Record a(0, RecordKind::kSecurity);
  a.Set("isin", "X");
  Record b(0, RecordKind::kSecurity);  // same source
  b.Set("isin", "X");
  ds.truth.Assign(ds.records.Add(std::move(a)), 1);
  ds.truth.Assign(ds.records.Add(std::move(b)), 1);
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(IdOverlapTest, MultiValuedIdentifiersMatch) {
  Dataset ds;
  Record a(0, RecordKind::kSecurity);
  a.Set("isin", "A|B");
  Record b(1, RecordKind::kSecurity);
  b.Set("isin", "B|C");
  ds.truth.Assign(ds.records.Add(std::move(a)), 1);
  ds.truth.Assign(ds.records.Add(std::move(b)), 1);
  CandidateSet out;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(IdOverlapTest, CompaniesModeJoinsThroughSecurities) {
  // Companies 0 (src 0) and 1 (src 1) issue securities sharing an ISIN;
  // company 2 (src 2) does not.
  Dataset companies;
  companies.truth.Assign(
      companies.records.Add(Record(0, RecordKind::kCompany)), 1);
  companies.truth.Assign(
      companies.records.Add(Record(1, RecordKind::kCompany)), 1);
  companies.truth.Assign(
      companies.records.Add(Record(2, RecordKind::kCompany)), 2);

  RecordTable securities;
  auto add_sec = [&](SourceId src, const char* isin, RecordId issuer) {
    Record rec(src, RecordKind::kSecurity);
    rec.Set("isin", isin);
    rec.Set("issuer_ref", std::to_string(issuer));
    securities.Add(std::move(rec));
  };
  add_sec(0, "SHARED", 0);
  add_sec(1, "SHARED", 1);
  add_sec(2, "OTHER", 2);

  CandidateSet out;
  IdOverlapBlocker blocker(&securities);
  blocker.AddCandidates(companies, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_NE(out.ProvenanceOf(RecordPair(0, 1)), 0u);
}

Dataset MakeTextDataset() {
  Dataset ds;
  auto add = [&](SourceId src, const char* name, EntityId entity) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, entity);
    return id;
  };
  add(0, "Crowd Strike Platforms", 1);   // 0
  add(1, "Crowd Strike Platforms Inc", 1);  // 1
  add(2, "Crowd Street Properties", 2);  // 2
  add(0, "Quantum Energy Resources", 3); // 3
  add(1, "Quantum Energy Resources Ltd", 3);  // 4
  add(2, "Totally Unrelated Newco", 4);  // 5
  return ds;
}

TEST(TokenOverlapTest, FindsTextAlignedPairs) {
  Dataset ds = MakeTextDataset();
  TokenOverlapBlocker::Options opts;
  opts.top_n = 3;
  opts.min_overlap = 2;
  opts.max_token_df = 1.0;  // tiny dataset: keep all tokens
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  EXPECT_NE(out.ProvenanceOf(RecordPair(0, 1)), 0u);
  EXPECT_NE(out.ProvenanceOf(RecordPair(3, 4)), 0u);
  // "Crowd" overlap alone (1 token) must not qualify at min_overlap=2...
  // 0 and 2 share "crowd" only -> excluded.
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 2)), 0u);
  // The isolated record pairs with nothing.
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 5)), 0u);
}

TEST(TokenOverlapTest, TopNLimitsCandidatesPerRecord) {
  // One record overlapping with many others across sources.
  Dataset ds;
  auto add = [&](SourceId src, const std::string& name) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, id);
    return id;
  };
  add(0, "alpha beta gamma");
  for (int i = 0; i < 10; ++i) {
    add(1, "alpha beta gamma delta" + std::to_string(i));
  }
  TokenOverlapBlocker::Options opts;
  opts.top_n = 4;
  opts.min_overlap = 2;
  opts.max_token_df = 1.0;
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  // Record 0 keeps at most top_n partners; partners also keep record 0, so
  // the total stays bounded by the union (each of the 10 keeps record 0 as
  // its only cross-source partner).
  size_t with_zero = 0;
  for (const auto& cand : out.ToVector()) {
    if (cand.pair.a == 0) ++with_zero;
  }
  EXPECT_EQ(with_zero, 10u);  // symmetric direction keeps them
}

TEST(TokenOverlapTest, SameSourceNeverPaired) {
  Dataset ds;
  auto add = [&](SourceId src, const char* name, EntityId e) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    ds.truth.Assign(ds.records.Add(std::move(rec)), e);
  };
  add(0, "same tokens here", 1);
  add(0, "same tokens here", 1);
  TokenOverlapBlocker::Options opts;
  opts.max_token_df = 1.0;
  TokenOverlapBlocker blocker(opts);
  CandidateSet out;
  blocker.AddCandidates(ds, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(IssuerMatchTest, PairsSecuritiesOfMatchedIssuers) {
  // Companies 0, 1, 2; 0 and 1 are in the same (previously matched) group.
  std::vector<int64_t> company_group = {5, 5, 6};

  Dataset securities;
  auto add_sec = [&](SourceId src, RecordId issuer, EntityId entity) {
    Record rec(src, RecordKind::kSecurity);
    rec.Set("name", "Common Stock");
    rec.Set("issuer_ref", std::to_string(issuer));
    RecordId id = securities.records.Add(std::move(rec));
    securities.truth.Assign(id, entity);
    return id;
  };
  add_sec(0, 0, 100);  // 0 issued by company 0
  add_sec(1, 1, 100);  // 1 issued by company 1 (same group)
  add_sec(2, 2, 200);  // 2 issued by company 2 (other group)

  IssuerMatchBlocker blocker(&company_group);
  CandidateSet out;
  blocker.AddCandidates(securities, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.ProvenanceOf(RecordPair(0, 1)),
            static_cast<uint32_t>(kBlockerIssuerMatch));
}

TEST(IssuerMatchTest, UngroupedAndMissingIssuersSkipped) {
  std::vector<int64_t> company_group = {-1, -1};
  Dataset securities;
  Record a(0, RecordKind::kSecurity);
  a.Set("issuer_ref", "0");
  Record b(1, RecordKind::kSecurity);
  b.Set("issuer_ref", "1");
  Record c(1, RecordKind::kSecurity);  // no issuer_ref at all
  securities.truth.Assign(securities.records.Add(std::move(a)), 1);
  securities.truth.Assign(securities.records.Add(std::move(b)), 1);
  securities.truth.Assign(securities.records.Add(std::move(c)), 1);

  IssuerMatchBlocker blocker(&company_group);
  CandidateSet out;
  blocker.AddCandidates(securities, &out);
  EXPECT_EQ(out.size(), 0u);
}

// ---------------------------------------------------------------------------
// Incremental indexes: after any split schedule, the maintained pair set
// must equal the batch blocker run on the union.
// ---------------------------------------------------------------------------

std::vector<RecordPair> SortedPairs(std::vector<RecordPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<RecordPair> BatchTokenPairs(const RecordTable& records,
                                        TokenOverlapBlocker::Options options) {
  Dataset ds;
  ds.records = records;
  CandidateSet out;
  TokenOverlapBlocker(options).AddCandidates(ds, &out);
  std::vector<RecordPair> pairs;
  for (const auto& cand : out.ToVector()) pairs.push_back(cand.pair);
  return pairs;
}

std::vector<RecordPair> BatchIdPairs(const RecordTable& records) {
  Dataset ds;
  ds.records = records;
  CandidateSet out;
  IdOverlapBlocker().AddCandidates(ds, &out);
  std::vector<RecordPair> pairs;
  for (const auto& cand : out.ToVector()) pairs.push_back(cand.pair);
  return pairs;
}

/// Prefix of a record table as its own table.
RecordTable Prefix(const RecordTable& records, size_t n) {
  RecordTable out;
  for (size_t i = 0; i < n; ++i) out.Add(records.at(static_cast<RecordId>(i)));
  return out;
}

TEST(IncrementalIdOverlapIndexTest, BucketOverflowRetractsItsPairs) {
  // 50 records sharing one identifier: within the cap, pairs exist. Growing
  // the bucket to 70 (> kMaxBucket = 64) must retract every pair, exactly
  // like a from-scratch run on all 70 records would produce none.
  RecordTable records;
  for (int i = 0; i < 70; ++i) {
    Record rec(static_cast<SourceId>(i % 3), RecordKind::kSecurity);
    rec.Set("isin", "SHARED000001");
    records.Add(std::move(rec));
  }

  IncrementalIdOverlapIndex index;
  CandidateDelta first = index.AddRecords(Prefix(records, 50));
  EXPECT_GT(first.added.size(), 0u);
  EXPECT_EQ(first.removed.size(), 0u);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchIdPairs(Prefix(records, 50)));

  CandidateDelta second = index.AddRecords(records);
  EXPECT_EQ(second.added.size(), 0u);
  EXPECT_EQ(second.removed.size(), first.added.size());
  EXPECT_TRUE(index.CurrentPairs().empty());
  EXPECT_TRUE(BatchIdPairs(records).empty());
}

TEST(IncrementalIdOverlapIndexTest, RandomSplitsMatchBatch) {
  Rng rng(11);
  RecordTable records;
  for (int i = 0; i < 120; ++i) {
    Record rec(static_cast<SourceId>(i % 4), RecordKind::kSecurity);
    rec.Set("isin", "ISIN" + std::to_string(rng.Uniform(25)));
    if (rng.Bernoulli(0.5)) {
      rec.Set("cusip", "CUSIP" + std::to_string(rng.Uniform(10)));
    }
    records.Add(std::move(rec));
  }
  for (int round = 0; round < 4; ++round) {
    IncrementalIdOverlapIndex index;
    size_t ingested = 0;
    while (ingested < records.size()) {
      ingested += 1 + rng.Uniform(records.size() - ingested < 30
                                      ? records.size() - ingested
                                      : 30);
      index.AddRecords(Prefix(records, ingested));
      EXPECT_EQ(SortedPairs(index.CurrentPairs()),
                BatchIdPairs(Prefix(records, ingested)))
          << "round " << round << " after " << ingested << " records";
    }
  }
}

TEST(IncrementalTokenOverlapIndexTest, MaxDfCapReadmitsTokensAsNGrows) {
  // "zephyr" appears in 3 records. At n = 10 the df cap is
  // floor(0.05 * 10) + 1 = 1, so the token is ineligible and produces no
  // pairs; at n = 60 the cap is 4 and the token becomes eligible again —
  // the index must emit the pairs the from-scratch run now finds.
  TokenOverlapBlocker::Options options;
  options.min_overlap = 1;
  RecordTable records;
  for (int i = 0; i < 60; ++i) {
    Record rec(static_cast<SourceId>(i % 3), RecordKind::kCompany);
    std::string name = "filler" + std::to_string(i) + " unique" +
                       std::to_string(i * 7);
    if (i < 3) name = "zephyr dynamics " + std::to_string(i);
    rec.Set("name", name);
    records.Add(std::move(rec));
  }

  IncrementalTokenOverlapIndex index(options);
  index.AddRecords(Prefix(records, 10));
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchTokenPairs(Prefix(records, 10), options));
  EXPECT_TRUE(index.CurrentPairs().empty());

  CandidateDelta delta = index.AddRecords(records);
  EXPECT_GT(delta.added.size(), 0u);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchTokenPairs(records, options));
  EXPECT_FALSE(index.CurrentPairs().empty());
}

TEST(IncrementalTokenOverlapIndexTest, TopNDisplacementRetractsPair) {
  // top_n = 1: A's only slot initially holds B; the later-arriving C
  // overlaps A more and displaces B, so pair (A,B) must be retracted
  // (B's own slot prefers D throughout).
  TokenOverlapBlocker::Options options;
  options.top_n = 1;
  options.min_overlap = 1;
  options.max_token_df = 1.0;  // keep every token eligible

  RecordTable records;
  auto add = [&](SourceId source, const std::string& name) {
    Record rec(source, RecordKind::kCompany);
    rec.Set("name", name);
    return records.Add(std::move(rec));
  };
  RecordId a = add(0, "papaya quartz");
  RecordId b = add(1, "papaya rhubarb saffron");
  add(2, "rhubarb saffron");              // D: B's best partner
  RecordId c = add(2, "papaya quartz");   // arrives last, displaces B from A

  IncrementalTokenOverlapIndex index(options);
  index.AddRecords(Prefix(records, 3));
  std::vector<RecordPair> before = SortedPairs(index.CurrentPairs());
  EXPECT_EQ(before, BatchTokenPairs(Prefix(records, 3), options));
  EXPECT_TRUE(std::binary_search(before.begin(), before.end(),
                                 RecordPair(a, b)));

  CandidateDelta delta = index.AddRecords(records);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchTokenPairs(records, options));
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0], RecordPair(a, b));
  EXPECT_TRUE(std::find(delta.added.begin(), delta.added.end(),
                        RecordPair(a, c)) != delta.added.end());
}

TEST(IncrementalTokenOverlapIndexTest, RandomSplitsMatchBatch) {
  Rng rng(13);
  TokenOverlapBlocker::Options options;
  options.top_n = 3;
  options.min_overlap = 2;
  options.max_token_df = 0.2;
  const std::vector<std::string> vocab = {
      "alpha", "bravo", "carbon", "delta",  "ember",  "falcon",
      "grove", "helix", "indigo", "jasper", "krypton"};
  RecordTable records;
  for (int i = 0; i < 100; ++i) {
    Record rec(static_cast<SourceId>(i % 4), RecordKind::kCompany);
    std::string name;
    const size_t words = 2 + rng.Uniform(4);
    for (size_t w = 0; w < words; ++w) {
      if (w) name += " ";
      name += vocab[rng.Uniform(vocab.size())];
    }
    rec.Set("name", name);
    records.Add(std::move(rec));
  }
  for (int round = 0; round < 3; ++round) {
    IncrementalTokenOverlapIndex index(options);
    size_t ingested = 0;
    while (ingested < records.size()) {
      ingested += 1 + rng.Uniform(records.size() - ingested < 20
                                      ? records.size() - ingested
                                      : 20);
      index.AddRecords(Prefix(records, ingested));
      EXPECT_EQ(SortedPairs(index.CurrentPairs()),
                BatchTokenPairs(Prefix(records, ingested), options))
          << "round " << round << " after " << ingested << " records";
    }
  }
}

}  // namespace
}  // namespace gralmatch

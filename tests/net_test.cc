// Test suite for the `net` binary RPC serving layer.
//
// Wire protocol: frames and request/response bodies must round-trip
// exactly, and every malformed input — truncated frames, bad magic, future
// versions, bit-flipped checksums, oversized length prefixes, garbage
// bytes, unknown opcodes — must fail as a clean Status (exercised under
// ASan in CI), never a crash or an unbounded allocation.
//
// Server: a NetServer fronting a MatchService must answer exactly what
// MatchService::View() answers at the same epoch — including while an
// ingest thread publishes new epochs under concurrent clients (the
// multi-client stress test, run under TSan in CI) — resolve a pipelined
// burst against one epoch, and enforce its admission limits with clean
// errors. Every load-shedding decision is also observable: the admission
// tests pin the server's obs shed counters, and the kMetrics opcode
// scrapes the wired registry over the wire.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "datagen/financial_gen.h"
#include "matching/baselines.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "stream/incremental_pipeline.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Wire-format unit tests
// ---------------------------------------------------------------------------

TEST(NetWireTest, FrameRoundTrip) {
  for (const std::string& body : {std::string(), std::string("payload"),
                                  std::string(4096, '\x7f')}) {
    const std::string frame = EncodeNetFrame(body);
    ASSERT_EQ(frame.size(),
              kNetFrameHeaderSize + body.size() + kNetFrameTrailerSize);
    auto decoded = DecodeNetFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, body);
  }
}

TEST(NetWireTest, RequestBodyRoundTrip) {
  for (const NetRequest request :
       {NetRequest::GroupOf(7), NetRequest::Members(123456789),
        NetRequest::Stats(), NetRequest::GroupOf(-1),
        NetRequest::Metrics()}) {
    auto decoded = DecodeNetRequestBody(EncodeNetRequestBody(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->op, request.op);
    if (request.op == NetOpcode::kGroupOf ||
        request.op == NetOpcode::kMembers) {
      EXPECT_EQ(decoded->id, request.id);
    }
  }
}

TEST(NetWireTest, RequestBodyRejectsUnknownOpcodeAndTrailingBytes) {
  EXPECT_FALSE(DecodeNetRequestBody("\x2a").ok());
  EXPECT_FALSE(DecodeNetRequestBody("").ok());
  std::string trailing = EncodeNetRequestBody(NetRequest::Stats());
  trailing += '\x00';
  EXPECT_FALSE(DecodeNetRequestBody(trailing).ok());
}

TEST(NetWireTest, ReplyBodyRoundTrip) {
  NetReply group_reply;
  group_reply.op = NetOpcode::kGroupOf;
  group_reply.epoch = 9;
  group_reply.group = 42;
  NetReply members_reply;
  members_reply.op = NetOpcode::kMembers;
  members_reply.epoch = 10;
  members_reply.members = {1, 5, 8};
  NetReply stats_reply;
  stats_reply.op = NetOpcode::kStats;
  stats_reply.epoch = 11;
  stats_reply.stats.epoch = 11;
  stats_reply.stats.num_records = 100;
  stats_reply.stats.num_groups = 40;
  stats_reply.stats.num_matched_groups = 25;
  stats_reply.stats.num_predicted_pairs = 77;
  NetReply metrics_reply;
  metrics_reply.op = NetOpcode::kMetrics;
  metrics_reply.epoch = 12;
  metrics_reply.metrics =
      "# TYPE pipeline_mutations_total counter\npipeline_mutations_total 3\n";
  for (const NetReply& reply :
       {group_reply, members_reply, stats_reply, metrics_reply}) {
    auto decoded = DecodeNetReplyBody(EncodeNetReplyBody(reply));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded->status.ok());
    EXPECT_EQ(decoded->op, reply.op);
    EXPECT_EQ(decoded->epoch, reply.epoch);
    EXPECT_EQ(decoded->group, reply.group);
    EXPECT_EQ(decoded->members, reply.members);
    EXPECT_TRUE(decoded->stats == reply.stats);
    EXPECT_EQ(decoded->metrics, reply.metrics);
  }

  NetReply error_reply;
  error_reply.status = Status::OutOfRange("too much");
  auto decoded = DecodeNetReplyBody(EncodeNetReplyBody(error_reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->status, error_reply.status);
}

TEST(NetWireTest, FrameBufferExtractsAPipelinedBurst) {
  NetFrameBuffer frames(1 << 20);
  const std::string a = EncodeNetFrame(EncodeNetRequestBody(NetRequest::GroupOf(1)));
  const std::string b = EncodeNetFrame(EncodeNetRequestBody(NetRequest::Stats()));
  const std::string c = EncodeNetFrame(EncodeNetRequestBody(NetRequest::Members(2)));
  const std::string burst = a + b + c;
  // Deliver the burst split at an arbitrary mid-frame point.
  const size_t split = a.size() + b.size() / 2;
  frames.Append(burst.data(), split);
  bool has_frame = false;
  std::string body;
  ASSERT_TRUE(frames.NextFrame(&has_frame, &body).ok());
  ASSERT_TRUE(has_frame);
  EXPECT_EQ(body, EncodeNetRequestBody(NetRequest::GroupOf(1)));
  ASSERT_TRUE(frames.NextFrame(&has_frame, &body).ok());
  EXPECT_FALSE(has_frame);  // b is only half-delivered
  frames.Append(burst.data() + split, burst.size() - split);
  ASSERT_TRUE(frames.NextFrame(&has_frame, &body).ok());
  ASSERT_TRUE(has_frame);
  EXPECT_EQ(body, EncodeNetRequestBody(NetRequest::Stats()));
  ASSERT_TRUE(frames.NextFrame(&has_frame, &body).ok());
  ASSERT_TRUE(has_frame);
  EXPECT_EQ(body, EncodeNetRequestBody(NetRequest::Members(2)));
  EXPECT_EQ(frames.buffered(), 0u);
}

TEST(NetWireTest, FrameBufferRejectsBadPrefixesBeforeTheBodyArrives) {
  bool has_frame = false;
  std::string body;

  NetFrameBuffer bad_magic(1 << 20);
  std::string frame = EncodeNetFrame("hello");
  frame[0] ^= 0xFF;
  bad_magic.Append(frame.data(), frame.size());
  Status st = bad_magic.NextFrame(&has_frame, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bad magic"), std::string::npos);

  // A future version is rejected from the 20-byte prefix alone — no body
  // bytes are needed (or trusted).
  NetFrameBuffer future(1 << 20);
  BinaryWriter header;
  header.WriteBytes(kNetFrameMagic, sizeof(kNetFrameMagic));
  header.WriteU32(kNetFrameVersion + 41);
  header.WriteU64(5);
  future.Append(header.buffer().data(), header.buffer().size());
  st = future.NextFrame(&has_frame, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("newer"), std::string::npos);

  // An oversized length prefix is rejected before any allocation sized by
  // it — the receiver never waits for (or reserves) petabytes.
  NetFrameBuffer oversized(1024);
  BinaryWriter big;
  big.WriteBytes(kNetFrameMagic, sizeof(kNetFrameMagic));
  big.WriteU32(kNetFrameVersion);
  big.WriteU64(std::numeric_limits<uint64_t>::max() - 7);
  oversized.Append(big.buffer().data(), big.buffer().size());
  st = oversized.NextFrame(&has_frame, &body);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds"), std::string::npos);
}

TEST(NetWireTest, TruncatedFrameImagesFailCleanly) {
  const std::string frame =
      EncodeNetFrame(EncodeNetRequestBody(NetRequest::GroupOf(3)));
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = DecodeNetFrame(frame.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // And every single-bit flip of the checksum trailer is caught.
  for (size_t k = frame.size() - kNetFrameTrailerSize; k < frame.size(); ++k) {
    std::string damaged = frame;
    damaged[k] ^= 0x10;
    EXPECT_FALSE(DecodeNetFrame(damaged).ok()) << "flip at " << k;
  }
}

// ---------------------------------------------------------------------------
// Server fixture
// ---------------------------------------------------------------------------

std::vector<Record> FinancialRecords(size_t num_groups) {
  SyntheticConfig config;
  config.seed = 909;
  config.num_groups = num_groups;
  return FinancialGenerator(config).Generate().securities.records.records();
}

IncrementalPipelineConfig NetTestConfig(size_t num_threads) {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 8;
  config.pipeline.cleanup.mu = 4;
  config.pipeline.pre_cleanup_threshold = 12;
  config.pipeline.match_threshold = 0.5;
  config.pipeline.num_threads = num_threads;
  return config;
}

/// A service with one published epoch over the financial fixture, plus a
/// server started on an ephemeral loopback port.
class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(const NetServerOptions& options = {}) {
    pipeline_ = std::make_unique<IncrementalPipeline>(NetTestConfig(2));
    ASSERT_TRUE(pipeline_->Ingest(FinancialRecords(30), matcher_).ok());
    service_.Publish(pipeline_->Snapshot().ValueOrDie(),
                     pipeline_->records().size());
    auto server = NetServer::Start(&service_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server.MoveValueUnsafe();
  }

  std::unique_ptr<NetClient> Client() {
    auto client = NetClient::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.MoveValueUnsafe();
  }

  /// The server must still answer on a fresh connection (used after every
  /// poisoned-connection scenario).
  void ExpectStillServing() {
    auto client = Client();
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(*stats == service_.Stats());
  }

  /// Tests that assert on obs counters set `options.metrics = &registry_`
  /// before StartServer; the registry must outlive the server.
  obs::MetricsRegistry registry_;
  HeuristicIdMatcher matcher_;
  std::unique_ptr<IncrementalPipeline> pipeline_;
  MatchService service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServerTest, AnswersMatchDirectViewQueries) {
  StartServer();
  auto client = Client();
  const MatchSnapshotPtr view = service_.View();
  for (RecordId r = 0; r < static_cast<RecordId>(view->stats().num_records);
       ++r) {
    auto reply = client->GroupOf(r);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->group, view->GroupOf(r));
    EXPECT_EQ(reply->epoch, view->epoch());
    auto members = client->Members(reply->group);
    ASSERT_TRUE(members.ok()) << members.status().ToString();
    EXPECT_EQ(members->members, view->Members(reply->group));
  }
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(*stats == view->stats());
}

TEST_F(NetServerTest, OutOfRangeIdsAnswerCleanly) {
  StartServer();
  auto client = Client();
  for (const int64_t id :
       {static_cast<int64_t>(-1), static_cast<int64_t>(1) << 40,
        std::numeric_limits<int64_t>::min()}) {
    auto group = client->Call({NetRequest::GroupOf(id)});
    ASSERT_TRUE(group.ok()) << group.status().ToString();
    ASSERT_TRUE((*group)[0].status.ok());
    EXPECT_EQ((*group)[0].group, kNoGroup);
    auto members = client->Members(id);
    ASSERT_TRUE(members.ok()) << members.status().ToString();
    EXPECT_TRUE(members->members.empty());
  }
}

TEST_F(NetServerTest, PipelinedBurstResolvesAgainstOneEpoch) {
  StartServer();
  auto client = Client();
  std::vector<NetRequest> burst;
  for (RecordId r = 0; r < 20; ++r) burst.push_back(NetRequest::GroupOf(r));
  burst.push_back(NetRequest::Stats());
  auto replies = client->Call(burst);
  ASSERT_TRUE(replies.ok()) << replies.status().ToString();
  ASSERT_EQ(replies->size(), burst.size());
  for (const NetReply& reply : *replies) {
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    EXPECT_EQ(reply.epoch, replies->front().epoch);
  }
  const NetServerCounters counters = server_->counters();
  EXPECT_EQ(counters.requests_served, burst.size());
  // The whole burst should have needed far fewer snapshot resolutions than
  // requests (one, when the kernel delivered the burst in one piece).
  EXPECT_LE(counters.batches, counters.requests_served);
}

TEST_F(NetServerTest, UnknownOpcodeIsAPerRequestErrorNotAConnectionLoss) {
  StartServer();
  auto client = Client();
  ASSERT_TRUE(client->SendBytes(EncodeNetFrame("\x2a")).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("opcode"), std::string::npos);
  // The framing stayed in sync, so the same connection keeps working.
  auto stats = client->Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST_F(NetServerTest, BadMagicGetsACleanErrorAndACloseNotACrash) {
  StartServer();
  auto client = Client();
  std::string frame = EncodeNetFrame(EncodeNetRequestBody(NetRequest::Stats()));
  frame[2] ^= 0x40;
  ASSERT_TRUE(client->SendBytes(frame).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("bad magic"), std::string::npos);
  auto closed = client->ReadReply();
  EXPECT_FALSE(closed.ok());  // sync is unrecoverable: connection closed
  ExpectStillServing();
}

TEST_F(NetServerTest, FutureFrameVersionIsRejected) {
  StartServer();
  auto client = Client();
  BinaryWriter frame;
  frame.WriteBytes(kNetFrameMagic, sizeof(kNetFrameMagic));
  frame.WriteU32(kNetFrameVersion + 1);
  frame.WriteString(EncodeNetRequestBody(NetRequest::Stats()));
  frame.WriteU64(Fnv1a64(frame.buffer()));
  ASSERT_TRUE(client->SendBytes(frame.buffer()).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("newer"), std::string::npos);
  ExpectStillServing();
}

TEST_F(NetServerTest, BitFlippedChecksumIsRejected) {
  StartServer();
  auto client = Client();
  std::string frame = EncodeNetFrame(EncodeNetRequestBody(NetRequest::Stats()));
  frame[frame.size() - 3] ^= 0x01;
  ASSERT_TRUE(client->SendBytes(frame).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("checksum"), std::string::npos);
  ExpectStillServing();
}

TEST_F(NetServerTest, OversizedLengthPrefixIsRejectedWithoutAllocation) {
  NetServerOptions options;
  options.max_frame_size = 1024;
  options.metrics = &registry_;
  StartServer(options);
  auto client = Client();
  BinaryWriter header;
  header.WriteBytes(kNetFrameMagic, sizeof(kNetFrameMagic));
  header.WriteU32(kNetFrameVersion);
  header.WriteU64(static_cast<uint64_t>(1) << 60);
  ASSERT_TRUE(client->SendBytes(header.buffer()).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("exceeds"), std::string::npos);
  ExpectStillServing();
  // The rejection is classified as frame-size shedding, not a framing
  // fault: the client spoke the protocol, it just asked for too much.
  EXPECT_EQ(registry_.GetCounter("net_shed_frame_size_total")->Value(), 1u);
  EXPECT_EQ(registry_.GetCounter("net_shed_framing_fatal_total")->Value(), 0u);
}

TEST_F(NetServerTest, GarbageThenValidFrameFailsCleanlyAndServerSurvives) {
  StartServer();
  auto client = Client();
  std::string garbage(64, '\xAB');
  garbage += EncodeNetFrame(EncodeNetRequestBody(NetRequest::Stats()));
  ASSERT_TRUE(client->SendBytes(garbage).ok());
  auto reply = client->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());  // garbage poisons the stream...
  auto closed = client->ReadReply();
  EXPECT_FALSE(closed.ok());  // ...so the trailing valid frame is never served
  ExpectStillServing();
}

TEST_F(NetServerTest, TruncationSweepAcrossARequestFrameNeverWedgesTheServer) {
  StartServer();
  const std::string frame =
      EncodeNetFrame(EncodeNetRequestBody(NetRequest::GroupOf(1)));
  size_t connects = 0;
  for (size_t len = 1; len < frame.size(); ++len) {
    {
      auto client = Client();
      ASSERT_TRUE(client->SendBytes(frame.substr(0, len)).ok());
      // Dropping the connection mid-frame (client destruction closes the
      // socket) must leave the server intact, whatever the cut point.
    }
    // The kernel completes the handshake before accept() ever runs, and
    // reaping is asynchronous — wait until the server has both admitted
    // and reaped this connection, so the sweep never trips the connection
    // cap it is not testing.
    ++connects;
    while (server_->counters().connections_accepted < connects ||
           server_->active_connections() > 0) {
      std::this_thread::yield();
    }
  }
  ExpectStillServing();
}

TEST_F(NetServerTest, ConnectionsPastTheCapAreRejectedWithACleanError) {
  NetServerOptions options;
  options.max_connections = 1;
  options.metrics = &registry_;
  StartServer(options);
  auto first = Client();
  ASSERT_TRUE(first->Stats().ok());  // the slot is definitely occupied
  auto second = NetClient::Connect(server_->port());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto reply = (*second)->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  EXPECT_NE(reply->status.message().find("connection capacity"),
            std::string::npos);
  EXPECT_GE(server_->counters().connections_rejected, 1u);
  // The obs shed counter tracks the server's own rejection count exactly.
  EXPECT_EQ(registry_.GetCounter("net_shed_connection_cap_total")->Value(),
            server_->counters().connections_rejected);
  // The admitted connection is unaffected.
  EXPECT_TRUE(first->Stats().ok());
}

TEST_F(NetServerTest, RequestsPastTheInFlightCapGetCleanOverloadErrors) {
  NetServerOptions options;
  options.max_in_flight_requests = 1;
  options.metrics = &registry_;
  StartServer(options);
  auto client = Client();
  // A one-send burst large enough that the server drains several frames
  // into one batch; everything past the in-flight cap must come back as a
  // clean per-request error, never be dropped. The kernel may split the
  // burst (each fragment then fits the cap), so retry until a rejection is
  // observed — one attempt nearly always suffices on loopback.
  bool saw_rejection = false;
  for (int attempt = 0; attempt < 20 && !saw_rejection; ++attempt) {
    std::vector<NetRequest> burst(16, NetRequest::Stats());
    auto replies = client->Call(burst);
    ASSERT_TRUE(replies.ok()) << replies.status().ToString();
    ASSERT_EQ(replies->size(), burst.size());
    ASSERT_TRUE(replies->front().status.ok());
    for (const NetReply& reply : *replies) {
      if (reply.status.ok()) continue;
      EXPECT_NE(reply.status.message().find("overloaded"), std::string::npos);
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(server_->counters().requests_rejected, 1u);
  // The obs overload counter tracks the server's rejection count exactly.
  EXPECT_EQ(registry_.GetCounter("net_shed_overload_total")->Value(),
            server_->counters().requests_rejected);
  // An overload error never poisons the connection.
  EXPECT_TRUE(client->Stats().ok());
}

TEST_F(NetServerTest, MetricsScrapeOverTheWireReflectsServedTraffic) {
  NetServerOptions options;
  options.metrics = &registry_;
  StartServer(options);
  auto client = Client();
  ASSERT_TRUE(client->Stats().ok());
  ASSERT_TRUE(client->GroupOf(0).ok());
  auto scrape = client->Metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  // The text dump carries the server's RPC instruments; the served-request
  // counter has seen at least the two queries above (the scrape itself is
  // counted only after its reply is built).
  EXPECT_NE(scrape->find("# TYPE net_requests_served_total counter"),
            std::string::npos);
  EXPECT_NE(scrape->find("net_rpc_dispatch_seconds_count"),
            std::string::npos);
  EXPECT_GE(registry_.GetCounter("net_requests_served_total")->Value(), 3u);
  // A garbage connection afterwards lands in the framing-fatal shed
  // counter (it is not a frame-size rejection).
  auto poisoned = Client();
  ASSERT_TRUE(poisoned->SendBytes(std::string(64, '\xAB')).ok());
  auto reply = poisoned->ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->status.ok());
  ExpectStillServing();
  EXPECT_EQ(registry_.GetCounter("net_shed_framing_fatal_total")->Value(), 1u);
  EXPECT_EQ(registry_.GetCounter("net_shed_frame_size_total")->Value(), 0u);
}

TEST_F(NetServerTest, MetricsScrapeWithoutARegistryIsACleanPerRequestError) {
  StartServer();  // no options.metrics
  auto client = Client();
  auto scrape = client->Metrics();
  EXPECT_FALSE(scrape.ok());
  EXPECT_NE(scrape.status().message().find("not enabled"), std::string::npos);
  // The error is per-request: the connection still serves.
  EXPECT_TRUE(client->Stats().ok());
}

TEST_F(NetServerTest, StopJoinsOpenConnectionsAndRefusesNewOnes) {
  StartServer();
  auto client = Client();
  ASSERT_TRUE(client->Stats().ok());
  const uint16_t port = server_->port();
  server_->Stop();
  auto reply = client->Stats();
  EXPECT_FALSE(reply.ok());
  auto late = NetClient::Connect(port);
  if (late.ok()) {
    // A connect may still succeed in the TIME_WAIT window; it must not be
    // served.
    EXPECT_FALSE((*late)->Stats().ok());
  }
}

TEST(NetServerStandaloneTest, ServesTheEmptyEpochZeroSnapshot) {
  MatchService service;
  auto server = NetServer::Start(&service, NetServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = NetClient::Connect((*server)->port());
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch, 0u);
  EXPECT_EQ(stats->num_records, 0u);
  auto group = (*client)->GroupOf(0);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->group, kNoGroup);
}

TEST(NetServerStandaloneTest, ZeroLimitsAreRefusedAtStart) {
  MatchService service;
  NetServerOptions options;
  options.max_connections = 0;
  EXPECT_FALSE(NetServer::Start(&service, options).ok());
  EXPECT_FALSE(NetServer::Start(nullptr, NetServerOptions{}).ok());
}

// ---------------------------------------------------------------------------
// Multi-client stress: concurrent clients against a publishing ingester
// (the TSan target, and the acceptance criterion: every networked answer
// equals the direct View() answer at the same epoch)
// ---------------------------------------------------------------------------

TEST(NetStressTest, ConcurrentClientsMatchDirectViewsWhileIngestPublishes) {
  const std::vector<Record> records = FinancialRecords(40);
  IncrementalPipeline pipeline(NetTestConfig(2));
  HeuristicIdMatcher matcher;
  MatchService service;
  NetServerOptions options;
  options.max_connections = 8;
  auto server_or = NetServer::Start(&service, options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  NetServer& server = **server_or;

  // Every published epoch's snapshot, for post-hoc verification of replies
  // by their epoch stamp (epoch 0 is the service's initial empty view).
  std::mutex history_mu;
  std::unordered_map<uint64_t, MatchSnapshotPtr> history;
  history[0] = service.View();

  std::atomic<bool> done{false};
  constexpr size_t kNumClients = 4;
  struct Observation {
    uint64_t epoch;
    RecordId record;
    GroupId group;
    std::vector<RecordId> members;
    ServeStats stats;
  };
  std::vector<std::vector<Observation>> logs(kNumClients);
  std::vector<std::thread> clients;
  clients.reserve(kNumClients);
  for (size_t t = 0; t < kNumClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = NetClient::Connect(server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      uint32_t rng = static_cast<uint32_t>(t) * 2654435761u + 1u;
      while (!done.load(std::memory_order_acquire)) {
        rng = rng * 1664525u + 1013904223u;
        const RecordId r = static_cast<RecordId>(rng % records.size());
        // One burst = one epoch: the GroupOf, its Members, and the Stats
        // must all be mutually consistent.
        auto replies = (*client)->Call(
            {NetRequest::GroupOf(r), NetRequest::Stats()});
        ASSERT_TRUE(replies.ok()) << replies.status().ToString();
        const NetReply& group_reply = (*replies)[0];
        const NetReply& stats_reply = (*replies)[1];
        ASSERT_TRUE(group_reply.status.ok());
        ASSERT_TRUE(stats_reply.status.ok());
        ASSERT_EQ(group_reply.epoch, stats_reply.epoch);
        auto members = (*client)->Members(group_reply.group);
        ASSERT_TRUE(members.ok()) << members.status().ToString();
        Observation obs;
        obs.epoch = group_reply.epoch;
        obs.record = r;
        obs.group = group_reply.group;
        obs.stats = stats_reply.stats;
        if (members->epoch == group_reply.epoch) {
          obs.members = members->members;
        } else {
          obs.members.clear();  // spanned an epoch boundary; skip the check
        }
        logs[t].push_back(std::move(obs));
      }
    });
  }

  // The ingest thread publishes an epoch per batch while clients hammer.
  constexpr size_t kBatches = 6;
  const size_t batch_size = (records.size() + kBatches - 1) / kBatches;
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t begin = std::min(b * batch_size, records.size());
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    ASSERT_TRUE(pipeline.Ingest(batch, matcher).ok());
    service.Publish(pipeline.Snapshot().ValueOrDie(),
                    pipeline.records().size());
    const MatchSnapshotPtr published = service.View();
    std::lock_guard<std::mutex> lock(history_mu);
    history[published->epoch()] = published;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();
  server.Stop();

  // Every observed reply must equal the direct View() answer at its epoch.
  size_t verified = 0;
  for (const auto& log : logs) {
    for (const Observation& obs : log) {
      auto it = history.find(obs.epoch);
      ASSERT_NE(it, history.end()) << "reply from unpublished epoch "
                                   << obs.epoch;
      const MatchSnapshot& view = *it->second;
      EXPECT_EQ(obs.group, view.GroupOf(obs.record));
      if (!obs.members.empty()) {
        EXPECT_EQ(obs.members, view.Members(obs.group));
      }
      EXPECT_TRUE(obs.stats == view.stats());
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace gralmatch

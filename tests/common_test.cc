// Tests for the common substrate: Status/Result, deterministic RNG, string
// helpers, CLI flags and the stopwatch formatting.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace gralmatch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversRangeRoughlyEvenly) {
  Rng rng(9);
  std::map<uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(6)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, n / 6, n / 60) << "value " << v;
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng rng(13);
  const int n = 40000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, WeightedChoiceFavorsHeavyWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int c0 = 0, c2 = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t pick = rng.WeightedChoice(weights);
    EXPECT_NE(pick, 1u);
    if (pick == 0) ++c0;
    if (pick == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / (c0 + c2), 0.9, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("gralmatch", "gral"));
  EXPECT_FALSE(StartsWith("gral", "gralmatch"));
  EXPECT_TRUE(EndsWith("model.bin", ".bin"));
  EXPECT_FALSE(EndsWith(".bin", "model.bin"));
}

TEST(StringsTest, ReplaceAllNonOverlapping) {
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("crowd strike", " ", ""), "crowdstrike");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringsTest, StrFormatAndThousands) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(-1000), "-1,000");
  EXPECT_EQ(WithThousandsSep(999), "999");
}

TEST(StopwatchTest, FormatsDurations) {
  EXPECT_EQ(Stopwatch::FormatSeconds(5160.0), "1h 26min");
  EXPECT_EQ(Stopwatch::FormatSeconds(288.0), "4.8 min");
  EXPECT_EQ(Stopwatch::FormatSeconds(31.0), "31.0 sec");
  EXPECT_EQ(Stopwatch::FormatSeconds(0.04), "40 ms");
}

TEST(StopwatchTest, ElapsedMonotone) {
  Stopwatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(CliTest, ParsesFlagStyles) {
  // Note: a bare "--flag value" consumes the next token as its value, so
  // positional arguments must precede flags (or flags must use "=").
  const char* argv[] = {"prog", "positional", "--scale", "50", "--seed=7",
                        "--verbose"};
  CliFlags flags = CliFlags::Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 50);
  EXPECT_EQ(flags.GetInt("seed", 0), 7);
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("absent"));
  EXPECT_EQ(flags.GetInt("absent", 9), 9);
  EXPECT_EQ(flags.GetDouble("scale", 0.0), 50.0);
  EXPECT_EQ(flags.GetString("seed", ""), "7");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(CliTest, DuplicateFlagKeepsLastValue) {
  // Standard CLI last-wins semantics, pinned for every flag style mix.
  const char* argv[] = {"prog", "--seed=1", "--seed", "2", "--seed=3"};
  CliFlags flags = CliFlags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("seed", 0), 3);
  EXPECT_EQ(flags.GetString("seed", ""), "3");
}

TEST(CliTest, ValuelessFlagFallsBackForNumericGetters) {
  // `--verbose` with no value parses as "" — numeric getters treat that as
  // absent rather than as a malformed number.
  const char* argv[] = {"prog", "--verbose"};
  CliFlags flags = CliFlags::Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetInt("verbose", 4), 4);
  EXPECT_EQ(flags.GetDouble("verbose", 0.5), 0.5);
}

TEST(ParseInt64Test, AcceptsWholeStringIntegers) {
  EXPECT_EQ(ParseInt64("0").ValueOrDie(), 0);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64("+42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("9223372036854775807").ValueOrDie(), INT64_MAX);
  EXPECT_EQ(ParseInt64("-9223372036854775808").ValueOrDie(), INT64_MIN);
}

TEST(ParseInt64Test, RejectsTrailingGarbageAndNonNumbers) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("5x").ok());
  EXPECT_FALSE(ParseInt64("5 ").ok());
  EXPECT_FALSE(ParseInt64(" 5").ok());  // no whitespace tolerance either side
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("--3").ok());
}

TEST(ParseInt64Test, RejectsOutOfRangeInsteadOfClamping) {
  Result<int64_t> over = ParseInt64("9223372036854775808");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt64("123456789012345678901234567890").ok());
}

TEST(ParseDoubleTest, AcceptsWholeStringNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").ValueOrDie(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3e2").ValueOrDie(), -300.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").ValueOrDie(), 7.0);
  // Underflow keeps its sign and rounds toward zero; it is not an error.
  EXPECT_TRUE(ParseDouble("1e-400").ok());
}

TEST(ParseDoubleTest, RejectsTrailingGarbageAndOverflow) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("0.5x").ok());
  EXPECT_FALSE(ParseDouble("0.5 ").ok());
  EXPECT_FALSE(ParseDouble("1..5").ok());
  Result<double> over = ParseDouble("1e999");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(ParseDouble("-1e999").ok());
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, MalformedIntFlagDiesWithDiagnostic) {
  const char* argv[] = {"prog", "--seed=5x"};
  CliFlags flags = CliFlags::Parse(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetInt("seed", 0), ::testing::ExitedWithCode(2),
              "invalid value for --seed");
}

TEST(CliDeathTest, OutOfRangeIntFlagDiesWithDiagnostic) {
  const char* argv[] = {"prog", "--seed=9223372036854775808"};
  CliFlags flags = CliFlags::Parse(2, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetInt("seed", 0), ::testing::ExitedWithCode(2),
              "outside the int64 range");
}

TEST(CliDeathTest, MalformedDoubleFlagDiesWithDiagnostic) {
  const char* argv[] = {"prog", "--threshold", "0.5abc"};
  CliFlags flags = CliFlags::Parse(3, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetDouble("threshold", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --threshold");
}

}  // namespace
}  // namespace gralmatch

// Golden regression tests pinning the exact Table-4-style quality metrics of
// the full pipeline on both fixtures. The structural suites assert
// inequalities (post >= pre precision, bounds); these pin the *numbers*, so
// a change that silently shifts quality — a blocker emitting one pair more,
// a tie-break flipped in the cleanup — fails loudly instead of drifting.
// Every pinned value is integer-derived (match counts, edge counts) or an
// exact ratio of integers; the pipeline under a string-equality matcher uses
// no transcendental math, so the values are stable across
// compilers/platforms. If a deliberate semantic change moves them, re-derive
// with the printout below each EXPECT block and update the constants in the
// same commit that explains why.

#include <gtest/gtest.h>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "eval/metrics.h"
#include "matching/baselines.h"

namespace gralmatch {
namespace {

TEST(GoldenFinancial, SecuritiesPipelineMetricsPinned) {
  // Same fixture as the integration suite (seed 505, 250 groups), ID +
  // Token Overlap blocking, the deterministic identifier-overlap matcher,
  // and the paper's cleanup configuration.
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = 250;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();

  CandidateSet candidates;
  IdOverlapBlocker().AddCandidates(bench.securities, &candidates);
  TokenOverlapBlocker::Options topts;
  topts.top_n = 5;
  TokenOverlapBlocker(topts).AddCandidates(bench.securities, &candidates);
  EXPECT_EQ(candidates.size(), 1863u);

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  pipe_config.pre_cleanup_threshold = 50;
  HeuristicIdMatcher matcher;
  PipelineResult result = EntityGroupPipeline(pipe_config)
                              .Run(bench.securities, candidates.ToVector(),
                                   matcher);

  EXPECT_EQ(result.predicted_pairs.size(), 1222u);
  EXPECT_EQ(result.groups.size(), 519u);
  EXPECT_EQ(result.cleanup_stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_calls, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.betweenness_calls, 40u);
  EXPECT_EQ(result.cleanup_stats.betweenness_edges_removed, 40u);

  const PrfMetrics pre =
      GroupPrf(result.pre_cleanup_components, bench.securities.truth);
  EXPECT_EQ(pre.tp, 1241u);
  EXPECT_EQ(pre.fp, 32u);
  EXPECT_EQ(pre.fn, 354u);

  const PrfMetrics post = GroupPrf(result.groups, bench.securities.truth);
  EXPECT_EQ(post.tp, 1195u);
  EXPECT_EQ(post.fp, 26u);
  EXPECT_EQ(post.fn, 400u);

  // Table-4-style derived scores (exact ratios of the integers above).
  EXPECT_NEAR(pre.Precision(), 0.9748625295, 1e-9);
  EXPECT_NEAR(pre.Recall(), 0.7780564263, 1e-9);
  EXPECT_NEAR(post.Precision(), 0.9787059787, 1e-9);
  EXPECT_NEAR(post.Recall(), 0.7492163009, 1e-9);
  EXPECT_NEAR(post.F1(), 0.8487215909, 1e-9);
  EXPECT_NEAR(ClusterPurity(result.groups, bench.securities.truth),
              0.9866666667, 1e-9);
}

TEST(GoldenWdc, PerfectPredictionsCleanupMetricsPinned) {
  // The paper's WDC finding in pinned numbers: with perfect pairwise
  // predictions and heterogeneous group sizes, mu = 5 over-splits — post
  // precision stays 1.0 while recall collapses to 426/1289.
  WdcConfig config;
  config.num_entities = 150;
  config.seed = 99;
  Dataset products = WdcProductsGenerator(config).Generate();

  std::vector<Candidate> positives;
  for (const auto& pair : products.truth.AllTruePairs()) {
    positives.push_back({pair, kBlockerTokenOverlap});
  }
  EXPECT_EQ(positives.size(), 1289u);

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  PipelineResult result =
      EntityGroupPipeline(pipe_config)
          .RunOnPredictions(products.records.size(), positives);

  EXPECT_EQ(result.predicted_pairs.size(), 1289u);
  EXPECT_EQ(result.groups.size(), 264u);
  EXPECT_EQ(result.cleanup_stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_calls, 0u);
  EXPECT_EQ(result.cleanup_stats.betweenness_calls, 863u);
  EXPECT_EQ(result.cleanup_stats.betweenness_edges_removed, 863u);

  const PrfMetrics pre = GroupPrf(result.pre_cleanup_components,
                                  products.truth);
  EXPECT_EQ(pre.tp, 1289u);
  EXPECT_EQ(pre.fp, 0u);
  EXPECT_EQ(pre.fn, 0u);

  const PrfMetrics post = GroupPrf(result.groups, products.truth);
  EXPECT_EQ(post.tp, 426u);
  EXPECT_EQ(post.fp, 0u);
  EXPECT_EQ(post.fn, 863u);

  EXPECT_NEAR(post.Precision(), 1.0, 1e-12);
  EXPECT_NEAR(post.Recall(), 0.3304887510, 1e-9);
  EXPECT_NEAR(post.F1(), 0.4967930029, 1e-9);
  EXPECT_NEAR(ClusterPurity(result.groups, products.truth), 1.0, 1e-12);
}

}  // namespace
}  // namespace gralmatch

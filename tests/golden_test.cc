// Golden regression tests pinning the exact Table-4-style quality metrics of
// the full pipeline on both fixtures. The structural suites assert
// inequalities (post >= pre precision, bounds); these pin the *numbers*, so
// a change that silently shifts quality — a blocker emitting one pair more,
// a tie-break flipped in the cleanup — fails loudly instead of drifting.
// Every pinned value is integer-derived (match counts, edge counts) or an
// exact ratio of integers; the pipeline under a string-equality matcher uses
// no transcendental math, so the values are stable across
// compilers/platforms. If a deliberate semantic change moves them, re-derive
// with the printout below each EXPECT block and update the constants in the
// same commit that explains why.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "eval/metrics.h"
#include "matching/baselines.h"
#include "matching/cascade_matcher.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace {

TEST(GoldenFinancial, SecuritiesPipelineMetricsPinned) {
  // Same fixture as the integration suite (seed 505, 250 groups), ID +
  // Token Overlap blocking, the deterministic identifier-overlap matcher,
  // and the paper's cleanup configuration.
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = 250;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();

  CandidateSet candidates;
  IdOverlapBlocker().AddCandidates(bench.securities, &candidates);
  TokenOverlapBlocker::Options topts;
  topts.top_n = 5;
  TokenOverlapBlocker(topts).AddCandidates(bench.securities, &candidates);
  EXPECT_EQ(candidates.size(), 1863u);

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  pipe_config.pre_cleanup_threshold = 50;
  HeuristicIdMatcher matcher;
  PipelineResult result = EntityGroupPipeline(pipe_config)
                              .Run(bench.securities, candidates.ToVector(),
                                   matcher);

  EXPECT_EQ(result.predicted_pairs.size(), 1222u);
  EXPECT_EQ(result.groups.size(), 519u);
  EXPECT_EQ(result.cleanup_stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_calls, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.betweenness_calls, 40u);
  EXPECT_EQ(result.cleanup_stats.betweenness_edges_removed, 40u);

  const PrfMetrics pre =
      GroupPrf(result.pre_cleanup_components, bench.securities.truth);
  EXPECT_EQ(pre.tp, 1241u);
  EXPECT_EQ(pre.fp, 32u);
  EXPECT_EQ(pre.fn, 354u);

  const PrfMetrics post = GroupPrf(result.groups, bench.securities.truth);
  EXPECT_EQ(post.tp, 1195u);
  EXPECT_EQ(post.fp, 26u);
  EXPECT_EQ(post.fn, 400u);

  // Table-4-style derived scores (exact ratios of the integers above).
  EXPECT_NEAR(pre.Precision(), 0.9748625295, 1e-9);
  EXPECT_NEAR(pre.Recall(), 0.7780564263, 1e-9);
  EXPECT_NEAR(post.Precision(), 0.9787059787, 1e-9);
  EXPECT_NEAR(post.Recall(), 0.7492163009, 1e-9);
  EXPECT_NEAR(post.F1(), 0.8487215909, 1e-9);
  EXPECT_NEAR(ClusterPurity(result.groups, bench.securities.truth),
              0.9866666667, 1e-9);
}

// ---------------------------------------------------------------------------
// Cascade quality contract. Gate: an exact-rational token-Jaccard matcher
// (integer ratios, no libm — stable across compilers like every other pin
// here). Expensive: the 0/1 HeuristicIdMatcher. Two pins:
//   1. exact_reference mode reproduces the expensive-only pipeline exactly;
//   2. the real cascade's quality delta is a set of constants, not a hope —
//      if a band change moves P/R, this fails loudly.
// ---------------------------------------------------------------------------

/// Token Jaccard of AllText: common/total is an exact ratio of small
/// integers, so scores and band comparisons are bit-stable everywhere.
class JaccardGateMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "jaccard-gate"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    auto ta = Tokens(a);
    auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0, ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    return static_cast<double>(common) /
           static_cast<double>(total == 0 ? 1 : total);
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }
};

struct CascadeFixture {
  FinancialBenchmark bench;
  std::vector<Candidate> candidates;
  PipelineConfig pipe_config;

  CascadeFixture() {
    SyntheticConfig config;
    config.seed = 505;
    config.num_groups = 250;
    bench = FinancialGenerator(config).Generate();
    CandidateSet set;
    IdOverlapBlocker().AddCandidates(bench.securities, &set);
    TokenOverlapBlocker::Options topts;
    topts.top_n = 5;
    TokenOverlapBlocker(topts).AddCandidates(bench.securities, &set);
    candidates = set.ToVector();
    pipe_config.cleanup.gamma = 25;
    pipe_config.cleanup.mu = 5;
    pipe_config.pre_cleanup_threshold = 50;
  }
};

TEST(GoldenFinancial, CascadeExactReferenceReproducesExpensivePipeline) {
  CascadeFixture fx;
  HeuristicIdMatcher expensive;
  JaccardGateMatcher gate;
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.7;
  opts.exact_reference = true;
  CascadeMatcher reference(&gate, &expensive, opts);

  EntityGroupPipeline pipeline(fx.pipe_config);
  PipelineResult expensive_only =
      pipeline.Run(fx.bench.securities, fx.candidates, expensive);
  PipelineResult cascaded =
      pipeline.Run(fx.bench.securities, fx.candidates, reference);

  // Bitwise: exact_reference mode exercises the gather/scatter machinery but
  // must return the expensive matcher's scores for every pair.
  EXPECT_EQ(cascaded.predicted_pairs, expensive_only.predicted_pairs);
  EXPECT_EQ(cascaded.pre_cleanup_components,
            expensive_only.pre_cleanup_components);
  EXPECT_EQ(cascaded.groups, expensive_only.groups);

  // The gate still ran over every candidate: the band counters are the
  // pinned would-be cascade split of the 1863 candidates.
  const CascadeMatcher::Stats stats = reference.stats();
  EXPECT_EQ(stats.gate_resolved + stats.escalated, 1863u);
  EXPECT_EQ(stats.escalated, 1243u);
  EXPECT_EQ(stats.gate_resolved, 620u);
}

TEST(GoldenFinancial, CascadeQualityDeltaPinned) {
  // The real cascade (same band) against the pinned expensive-only metrics
  // of SecuritiesPipelineMetricsPinned: post tp 1195 / fp 26 / fn 400. The
  // delta below IS the cascade contract on this fixture — the gate resolves
  // 620 of the 1863 candidates on its own (only 1243 reach the expensive
  // tier, a third fewer calls) at a cost of 4 tp (1195 -> 1191) while
  // buying back 8 fp (26 -> 18).
  CascadeFixture fx;
  HeuristicIdMatcher expensive;
  JaccardGateMatcher gate;
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.7;
  CascadeMatcher cascade(&gate, &expensive, opts);

  PipelineResult result = EntityGroupPipeline(fx.pipe_config)
                              .Run(fx.bench.securities, fx.candidates, cascade);

  const CascadeMatcher::Stats stats = cascade.stats();
  EXPECT_EQ(stats.escalated, 1243u);
  EXPECT_EQ(stats.gate_resolved, 620u);

  EXPECT_EQ(result.predicted_pairs.size(), 1209u);
  EXPECT_EQ(result.groups.size(), 522u);

  const PrfMetrics post = GroupPrf(result.groups, fx.bench.securities.truth);
  EXPECT_EQ(post.tp, 1191u);
  EXPECT_EQ(post.fp, 18u);
  EXPECT_EQ(post.fn, 404u);

  // Re-derivation printout (see file header):
  std::printf(
      "cascade: escalated=%llu gate_resolved=%llu pairs=%zu groups=%zu "
      "tp=%zu fp=%zu fn=%zu\n",
      static_cast<unsigned long long>(stats.escalated),
      static_cast<unsigned long long>(stats.gate_resolved),
      result.predicted_pairs.size(), result.groups.size(),
      static_cast<size_t>(post.tp), static_cast<size_t>(post.fp),
      static_cast<size_t>(post.fn));
}

TEST(GoldenFinancial, CorrectionScheduleMetricsPinned) {
  // Full CRUD streaming on the pinned fixture: ingest everything, then a
  // fixed correction schedule — two deletion waves over the security table.
  // Pins the post-delete quality (deleted records' truth pairs become
  // unreachable, so they count against recall) and the exact bookkeeping of
  // the removal path: retracted candidates, evicted cache entries, and the
  // cleanup work of the from-scratch-equivalent snapshot. A change that
  // silently shifts what deletion retracts or re-cleans fails here loudly.
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = 250;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();

  IncrementalPipelineConfig stream_config;
  stream_config.pipeline.cleanup.gamma = 25;
  stream_config.pipeline.cleanup.mu = 5;
  stream_config.pipeline.pre_cleanup_threshold = 50;
  stream_config.token.top_n = 5;
  IncrementalPipeline pipeline(stream_config);
  HeuristicIdMatcher matcher;

  std::vector<Record> all;
  for (size_t i = 0; i < bench.securities.records.size(); ++i) {
    all.push_back(bench.securities.records.at(static_cast<RecordId>(i)));
  }
  ASSERT_TRUE(pipeline.Ingest(all, matcher).ok());

  // Wave 1: every 7th record. Wave 2: every 11th offset by 1, skipping ids
  // wave 1 already killed.
  std::vector<RecordId> wave1, wave2;
  for (size_t i = 0; i < all.size(); i += 7) {
    wave1.push_back(static_cast<RecordId>(i));
  }
  for (size_t i = 1; i < all.size(); i += 11) {
    if (i % 7 != 0) wave2.push_back(static_cast<RecordId>(i));
  }
  IngestReport report1 = pipeline.Remove(wave1, matcher).ValueOrDie();
  IngestReport report2 = pipeline.Remove(wave2, matcher).ValueOrDie();

  EXPECT_EQ(report1.candidates_removed, 520u);
  EXPECT_EQ(report1.cache_evictions, 520u);
  EXPECT_EQ(report2.candidates_removed, 242u);
  EXPECT_EQ(report2.cache_evictions, 241u);

  PipelineResult result = pipeline.Snapshot().ValueOrDie();
  EXPECT_EQ(result.predicted_pairs.size(), 728u);
  EXPECT_EQ(result.groups.size(), 469u);
  EXPECT_EQ(result.cleanup_stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_calls, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.betweenness_calls, 22u);
  EXPECT_EQ(result.cleanup_stats.betweenness_edges_removed, 22u);

  const PrfMetrics post = GroupPrf(result.groups, bench.securities.truth);
  EXPECT_EQ(post.tp, 709u);
  EXPECT_EQ(post.fp, 21u);
  EXPECT_EQ(post.fn, 886u);
  EXPECT_NEAR(post.Precision(), 0.9712328767, 1e-9);
  EXPECT_NEAR(post.Recall(), 0.4445141066, 1e-9);
  EXPECT_NEAR(post.F1(), 0.6098924731, 1e-9);

  // Re-derivation printout (see file header):
  std::printf(
      "corrections: w1_cand_removed=%zu w1_evicted=%zu w2_cand_removed=%zu "
      "w2_evicted=%zu pairs=%zu groups=%zu pre_removed=%zu mincut=%zu/%zu "
      "betw=%zu/%zu tp=%zu fp=%zu fn=%zu P=%.10f R=%.10f F1=%.10f\n",
      report1.candidates_removed, report1.cache_evictions,
      report2.candidates_removed, report2.cache_evictions,
      result.predicted_pairs.size(), result.groups.size(),
      result.cleanup_stats.pre_cleanup_edges_removed,
      result.cleanup_stats.min_cut_calls,
      result.cleanup_stats.min_cut_edges_removed,
      result.cleanup_stats.betweenness_calls,
      result.cleanup_stats.betweenness_edges_removed,
      static_cast<size_t>(post.tp), static_cast<size_t>(post.fp),
      static_cast<size_t>(post.fn), post.Precision(), post.Recall(),
      post.F1());
}

TEST(GoldenWdc, PerfectPredictionsCleanupMetricsPinned) {
  // The paper's WDC finding in pinned numbers: with perfect pairwise
  // predictions and heterogeneous group sizes, mu = 5 over-splits — post
  // precision stays 1.0 while recall collapses to 426/1289.
  WdcConfig config;
  config.num_entities = 150;
  config.seed = 99;
  Dataset products = WdcProductsGenerator(config).Generate();

  std::vector<Candidate> positives;
  for (const auto& pair : products.truth.AllTruePairs()) {
    positives.push_back({pair, kBlockerTokenOverlap});
  }
  EXPECT_EQ(positives.size(), 1289u);

  PipelineConfig pipe_config;
  pipe_config.cleanup.gamma = 25;
  pipe_config.cleanup.mu = 5;
  PipelineResult result =
      EntityGroupPipeline(pipe_config)
          .RunOnPredictions(products.records.size(), positives);

  EXPECT_EQ(result.predicted_pairs.size(), 1289u);
  EXPECT_EQ(result.groups.size(), 264u);
  EXPECT_EQ(result.cleanup_stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(result.cleanup_stats.min_cut_calls, 0u);
  EXPECT_EQ(result.cleanup_stats.betweenness_calls, 863u);
  EXPECT_EQ(result.cleanup_stats.betweenness_edges_removed, 863u);

  const PrfMetrics pre = GroupPrf(result.pre_cleanup_components,
                                  products.truth);
  EXPECT_EQ(pre.tp, 1289u);
  EXPECT_EQ(pre.fp, 0u);
  EXPECT_EQ(pre.fn, 0u);

  const PrfMetrics post = GroupPrf(result.groups, products.truth);
  EXPECT_EQ(post.tp, 426u);
  EXPECT_EQ(post.fp, 0u);
  EXPECT_EQ(post.fn, 863u);

  EXPECT_NEAR(post.Precision(), 1.0, 1e-12);
  EXPECT_NEAR(post.Recall(), 0.3304887510, 1e-9);
  EXPECT_NEAR(post.F1(), 0.4967930029, 1e-9);
  EXPECT_NEAR(ClusterPurity(result.groups, products.truth), 1.0, 1e-12);
}

}  // namespace
}  // namespace gralmatch

// Differential test suite for the sharded matching subsystem. The headline
// contract: ShardedPipeline::Snapshot() at any shard count S and any thread
// count is identical — predicted pairs, pre-cleanup components, groups, and
// all cleanup counters — to the S=1 result, to IncrementalPipeline on the
// same ingest sequence, and to a from-scratch EntityGroupPipeline::Run on
// the union of all batches, on both the financial-securities and
// WDC-products fixtures. The suite also pins the router's determinism, the
// once-per-fingerprint scoring guarantee across shards, the poisoned
// fail-fast, and the sharded manifest checkpoint: Save -> Load -> Snapshot
// bitwise-identical (wall-clock bits included), re-save byte-identical,
// post-restore ingestion equivalent, and every partial/corrupt/mismatched
// manifest case a clean Status.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/binary_io.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "serve/sharded_checkpoint.h"
#include "shard/shard_router.h"
#include "shard/sharded_pipeline.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Matchers and fixtures (mirroring stream_test.cc: the equivalence contract
// under test extends the same one)
// ---------------------------------------------------------------------------

/// Deterministic token-Jaccard matcher with a tunable scale that changes its
/// fingerprint (see stream_test.cc).
class JaccardMatcher : public PairwiseMatcher {
 public:
  explicit JaccardMatcher(double scale = 1.0) : scale_(scale) {}

  std::string name() const override { return "jaccard"; }
  std::string Fingerprint() const override {
    return "jaccard#" + std::to_string(scale_);
  }
  double MatchProbability(const Record& a, const Record& b) const override {
    auto ta = Tokens(a);
    auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0;
    size_t ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    double score = scale_ * static_cast<double>(common) /
                   static_cast<double>(total == 0 ? 1 : total);
    return score > 1.0 ? 1.0 : score;
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }

  double scale_;
};

/// Thread-safe call counter proving the once-per-fingerprint guarantee
/// holds pipeline-wide across shards (keyed by the "_uid" stamp).
class CountingMatcher : public PairwiseMatcher {
 public:
  explicit CountingMatcher(const PairwiseMatcher* inner) : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_;
      int ua = std::stoi(std::string(a.Get("_uid")));
      int ub = std::stoi(std::string(b.Get("_uid")));
      seen_.insert({std::min(ua, ub), std::max(ua, ub)});
    }
    return inner_->MatchProbability(a, b);
  }

  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  size_t distinct_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }

 private:
  const PairwiseMatcher* inner_;
  mutable std::mutex mu_;
  mutable size_t calls_ = 0;
  mutable std::set<std::pair<int, int>> seen_;
};

/// Matcher that throws once armed — exercises the sharded poison fail-fast.
class ThrowingMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "throwing"; }
  std::string Fingerprint() const override { return "throwing#1"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_) throw std::runtime_error("scorer backend unavailable");
    return JaccardMatcher().MatchProbability(a, b);
  }
  void Arm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
  }

 private:
  mutable std::mutex mu_;
  mutable bool armed_ = false;
};

std::vector<Record> WithUids(const RecordTable& table) {
  std::vector<Record> out;
  out.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    Record rec = table.at(static_cast<RecordId>(i));
    rec.Set("_uid", std::to_string(i));
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<Record> FinancialRecords(size_t num_groups = 60) {
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();
  return WithUids(bench.securities.records);
}

std::vector<Record> WdcRecords() {
  WdcConfig config;
  config.num_entities = 120;
  config.seed = 77;
  return WithUids(WdcProductsGenerator(config).Generate().records);
}

/// Pipeline configuration tightened so every cleanup phase fires on these
/// fixture sizes (as in stream_test.cc).
ShardedPipelineConfig ShardConfig(size_t num_shards, size_t num_threads,
                                  double match_threshold) {
  ShardedPipelineConfig config;
  config.base.pipeline.cleanup.gamma = 6;
  config.base.pipeline.cleanup.mu = 3;
  config.base.pipeline.pre_cleanup_threshold = 9;
  config.base.pipeline.match_threshold = match_threshold;
  config.base.pipeline.num_threads = num_threads;
  config.base.token.top_n = 5;
  config.num_shards = num_shards;
  config.router_seed = 17;
  return config;
}

/// From-scratch reference: the batch pipeline on the full record set.
PipelineResult RunBatchReference(const RecordTable& records,
                                 const IncrementalPipelineConfig& config,
                                 const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  if (config.use_id_blocker) {
    IdOverlapBlocker::Options opts;
    opts.num_threads = config.pipeline.num_threads;
    IdOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  if (config.use_token_blocker) {
    TokenOverlapBlocker::Options opts = config.token;
    opts.num_threads = config.pipeline.num_threads;
    TokenOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

/// Counters-only equality (reference wall-clock legitimately differs).
void ExpectEquivalent(const PipelineResult& sharded,
                      const PipelineResult& reference,
                      const std::string& context) {
  EXPECT_EQ(sharded.predicted_pairs, reference.predicted_pairs) << context;
  EXPECT_EQ(sharded.pre_cleanup_components, reference.pre_cleanup_components)
      << context;
  EXPECT_EQ(sharded.groups, reference.groups) << context;
  EXPECT_EQ(sharded.cleanup_stats.pre_cleanup_edges_removed,
            reference.cleanup_stats.pre_cleanup_edges_removed)
      << context;
  EXPECT_EQ(sharded.cleanup_stats.min_cut_calls,
            reference.cleanup_stats.min_cut_calls)
      << context;
  EXPECT_EQ(sharded.cleanup_stats.min_cut_edges_removed,
            reference.cleanup_stats.min_cut_edges_removed)
      << context;
  EXPECT_EQ(sharded.cleanup_stats.betweenness_calls,
            reference.cleanup_stats.betweenness_calls)
      << context;
  EXPECT_EQ(sharded.cleanup_stats.betweenness_edges_removed,
            reference.cleanup_stats.betweenness_edges_removed)
      << context;
}

/// Full bitwise equality, wall-clock bits included (checkpoint round trip).
void ExpectBitwiseIdentical(const PipelineResult& a, const PipelineResult& b,
                            const std::string& context) {
  ExpectEquivalent(a, b, context);
  EXPECT_EQ(a.cleanup_stats.seconds, b.cleanup_stats.seconds) << context;
  EXPECT_EQ(a.inference_seconds, b.inference_seconds) << context;
}

/// Reports must match field-for-field between the sharded pipeline and the
/// single incremental pipeline (wall-clock excluded).
void ExpectSameReport(const IngestReport& sharded, const IngestReport& mono,
                      const std::string& context) {
  EXPECT_EQ(sharded.records_added, mono.records_added) << context;
  EXPECT_EQ(sharded.candidates_added, mono.candidates_added) << context;
  EXPECT_EQ(sharded.candidates_removed, mono.candidates_removed) << context;
  EXPECT_EQ(sharded.pairs_scored, mono.pairs_scored) << context;
  EXPECT_EQ(sharded.cache_hits, mono.cache_hits) << context;
  EXPECT_EQ(sharded.components_rebuilt, mono.components_rebuilt) << context;
  EXPECT_EQ(sharded.components_reused, mono.components_reused) << context;
}

std::vector<size_t> EqualBatches(size_t n, size_t k) {
  std::vector<size_t> sizes(k, n / k);
  sizes.back() += n % k;
  return sizes;
}

/// Drive a ShardedPipeline and an IncrementalPipeline through the same
/// schedule, checking report equality on every ingest and snapshot
/// equivalence (against each other and the batch reference) at every
/// `check_every`-th batch and the last.
void RunDifferentialSchedule(const std::vector<Record>& records,
                             const std::vector<size_t>& batch_sizes,
                             const ShardedPipelineConfig& config,
                             const PairwiseMatcher& matcher,
                             size_t check_every = 1) {
  ShardedPipeline sharded(config);
  IncrementalPipeline mono(config.base);
  size_t offset = 0;
  for (size_t b = 0; b < batch_sizes.size(); ++b) {
    const size_t size = batch_sizes[b];
    ASSERT_LE(offset + size, records.size());
    std::vector<Record> batch(
        records.begin() + static_cast<long>(offset),
        records.begin() + static_cast<long>(offset + size));
    Result<IngestReport> sharded_report = sharded.Ingest(batch, matcher);
    Result<IngestReport> mono_report = mono.Ingest(batch, matcher);
    ASSERT_TRUE(sharded_report.ok());
    ASSERT_TRUE(mono_report.ok());
    offset += size;
    const std::string context =
        "after batch " + std::to_string(b + 1) + "/" +
        std::to_string(batch_sizes.size()) +
        " (shards=" + std::to_string(config.num_shards) +
        ", threads=" + std::to_string(config.base.pipeline.num_threads) + ")";
    ExpectSameReport(*sharded_report, *mono_report, context);
    const bool last = b + 1 == batch_sizes.size();
    if (!last && (b + 1) % check_every != 0) continue;
    const PipelineResult snapshot = sharded.Snapshot().ValueOrDie();
    ExpectEquivalent(snapshot, mono.Snapshot().ValueOrDie(),
                     context + " vs incremental");
    ExpectEquivalent(snapshot,
                     RunBatchReference(sharded.records(), config.base, matcher),
                     context + " vs batch reference");
  }
  ASSERT_EQ(offset, records.size());
  EXPECT_EQ(sharded.total_matcher_calls(), mono.total_matcher_calls());
  EXPECT_EQ(sharded.total_cache_hits(), mono.total_cache_hits());
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  return dir;
}

void FlipByte(const std::string& path, size_t offset_from_end) {
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(image.size(), offset_from_end);
  image[image.size() - 1 - offset_from_end] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, RoutesByContentNotByPositionOrMetadata) {
  const std::vector<Record> records = FinancialRecords(20);
  ShardRouter router(4, 99);
  for (const Record& rec : records) {
    const size_t shard = router.ShardOf(rec);
    EXPECT_LT(shard, 4u);
    // Same content -> same shard, wherever/whenever it arrives.
    Record copy = rec;
    EXPECT_EQ(router.ShardOf(copy), shard);
    // Metadata stamps must not move a record between shards.
    copy.Set("_trace_id", "abc123");
    EXPECT_EQ(router.ShardOf(copy), shard);
  }
}

TEST(ShardRouterTest, SeedChangesThePartitionAndSpreadsRecords) {
  const std::vector<Record> records = FinancialRecords(40);
  ShardRouter router_a(4, 1);
  ShardRouter router_b(4, 2);
  std::vector<size_t> count_a(4, 0);
  size_t moved = 0;
  for (const Record& rec : records) {
    const size_t sa = router_a.ShardOf(rec);
    ++count_a[sa];
    if (router_b.ShardOf(rec) != sa) ++moved;
  }
  // A different seed reshuffles a meaningful fraction of the feed.
  EXPECT_GT(moved, records.size() / 8);
  // The content hash spreads a real fixture over every shard.
  for (size_t s = 0; s < 4; ++s) EXPECT_GT(count_a[s], 0u);
}

TEST(ShardRouterTest, ZeroShardsClampsToOne) {
  ShardRouter router(0, 5);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardOf(Record(1, RecordKind::kCompany)), 0u);
}

// ---------------------------------------------------------------------------
// Shard-count invariance (the headline contract)
// ---------------------------------------------------------------------------

class FinancialShard : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<Record>(FinancialRecords());
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }
  static std::vector<Record>* records_;
};

std::vector<Record>* FinancialShard::records_ = nullptr;

TEST_F(FinancialShard, ShardCountInvarianceAcrossThreadCounts) {
  JaccardMatcher matcher;
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 8u}) {
      RunDifferentialSchedule(*records_, EqualBatches(records_->size(), 5),
                              ShardConfig(shards, threads, 0.25), matcher,
                              /*check_every=*/2);
    }
  }
}

TEST_F(FinancialShard, SingleBatchEqualsFullRun) {
  JaccardMatcher matcher;
  for (size_t shards : {1u, 2u, 4u}) {
    RunDifferentialSchedule(*records_, {records_->size()},
                            ShardConfig(shards, 2, 0.25), matcher);
  }
}

TEST_F(FinancialShard, SingletonBatchesEquivalent) {
  const std::vector<Record> records = FinancialRecords(30);
  JaccardMatcher matcher;
  RunDifferentialSchedule(records, std::vector<size_t>(records.size(), 1),
                          ShardConfig(4, 1, 0.25), matcher,
                          /*check_every=*/50);
}

/// Jaccard wrapper overriding ScoreBatch (the default loops
/// MatchProbability): pins that shard-parallel scoring feeds the matcher
/// real batches and that the batched path is equivalent to per-pair.
class BatchingJaccardMatcher : public PairwiseMatcher {
 public:
  explicit BatchingJaccardMatcher(const JaccardMatcher* inner)
      : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++single_calls_;
    }
    return inner_->MatchProbability(a, b);
  }
  void ScoreBatch(const RecordTable& records, Span<const RecordPair> pairs,
                  Span<double> out) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batch_calls_;
      batched_pairs_ += pairs.size();
      max_batch_ = std::max(max_batch_, pairs.size());
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = inner_->MatchProbability(records.at(pairs[i].a),
                                        records.at(pairs[i].b));
    }
  }

  size_t single_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return single_calls_;
  }
  size_t batched_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batched_pairs_;
  }
  size_t max_batch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_batch_;
  }

 private:
  const JaccardMatcher* inner_;
  mutable std::mutex mu_;
  mutable size_t single_calls_ = 0;
  mutable size_t batch_calls_ = 0;
  mutable size_t batched_pairs_ = 0;
  mutable size_t max_batch_ = 0;
};

TEST_F(FinancialShard, BatchedScoringEquivalentAcrossThreadsAndBatchSizes) {
  // S=2 sharded pipeline with a ScoreBatch-overriding matcher: every
  // thread count and batch size must reproduce the serial per-pair batch
  // reference exactly, with all scoring routed through the override.
  JaccardMatcher inner;
  ShardedPipelineConfig reference_config = ShardConfig(2, 1, 0.25);
  reference_config.base.pipeline.score_batch_size = 1;

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t batch_size : {1u, 7u, 64u}) {
      BatchingJaccardMatcher batching(&inner);
      ShardedPipelineConfig config = ShardConfig(2, threads, 0.25);
      config.base.pipeline.score_batch_size = batch_size;
      ShardedPipeline sharded(config);
      size_t offset = 0;
      for (size_t size : EqualBatches(records_->size(), 4)) {
        std::vector<Record> batch(
            records_->begin() + static_cast<long>(offset),
            records_->begin() + static_cast<long>(offset + size));
        ASSERT_TRUE(sharded.Ingest(batch, batching).ok());
        offset += size;
      }
      const std::string context = "threads=" + std::to_string(threads) +
                                  " batch_size=" + std::to_string(batch_size);
      ExpectEquivalent(
          sharded.Snapshot().ValueOrDie(),
          RunBatchReference(sharded.records(), reference_config.base, inner),
          context);
      EXPECT_EQ(batching.single_calls(), 0u) << context;
      EXPECT_EQ(batching.batched_pairs(), sharded.total_matcher_calls())
          << context;
      EXPECT_LE(batching.max_batch(), batch_size) << context;
    }
  }
}

TEST_F(FinancialShard, FingerprintSwapRescoresEveryShardAndStaysEquivalent) {
  JaccardMatcher matcher_v1(1.0);
  JaccardMatcher matcher_v2(1.4);
  ShardedPipelineConfig config = ShardConfig(4, 2, 0.25);
  ShardedPipeline sharded(config);
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());

  ASSERT_TRUE(sharded.Ingest(first, matcher_v1).ok());
  IngestReport swap = sharded.Ingest({}, matcher_v2).ValueOrDie();
  EXPECT_EQ(swap.records_added, 0u);
  EXPECT_GT(swap.pairs_scored, 0u);
  ExpectEquivalent(sharded.Snapshot().ValueOrDie(),
                   RunBatchReference(sharded.records(), config.base,
                                     matcher_v2),
                   "after matcher swap");
  ASSERT_TRUE(sharded.Ingest(second, matcher_v2).ok());
  ExpectEquivalent(sharded.Snapshot().ValueOrDie(),
                   RunBatchReference(sharded.records(), config.base,
                                     matcher_v2),
                   "after matcher swap + second half");
}

TEST_F(FinancialShard, NoPairScoredTwiceAcrossShards) {
  JaccardMatcher inner;
  CountingMatcher counting(&inner);
  ShardedPipeline sharded(ShardConfig(4, 4, 0.25));
  size_t offset = 0;
  for (size_t size : EqualBatches(records_->size(), 8)) {
    std::vector<Record> batch(
        records_->begin() + static_cast<long>(offset),
        records_->begin() + static_cast<long>(offset + size));
    ASSERT_TRUE(sharded.Ingest(batch, counting).ok());
    offset += size;
  }
  // Pair ownership is stable, so the union of shard caches never scores a
  // pair twice per fingerprint — pipeline-wide, not just per shard.
  EXPECT_GT(counting.calls(), 0u);
  EXPECT_EQ(counting.calls(), counting.distinct_pairs());
  EXPECT_EQ(counting.calls(), sharded.total_matcher_calls());
  // Every shard actually owns some of the feed.
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_GT(sharded.ShardRecordCount(s), 0u) << "shard " << s;
  }
}

TEST_F(FinancialShard, ThrowingMatcherPoisonsTheShardedPipeline) {
  ShardedPipeline sharded(ShardConfig(2, 2, 0.25));
  ThrowingMatcher matcher;
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());
  ASSERT_TRUE(sharded.Ingest(first, matcher).ok());
  matcher.Arm();
  Result<IngestReport> aborted = sharded.Ingest(second, matcher);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(sharded.status().ok());
  EXPECT_FALSE(sharded.Snapshot().ok());
  EXPECT_FALSE(sharded.Ingest({}, matcher).ok());
  // A poisoned pipeline must never become a checkpoint.
  Status saved =
      SaveShardedCheckpoint(sharded, TempDirFor("shard_poisoned_ckpt"));
  ASSERT_FALSE(saved.ok());
  EXPECT_NE(saved.message().find("poisoned"), std::string::npos);
}

// ---------------------------------------------------------------------------
// WDC products fixture
// ---------------------------------------------------------------------------

TEST(WdcShard, ShardCountInvarianceAcrossThreadCounts) {
  const std::vector<Record> records = WdcRecords();
  JaccardMatcher matcher;
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 8u}) {
      RunDifferentialSchedule(records, EqualBatches(records.size(), 4),
                              ShardConfig(shards, threads, 0.35), matcher,
                              /*check_every=*/2);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded manifest checkpoints
// ---------------------------------------------------------------------------

class ShardedCheckpointTest : public FinancialShard {};

TEST_F(ShardedCheckpointTest, RoundTripIsBitwiseIdenticalAndResaveIsStable) {
  JaccardMatcher matcher;
  ShardedPipelineConfig config = ShardConfig(4, 2, 0.25);
  ShardedPipeline sharded(config);
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  ASSERT_TRUE(sharded.Ingest(first, matcher).ok());

  const std::string dir = TempDirFor("shard_ckpt_roundtrip");
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_shards(), 4u);
  EXPECT_EQ((*restored)->fingerprint(), sharded.fingerprint());
  EXPECT_EQ((*restored)->total_matcher_calls(), sharded.total_matcher_calls());
  ExpectBitwiseIdentical((*restored)->Snapshot().ValueOrDie(),
                         sharded.Snapshot().ValueOrDie(), "restored");

  // Re-saving the restored pipeline reproduces every file byte for byte:
  // equal logical state -> equal checkpoints.
  const std::string dir2 = TempDirFor("shard_ckpt_resave");
  ASSERT_TRUE(SaveShardedCheckpoint(**restored, dir2).ok());
  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(read_file(ShardedManifestPath(dir)),
            read_file(ShardedManifestPath(dir2)));
  const std::vector<std::string> paths = ShardFilePaths(dir).ValueOrDie();
  const std::vector<std::string> paths2 = ShardFilePaths(dir2).ValueOrDie();
  ASSERT_EQ(paths.size(), 4u);
  ASSERT_EQ(paths2.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    // Same content-addressed names (equal state -> equal addresses)...
    EXPECT_EQ(paths[s].substr(dir.size()), paths2[s].substr(dir2.size()))
        << "shard " << s;
    // ...and the same bytes inside.
    EXPECT_EQ(read_file(paths[s]), read_file(paths2[s])) << "shard " << s;
  }
}

TEST_F(ShardedCheckpointTest, PostRestoreIngestionStaysEquivalent) {
  JaccardMatcher matcher;
  ShardedPipelineConfig config = ShardConfig(4, 2, 0.25);
  ShardedPipeline sharded(config);
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());
  ASSERT_TRUE(sharded.Ingest(first, matcher).ok());

  const std::string dir = TempDirFor("shard_ckpt_resume");
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  // Restore with a different thread count: results never depend on it.
  auto restored = LoadShardedCheckpoint(dir, matcher, /*num_threads=*/8);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE((*restored)->Ingest(second, matcher).ok());
  ExpectEquivalent(
      (*restored)->Snapshot().ValueOrDie(),
      RunBatchReference((*restored)->records(), config.base, matcher),
      "post-restore ingest");
  // The restored pipeline served every cached score from the checkpoint: it
  // scored exactly the pairs the uninterrupted run would have.
  ASSERT_TRUE(sharded.Ingest(second, matcher).ok());
  EXPECT_EQ((*restored)->total_matcher_calls(), sharded.total_matcher_calls());
}

TEST_F(ShardedCheckpointTest, PreIngestCheckpointLoadsUnderAnyMatcher) {
  ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
  const std::string dir = TempDirFor("shard_ckpt_empty");
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  JaccardMatcher other(2.5);
  auto restored = LoadShardedCheckpoint(dir, other);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->records().size(), 0u);
  EXPECT_TRUE((*restored)->fingerprint().empty());
}

TEST_F(ShardedCheckpointTest, SaveOntoARegularFilePathFailsCleanly) {
  // Regression test: mkdir() fails with EEXIST whether the existing path is
  // a directory or a plain file; the save used to treat both as "directory
  // already there" and then fail bizarrely (or clobber) writing
  // "<file>/manifest". It must refuse up front with a clean IOError.
  ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
  const std::string path = TempDirFor("shard_ckpt_regular_file");
  std::remove(path.c_str());
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a directory";
  }
  Status saved = SaveShardedCheckpoint(sharded, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kIoError);
  EXPECT_NE(saved.message().find("not a directory"), std::string::npos);
  // The file is left untouched.
  std::ifstream in(path, std::ios::binary);
  std::string contents{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  EXPECT_EQ(contents, "not a directory");
  std::remove(path.c_str());
}

class ShardedCheckpointCorruptionTest : public FinancialShard {
 protected:
  /// Save a 2-shard checkpoint of the first half of the fixture into `dir`.
  void SaveFixture(const std::string& dir) {
    JaccardMatcher matcher;
    ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
    const size_t half = records_->size() / 2;
    std::vector<Record> first(records_->begin(),
                              records_->begin() + static_cast<long>(half));
    ASSERT_TRUE(sharded.Ingest(first, matcher).ok());
    ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  }
};

TEST_F(ShardedCheckpointCorruptionTest, MissingShardFileFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_missing");
  SaveFixture(dir);
  ASSERT_EQ(
      std::remove(ShardFilePaths(dir).ValueOrDie()[1].c_str()), 0);
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("missing shard file"),
            std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, BitFlippedShardFileFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_flip");
  SaveFixture(dir);
  FlipByte(ShardFilePaths(dir).ValueOrDie()[0], /*offset_from_end=*/321);
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("does not match the manifest"),
            std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, SwappedShardFilesFailCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_swap");
  SaveFixture(dir);
  const std::vector<std::string> paths = ShardFilePaths(dir).ValueOrDie();
  const std::string& a = paths[0];
  const std::string& b = paths[1];
  const std::string tmp = a + ".swap";
  ASSERT_EQ(std::rename(a.c_str(), tmp.c_str()), 0);
  ASSERT_EQ(std::rename(b.c_str(), a.c_str()), 0);
  ASSERT_EQ(std::rename(tmp.c_str(), b.c_str()), 0);
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("does not match the manifest"),
            std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, StaleShardFileFailsCleanly) {
  // Two checkpoints of different progress; mixing one checkpoint's shard
  // file into the other must be rejected via the manifest checksums.
  const std::string dir_old = TempDirFor("shard_ckpt_stale_old");
  const std::string dir_new = TempDirFor("shard_ckpt_stale_new");
  JaccardMatcher matcher;
  ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());
  ASSERT_TRUE(sharded.Ingest(first, matcher).ok());
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir_old).ok());
  ASSERT_TRUE(sharded.Ingest(second, matcher).ok());
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir_new).ok());

  std::ifstream in(ShardFilePaths(dir_old).ValueOrDie()[0],
                   std::ios::binary);
  std::string stale((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::ofstream out(ShardFilePaths(dir_new).ValueOrDie()[0],
                    std::ios::binary | std::ios::trunc);
  out.write(stale.data(), static_cast<std::streamsize>(stale.size()));
  out.close();

  auto restored = LoadShardedCheckpoint(dir_new, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("does not match the manifest"),
            std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, BitFlippedManifestFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_manifest_flip");
  SaveFixture(dir);
  FlipByte(ShardedManifestPath(dir), /*offset_from_end=*/24);
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("checksum"), std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, TruncatedManifestFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_manifest_trunc");
  SaveFixture(dir);
  const std::string path = ShardedManifestPath(dir);
  std::ifstream in(path, std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  JaccardMatcher matcher;
  for (const size_t keep : {size_t{0}, size_t{7}, size_t{15}, image.size() / 2,
                            image.size() - 3}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto restored = LoadShardedCheckpoint(dir, matcher);
    EXPECT_FALSE(restored.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(ShardedCheckpointCorruptionTest, FingerprintMismatchFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_fingerprint");
  SaveFixture(dir);
  JaccardMatcher other(2.5);
  auto restored = LoadShardedCheckpoint(dir, other);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("fingerprint"),
            std::string::npos);
}

TEST_F(ShardedCheckpointCorruptionTest, FutureManifestVersionFailsCleanly) {
  const std::string dir = TempDirFor("shard_ckpt_version");
  SaveFixture(dir);
  const std::string path = ShardedManifestPath(dir);
  std::ifstream in(path, std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  image[8] = 0x7F;  // version u32 little-endian at offset 8
  // Recompute the trailing checksum so only the version is "wrong".
  BinaryWriter fixed;
  fixed.WriteBytes(image.data(), image.size() - 8);
  fixed.WriteU64(
      Fnv1a64(std::string_view(image.data(), image.size() - 8)));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(fixed.buffer().data(),
            static_cast<std::streamsize>(fixed.buffer().size()));
  out.close();
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("newer"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tombstone sections in sharded checkpoints (format v2): version stamping,
// corruption inside the new section, and version-mix rejection. The
// corruption tests repair every framing layer the loader checks first (the
// file's trailing checksum, its content-addressed name, the manifest's
// recorded checksum, the manifest's trailing checksum) so the patched
// tombstone bytes themselves are all that remains wrong.
// ---------------------------------------------------------------------------

class TombstoneShardedCheckpointTest : public FinancialShard {
 protected:
  /// Save a 2-shard checkpoint of the first half of the fixture with five
  /// records removed, so each shard file carries a tombstone section.
  void SaveTombstonedFixture(const std::string& dir) {
    JaccardMatcher matcher;
    ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
    const size_t half = records_->size() / 2;
    std::vector<Record> first(records_->begin(),
                              records_->begin() + static_cast<long>(half));
    ASSERT_TRUE(sharded.Ingest(first, matcher).ok());
    auto removed = sharded.Remove({3, 14, 25, 36, 47}, matcher);
    ASSERT_TRUE(removed.ok()) << removed.status().ToString();
    ASSERT_EQ(sharded.num_dead(), 5u);
    ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteFile(const std::string& path, const std::string& image) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }

  static uint64_t ReadU64At(const std::string& image, size_t pos) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(image[pos + i]))
           << (8 * i);
    }
    return v;
  }

  static void WriteU64At(std::string* image, size_t pos, uint64_t v) {
    for (size_t i = 0; i < 8; ++i) {
      (*image)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }

  static std::string EncodeI32(int32_t v) {
    std::string bytes(4, '\0');
    for (size_t i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>(
          (static_cast<uint32_t>(v) >> (8 * i)) & 0xff);
    }
    return bytes;
  }

  /// Walk a shard-file image past the record section to the tombstone
  /// section (format v2): returns its byte offset, the decoded tombstone
  /// ids, and the record ids this shard owns.
  static void LocateTombstones(const std::string& image, size_t* offset,
                               std::vector<int32_t>* tombstones,
                               std::vector<int32_t>* owned) {
    size_t pos = 24;  // magic 8, version u32, shard index u32, body size u64
    const uint64_t num_records = ReadU64At(image, pos);
    pos += 8;
    owned->clear();
    for (uint64_t k = 0; k < num_records; ++k) {
      owned->push_back(static_cast<int32_t>(
          static_cast<uint32_t>(ReadU64At(image, pos) & 0xffffffffu)));
      pos += 4 + 4 + 1;  // id i32, source i32, kind u8
      const uint64_t num_attrs = ReadU64At(image, pos);
      pos += 8;
      for (uint64_t a = 0; a < 2 * num_attrs; ++a) {
        pos += 8 + static_cast<size_t>(ReadU64At(image, pos));
      }
      ASSERT_LT(pos, image.size());
    }
    *offset = pos;
    const uint64_t num_dead = ReadU64At(image, pos);
    pos += 8;
    tombstones->clear();
    for (uint64_t k = 0; k < num_dead; ++k) {
      tombstones->push_back(static_cast<int32_t>(
          static_cast<uint32_t>(ReadU64At(image, pos) & 0xffffffffu)));
      pos += 4;
    }
  }

  /// Overwrite `replacement.size()` bytes of shard `s`'s file at `pos`,
  /// then repair the framing: the file's trailing checksum, its
  /// content-addressed name, and the manifest's checksum for the shard.
  static void RewriteShardFile(const std::string& dir, size_t s, size_t pos,
                               const std::string& replacement) {
    const std::vector<std::string> paths = ShardFilePaths(dir).ValueOrDie();
    std::string image = ReadFile(paths[s]);
    ASSERT_LE(pos + replacement.size(), image.size() - 8);
    image.replace(pos, replacement.size(), replacement);
    image.resize(image.size() - 8);
    BinaryWriter fixed;
    fixed.WriteBytes(image.data(), image.size());
    fixed.WriteU64(Fnv1a64(std::string_view(image)));
    const uint64_t checksum = Fnv1a64(fixed.buffer());
    ASSERT_EQ(std::remove(paths[s].c_str()), 0);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(checksum));
    WriteFile(dir + "/shard-" + std::to_string(s) + "-" + hex + ".grlm",
              fixed.buffer());

    // Manifest layout: magic 8, version u32, fingerprint (u64 length +
    // bytes), u64 shard count, then the checksum list.
    std::string manifest = ReadFile(ShardedManifestPath(dir));
    const size_t fingerprint_len = static_cast<size_t>(ReadU64At(manifest, 12));
    WriteU64At(&manifest, 28 + fingerprint_len + 8 * s, checksum);
    manifest.resize(manifest.size() - 8);
    BinaryWriter fixed_manifest;
    fixed_manifest.WriteBytes(manifest.data(), manifest.size());
    fixed_manifest.WriteU64(Fnv1a64(std::string_view(manifest)));
    WriteFile(ShardedManifestPath(dir), fixed_manifest.buffer());
  }
};

TEST_F(TombstoneShardedCheckpointTest, TombstonedFilesStampVersionTwo) {
  const std::string dir = TempDirFor("shard_tomb_version");
  SaveTombstonedFixture(dir);
  EXPECT_EQ(ReadFile(ShardedManifestPath(dir))[8], 2);
  std::vector<int32_t> all_tombstones;
  const std::vector<std::string> paths = ShardFilePaths(dir).ValueOrDie();
  for (const std::string& path : paths) {
    const std::string image = ReadFile(path);
    EXPECT_EQ(image[8], 2);
    size_t offset = 0;
    std::vector<int32_t> tombstones, owned;
    LocateTombstones(image, &offset, &tombstones, &owned);
    all_tombstones.insert(all_tombstones.end(), tombstones.begin(),
                          tombstones.end());
  }
  // Every removed id is tombstoned in exactly its owner shard's file.
  std::sort(all_tombstones.begin(), all_tombstones.end());
  EXPECT_EQ(all_tombstones, (std::vector<int32_t>{3, 14, 25, 36, 47}));

  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_dead(), 5u);
  EXPECT_FALSE((*restored)->is_alive(25));
}

TEST_F(TombstoneShardedCheckpointTest, TombstoneBitFlipFailsCleanly) {
  const std::string dir = TempDirFor("shard_tomb_flip");
  SaveTombstonedFixture(dir);
  const std::string path = ShardFilePaths(dir).ValueOrDie()[0];
  const std::string image = ReadFile(path);
  size_t offset = 0;
  std::vector<int32_t> tombstones, owned;
  LocateTombstones(image, &offset, &tombstones, &owned);
  ASSERT_FALSE(tombstones.empty());
  // A raw flip inside the tombstone section (no framing repair) is caught
  // by the manifest's recorded checksum before the section is parsed.
  FlipByte(path, image.size() - 1 - (offset + 8));
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("does not match the manifest"),
            std::string::npos);
}

TEST_F(TombstoneShardedCheckpointTest,
       StructurallyInvalidTombstonesRejectedPastTheFraming) {
  JaccardMatcher matcher;

  // Duplicate id: copy the first tombstone over the second in a shard
  // whose file holds at least two.
  {
    const std::string dir = TempDirFor("shard_tomb_dup");
    SaveTombstonedFixture(dir);
    for (size_t s = 0; s < 2; ++s) {
      const std::string image =
          ReadFile(ShardFilePaths(dir).ValueOrDie()[s]);
      size_t offset = 0;
      std::vector<int32_t> tombstones, owned;
      LocateTombstones(image, &offset, &tombstones, &owned);
      if (tombstones.size() < 2) continue;
      RewriteShardFile(dir, s, offset + 8 + 4, EncodeI32(tombstones[0]));
      auto restored = LoadShardedCheckpoint(dir, matcher);
      ASSERT_FALSE(restored.ok());
      EXPECT_NE(restored.status().message().find("ascending"),
                std::string::npos);
      break;
    }
  }

  // A tombstone for a record the shard does not store.
  {
    const std::string dir = TempDirFor("shard_tomb_foreign");
    SaveTombstonedFixture(dir);
    const std::string image = ReadFile(ShardFilePaths(dir).ValueOrDie()[0]);
    size_t offset = 0;
    std::vector<int32_t> tombstones, owned;
    LocateTombstones(image, &offset, &tombstones, &owned);
    ASSERT_FALSE(tombstones.empty());
    int32_t foreign = 0;
    while (std::binary_search(owned.begin(), owned.end(), foreign)) ++foreign;
    RewriteShardFile(dir, 0, offset + 8, EncodeI32(foreign));
    auto restored = LoadShardedCheckpoint(dir, matcher);
    ASSERT_FALSE(restored.ok());
    EXPECT_NE(restored.status().message().find("does not store"),
              std::string::npos);
  }
}

TEST_F(TombstoneShardedCheckpointTest, MixedVersionShardFilesRejected) {
  // A version 1 shard file under a version 2 manifest is a stale file, not
  // a layout choice: rejected even with every checksum intact.
  const std::string dir = TempDirFor("shard_tomb_mixed");
  SaveTombstonedFixture(dir);
  RewriteShardFile(dir, 1, 8, std::string(1, '\x01'));
  JaccardMatcher matcher;
  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("must share one version"),
            std::string::npos);
}

TEST_F(TombstoneShardedCheckpointTest,
       PreTombstoneCheckpointsStillLoadAndRoundTrip) {
  // A tombstone-free pipeline writes the version 1 layout byte for byte —
  // exactly what a pre-tombstone writer produced — and that checkpoint
  // must load, re-save identically, and accept removals afterwards.
  JaccardMatcher matcher;
  ShardedPipeline sharded(ShardConfig(2, 1, 0.25));
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  ASSERT_TRUE(sharded.Ingest(first, matcher).ok());
  const std::string dir = TempDirFor("shard_tomb_v1");
  ASSERT_TRUE(SaveShardedCheckpoint(sharded, dir).ok());
  EXPECT_EQ(ReadFile(ShardedManifestPath(dir))[8], 1);
  const std::vector<std::string> paths = ShardFilePaths(dir).ValueOrDie();
  for (const std::string& path : paths) {
    EXPECT_EQ(ReadFile(path)[8], 1);
  }

  auto restored = LoadShardedCheckpoint(dir, matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_dead(), 0u);
  const std::string dir2 = TempDirFor("shard_tomb_v1_resave");
  ASSERT_TRUE(SaveShardedCheckpoint(**restored, dir2).ok());
  EXPECT_EQ(ReadFile(ShardedManifestPath(dir)),
            ReadFile(ShardedManifestPath(dir2)));

  ASSERT_TRUE((*restored)->Remove({7}, matcher).ok());
  const std::string dir3 = TempDirFor("shard_tomb_v1_upgraded");
  ASSERT_TRUE(SaveShardedCheckpoint(**restored, dir3).ok());
  EXPECT_EQ(ReadFile(ShardedManifestPath(dir3))[8], 2);
}

}  // namespace
}  // namespace gralmatch
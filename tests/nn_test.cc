// Tests for the from-scratch neural substrate: matrix algebra, Adam, and the
// transformer classifier (including a finite-difference gradient check that
// validates the entire manual backprop).

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "nn/transformer.h"

namespace gralmatch {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  for (size_t i = 0; i < 6; ++i) a.data()[i] = av[i];
  for (size_t i = 0; i < 6; ++i) b.data()[i] = bv[i];
  Matrix c;
  MatMul(a, b, &c);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Matrix a(4, 3), b(4, 5);
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);

  // a^T b via MatMulTN vs manual transpose.
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  Matrix expected, got;
  MatMul(at, b, &expected);
  MatMulTN(a, b, &got);
  ASSERT_TRUE(expected.SameShape(got));
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5f);
  }

  // a b^T via MatMulNT.
  Matrix c(5, 3);
  c.FillNormal(&rng, 1.0f);
  Matrix ct(3, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) ct.at(j, i) = c.at(i, j);
  }
  Matrix expected2, got2;
  MatMul(a, ct, &expected2);   // (4x3)(3x5)
  MatMulNT(a, c, &got2);
  ASSERT_TRUE(expected2.SameShape(got2));
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(expected2.data()[i], got2.data()[i], 1e-5f);
  }
}

TEST(MatrixTest, AddScaleZero) {
  Matrix a(2, 2), b(2, 2);
  for (size_t i = 0; i < 4; ++i) {
    a.data()[i] = static_cast<float>(i);
    b.data()[i] = 1.0f;
  }
  a.Add(b);
  EXPECT_FLOAT_EQ(a.at(1, 1), 4.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 8.0f);
  a.Zero();
  EXPECT_FLOAT_EQ(a.at(0, 0), 0.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2 with Adam.
  Rng rng(7);
  Parameter p;
  p.Init("w", 1, 4, &rng, 1.0f);
  float target[] = {1.0f, -2.0f, 3.0f, 0.5f};
  AdamOptimizer::Options opts;
  opts.lr = 0.05f;
  opts.clip_norm = 0.0f;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 500; ++step) {
    for (size_t i = 0; i < 4; ++i) {
      p.grad.data()[i] = p.value.data()[i] - target[i];
    }
    adam.Step({&p});
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(p.value.data()[i], target[i], 1e-2f);
  }
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(AdamTest, GradientClippingBoundsUpdate) {
  Rng rng(7);
  Parameter p;
  p.Init("w", 1, 2, &rng, 0.0f);
  AdamOptimizer::Options opts;
  opts.clip_norm = 1.0f;
  opts.lr = 1.0f;
  AdamOptimizer adam(opts);
  p.grad.data()[0] = 1e6f;
  p.grad.data()[1] = 1e6f;
  adam.Step({&p});
  // Clipped gradient norm is 1, so Adam's first bias-corrected update is
  // bounded by lr (elementwise |m_hat/sqrt(v_hat)| <= 1 on the first step).
  EXPECT_LE(std::abs(p.value.data()[0]), 1.0f + 1e-3f);
}

TransformerConfig TinyConfig(int32_t vocab = 12) {
  TransformerConfig config;
  config.vocab_size = vocab;
  config.d_model = 8;
  config.num_heads = 2;
  config.num_layers = 2;
  config.d_ff = 12;
  config.max_seq_len = 6;
  config.num_classes = 2;
  config.seed = 11;
  return config;
}

TEST(TransformerTest, PredictReturnsProbabilities) {
  TransformerClassifier model(TinyConfig());
  auto probs = model.Predict({2, 6, 7, 3, 8});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-5);
  EXPECT_GT(probs[0], 0.0);
  EXPECT_GT(probs[1], 0.0);
}

TEST(TransformerTest, TruncatesLongSequences) {
  TransformerClassifier model(TinyConfig());
  std::vector<int32_t> tokens(100, 6);
  auto probs = model.Predict(tokens);  // must not crash / read OOB
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-5);
}

TEST(TransformerTest, OutOfRangeTokensMapToPad) {
  TransformerClassifier model(TinyConfig());
  auto a = model.Predict({2, 500, 3});
  auto b = model.Predict({2, 0, 3});
  EXPECT_NEAR(a[1], b[1], 1e-6);
}

// Finite-difference gradient check of the full backward pass. For a handful
// of parameters across every tensor type, compare analytic dL/dw with
// (L(w+h) - L(w-h)) / 2h.
TEST(TransformerTest, GradientCheck) {
  TransformerClassifier model(TinyConfig());
  std::vector<int32_t> tokens = {2, 6, 9, 3, 10, 7};
  const int label = 1;

  // Accumulate gradients exactly once; snapshot them before the numeric
  // probing (Loss() does not touch gradients).
  model.ForwardBackward(tokens, label);
  auto params = model.parameters();
  std::vector<Matrix> grad_snapshot;
  grad_snapshot.reserve(params.size());
  for (Parameter* p : params) grad_snapshot.push_back(p->grad);

  const float h = 1e-3f;
  Rng rng(123);
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    // Check up to 4 random coordinates per tensor.
    size_t checks = std::min<size_t>(4, p->size());
    for (size_t c = 0; c < checks; ++c) {
      size_t idx = static_cast<size_t>(rng.Uniform(p->size()));
      float saved = p->value.data()[idx];
      float analytic = grad_snapshot[pi].data()[idx];

      p->value.data()[idx] = saved + h;
      float loss_plus = model.Loss(tokens, label);
      p->value.data()[idx] = saved - h;
      float loss_minus = model.Loss(tokens, label);
      p->value.data()[idx] = saved;

      float numeric = (loss_plus - loss_minus) / (2.0f * h);
      // Mixed absolute/relative tolerance: activations are O(1), float32.
      float tol = 2e-2f * std::max(1.0f, std::abs(numeric));
      EXPECT_NEAR(analytic, numeric, tol)
          << "parameter " << p->name << " index " << idx;
    }
  }
}

// Gradient check with segment ids and shared flags set, exercising the
// seg_/shared_ embedding gradients (an all-zero input would leave their
// row-1 gradients trivially zero).
TEST(TransformerTest, GradientCheckWithPairFeatures) {
  TransformerClassifier model(TinyConfig());
  EncodedSequence input;
  input.tokens = {2, 6, 9, 3, 9, 7};
  input.segments = {0, 0, 0, 1, 1, 1};
  input.shared = {0, 0, 1, 0, 1, 0};
  const int label = 0;

  model.ForwardBackward(input, label);
  auto params = model.parameters();
  std::vector<Matrix> grad_snapshot;
  for (Parameter* p : params) grad_snapshot.push_back(p->grad);

  const float h = 1e-3f;
  Rng rng(321);
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    if (p->name != "seg" && p->name != "shared" && p->name != "embed") continue;
    for (size_t c = 0; c < 6; ++c) {
      size_t idx = static_cast<size_t>(rng.Uniform(p->size()));
      float saved = p->value.data()[idx];
      float analytic = grad_snapshot[pi].data()[idx];
      p->value.data()[idx] = saved + h;
      float loss_plus = model.Loss(input, label);
      p->value.data()[idx] = saved - h;
      float loss_minus = model.Loss(input, label);
      p->value.data()[idx] = saved;
      float numeric = (loss_plus - loss_minus) / (2.0f * h);
      float tol = 2e-2f * std::max(1.0f, std::abs(numeric));
      EXPECT_NEAR(analytic, numeric, tol)
          << "parameter " << p->name << " index " << idx;
    }
  }
}

TEST(TransformerTest, PairFeaturesChangeThePrediction) {
  TransformerClassifier model(TinyConfig());
  EncodedSequence plain{{2, 6, 9, 3, 9, 7}, {}, {}};
  EncodedSequence flagged = plain;
  flagged.segments = {0, 0, 0, 1, 1, 1};
  flagged.shared = {0, 0, 1, 0, 1, 0};
  auto a = model.Predict(plain);
  auto b = model.Predict(flagged);
  EXPECT_NE(a[1], b[1]);
}

TEST(TransformerTest, IdentityAttentionInitToggle) {
  TransformerConfig with = TinyConfig();
  TransformerConfig without = TinyConfig();
  without.identity_attention_init = false;
  TransformerClassifier m1(with), m2(without);
  // Same seed but different init paths: predictions must differ, and both
  // must remain valid probability distributions.
  auto p1 = m1.Predict({2, 6, 7, 8});
  auto p2 = m2.Predict({2, 6, 7, 8});
  EXPECT_NE(p1[1], p2[1]);
  EXPECT_NEAR(p1[0] + p1[1], 1.0, 1e-5);
  EXPECT_NEAR(p2[0] + p2[1], 1.0, 1e-5);
}

TEST(TransformerTest, LearnsSeparableTask) {
  // Token 6 present => class 1; absent => class 0.
  TransformerConfig config = TinyConfig(20);
  TransformerClassifier model(config);
  Rng rng(17);
  std::vector<TrainExample> train, val;
  for (int i = 0; i < 300; ++i) {
    TrainExample ex;
    ex.label = static_cast<int>(rng.Uniform(2));
    ex.tokens = {2};  // [CLS]
    for (int t = 0; t < 4; ++t) {
      int32_t tok = static_cast<int32_t>(7 + rng.Uniform(12));
      ex.tokens.push_back(tok);
    }
    if (ex.label == 1) {
      ex.tokens[1 + rng.Uniform(4)] = 6;
    }
    (i % 5 == 0 ? val : train).push_back(ex);
  }
  Trainer::Options opts;
  opts.epochs = 8;
  opts.batch_size = 8;
  opts.lr = 3e-3f;
  Trainer trainer(opts);
  TrainResult result = trainer.Fit(&model, train, val);
  EpochStats final_stats = Trainer::Evaluate(model, val);
  EXPECT_GT(final_stats.val_metrics.Accuracy(), 0.93)
      << "best epoch " << result.best_epoch;
}

TEST(TransformerTest, SaveLoadRoundTrip) {
  TransformerConfig config = TinyConfig();
  TransformerClassifier model(config);
  // Perturb away from init so the round-trip is meaningful.
  model.ForwardBackward({2, 6, 7}, 1);
  model.Step();

  std::string path = ::testing::TempDir() + "/transformer_roundtrip.bin";
  ASSERT_TRUE(model.Save(path).ok());

  TransformerClassifier loaded(config);
  ASSERT_TRUE(loaded.Load(path).ok());
  auto a = model.Predict({2, 6, 9, 3});
  auto b = loaded.Predict({2, 6, 9, 3});
  EXPECT_FLOAT_EQ(a[0], b[0]);
  EXPECT_FLOAT_EQ(a[1], b[1]);
}

TEST(TransformerTest, LoadRejectsConfigMismatch) {
  TransformerClassifier model(TinyConfig());
  std::string path = ::testing::TempDir() + "/transformer_mismatch.bin";
  ASSERT_TRUE(model.Save(path).ok());

  TransformerConfig other = TinyConfig();
  other.d_model = 16;
  other.num_heads = 4;
  TransformerClassifier wrong(other);
  EXPECT_FALSE(wrong.Load(path).ok());
}

TEST(TransformerTest, NumParametersPositiveAndStable) {
  TransformerClassifier model(TinyConfig());
  size_t n = model.NumParameters();
  EXPECT_GT(n, 100u);
  EXPECT_EQ(n, model.NumParameters());
}

TEST(TrainerTest, EvaluateConfusionCounts) {
  TransformerClassifier model(TinyConfig());
  std::vector<TrainExample> examples = {
      {{2, 6, 7}, {}, {}, 1}, {{2, 8, 9}, {}, {}, 0}, {{2, 10, 11}, {}, {}, 1}};
  EpochStats stats = Trainer::Evaluate(model, examples);
  const auto& m = stats.val_metrics;
  EXPECT_EQ(m.tp + m.fp + m.fn + m.tn, 3);
  EXPECT_GT(stats.val_loss, 0.0);
}

TEST(TrainerTest, BestEpochRestored) {
  // With zero epochs of training data the trainer still behaves sanely.
  TransformerClassifier model(TinyConfig());
  Trainer::Options opts;
  opts.epochs = 2;
  Trainer trainer(opts);
  std::vector<TrainExample> train = {{{2, 6, 7}, {}, {}, 1},
                                     {{2, 8, 9}, {}, {}, 0}};
  std::vector<TrainExample> val = train;
  TrainResult result = trainer.Fit(&model, train, val);
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_LT(result.best_epoch, 2u);
  EXPECT_GT(result.train_seconds, 0.0);
}

// --- Batched inference (PredictBatch) -------------------------------------
// The ScoreBatch/PredictBatch contract is bitwise: row s of the packed
// forward must be bit-for-bit the single-sequence Predict(inputs[s]).

/// Mixed-length fixture, including a sequence longer than max_seq_len (6)
/// that the model must truncate and segment/shared-annotated sequences.
std::vector<EncodedSequence> MixedSequences() {
  std::vector<EncodedSequence> inputs;
  inputs.push_back({{2, 6, 7, 3}, {}, {}});
  inputs.push_back({{2, 9}, {}, {}});
  inputs.push_back({{2, 6, 9, 3, 9, 7}, {0, 0, 0, 1, 1, 1}, {0, 1, 0, 0, 1, 0}});
  inputs.push_back({std::vector<int32_t>(100, 6), {}, {}});  // truncated
  inputs.push_back({{5}, {}, {}});
  return inputs;
}

TEST(TransformerTest, PredictBatchBitwiseEqualsPredict) {
  TransformerClassifier model(TinyConfig());
  const std::vector<EncodedSequence> inputs = MixedSequences();
  const Matrix probs =
      model.PredictBatch(Span<const EncodedSequence>(inputs.data(), inputs.size()));
  ASSERT_EQ(probs.rows(), inputs.size());
  ASSERT_EQ(probs.cols(), 2u);
  for (size_t s = 0; s < inputs.size(); ++s) {
    const std::vector<float> single = model.Predict(inputs[s]);
    for (size_t c = 0; c < 2; ++c) {
      // EXPECT_EQ, not NEAR: batching must not change a single bit.
      EXPECT_EQ(probs.at(s, c), single[c]) << "sequence " << s << " class " << c;
    }
  }
}

TEST(TransformerTest, PredictBatchIndependentOfBatchSplit) {
  TransformerClassifier model(TinyConfig());
  const std::vector<EncodedSequence> inputs = MixedSequences();
  const Matrix all =
      model.PredictBatch(Span<const EncodedSequence>(inputs.data(), inputs.size()));
  // Every contiguous two-way split reproduces the full-batch rows exactly.
  for (size_t cut = 0; cut <= inputs.size(); ++cut) {
    const Matrix lo = model.PredictBatch(
        Span<const EncodedSequence>(inputs.data(), cut));
    const Matrix hi = model.PredictBatch(
        Span<const EncodedSequence>(inputs.data() + cut, inputs.size() - cut));
    for (size_t s = 0; s < inputs.size(); ++s) {
      const Matrix& part = s < cut ? lo : hi;
      const size_t r = s < cut ? s : s - cut;
      for (size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(all.at(s, c), part.at(r, c))
            << "cut " << cut << " sequence " << s;
      }
    }
  }
}

TEST(TransformerTest, PredictBatchEmptyBatch) {
  TransformerClassifier model(TinyConfig());
  const Matrix probs = model.PredictBatch(Span<const EncodedSequence>());
  EXPECT_EQ(probs.rows(), 0u);
}

}  // namespace
}  // namespace gralmatch

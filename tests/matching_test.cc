// Tests for the matching module: serializers, pair sampling, the "-15K"
// filter, baseline matchers, model variants and the transformer matcher
// (fine-tuning on an easy task + persistence round-trip).

#include <algorithm>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "matching/baselines.h"
#include "matching/cascade_matcher.h"
#include "matching/pair_sampling.h"
#include "matching/serializer.h"
#include "matching/transformer_matcher.h"
#include "matching/variants.h"

namespace gralmatch {
namespace {

SubwordVocab MakeVocab() {
  SubwordVocab vocab;
  vocab.Train({"acme corp zurich switzerland", "name city isin cusip",
               "beta industries basel", "crowd strike platforms"},
              1000);
  return vocab;
}

Record MakeCompany(SourceId src, const char* name, const char* city) {
  Record rec(src, RecordKind::kCompany);
  rec.Set("name", name);
  rec.Set("city", city);
  return rec;
}

TEST(SerializerTest, PlainEncodesValuesOnly) {
  SubwordVocab vocab = MakeVocab();
  Record rec = MakeCompany(0, "Acme Corp", "Zurich");
  rec.Set("_event", "acquisition");  // metadata must be skipped
  PlainSerializer plain;
  std::vector<int32_t> tokens;
  plain.AppendRecordTokens(rec, vocab, &tokens);
  ASSERT_FALSE(tokens.empty());
  for (int32_t id : tokens) {
    EXPECT_NE(id, SpecialTokens::kCol);
    EXPECT_NE(id, SpecialTokens::kVal);
  }
  // "acquisition" tokens must not appear: encoding "Acme Corp Zurich" only.
  auto direct = vocab.EncodeText("Acme Corp Zurich");
  EXPECT_EQ(tokens, direct);
}

TEST(SerializerTest, DittoEncodesTagsAndColumnNames) {
  SubwordVocab vocab = MakeVocab();
  Record rec = MakeCompany(0, "Acme Corp", "Zurich");
  DittoSerializer ditto;
  std::vector<int32_t> tokens;
  ditto.AppendRecordTokens(rec, vocab, &tokens);
  size_t cols = std::count(tokens.begin(), tokens.end(),
                           static_cast<int32_t>(SpecialTokens::kCol));
  size_t vals = std::count(tokens.begin(), tokens.end(),
                           static_cast<int32_t>(SpecialTokens::kVal));
  EXPECT_EQ(cols, 2u);
  EXPECT_EQ(vals, 2u);

  // Ditto encoding is strictly longer than plain for the same record.
  PlainSerializer plain;
  std::vector<int32_t> plain_tokens;
  plain.AppendRecordTokens(rec, vocab, &plain_tokens);
  EXPECT_GT(tokens.size(), plain_tokens.size());
}

TEST(SerializerTest, EncodePairStructure) {
  SubwordVocab vocab = MakeVocab();
  Record a = MakeCompany(0, "Acme Corp", "Zurich");
  Record b = MakeCompany(1, "Beta Industries", "Basel");
  PlainSerializer plain;
  EncodedSequence seq = plain.EncodePair(a, b, vocab, 64);
  ASSERT_GT(seq.tokens.size(), 3u);
  EXPECT_EQ(seq.tokens[0], SpecialTokens::kCls);
  EXPECT_EQ(std::count(seq.tokens.begin(), seq.tokens.end(),
                       static_cast<int32_t>(SpecialTokens::kSep)),
            1);
  EXPECT_LE(seq.tokens.size(), 64u);
  // Parallel feature vectors are aligned with the tokens.
  EXPECT_EQ(seq.segments.size(), seq.tokens.size());
  EXPECT_EQ(seq.shared.size(), seq.tokens.size());
  // Segment ids switch from 0 to 1 at the [SEP].
  EXPECT_EQ(seq.segments.front(), 0);
  EXPECT_EQ(seq.segments.back(), 1);
}

TEST(SerializerTest, SharedFlagsMarkCrossRecordTokens) {
  SubwordVocab vocab = MakeVocab();
  Record a = MakeCompany(0, "Acme Corp", "Zurich");
  Record b = MakeCompany(1, "Acme Industries", "Basel");  // shares "acme"
  PlainSerializer plain;
  EncodedSequence seq = plain.EncodePair(a, b, vocab, 64);
  int32_t acme_id = vocab.WordId("acme");
  ASSERT_NE(acme_id, SpecialTokens::kUnk);
  size_t shared_count = 0;
  for (size_t i = 0; i < seq.tokens.size(); ++i) {
    if (seq.tokens[i] == acme_id) {
      EXPECT_EQ(seq.shared[i], 1);
      ++shared_count;
    } else if (seq.tokens[i] == vocab.WordId("zurich")) {
      EXPECT_EQ(seq.shared[i], 0);  // only on one side
    }
  }
  EXPECT_EQ(shared_count, 2u);  // once per side
}

TEST(SerializerTest, TruncationIsSymmetric) {
  SubwordVocab vocab = MakeVocab();
  Record a(0, RecordKind::kCompany);
  std::string huge;
  for (int i = 0; i < 200; ++i) huge += "acme ";
  a.Set("name", huge);
  Record b = MakeCompany(1, "Beta Industries", "Basel");

  PlainSerializer plain;
  EncodedSequence seq = plain.EncodePair(a, b, vocab, 20);
  EXPECT_LE(seq.tokens.size(), 20u);
  // Record B must still be present after the [SEP].
  auto sep = std::find(seq.tokens.begin(), seq.tokens.end(),
                       static_cast<int32_t>(SpecialTokens::kSep));
  ASSERT_NE(sep, seq.tokens.end());
  EXPECT_GT(std::distance(sep, seq.tokens.end()), 3);
}

Dataset MakeSamplingDataset() {
  Dataset ds;
  Rng rng(4);
  // 40 entities x 3 records across 3 sources.
  for (EntityId e = 0; e < 40; ++e) {
    for (SourceId s = 0; s < 3; ++s) {
      Record rec(s, RecordKind::kCompany);
      rec.Set("name", "company" + std::to_string(e));
      ds.truth.Assign(ds.records.Add(std::move(rec)), e);
    }
  }
  return ds;
}

TEST(PairSamplingTest, RatioAndSplitContainment) {
  Dataset ds = MakeSamplingDataset();
  Rng rng(9);
  GroupSplit split = SplitByGroups(ds.truth, &rng);

  PairSamplingOptions opts;
  opts.negatives_per_positive = 5.0;
  auto pairs = SamplePairs(ds, split, SplitPart::kTrain, opts);

  size_t pos = 0, neg = 0;
  for (const auto& lp : pairs) {
    EXPECT_EQ(split.part(lp.pair.a), SplitPart::kTrain);
    EXPECT_EQ(split.part(lp.pair.b), SplitPart::kTrain);
    EXPECT_EQ(ds.truth.IsMatch(lp.pair), lp.label == 1);
    // Negatives are cross-source by construction.
    if (lp.label == 0) {
      EXPECT_NE(ds.records.at(lp.pair.a).source(),
                ds.records.at(lp.pair.b).source());
      ++neg;
    } else {
      ++pos;
    }
  }
  EXPECT_GT(pos, 0u);
  EXPECT_NEAR(static_cast<double>(neg) / pos, 5.0, 0.5);
}

TEST(PairSamplingTest, MaxPositivesCapRespected) {
  Dataset ds = MakeSamplingDataset();
  Rng rng(9);
  GroupSplit split = SplitByGroups(ds.truth, &rng);
  PairSamplingOptions opts;
  opts.max_positives = 10;
  auto pairs = SamplePairs(ds, split, SplitPart::kTrain, opts);
  size_t pos = 0;
  for (const auto& lp : pairs) pos += lp.label;
  EXPECT_EQ(pos, 10u);
}

TEST(PairSamplingTest, FilterEasyPairsDropsAcquisitionAndHardPositives) {
  Dataset ds;
  auto add = [&](SourceId src, const char* name, const char* isin,
                 const char* event, EntityId e) {
    Record rec(src, RecordKind::kCompany);
    rec.Set("name", name);
    if (isin) rec.Set("isin", isin);
    if (event) rec.Set("_event", event);
    RecordId id = ds.records.Add(std::move(rec));
    ds.truth.Assign(id, e);
    return id;
  };
  RecordId a = add(0, "Acme Corp", "US1", nullptr, 1);
  RecordId b = add(1, "Totally Different Name", "US1", nullptr, 1);  // id-easy
  RecordId c = add(0, "Beta Ltd", nullptr, "acquisition", 2);
  RecordId d = add(1, "Beta Ltd", nullptr, nullptr, 2);
  RecordId e2 = add(0, "Gamma Industries", nullptr, nullptr, 3);
  RecordId f = add(1, "Entirely Other Words", nullptr, nullptr, 3);  // hard

  std::vector<LabeledPair> pairs = {
      {RecordPair(a, b), 1},   // easy: shared identifier
      {RecordPair(c, d), 1},   // acquisition: dropped
      {RecordPair(e2, f), 1},  // hard positive: dropped
      {RecordPair(a, d), 0},   // negative: kept
  };
  auto filtered = FilterEasyPairs(ds, pairs, 0);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].pair, RecordPair(a, b));
  EXPECT_EQ(filtered[1].pair, RecordPair(a, d));

  auto capped = FilterEasyPairs(ds, pairs, 1);
  EXPECT_EQ(capped.size(), 1u);
}

TEST(BaselineTest, HeuristicIdMatcher) {
  Record a(0, RecordKind::kSecurity);
  a.Set("isin", "US1|US2");
  Record b(1, RecordKind::kSecurity);
  b.Set("isin", "US2");
  Record c(1, RecordKind::kSecurity);
  c.Set("isin", "US3");
  HeuristicIdMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.MatchProbability(a, b), 1.0);
  EXPECT_DOUBLE_EQ(matcher.MatchProbability(a, c), 0.0);
  EXPECT_TRUE(matcher.IsMatch(a, b));
}

TEST(BaselineTest, TfidfLogRegLearnsNameSimilarity) {
  // Train on a tiny synthetic task: matches share names.
  RecordTable records;
  std::vector<LabeledPair> pairs;
  Rng rng(13);
  for (int e = 0; e < 30; ++e) {
    Record r1(0, RecordKind::kCompany);
    r1.Set("name", "entity" + std::to_string(e) + " holdings");
    Record r2(1, RecordKind::kCompany);
    r2.Set("name", "entity" + std::to_string(e) + " holdings inc");
    RecordId a = records.Add(std::move(r1));
    RecordId b = records.Add(std::move(r2));
    pairs.push_back({RecordPair(a, b), 1});
    if (e > 0) {
      pairs.push_back({RecordPair(a, b - 2), 0});  // previous entity
    }
  }
  TfidfLogRegMatcher matcher;
  matcher.Train(records, pairs);

  int correct = 0, total = 0;
  for (const auto& lp : pairs) {
    bool predicted =
        matcher.IsMatch(records.at(lp.pair.a), records.at(lp.pair.b));
    correct += predicted == (lp.label == 1);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(BaselineTest, SlowLlmProjection) {
  SlowLlmMatcher llm(std::make_unique<HeuristicIdMatcher>(), 7.0);
  // The paper's arithmetic: ~1.14M pairs at 7 s/pair is 90+ days.
  double seconds = llm.ProjectedSeconds(1140000);
  EXPECT_GT(seconds / 86400.0, 90.0);
  EXPECT_DOUBLE_EQ(llm.seconds_per_pair(), 7.0);
}

TEST(VariantsTest, ConfigsMatchPaperRoles) {
  auto d128 = MakeVariantConfig(ModelVariant::kDitto128, 1);
  auto d256 = MakeVariantConfig(ModelVariant::kDitto256, 1);
  auto all = MakeVariantConfig(ModelVariant::kDistilBert128All, 1);
  auto small = MakeVariantConfig(ModelVariant::kDistilBert128_15K, 1);
  EXPECT_TRUE(d128.ditto_encoding);
  EXPECT_TRUE(d256.ditto_encoding);
  EXPECT_FALSE(all.ditto_encoding);
  EXPECT_EQ(d256.max_seq_len, 2 * d128.max_seq_len);
  EXPECT_EQ(all.max_seq_len, d128.max_seq_len);
  EXPECT_TRUE(VariantUsesReducedTraining(ModelVariant::kDistilBert128_15K));
  EXPECT_FALSE(VariantUsesReducedTraining(ModelVariant::kDitto128));
  EXPECT_EQ(AllModelVariants().size(), 4u);
  EXPECT_EQ(VariantDisplayName(ModelVariant::kDitto128), "DITTO (128)");
}

// End-to-end: fine-tune the transformer matcher on an easy synthetic task
// and verify it separates matches from non-matches, then round-trip it
// through Save/Load.
TEST(TransformerMatcherTest, FineTunesAndPersists) {
  RecordTable records;
  std::vector<LabeledPair> train, val;
  for (int e = 0; e < 60; ++e) {
    Record r1(0, RecordKind::kCompany);
    r1.Set("name", "alpha" + std::to_string(e) + " systems");
    Record r2(1, RecordKind::kCompany);
    r2.Set("name", "alpha" + std::to_string(e) + " systems ltd");
    RecordId a = records.Add(std::move(r1));
    RecordId b = records.Add(std::move(r2));
    auto& sink = (e % 5 == 0) ? val : train;
    sink.push_back({RecordPair(a, b), 1});
    if (e > 0) sink.push_back({RecordPair(a, b - 2), 0});
  }

  TransformerMatcherConfig config;
  config.display_name = "test-model";
  config.max_seq_len = 24;
  config.trainer.epochs = 4;
  config.trainer.lr = 3e-3f;
  config.seed = 7;
  TransformerMatcher matcher(config);
  matcher.BuildVocab(records);
  ASSERT_TRUE(matcher.ready());

  TrainResult result = matcher.FineTune(records, train, val);
  EXPECT_EQ(result.epochs.size(), 4u);

  // Count separation quality on the validation pairs.
  int correct = 0, total = 0;
  for (const auto& lp : val) {
    bool predicted =
        matcher.IsMatch(records.at(lp.pair.a), records.at(lp.pair.b));
    correct += predicted == (lp.label == 1);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);

  // Persistence round-trip preserves predictions exactly.
  std::string dir = ::testing::TempDir() + "/matcher_roundtrip";
  ASSERT_TRUE(matcher.Save(dir).ok());
  TransformerMatcher loaded(config);
  ASSERT_TRUE(loaded.Load(dir).ok());
  const Record& a = records.at(0);
  const Record& b = records.at(1);
  EXPECT_NEAR(matcher.MatchProbability(a, b), loaded.MatchProbability(a, b),
              1e-6);
}

TEST(TransformerMatcherTest, LoadFromMissingDirFails) {
  TransformerMatcherConfig config;
  TransformerMatcher matcher(config);
  EXPECT_FALSE(matcher.Load("/nonexistent/model/dir").ok());
}

// --- CascadeMatcher -------------------------------------------------------

/// Deterministic test matcher: the score of a pair is record a's "p" field
/// (exact decimal fractions, no libm), so each test pair's gate score is
/// chosen directly. Counts how its pairs were scored.
class FieldScoreMatcher : public PairwiseMatcher {
 public:
  explicit FieldScoreMatcher(std::string display) : display_(std::move(display)) {}
  std::string name() const override { return display_; }
  double MatchProbability(const Record& a, const Record& b) const override {
    (void)b;
    ++probability_calls;
    return std::stod(std::string(a.Get("p")));
  }
  void ScoreBatch(const RecordTable& records, Span<const RecordPair> pairs,
                  Span<double> out) const override {
    ++batch_calls;
    batch_pairs_scored += pairs.size();
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = std::stod(std::string(records.at(pairs[i].a).Get("p")));
    }
  }
  std::string Fingerprint() const override { return "field|" + display_; }

  mutable size_t probability_calls = 0;
  mutable size_t batch_calls = 0;
  mutable size_t batch_pairs_scored = 0;

 private:
  std::string display_;
};

/// Records (2i, 2i+1) per pair; record 2i carries the gate score in "p" and
/// record 2i+1 an unrelated value the expensive matcher never sees (both
/// matchers read the pair's `a` record, which is always the even id).
struct CascadeFixture {
  RecordTable records;
  std::vector<RecordPair> pairs;

  explicit CascadeFixture(const std::vector<const char*>& gate_scores) {
    for (const char* score : gate_scores) {
      Record r1(0, RecordKind::kCompany);
      r1.Set("p", score);
      Record r2(1, RecordKind::kCompany);
      r2.Set("p", "0.0");
      RecordId a = records.Add(std::move(r1));
      RecordId b = records.Add(std::move(r2));
      pairs.push_back(RecordPair(a, b));
    }
  }
};

TEST(CascadeMatcherTest, BandSemantics) {
  // Band [0.25, 0.75]: 0.1 and 0.9 are gate-resolved, the rest escalate —
  // including both inclusive endpoints.
  CascadeFixture fx({"0.1", "0.25", "0.5", "0.75", "0.9"});
  FieldScoreMatcher gate("gate");
  HeuristicIdMatcher expensive;  // no identifiers anywhere -> always 0.0
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.75;
  CascadeMatcher cascade(&gate, &expensive, opts);

  const std::vector<double> expected = {0.1, 0.0, 0.0, 0.0, 0.9};
  for (size_t i = 0; i < fx.pairs.size(); ++i) {
    EXPECT_EQ(cascade.MatchProbability(fx.records.at(fx.pairs[i].a),
                                       fx.records.at(fx.pairs[i].b)),
              expected[i])
        << "pair " << i;
  }
  CascadeMatcher::Stats stats = cascade.stats();
  EXPECT_EQ(stats.gate_resolved, 2u);
  EXPECT_EQ(stats.escalated, 3u);

  cascade.ResetStats();
  stats = cascade.stats();
  EXPECT_EQ(stats.gate_resolved, 0u);
  EXPECT_EQ(stats.escalated, 0u);
}

TEST(CascadeMatcherTest, ScoreBatchMatchesPerPairBitwise) {
  CascadeFixture fx({"0.0", "0.125", "0.25", "0.375", "0.5", "0.625", "0.75",
                     "0.875", "1.0"});
  FieldScoreMatcher gate("gate");
  HeuristicIdMatcher expensive;
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.75;
  CascadeMatcher batched(&gate, &expensive, opts);
  CascadeMatcher per_pair(&gate, &expensive, opts);

  std::vector<double> batch_scores(fx.pairs.size(), -1.0);
  batched.ScoreBatch(fx.records,
                     Span<const RecordPair>(fx.pairs.data(), fx.pairs.size()),
                     Span<double>(batch_scores.data(), batch_scores.size()));
  for (size_t i = 0; i < fx.pairs.size(); ++i) {
    const double single = per_pair.MatchProbability(
        fx.records.at(fx.pairs[i].a), fx.records.at(fx.pairs[i].b));
    EXPECT_EQ(batch_scores[i], single) << "pair " << i;
  }
  // Identical counter trajectories through either path.
  EXPECT_EQ(batched.stats().gate_resolved, per_pair.stats().gate_resolved);
  EXPECT_EQ(batched.stats().escalated, per_pair.stats().escalated);
}

TEST(CascadeMatcherTest, ScoreBatchEscalatesOnlyTheBand) {
  CascadeFixture fx({"0.1", "0.5", "0.9", "0.5", "0.1"});
  FieldScoreMatcher gate("gate");
  FieldScoreMatcher expensive("expensive");
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.75;
  CascadeMatcher cascade(&gate, &expensive, opts);

  std::vector<double> scores(fx.pairs.size(), -1.0);
  cascade.ScoreBatch(fx.records,
                     Span<const RecordPair>(fx.pairs.data(), fx.pairs.size()),
                     Span<double>(scores.data(), scores.size()));
  // One gate batch over all five pairs, one expensive batch over exactly the
  // two in-band pairs — the whole point of the cascade.
  EXPECT_EQ(gate.batch_calls, 1u);
  EXPECT_EQ(gate.batch_pairs_scored, 5u);
  EXPECT_EQ(expensive.batch_calls, 1u);
  EXPECT_EQ(expensive.batch_pairs_scored, 2u);
  EXPECT_EQ(cascade.stats().escalated, 2u);
  EXPECT_EQ(cascade.stats().gate_resolved, 3u);
}

TEST(CascadeMatcherTest, ExactReferenceReproducesExpensiveBitwise) {
  CascadeFixture fx({"0.1", "0.5", "0.9"});
  FieldScoreMatcher gate("gate");
  HeuristicIdMatcher expensive;
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.25;
  opts.upper_threshold = 0.75;
  opts.exact_reference = true;
  CascadeMatcher cascade(&gate, &expensive, opts);

  std::vector<double> scores(fx.pairs.size(), -1.0);
  cascade.ScoreBatch(fx.records,
                     Span<const RecordPair>(fx.pairs.data(), fx.pairs.size()),
                     Span<double>(scores.data(), scores.size()));
  for (size_t i = 0; i < fx.pairs.size(); ++i) {
    EXPECT_EQ(scores[i],
              expensive.MatchProbability(fx.records.at(fx.pairs[i].a),
                                         fx.records.at(fx.pairs[i].b)));
  }
  // The gate still ran and the stats still describe the would-be cascade.
  EXPECT_EQ(cascade.stats().gate_resolved, 2u);
  EXPECT_EQ(cascade.stats().escalated, 1u);

  // Per-pair path agrees with the batch path in reference mode too.
  CascadeMatcher per_pair(&gate, &expensive, opts);
  for (size_t i = 0; i < fx.pairs.size(); ++i) {
    EXPECT_EQ(per_pair.MatchProbability(fx.records.at(fx.pairs[i].a),
                                        fx.records.at(fx.pairs[i].b)),
              scores[i]);
  }
}

TEST(CascadeMatcherTest, FingerprintCoversThresholdsModeAndInners) {
  FieldScoreMatcher gate("gate");
  FieldScoreMatcher other_gate("other-gate");
  HeuristicIdMatcher expensive;
  CascadeMatcher::Options base;
  base.lower_threshold = 0.25;
  base.upper_threshold = 0.75;

  CascadeMatcher reference(&gate, &expensive, base);
  CascadeMatcher same(&gate, &expensive, base);
  // Equal configuration => equal fingerprint (cache hits stay possible).
  EXPECT_EQ(reference.Fingerprint(), same.Fingerprint());

  // Any knob that can move a score must change the fingerprint (the
  // matcher.h contract): lower threshold, upper threshold, reference mode,
  // either inner matcher.
  CascadeMatcher::Options lower = base;
  lower.lower_threshold = 0.2;
  EXPECT_NE(CascadeMatcher(&gate, &expensive, lower).Fingerprint(),
            reference.Fingerprint());

  CascadeMatcher::Options upper = base;
  upper.upper_threshold = 0.8;
  EXPECT_NE(CascadeMatcher(&gate, &expensive, upper).Fingerprint(),
            reference.Fingerprint());

  CascadeMatcher::Options ref_mode = base;
  ref_mode.exact_reference = true;
  EXPECT_NE(CascadeMatcher(&gate, &expensive, ref_mode).Fingerprint(),
            reference.Fingerprint());

  EXPECT_NE(CascadeMatcher(&other_gate, &expensive, base).Fingerprint(),
            reference.Fingerprint());
  EXPECT_NE(CascadeMatcher(&gate, &gate, base).Fingerprint(),
            reference.Fingerprint());
}

TEST(CascadeMatcherTest, NameDescribesBothTiers) {
  FieldScoreMatcher gate("gate");
  HeuristicIdMatcher expensive;
  CascadeMatcher cascade(&gate, &expensive, {});
  EXPECT_EQ(cascade.name(), "Cascade(gate->" + expensive.name() + ")");
}

}  // namespace
}  // namespace gralmatch

// Parameterized property suites (TEST_P sweeps over seeds/configurations):
// invariants that must hold for *every* random instance — cleanup
// guarantees, blocking soundness, generator well-formedness, serializer
// bounds, metric consistency.

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "blocking/id_overlap.h"
#include "blocking/incremental_index.h"
#include "blocking/issuer_match.h"
#include "common/union_find.h"
#include "blocking/token_overlap.h"
#include "core/cleanup.h"
#include "core/embeddedness.h"
#include "core/label_propagation.h"
#include "datagen/financial_gen.h"
#include "datagen/identifiers.h"
#include "datagen/wdc_gen.h"
#include "eval/metrics.h"
#include "eval/pr_curve.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"
#include "matching/cascade_matcher.h"
#include "matching/serializer.h"
#include "matching/transformer_matcher.h"
#include "matching/variants.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Cleanup invariants on random graphs.
// ---------------------------------------------------------------------------

class CleanupPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Random graph: several dense communities plus random cross edges.
  Graph MakeNoisyCommunities(Rng* rng, size_t* num_nodes) {
    size_t communities = 3 + rng->Uniform(4);
    std::vector<std::pair<size_t, size_t>> spans;  // [begin, end)
    size_t next = 0;
    for (size_t c = 0; c < communities; ++c) {
      size_t size = 2 + rng->Uniform(9);
      spans.emplace_back(next, next + size);
      next += size;
    }
    *num_nodes = next;
    Graph g(next);
    for (const auto& [begin, end] : spans) {
      // Discard audited: synthetic in-range endpoints, so AddEdge cannot
      // fail; the edge ids are unused (here and for the bridges below).
      for (size_t a = begin; a < end; ++a) {
        // Ring for connectivity + random chords.
        size_t b = a + 1 == end ? begin : a + 1;
        if (b != a) (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        for (size_t c2 = a + 2; c2 < end; ++c2) {
          if (rng->Bernoulli(0.5)) {
            (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(c2));
          }
        }
      }
    }
    size_t bridges = rng->Uniform(4);
    for (size_t k = 0; k < bridges; ++k) {
      NodeId u = static_cast<NodeId>(rng->Uniform(next));
      NodeId v = static_cast<NodeId>(rng->Uniform(next));
      if (u != v) (void)g.AddEdge(u, v);
    }
    return g;
  }
};

TEST_P(CleanupPropertyTest, AllFinalGroupsRespectMu) {
  Rng rng(GetParam());
  size_t n = 0;
  Graph g = MakeNoisyCommunities(&rng, &n);
  GraphCleanupConfig config;
  config.gamma = 12;
  config.mu = 6;
  GraLMatchCleanup cleanup(config);
  auto groups = cleanup.Run(&g);
  for (const auto& comp : groups) {
    EXPECT_LE(comp.size(), config.mu);
  }
}

TEST_P(CleanupPropertyTest, GroupsPartitionTheNodeSet) {
  Rng rng(GetParam() ^ 0x10);
  size_t n = 0;
  Graph g = MakeNoisyCommunities(&rng, &n);
  GraLMatchCleanup cleanup(GraphCleanupConfig{10, 5});
  auto groups = cleanup.Run(&g);
  std::vector<int> seen(n, 0);
  for (const auto& comp : groups) {
    for (NodeId u : comp) ++seen[static_cast<size_t>(u)];
  }
  for (size_t u = 0; u < n; ++u) {
    EXPECT_EQ(seen[u], 1) << "node " << u;
  }
}

TEST_P(CleanupPropertyTest, CleanupOnlyRemovesEdges) {
  Rng rng(GetParam() ^ 0x20);
  size_t n = 0;
  Graph g = MakeNoisyCommunities(&rng, &n);
  size_t edges_before = g.num_edges_alive();
  GraLMatchCleanup cleanup(GraphCleanupConfig{10, 4});
  CleanupStats stats;
  cleanup.Run(&g, &stats);
  EXPECT_LE(g.num_edges_alive(), edges_before);
  EXPECT_EQ(edges_before - g.num_edges_alive(),
            stats.min_cut_edges_removed + stats.betweenness_edges_removed);
}

TEST_P(CleanupPropertyTest, DeterministicAcrossRuns) {
  Rng rng1(GetParam() ^ 0x30), rng2(GetParam() ^ 0x30);
  size_t n1 = 0, n2 = 0;
  Graph a = MakeNoisyCommunities(&rng1, &n1);
  Graph b = MakeNoisyCommunities(&rng2, &n2);
  GraLMatchCleanup cleanup(GraphCleanupConfig{12, 5});
  EXPECT_EQ(cleanup.Run(&a), cleanup.Run(&b));
}

TEST_P(CleanupPropertyTest, SizeAgnosticCleanupsAlsoPartition) {
  Rng rng(GetParam() ^ 0x40);
  size_t n = 0;
  Graph g = MakeNoisyCommunities(&rng, &n);
  auto check_partition = [&](const std::vector<std::vector<NodeId>>& groups) {
    std::vector<int> seen(n, 0);
    for (const auto& comp : groups) {
      for (NodeId u : comp) ++seen[static_cast<size_t>(u)];
    }
    for (size_t u = 0; u < n; ++u) EXPECT_EQ(seen[u], 1);
  };
  check_partition(LabelPropagationGroups(g));
  Graph g2 = g;
  check_partition(EmbeddednessGroups(&g2));
}

TEST_P(CleanupPropertyTest, ParallelCleanupMatchesSerialReference) {
  for (size_t threads : {2u, 3u, 8u}) {
    Rng rng_serial(GetParam() ^ 0x50), rng_parallel(GetParam() ^ 0x50);
    size_t n1 = 0, n2 = 0;
    Graph serial_graph = MakeNoisyCommunities(&rng_serial, &n1);
    Graph parallel_graph = MakeNoisyCommunities(&rng_parallel, &n2);
    ASSERT_EQ(n1, n2);

    // Small gamma/mu so several components are oversized and both phases run.
    GraLMatchCleanup cleanup(GraphCleanupConfig{8, 4});
    CleanupStats serial_stats, parallel_stats;
    auto serial_groups = cleanup.Run(&serial_graph, &serial_stats);
    ThreadPool pool(threads);
    auto parallel_groups =
        cleanup.Run(&parallel_graph, &parallel_stats, &pool);

    EXPECT_EQ(parallel_groups, serial_groups) << "threads=" << threads;
    EXPECT_EQ(parallel_graph.num_edges_alive(), serial_graph.num_edges_alive());
    EXPECT_EQ(parallel_stats.min_cut_calls, serial_stats.min_cut_calls);
    EXPECT_EQ(parallel_stats.min_cut_edges_removed,
              serial_stats.min_cut_edges_removed);
    EXPECT_EQ(parallel_stats.betweenness_calls, serial_stats.betweenness_calls);
    EXPECT_EQ(parallel_stats.betweenness_edges_removed,
              serial_stats.betweenness_edges_removed);
    // The exact removed-edge *set* must agree, not just the count.
    for (EdgeId e = 0; e < static_cast<EdgeId>(serial_graph.num_edges_total());
         ++e) {
      ASSERT_EQ(parallel_graph.edge_alive(e), serial_graph.edge_alive(e))
          << "threads=" << threads << " edge=" << e;
    }
  }
}

TEST_P(CleanupPropertyTest, ParallelMatchesSerialOnVariantConfigs) {
  // The "-MEC" (gamma == mu) and "-BC" (no min cut) sensitivity variants take
  // different phase paths; the parallel fan-out must match on all of them.
  const GraphCleanupConfig configs[] = {
      {6, 6},                                  // -MEC: betweenness is a no-op
      {GraphCleanupConfig::kNoMinCut, 4},      // -BC: betweenness only
      {10, 3},                                 // both phases active
  };
  for (const auto& config : configs) {
    Rng rng_serial(GetParam() ^ 0x60), rng_parallel(GetParam() ^ 0x60);
    size_t n1 = 0, n2 = 0;
    Graph serial_graph = MakeNoisyCommunities(&rng_serial, &n1);
    Graph parallel_graph = MakeNoisyCommunities(&rng_parallel, &n2);
    GraLMatchCleanup cleanup(config);
    ThreadPool pool(4);
    EXPECT_EQ(cleanup.Run(&parallel_graph, nullptr, &pool),
              cleanup.Run(&serial_graph))
        << "gamma=" << config.gamma << " mu=" << config.mu;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanupPropertyTest,
                         ::testing::Values(1u, 7u, 99u, 1234u, 777777u));

// ---------------------------------------------------------------------------
// Parallel cleanup stress: larger random graphs, varying thread counts,
// always compared against the serial reference run. Runs under ASan/UBSan in
// the CI sanitizer job like every property suite, and under TSan in the
// dedicated thread-sanitizer job.
// ---------------------------------------------------------------------------

struct ParallelStressCase {
  uint64_t seed;
  size_t threads;
};

class ParallelCleanupStressTest
    : public ::testing::TestWithParam<ParallelStressCase> {
 protected:
  /// Bigger and denser than MakeNoisyCommunities: a handful of communities
  /// of up to ~45 nodes with random chords and a few cross-community
  /// bridges, so min-cut and betweenness both do real work per component.
  Graph MakeLargeNoisyGraph(Rng* rng) {
    size_t communities = 4 + rng->Uniform(3);
    std::vector<std::pair<size_t, size_t>> spans;
    size_t next = 0;
    for (size_t c = 0; c < communities; ++c) {
      size_t size = 12 + rng->Uniform(34);
      spans.emplace_back(next, next + size);
      next += size;
    }
    Graph g(next);
    for (const auto& [begin, end] : spans) {
      // Discard audited: synthetic in-range endpoints, edge ids unused.
      for (size_t a = begin; a < end; ++a) {
        size_t b = a + 1 == end ? begin : a + 1;
        if (b != a) {
          (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        }
        for (size_t c2 = a + 2; c2 < end; ++c2) {
          if (rng->Bernoulli(0.15)) {
            (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(c2));
          }
        }
      }
    }
    size_t bridges = rng->Uniform(6);
    for (size_t k = 0; k < bridges; ++k) {
      NodeId u = static_cast<NodeId>(rng->Uniform(next));
      NodeId v = static_cast<NodeId>(rng->Uniform(next));
      if (u != v) (void)g.AddEdge(u, v);
    }
    return g;
  }
};

TEST_P(ParallelCleanupStressTest, MatchesSerialReference) {
  Rng rng_serial(GetParam().seed), rng_parallel(GetParam().seed);
  Graph serial_graph = MakeLargeNoisyGraph(&rng_serial);
  Graph parallel_graph = MakeLargeNoisyGraph(&rng_parallel);

  GraLMatchCleanup cleanup(GraphCleanupConfig{20, 5});
  CleanupStats serial_stats, parallel_stats;
  auto serial_groups = cleanup.Run(&serial_graph, &serial_stats);
  ThreadPool pool(GetParam().threads);
  auto parallel_groups = cleanup.Run(&parallel_graph, &parallel_stats, &pool);

  EXPECT_EQ(parallel_groups, serial_groups);
  EXPECT_EQ(parallel_graph.num_edges_alive(), serial_graph.num_edges_alive());
  EXPECT_EQ(parallel_stats.min_cut_edges_removed,
            serial_stats.min_cut_edges_removed);
  EXPECT_EQ(parallel_stats.betweenness_edges_removed,
            serial_stats.betweenness_edges_removed);
  for (const auto& comp : parallel_groups) {
    EXPECT_LE(comp.size(), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ParallelCleanupStressTest,
    ::testing::Values(ParallelStressCase{17, 2}, ParallelStressCase{17, 8},
                      ParallelStressCase{404, 3}, ParallelStressCase{404, 16},
                      ParallelStressCase{90210, 4},
                      ParallelStressCase{777, 2}));

// ---------------------------------------------------------------------------
// Blocking soundness on generated datasets.
// ---------------------------------------------------------------------------

class BlockingPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  FinancialBenchmark MakeBench() {
    SyntheticConfig config;
    config.seed = GetParam();
    config.num_groups = 150;
    return FinancialGenerator(config).Generate();
  }
};

TEST_P(BlockingPropertyTest, AllCandidatesAreCrossSource) {
  FinancialBenchmark bench = MakeBench();
  CandidateSet candidates;
  IdOverlapBlocker id_blocker;
  id_blocker.AddCandidates(bench.securities, &candidates);
  TokenOverlapBlocker token_blocker;
  token_blocker.AddCandidates(bench.securities, &candidates);
  for (const auto& cand : candidates.ToVector()) {
    EXPECT_NE(bench.securities.records.at(cand.pair.a).source(),
              bench.securities.records.at(cand.pair.b).source());
    EXPECT_NE(cand.provenance, 0u);
  }
}

TEST_P(BlockingPropertyTest, IdOverlapCandidatesShareAValue) {
  FinancialBenchmark bench = MakeBench();
  CandidateSet candidates;
  IdOverlapBlocker blocker;
  blocker.AddCandidates(bench.securities, &candidates);
  for (const auto& cand : candidates.ToVector()) {
    const Record& a = bench.securities.records.at(cand.pair.a);
    const Record& b = bench.securities.records.at(cand.pair.b);
    bool shared = false;
    for (const auto& attr : IdentifierAttributes()) {
      auto va = a.GetMulti(attr);
      auto vb = b.GetMulti(attr);
      for (const auto& x : va) {
        for (const auto& y : vb) shared |= x == y;
      }
    }
    EXPECT_TRUE(shared) << cand.pair.a << " vs " << cand.pair.b;
  }
}

TEST_P(BlockingPropertyTest, IssuerMatchRespectsGroups) {
  FinancialBenchmark bench = MakeBench();
  // Ground-truth company groups as the previous matching.
  std::vector<int64_t> company_group(bench.companies.records.size());
  for (size_t i = 0; i < company_group.size(); ++i) {
    company_group[i] =
        bench.companies.truth.entity_of(static_cast<RecordId>(i));
  }
  CandidateSet candidates;
  IssuerMatchBlocker blocker(&company_group);
  blocker.AddCandidates(bench.securities, &candidates);
  for (const auto& cand : candidates.ToVector()) {
    auto issuer_of = [&](RecordId r) {
      return std::atoll(
          std::string(bench.securities.records.at(r).Get("issuer_ref")).c_str());
    };
    EXPECT_EQ(company_group[static_cast<size_t>(issuer_of(cand.pair.a))],
              company_group[static_cast<size_t>(issuer_of(cand.pair.b))]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockingPropertyTest,
                         ::testing::Values(3u, 44u, 5055u));

// ---------------------------------------------------------------------------
// Retraction edge cases: the incremental blocking indexes after
// RemoveRecords must equal the batch blocker run on the survivors, through
// the non-monotone boundaries — df caps moving with the live count, buckets
// emptying, and previously overflowed buckets shrinking back under the cap.
// ---------------------------------------------------------------------------

Record TokenRecord(SourceId source, const std::string& text) {
  Record rec(source, RecordKind::kSecurity);
  rec.Set("name", text);
  return rec;
}

Record IdRecord(SourceId source, const std::string& isin) {
  Record rec(source, RecordKind::kSecurity);
  rec.Set("isin", isin);
  return rec;
}

std::vector<RecordPair> SortedPairs(std::vector<RecordPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Batch blocker run on the compacted survivor table, pairs remapped back
/// to the original sparse ids (the compact->original map is monotone, so
/// pair ordering is preserved).
std::vector<RecordPair> BatchPairsOnSurvivors(const RecordTable& records,
                                              const std::vector<char>& alive,
                                              const Blocker& blocker) {
  Dataset survivors;
  std::vector<RecordId> original;
  for (size_t i = 0; i < records.size(); ++i) {
    if (!alive[i]) continue;
    survivors.records.Add(records.at(static_cast<RecordId>(i)));
    original.push_back(static_cast<RecordId>(i));
  }
  CandidateSet candidates;
  blocker.AddCandidates(survivors, &candidates);
  std::vector<RecordPair> pairs;
  for (const auto& cand : candidates.ToVector()) {
    RecordPair pair;
    pair.a = original[static_cast<size_t>(cand.pair.a)];
    pair.b = original[static_cast<size_t>(cand.pair.b)];
    pairs.push_back(pair);
  }
  return SortedPairs(std::move(pairs));
}

RecordPair MakePair(RecordId a, RecordId b) {
  RecordPair pair;
  pair.a = std::min(a, b);
  pair.b = std::max(a, b);
  return pair;
}

TEST(RetractionEdgeCases, DfCapDropRetractsAndHolderDeletionReadmits) {
  // The token df cap is floor(max_token_df * num_live) + 1: deletions move
  // it even when no holder of a token dies, and a holder's death can pull a
  // token's df back UNDER the cap, re-admitting pairs.
  TokenOverlapBlocker::Options options;
  options.top_n = 10;
  options.min_overlap = 1;
  options.max_token_df = 0.5;
  IncrementalTokenOverlapIndex index(options);
  TokenOverlapBlocker batch(options);

  // r0..r3 share "anchor" (sources alternate), r4..r11 hold only a unique
  // filler token each (df 1, never eligible).
  RecordTable records;
  std::vector<char> alive;
  for (size_t i = 0; i < 12; ++i) {
    const std::string filler = "filler" + std::string(1, char('a' + i));
    const std::string text = i < 4 ? "anchor " + filler : filler;
    records.Add(TokenRecord(static_cast<SourceId>(i % 2), text));
    alive.push_back(1);
  }
  index.AddRecords(records);
  // live 12 -> cap 7, df(anchor) = 4: all cross-source anchor pairs.
  const std::vector<RecordPair> anchor_pairs = {MakePair(0, 1), MakePair(0, 3),
                                                MakePair(1, 2), MakePair(2, 3)};
  EXPECT_EQ(SortedPairs(index.CurrentPairs()), anchor_pairs);

  // Deleting seven filler records — NONE holds "anchor" — drops the live
  // count to 5 and the cap to 3 < df: every anchor pair retracts.
  std::vector<RecordId> pads = {4, 5, 6, 7, 8, 9, 10};
  for (RecordId id : pads) alive[static_cast<size_t>(id)] = 0;
  CandidateDelta delta = index.RemoveRecords(records, pads);
  EXPECT_EQ(SortedPairs(delta.removed), anchor_pairs);
  EXPECT_TRUE(index.CurrentPairs().empty());
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchPairsOnSurvivors(records, alive, batch));

  // Deleting an anchor HOLDER drops df to 3 = cap: the token is re-admitted
  // and the surviving holders' pairs come back.
  alive[3] = 0;
  delta = index.RemoveRecords(records, {3});
  const std::vector<RecordPair> readmitted = {MakePair(0, 1), MakePair(1, 2)};
  EXPECT_EQ(SortedPairs(delta.added), readmitted);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()), readmitted);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchPairsOnSurvivors(records, alive, batch));
}

TEST(RetractionEdgeCases, DeletingLastBucketMemberLeavesNoResidue) {
  IncrementalIdOverlapIndex index;
  IdOverlapBlocker batch;
  RecordTable records;
  std::vector<char> alive;
  records.Add(IdRecord(0, "VV0011"));
  records.Add(IdRecord(1, "VV0011"));
  records.Add(IdRecord(0, "XX9999"));
  alive.assign(3, 1);
  index.AddRecords(records);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            std::vector<RecordPair>{MakePair(0, 1)});

  // Deleting one holder leaves a single-member bucket: the pair retracts.
  alive[1] = 0;
  CandidateDelta delta = index.RemoveRecords(records, {1});
  EXPECT_EQ(SortedPairs(delta.removed), std::vector<RecordPair>{MakePair(0, 1)});
  EXPECT_TRUE(index.CurrentPairs().empty());

  // Deleting the LAST member empties the bucket without residue: fresh
  // holders of the same value later pair only with each other, never with
  // the dead.
  alive[0] = 0;
  delta = index.RemoveRecords(records, {0});
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  records.Add(IdRecord(0, "VV0011"));
  records.Add(IdRecord(1, "VV0011"));
  alive.push_back(1);
  alive.push_back(1);
  delta = index.AddRecords(records);
  EXPECT_EQ(SortedPairs(delta.added), std::vector<RecordPair>{MakePair(3, 4)});
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            std::vector<RecordPair>{MakePair(3, 4)});
  EXPECT_EQ(SortedPairs(index.CurrentPairs()),
            BatchPairsOnSurvivors(records, alive, batch));
}

TEST(RetractionEdgeCases, RetractionReadmitsOverflowedBucket) {
  // Four holders under max_bucket 3 overflow the bucket (zero pairs);
  // removing one shrinks it back inside the cap and re-admits every
  // cross-source pair among the survivors.
  IncrementalIdOverlapIndex index(/*max_bucket=*/3);
  RecordTable records;
  for (size_t i = 0; i < 4; ++i) {
    records.Add(IdRecord(static_cast<SourceId>(i % 2), "SHARED01"));
  }
  CandidateDelta delta = index.AddRecords(records);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(index.CurrentPairs().empty());

  delta = index.RemoveRecords(records, {3});
  const std::vector<RecordPair> readmitted = {MakePair(0, 1), MakePair(1, 2)};
  EXPECT_EQ(SortedPairs(delta.added), readmitted);
  EXPECT_EQ(SortedPairs(index.CurrentPairs()), readmitted);

  // Growing past the cap again retracts the re-admitted pairs.
  records.Add(IdRecord(1, "SHARED01"));
  delta = index.AddRecords(records);
  EXPECT_EQ(SortedPairs(delta.removed), readmitted);
  EXPECT_TRUE(index.CurrentPairs().empty());
}

class RetractionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetractionPropertyTest, TokenIndexMatchesBatchOnSurvivorsUnderChurn) {
  // Random interleaved adds/removes over a tiny vocabulary (so document
  // frequencies keep crossing the moving cap): after every mutation the
  // index's pair set must equal the batch blocker on the survivors, and
  // the reported deltas must replay into exactly that set.
  Rng rng(GetParam());
  TokenOverlapBlocker::Options options;
  options.top_n = 3;
  options.min_overlap = 1;
  options.max_token_df = 0.4;
  IncrementalTokenOverlapIndex index(options);
  TokenOverlapBlocker batch(options);
  const std::vector<std::string> vocab = {"alpha", "bravo",  "carbon",
                                          "delta", "echo",   "foxtrot",
                                          "grain", "hollow"};
  RecordTable records;
  std::vector<char> alive;
  std::vector<RecordId> live;
  std::set<RecordPair> replayed;
  auto apply = [&replayed](const CandidateDelta& delta) {
    for (const RecordPair& pair : delta.removed) {
      ASSERT_EQ(replayed.erase(pair), 1u) << "removed a pair not present";
    }
    for (const RecordPair& pair : delta.added) {
      ASSERT_TRUE(replayed.insert(pair).second) << "added a duplicate pair";
    }
  };
  for (size_t step = 0; step < 24; ++step) {
    if (live.size() < 3 || rng.Bernoulli(0.6)) {
      const size_t count = 1 + rng.Uniform(3);
      for (size_t k = 0; k < count; ++k) {
        std::string text;
        const size_t words = 2 + rng.Uniform(3);
        for (size_t w = 0; w < words; ++w) {
          if (!text.empty()) text.push_back(' ');
          text += vocab[rng.Uniform(vocab.size())];
        }
        live.push_back(static_cast<RecordId>(records.size()));
        records.Add(TokenRecord(static_cast<SourceId>(rng.Uniform(2)), text));
        alive.push_back(1);
      }
      apply(index.AddRecords(records));
    } else {
      std::vector<RecordId> doomed;
      const size_t count = 1 + rng.Uniform(2);
      for (size_t k = 0; k < count && !live.empty(); ++k) {
        const size_t pick = rng.Uniform(live.size());
        doomed.push_back(live[pick]);
        alive[static_cast<size_t>(live[pick])] = 0;
        live[pick] = live.back();
        live.pop_back();
      }
      apply(index.RemoveRecords(records, doomed));
    }
    const std::vector<RecordPair> current = SortedPairs(index.CurrentPairs());
    EXPECT_EQ(current, BatchPairsOnSurvivors(records, alive, batch))
        << "step " << step;
    EXPECT_EQ(current,
              std::vector<RecordPair>(replayed.begin(), replayed.end()))
        << "step " << step;
  }
}

TEST_P(RetractionPropertyTest, IdIndexMatchesBatchOnSurvivorsUnderChurn) {
  Rng rng(GetParam());
  IncrementalIdOverlapIndex index;
  IdOverlapBlocker batch;
  const std::vector<std::string> values = {"AA11", "BB22", "CC33",
                                           "DD44", "EE55"};
  RecordTable records;
  std::vector<char> alive;
  std::vector<RecordId> live;
  for (size_t step = 0; step < 24; ++step) {
    if (live.size() < 3 || rng.Bernoulli(0.55)) {
      const size_t count = 1 + rng.Uniform(3);
      for (size_t k = 0; k < count; ++k) {
        Record rec = IdRecord(static_cast<SourceId>(rng.Uniform(2)),
                              values[rng.Uniform(values.size())]);
        if (rng.Bernoulli(0.3)) {
          rec.Set("cusip", values[rng.Uniform(values.size())]);
        }
        live.push_back(static_cast<RecordId>(records.size()));
        records.Add(std::move(rec));
        alive.push_back(1);
      }
      index.AddRecords(records);
    } else {
      std::vector<RecordId> doomed;
      const size_t count = 1 + rng.Uniform(2);
      for (size_t k = 0; k < count && !live.empty(); ++k) {
        const size_t pick = rng.Uniform(live.size());
        doomed.push_back(live[pick]);
        alive[static_cast<size_t>(live[pick])] = 0;
        live[pick] = live.back();
        live.pop_back();
      }
      index.RemoveRecords(records, doomed);
    }
    EXPECT_EQ(SortedPairs(index.CurrentPairs()),
              BatchPairsOnSurvivors(records, alive, batch))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetractionPropertyTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// ---------------------------------------------------------------------------
// Generator well-formedness across seeds and artifact mixes.
// ---------------------------------------------------------------------------

struct GenCase {
  uint64_t seed;
  double event_rate;   // acquisition/merger probability
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, BenchmarkIsWellFormed) {
  SyntheticConfig config;
  config.seed = GetParam().seed;
  config.num_groups = 120;
  config.artifacts.p_acquisition = GetParam().event_rate;
  config.artifacts.p_merger = GetParam().event_rate;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();

  ASSERT_GT(bench.companies.records.size(), 0u);
  ASSERT_GT(bench.securities.records.size(), 0u);

  // Every record has a ground-truth entity and a non-empty name.
  for (size_t i = 0; i < bench.companies.records.size(); ++i) {
    EXPECT_NE(bench.companies.truth.entity_of(static_cast<RecordId>(i)),
              kInvalidEntity);
    EXPECT_TRUE(bench.companies.records.at(static_cast<RecordId>(i)).Has("name"));
  }

  // Every security has a valid same-source issuer and only valid identifier
  // values of its standards.
  for (size_t i = 0; i < bench.securities.records.size(); ++i) {
    const Record& sec = bench.securities.records.at(static_cast<RecordId>(i));
    auto issuer = std::atoll(std::string(sec.Get("issuer_ref")).c_str());
    ASSERT_GE(issuer, 0);
    ASSERT_LT(static_cast<size_t>(issuer), bench.companies.records.size());
    EXPECT_EQ(bench.companies.records.at(static_cast<RecordId>(issuer)).source(),
              sec.source());
    for (const auto& isin : sec.GetMulti("isin")) {
      EXPECT_TRUE(IsValidIsin(isin)) << isin;
    }
    for (const auto& cusip : sec.GetMulti("cusip")) {
      EXPECT_TRUE(IsValidCusip(cusip)) << cusip;
    }
    for (const auto& sedol : sec.GetMulti("sedol")) {
      EXPECT_TRUE(IsValidSedol(sedol)) << sedol;
    }
  }
}

TEST_P(GeneratorPropertyTest, WdcIsWellFormed) {
  WdcConfig config;
  config.seed = GetParam().seed;
  config.num_entities = 100;
  Dataset products = WdcProductsGenerator(config).Generate();
  EXPECT_EQ(products.truth.num_records(), products.records.size());
  for (size_t i = 0; i < products.records.size(); ++i) {
    EXPECT_TRUE(products.records.at(static_cast<RecordId>(i)).Has("title"));
    EXPECT_NE(products.truth.entity_of(static_cast<RecordId>(i)),
              kInvalidEntity);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndRates, GeneratorPropertyTest,
                         ::testing::Values(GenCase{2, 0.0}, GenCase{2, 0.15},
                                           GenCase{31, 0.03},
                                           GenCase{555, 0.3}));

// ---------------------------------------------------------------------------
// Serializer bounds across sequence budgets and encodings.
// ---------------------------------------------------------------------------

struct SerializerCase {
  size_t max_len;
  bool ditto;
};

class SerializerPropertyTest : public ::testing::TestWithParam<SerializerCase> {};

TEST_P(SerializerPropertyTest, EncodingRespectsBudgetAndStructure) {
  SubwordVocab vocab;
  vocab.Train({"alpha beta gamma delta epsilon corporation zurich",
               "isin cusip sedol name type city common stock"},
              500);
  Rng rng(9);
  std::unique_ptr<PairSerializer> serializer;
  if (GetParam().ditto) {
    serializer = std::make_unique<DittoSerializer>();
  } else {
    serializer = std::make_unique<PlainSerializer>();
  }

  for (int trial = 0; trial < 30; ++trial) {
    Record a(0, RecordKind::kCompany), b(1, RecordKind::kCompany);
    auto random_text = [&](size_t words) {
      std::string out;
      for (size_t w = 0; w < words; ++w) {
        out += "tok" + std::to_string(rng.Uniform(40)) + " ";
      }
      return out;
    };
    a.Set("name", random_text(1 + rng.Uniform(30)));
    b.Set("name", random_text(1 + rng.Uniform(30)));
    if (rng.Bernoulli(0.5)) a.Set("city", random_text(2));
    if (rng.Bernoulli(0.5)) b.Set("short_description", random_text(20));

    EncodedSequence seq =
        serializer->EncodePair(a, b, vocab, GetParam().max_len);
    EXPECT_LE(seq.tokens.size(), GetParam().max_len);
    EXPECT_EQ(seq.segments.size(), seq.tokens.size());
    EXPECT_EQ(seq.shared.size(), seq.tokens.size());
    ASSERT_FALSE(seq.tokens.empty());
    EXPECT_EQ(seq.tokens[0], SpecialTokens::kCls);
    EXPECT_EQ(std::count(seq.tokens.begin(), seq.tokens.end(),
                         static_cast<int32_t>(SpecialTokens::kSep)),
              1);
    // Segments are monotone 0 -> 1.
    for (size_t i = 1; i < seq.segments.size(); ++i) {
      EXPECT_GE(seq.segments[i], seq.segments[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SerializerPropertyTest,
                         ::testing::Values(SerializerCase{16, false},
                                           SerializerCase{16, true},
                                           SerializerCase{32, false},
                                           SerializerCase{32, true},
                                           SerializerCase{96, true}));

// ---------------------------------------------------------------------------
// Metric consistency: analytic group metrics == materialized closure.
// ---------------------------------------------------------------------------

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, GroupPrfMatchesMaterializedClosure) {
  Rng rng(GetParam());
  size_t n = 20 + rng.Uniform(40);
  GroundTruth truth;
  for (size_t r = 0; r < n; ++r) {
    truth.Assign(static_cast<RecordId>(r),
                 static_cast<EntityId>(rng.Uniform(n / 3 + 1)));
  }
  // Random partition into components.
  std::vector<NodeId> nodes(n);
  for (size_t i = 0; i < n; ++i) nodes[i] = static_cast<NodeId>(i);
  rng.Shuffle(&nodes);
  std::vector<std::vector<NodeId>> components;
  size_t pos = 0;
  while (pos < n) {
    size_t size = 1 + rng.Uniform(6);
    size = std::min(size, n - pos);
    std::vector<NodeId> comp(nodes.begin() + static_cast<long>(pos),
                             nodes.begin() + static_cast<long>(pos + size));
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
    pos += size;
  }

  std::vector<RecordPair> closure;
  for (const auto& comp : components) {
    for (size_t i = 0; i < comp.size(); ++i) {
      for (size_t j = i + 1; j < comp.size(); ++j) {
        closure.emplace_back(comp[i], comp[j]);
      }
    }
  }
  PrfMetrics analytic = GroupPrf(components, truth);
  PrfMetrics materialized = PairwisePrf(closure, truth);
  EXPECT_EQ(analytic.tp, materialized.tp);
  EXPECT_EQ(analytic.fp, materialized.fp);
  EXPECT_EQ(analytic.fn, materialized.fn);
}

TEST_P(MetricsPropertyTest, PrCurveIsMonotoneInPredictions) {
  Rng rng(GetParam() ^ 0x99);
  GroundTruth truth;
  for (RecordId r = 0; r < 30; ++r) truth.Assign(r, r / 3);
  std::vector<ScoredPair> scored;
  for (RecordId a = 0; a < 30; ++a) {
    for (RecordId b = a + 1; b < 30; ++b) {
      double base = truth.IsMatch(a, b) ? 0.7 : 0.3;
      scored.push_back({RecordPair(a, b), base + rng.UniformDouble(-0.3, 0.3)});
    }
  }
  std::vector<double> thresholds = {0.0, 0.2, 0.4, 0.6, 0.8, 1.01};
  auto curve = PrecisionRecallCurve(scored, truth, thresholds);
  ASSERT_EQ(curve.size(), thresholds.size());
  // Raising the threshold never increases tp or fp.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].tp, curve[i - 1].tp);
    EXPECT_LE(curve[i].fp, curve[i - 1].fp);
  }
  // Threshold 0 accepts everything; > 1 accepts nothing.
  EXPECT_EQ(curve.front().tp + curve.front().fn, truth.NumTrueMatches());
  EXPECT_EQ(curve.back().tp, 0u);
  ThresholdPoint best = BestF1Point(curve);
  EXPECT_GE(best.F1(), curve.front().F1());
  EXPECT_GE(best.F1(), curve.back().F1());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// ---------------------------------------------------------------------------
// Union-find merge semantics. The sharded pipeline's cross-shard merge
// (stream/group_store.h) unions per-shard positive edges into global
// components; these properties — idempotent unions, representative
// stability under interleaved finds, agreement with a reference partition —
// are exactly what that merge step relies on.
// ---------------------------------------------------------------------------

class UnionFindPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindPropertyTest, MatchesReferencePartitionUnderRandomUnions) {
  Rng rng(GetParam());
  const size_t n = 40 + rng.Uniform(120);
  UnionFind uf(n);
  // Reference: brute-force component labels, relabelled on every merge.
  std::vector<size_t> label(n);
  for (size_t i = 0; i < n; ++i) label[i] = i;

  const size_t ops = 3 * n;
  for (size_t k = 0; k < ops; ++k) {
    const size_t a = rng.Uniform(n);
    const size_t b = rng.Uniform(n);
    const bool merged = uf.Union(a, b);
    EXPECT_EQ(merged, label[a] != label[b]);
    if (label[a] != label[b]) {
      const size_t from = label[b], to = label[a];
      for (size_t i = 0; i < n; ++i) {
        if (label[i] == from) label[i] = to;
      }
    }
    // Interleaved finds (which path-halve internally) must agree with the
    // reference connectivity at every step.
    const size_t c = rng.Uniform(n);
    const size_t d = rng.Uniform(n);
    EXPECT_EQ(uf.Connected(c, d), label[c] == label[d]);
  }

  // Final partition agrees element-for-element.
  std::set<size_t> labels(label.begin(), label.end());
  EXPECT_EQ(uf.num_sets(), labels.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < i + 5 && j < n; ++j) {
      EXPECT_EQ(uf.Connected(i, j), label[i] == label[j]);
    }
    // Set sizes match the reference counts.
    size_t count = 0;
    for (size_t j = 0; j < n; ++j) count += label[j] == label[i] ? 1 : 0;
    EXPECT_EQ(uf.SetSize(i), count);
  }
}

TEST_P(UnionFindPropertyTest, UnionsAreIdempotentAndFindsAreStable) {
  Rng rng(GetParam() ^ 0x5eedu);
  const size_t n = 30 + rng.Uniform(70);
  UnionFind uf(n);
  for (size_t k = 0; k < 2 * n; ++k) {
    uf.Union(rng.Uniform(n), rng.Uniform(n));
  }
  const size_t sets_before = uf.num_sets();
  for (size_t i = 0; i < n; ++i) {
    const size_t rep = uf.Find(i);
    // A representative is its own representative (canonical fixed point),
    // and repeated finds never change it.
    EXPECT_EQ(uf.Find(rep), rep);
    EXPECT_EQ(uf.Find(i), rep);
    // Re-unioning already-joined elements is a no-op on the partition and
    // on every representative.
    EXPECT_FALSE(uf.Union(i, rep));
    EXPECT_EQ(uf.Find(i), rep);
    EXPECT_EQ(uf.num_sets(), sets_before);
  }
  // Merge order never affects the partition: replay the same edges in
  // reverse into a fresh structure and compare connectivity.
  std::vector<std::pair<size_t, size_t>> edges;
  Rng replay(GetParam() ^ 0x5eedu);
  const size_t m = 30 + replay.Uniform(70);
  ASSERT_EQ(m, n);
  for (size_t k = 0; k < 2 * n; ++k) {
    const size_t a = replay.Uniform(n);
    const size_t b = replay.Uniform(n);
    edges.emplace_back(a, b);
  }
  UnionFind reversed(n);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    reversed.Union(it->first, it->second);
  }
  EXPECT_EQ(reversed.num_sets(), uf.num_sets());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < i + 6 && j < n; ++j) {
      EXPECT_EQ(reversed.Connected(i, j), uf.Connected(i, j));
    }
  }
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_EQ(uf.num_sets(), 4u);
  uf.Reset(4);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.num_sets(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
  EXPECT_FALSE(uf.Connected(0, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindPropertyTest,
                         ::testing::Values(5u, 77u, 901u, 12345u));

// ---------------------------------------------------------------------------
// ScoreBatch batching invariance: for every matcher, any random split of a
// pair set into batches is bitwise-identical to per-pair MatchProbability —
// the contract in matching/matcher.h. Runs under both kernel builds (the
// scalar-kernels CI leg recompiles with -DGRALMATCH_SIMD=OFF), so it also
// pins that the SIMD annotations never reassociate a result.
// ---------------------------------------------------------------------------

class ScoreBatchPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.seed = 71;
    config.num_groups = 40;
    records_ = FinancialGenerator(config).Generate().companies.records;
    Rng rng(GetParam());
    const RecordId n = static_cast<RecordId>(records_.size());
    for (size_t i = 0; i < 60; ++i) {
      RecordId a = static_cast<RecordId>(rng.Uniform(n));
      RecordId b = static_cast<RecordId>(rng.Uniform(n));
      if (a == b) b = (b + 1) % n;
      pairs_.push_back(RecordPair(a, b));
    }
  }

  /// Bitwise comparison of ScoreBatch under a random batch split against a
  /// per-pair MatchProbability walk.
  void ExpectBatchingInvariant(const PairwiseMatcher& matcher) {
    std::vector<double> reference(pairs_.size());
    for (size_t i = 0; i < pairs_.size(); ++i) {
      reference[i] = matcher.MatchProbability(records_.at(pairs_[i].a),
                                              records_.at(pairs_[i].b));
    }
    // One whole-set batch, then random contiguous splits.
    std::vector<double> whole(pairs_.size(), -1.0);
    matcher.ScoreBatch(records_,
                       Span<const RecordPair>(pairs_.data(), pairs_.size()),
                       Span<double>(whole.data(), whole.size()));
    for (size_t i = 0; i < pairs_.size(); ++i) {
      ASSERT_EQ(whole[i], reference[i]) << matcher.name() << " pair " << i;
    }
    Rng rng(GetParam() ^ 0xbeef);
    for (int round = 0; round < 4; ++round) {
      std::vector<double> split(pairs_.size(), -1.0);
      size_t begin = 0;
      while (begin < pairs_.size()) {
        const size_t count =
            std::min<size_t>(1 + rng.Uniform(9), pairs_.size() - begin);
        matcher.ScoreBatch(
            records_, Span<const RecordPair>(pairs_.data() + begin, count),
            Span<double>(split.data() + begin, count));
        begin += count;
      }
      for (size_t i = 0; i < pairs_.size(); ++i) {
        ASSERT_EQ(split[i], reference[i])
            << matcher.name() << " round " << round << " pair " << i;
      }
    }
  }

  RecordTable records_;
  std::vector<RecordPair> pairs_;
};

TEST_P(ScoreBatchPropertyTest, HeuristicIdMatcher) {
  HeuristicIdMatcher matcher;
  ExpectBatchingInvariant(matcher);
}

TEST_P(ScoreBatchPropertyTest, TrainedTfidfLogReg) {
  std::vector<LabeledPair> train;
  Rng rng(GetParam() ^ 0x7777);
  for (size_t i = 0; i + 1 < records_.size() && train.size() < 40; i += 2) {
    train.push_back({RecordPair(static_cast<RecordId>(i),
                                static_cast<RecordId>(i + 1)),
                     rng.Bernoulli(0.5) ? 1 : 0});
  }
  TfidfLogRegMatcher matcher;
  matcher.Train(records_, train);
  ExpectBatchingInvariant(matcher);
}

TEST_P(ScoreBatchPropertyTest, TransformerPackedForward) {
  TransformerMatcherConfig config;
  config.max_seq_len = 24;  // keep the sweep fast; truncation is exercised
  TransformerMatcher matcher(config);
  matcher.BuildVocab(records_);  // untrained weights score deterministically
  ExpectBatchingInvariant(matcher);
}

TEST_P(ScoreBatchPropertyTest, CascadeOverTransformer) {
  TfidfLogRegMatcher gate;
  std::vector<LabeledPair> train;
  for (size_t i = 0; i + 1 < records_.size() && train.size() < 20; i += 2) {
    train.push_back({RecordPair(static_cast<RecordId>(i),
                                static_cast<RecordId>(i + 1)),
                     i % 4 == 0 ? 1 : 0});
  }
  gate.Train(records_, train);
  TransformerMatcherConfig config;
  config.max_seq_len = 24;
  TransformerMatcher expensive(config);
  expensive.BuildVocab(records_);
  CascadeMatcher::Options opts;
  opts.lower_threshold = 0.3;
  opts.upper_threshold = 0.7;
  CascadeMatcher cascade(&gate, &expensive, opts);
  ExpectBatchingInvariant(cascade);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreBatchPropertyTest,
                         ::testing::Values(3u, 42u, 1001u));

}  // namespace
}  // namespace gralmatch

// Tests for the core GraLMatch module: the Pre-Cleanup, Algorithm 1 and the
// end-to-end pipeline stage snapshots.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cleanup.h"
#include "core/embeddedness.h"
#include "core/label_propagation.h"
#include "core/pipeline.h"
#include "exec/thread_pool.h"
#include "matching/baselines.h"

namespace gralmatch {
namespace {

// Two K5 cliques joined by one false edge.
void BuildTwoCliques(Graph* g, EdgeId* bridge) {
  g->EnsureNodes(10);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      g->AddEdge(a, b).ValueOrDie();
      g->AddEdge(a + 5, b + 5).ValueOrDie();
    }
  }
  *bridge = g->AddEdge(2, 7).ValueOrDie();
}

TEST(CleanupTest, SplitsBridgedCliquesWithMinCut) {
  Graph g;
  EdgeId bridge;
  BuildTwoCliques(&g, &bridge);

  GraphCleanupConfig config;
  config.gamma = 6;  // the 10-node component exceeds gamma
  config.mu = 5;
  GraLMatchCleanup cleanup(config);
  CleanupStats stats;
  auto groups = cleanup.Run(&g, &stats);

  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(groups[1], (std::vector<NodeId>{5, 6, 7, 8, 9}));
  EXPECT_FALSE(g.edge_alive(bridge));
  EXPECT_GE(stats.min_cut_calls, 1u);
  EXPECT_EQ(stats.min_cut_edges_removed, 1u);
}

TEST(CleanupTest, BetweennessOnlyVariantAlsoSplits) {
  Graph g;
  EdgeId bridge;
  BuildTwoCliques(&g, &bridge);

  GraphCleanupConfig config;
  config.gamma = GraphCleanupConfig::kNoMinCut;  // "-BC" variant
  config.mu = 5;
  GraLMatchCleanup cleanup(config);
  CleanupStats stats;
  auto groups = cleanup.Run(&g, &stats);

  ASSERT_EQ(groups.size(), 2u);
  EXPECT_FALSE(g.edge_alive(bridge));
  EXPECT_EQ(stats.min_cut_calls, 0u);
  EXPECT_GE(stats.betweenness_calls, 1u);
}

TEST(CleanupTest, MecOnlyVariantStopsAtMu) {
  Graph g;
  EdgeId bridge;
  BuildTwoCliques(&g, &bridge);

  GraphCleanupConfig config;
  config.gamma = 5;  // gamma == mu: the "-MEC" variant
  config.mu = 5;
  GraLMatchCleanup cleanup(config);
  CleanupStats stats;
  auto groups = cleanup.Run(&g, &stats);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(stats.betweenness_edges_removed, 0u);
}

TEST(CleanupTest, SmallComponentsUntouched) {
  Graph g(6);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.AddEdge(3, 4).ValueOrDie();
  GraLMatchCleanup cleanup(GraphCleanupConfig{25, 5});
  auto groups = cleanup.Run(&g);
  EXPECT_EQ(g.num_edges_alive(), 3u);
  EXPECT_EQ(groups.size(), 3u);  // {0,1,2}, {3,4}, {5}
}

TEST(CleanupTest, AllGroupsRespectMuOnDenseGraph) {
  // A 14-node "blob": two K6 cliques bridged by 2 edges plus a pendant pair.
  Graph g(14);
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      g.AddEdge(a, b).ValueOrDie();
      g.AddEdge(a + 6, b + 6).ValueOrDie();
    }
  }
  g.AddEdge(0, 6).ValueOrDie();
  g.AddEdge(1, 7).ValueOrDie();
  g.AddEdge(11, 12).ValueOrDie();
  g.AddEdge(12, 13).ValueOrDie();

  GraphCleanupConfig config;
  config.gamma = 8;
  config.mu = 6;
  GraLMatchCleanup cleanup(config);
  auto groups = cleanup.Run(&g);
  for (const auto& comp : groups) {
    EXPECT_LE(comp.size(), config.mu);
  }
}

TEST(CleanupTest, ParallelRunMatchesSerialOnBridgedCliques) {
  GraphCleanupConfig config;
  config.gamma = 6;
  config.mu = 5;
  GraLMatchCleanup cleanup(config);

  Graph serial_g;
  EdgeId serial_bridge;
  BuildTwoCliques(&serial_g, &serial_bridge);
  CleanupStats serial_stats;
  auto serial_groups = cleanup.Run(&serial_g, &serial_stats);

  for (size_t threads : {2u, 4u}) {
    Graph parallel_g;
    EdgeId parallel_bridge;
    BuildTwoCliques(&parallel_g, &parallel_bridge);
    CleanupStats parallel_stats;
    ThreadPool pool(threads);
    auto parallel_groups = cleanup.Run(&parallel_g, &parallel_stats, &pool);

    EXPECT_EQ(parallel_groups, serial_groups) << "threads=" << threads;
    EXPECT_FALSE(parallel_g.edge_alive(parallel_bridge));
    EXPECT_EQ(parallel_stats.min_cut_calls, serial_stats.min_cut_calls);
    EXPECT_EQ(parallel_stats.min_cut_edges_removed,
              serial_stats.min_cut_edges_removed);
    EXPECT_EQ(parallel_g.num_edges_alive(), serial_g.num_edges_alive());
  }
}

TEST(PreCleanupTest, RemovesTokenOnlyEdgesInLargeComponents) {
  // Star of 60 nodes (above the threshold of 50).
  Graph g(61);
  std::vector<uint32_t> provenance;
  for (int i = 1; i <= 60; ++i) {
    g.AddEdge(0, i).ValueOrDie();
    provenance.push_back(i % 2 == 0 ? kBlockerTokenOverlap
                                    : (kBlockerTokenOverlap | kBlockerIdOverlap));
  }
  CleanupStats stats;
  PreCleanup(&g, provenance, 50, &stats);
  // Half the edges were token-overlap-only.
  EXPECT_EQ(stats.pre_cleanup_edges_removed, 30u);
  EXPECT_EQ(g.num_edges_alive(), 30u);
}

TEST(PreCleanupTest, SmallComponentsKeepTokenEdges) {
  Graph g(10);
  std::vector<uint32_t> provenance;
  for (int i = 1; i <= 9; ++i) {
    g.AddEdge(0, i).ValueOrDie();
    provenance.push_back(kBlockerTokenOverlap);
  }
  CleanupStats stats;
  PreCleanup(&g, provenance, 50, &stats);
  EXPECT_EQ(stats.pre_cleanup_edges_removed, 0u);
  EXPECT_EQ(g.num_edges_alive(), 9u);

  // Threshold 0 disables the step entirely.
  PreCleanup(&g, provenance, 0, &stats);
  EXPECT_EQ(g.num_edges_alive(), 9u);
}

// A matcher with a deliberate false positive between two groups.
class PlantedMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "planted"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    // Same "group" attribute value => match; plus one planted false pair.
    if (a.Get("group") == b.Get("group")) return 0.95;
    if ((a.Get("uid") == "2" && b.Get("uid") == "8") ||
        (a.Get("uid") == "8" && b.Get("uid") == "2")) {
      return 0.9;  // the false positive bridge
    }
    return 0.05;
  }
};

TEST(PipelineTest, StagesShowCollapseAndRecovery) {
  // Two entities of 5 records each across 5 sources.
  Dataset ds;
  for (int e = 0; e < 2; ++e) {
    for (int s = 0; s < 5; ++s) {
      Record rec(static_cast<SourceId>(s), RecordKind::kCompany);
      rec.Set("group", e == 0 ? "left" : "right");
      rec.Set("uid", std::to_string(e * 5 + s));
      ds.truth.Assign(ds.records.Add(std::move(rec)), e);
    }
  }
  // All cross-source pairs as candidates.
  std::vector<Candidate> candidates;
  for (RecordId a = 0; a < 10; ++a) {
    for (RecordId b = a + 1; b < 10; ++b) {
      if (ds.records.at(a).source() == ds.records.at(b).source()) continue;
      candidates.push_back({RecordPair(a, b), kBlockerTokenOverlap});
    }
  }

  PipelineConfig config;
  config.cleanup.gamma = 8;
  config.cleanup.mu = 5;
  EntityGroupPipeline pipeline(config);
  PlantedMatcher matcher;
  PipelineResult result = pipeline.Run(ds, candidates, matcher);

  // Stage 1: the planted false positive is among the predictions.
  bool planted_found = false;
  for (const auto& pair : result.predicted_pairs) {
    if (pair == RecordPair(2, 8)) planted_found = true;
  }
  EXPECT_TRUE(planted_found);

  // Stage 2: one glued component of 10.
  ASSERT_EQ(result.pre_cleanup_components.size(), 1u);
  EXPECT_EQ(result.pre_cleanup_components[0].size(), 10u);

  // Stage 3: cleanup recovers the two true groups.
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.groups[0].size(), 5u);
  EXPECT_EQ(result.groups[1].size(), 5u);
  EXPECT_GT(result.inference_seconds, 0.0);

  // Group-of-record view.
  auto group_of = result.GroupOfRecord(ds.records.size());
  EXPECT_EQ(group_of[0], group_of[4]);
  EXPECT_NE(group_of[0], group_of[9]);
}

TEST(LabelPropagationTest, ConvergesPerDenseGroup) {
  // Two disconnected cliques of different sizes: each converges to a single
  // community regardless of size (no fixed-mu assumption).
  Graph g(16);
  for (int a = 0; a < 12; ++a) {
    for (int b = a + 1; b < 12; ++b) g.AddEdge(a, b).ValueOrDie();
  }
  for (int a = 12; a < 16; ++a) {
    for (int b = a + 1; b < 16; ++b) g.AddEdge(a, b).ValueOrDie();
  }
  auto groups = LabelPropagationGroups(g);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 12u);
  EXPECT_EQ(groups[1].size(), 4u);
}

TEST(EmbeddednessTest, StrengthValues) {
  // Two K4 cliques joined by one bridge.
  Graph g(8);
  EdgeId internal = g.AddEdge(0, 1).ValueOrDie();
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      if (a == 0 && b == 1) continue;
      g.AddEdge(a, b).ValueOrDie();
      g.AddEdge(a + 4, b + 4).ValueOrDie();
    }
  }
  g.AddEdge(4, 5).ValueOrDie();
  EdgeId bridge = g.AddEdge(0, 4).ValueOrDie();

  // Internal clique edge: both endpoints share the other 2 clique members.
  EXPECT_GT(EdgeEmbeddedness(g, internal), 0.6);
  // The bridge has no common neighbors at all.
  EXPECT_DOUBLE_EQ(EdgeEmbeddedness(g, bridge), 0.0);
}

TEST(EmbeddednessTest, PairsAreKept) {
  Graph g(2);
  EdgeId e = g.AddEdge(0, 1).ValueOrDie();
  EXPECT_DOUBLE_EQ(EdgeEmbeddedness(g, e), 1.0);
  size_t removed = RemoveWeaklyEmbeddedEdges(&g);
  EXPECT_EQ(removed, 0u);
  EXPECT_TRUE(g.edge_alive(e));
}

TEST(EmbeddednessTest, RecoversHeterogeneousBridgedCliques) {
  // A K12 and a K4 joined by one false edge: the fixed-mu cleanup would
  // have to chop the K12; embeddedness filtering removes only the bridge.
  Graph g(16);
  for (int a = 0; a < 12; ++a) {
    for (int b = a + 1; b < 12; ++b) g.AddEdge(a, b).ValueOrDie();
  }
  for (int a = 12; a < 16; ++a) {
    for (int b = a + 1; b < 16; ++b) g.AddEdge(a, b).ValueOrDie();
  }
  EdgeId bridge = g.AddEdge(0, 12).ValueOrDie();

  auto groups = EmbeddednessGroups(&g);
  EXPECT_FALSE(g.edge_alive(bridge));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 12u);
  EXPECT_EQ(groups[1].size(), 4u);
}

TEST(EmbeddednessTest, SinglePassIsOrderIndependent) {
  // A path 0-1-2-3: every internal edge has zero common neighbors, but the
  // decision is made on the original topology, so all edges go in ONE pass
  // (no cascade where removing one edge makes the next look weaker).
  Graph g(4);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.AddEdge(2, 3).ValueOrDie();
  size_t removed = RemoveWeaklyEmbeddedEdges(&g);
  // Ends have degree 1 -> their edges are kept; the middle edge (degree 2 on
  // both sides, zero common neighbors) is removed.
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(g.ComponentOf(0).size(), 2u);
}

TEST(LabelPropagationTest, SingletonsAndDeterminism) {
  Graph g(5);
  g.AddEdge(0, 1).ValueOrDie();
  auto a = LabelPropagationGroups(g);
  auto b = LabelPropagationGroups(g);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);  // {0,1} plus three singletons
  EXPECT_EQ(a[0], (std::vector<NodeId>{0, 1}));
}

TEST(LabelPropagationTest, EveryNodeAssignedExactlyOnce) {
  Rng rng(8);
  Graph g(40);
  for (size_t v = 1; v < 40; ++v) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(v)), static_cast<NodeId>(v))
        .ValueOrDie();
  }
  auto groups = LabelPropagationGroups(g);
  std::vector<int> seen(40, 0);
  for (const auto& group : groups) {
    for (NodeId u : group) ++seen[static_cast<size_t>(u)];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(PipelineTest, RunOnPredictionsSkipsInference) {
  std::vector<Candidate> positives = {
      {RecordPair(0, 1), kBlockerIdOverlap},
      {RecordPair(1, 2), kBlockerIdOverlap},
  };
  EntityGroupPipeline pipeline;
  PipelineResult result = pipeline.RunOnPredictions(4, positives);
  EXPECT_EQ(result.predicted_pairs.size(), 2u);
  ASSERT_EQ(result.groups.size(), 2u);  // {0,1,2} and {3}
  EXPECT_EQ(result.groups[0].size(), 3u);
}

}  // namespace
}  // namespace gralmatch

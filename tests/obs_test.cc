// Test suite for the `obs` observability module, in two halves.
//
// Unit half: registry semantics (stable instrument pointers, name-ordered
// scrapes), the `le` bucket convention with pinned bucket assignments,
// pinned nearest-rank quantiles for both Histogram::Quantile (bucket
// upper-bound) and SampleQuantile (exact — the definition the bench
// harness shares), deterministic text/JSON exposition, and a writers ×
// scrapers stress test (run under TSan in CI) over the lock-free hot
// path.
//
// Inertness half: the differential contract that makes instrumentation
// safe to wire anywhere. An instrumented pipeline run — metrics recording
// live into a registry — must produce identical snapshots and serialized
// state byte-identical outside the two trailing cumulative wall-clock
// doubles (which differ between any two runs, instrumented or not) to an
// uninstrumented run of the same schedule, on both the
// financial-securities and WDC-products fixtures, across thread counts
// and shard counts. A pipeline restored from a checkpoint
// must come back uninstrumented (the registry pointer never enters
// checkpoint bytes) until explicitly re-wired with set_metrics().

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "matching/matcher.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "shard/sharded_pipeline.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Instrument and registry unit tests
// ---------------------------------------------------------------------------

TEST(ObsInstrumentTest, CounterAndGaugeBasics) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);

  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(-7);
  EXPECT_EQ(gauge.Value(), -7);
  gauge.Set(9);
  EXPECT_EQ(gauge.Value(), 9);
}

TEST(ObsInstrumentTest, HistogramBucketAssignmentFollowsTheLeConvention) {
  Histogram histogram;
  histogram.Observe(1e-6);   // exactly on a bound -> that bucket (le)
  histogram.Observe(1.5e-6); // between bounds -> next bucket up
  histogram.Observe(0.0);    // zero -> first bucket
  histogram.Observe(-3.0);   // negative clamps to zero -> first bucket
  histogram.Observe(100.0);  // exactly the last finite bound
  histogram.Observe(250.0);  // past every bound -> overflow

  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[0], 3u);  // le=1e-6: the 1e-6, 0.0 and clamped -3.0
  EXPECT_EQ(counts[1], 1u);  // le=2e-6: the 1.5e-6
  EXPECT_EQ(counts[kLatencyBucketBounds.size() - 1], 1u);  // le=100
  EXPECT_EQ(counts[kNumLatencyBuckets - 1], 1u);           // overflow
  EXPECT_EQ(histogram.TotalCount(), 6u);
  EXPECT_NEAR(histogram.SumSeconds(), 1e-6 + 1.5e-6 + 100.0 + 250.0, 1e-9);
}

TEST(ObsInstrumentTest, HistogramQuantileIsTheBucketUpperBound) {
  Histogram histogram;
  for (int i = 0; i < 50; ++i) histogram.Observe(1e-6);  // bucket le=1e-6
  for (int i = 0; i < 45; ++i) histogram.Observe(3e-3);  // bucket le=5e-3
  for (int i = 0; i < 5; ++i) histogram.Observe(0.3);    // bucket le=0.5
  // Nearest rank over 100 observations: rank 50 is still in the first
  // bucket, rank 95 in the middle one, rank 99 in the slowest.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 1e-6);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.95), 5e-3);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 0.5);

  // The overflow bucket reports the last finite bound (the dump cannot
  // invent an upper edge for +Inf), and an empty histogram reports 0.
  Histogram overflow;
  for (int i = 0; i < 3; ++i) overflow.Observe(1e4);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), kLatencyBucketBounds.back());
  EXPECT_DOUBLE_EQ(Histogram().Quantile(0.5), 0.0);
}

TEST(ObsInstrumentTest, SampleQuantileIsExactNearestRank) {
  // 1..100 delivered unsorted: SampleQuantile must sort internally.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(SampleQuantile(samples, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(samples, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(SampleQuantile(samples, 1.0), 100.0);
  // ceil(0.99 * 3) = 3 -> the largest of three samples.
  EXPECT_DOUBLE_EQ(SampleQuantile({2.0, 9.0, 4.0}, 0.99), 9.0);
  EXPECT_DOUBLE_EQ(SampleQuantile({7.5}, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(SampleQuantile({}, 0.99), 0.0);
}

TEST(ObsRegistryTest, ReturnsStablePointersAndNameOrderedSnapshots) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("zebra_total");
  Counter* b = registry.GetCounter("apple_total");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.GetCounter("zebra_total"), a);  // same name, same pointer
  a->Increment(3);
  registry.GetGauge("depth")->Set(12);
  registry.GetHistogram("latency_seconds")->Observe(1e-3);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "apple_total");  // sorted by name
  EXPECT_EQ(snapshot.counters[1].name, "zebra_total");
  EXPECT_EQ(snapshot.counters[1].value, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 12);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].p50, 1e-3);
}

TEST(ObsRegistryTest, MetricBundlesResolveEveryInstrumentOrStayNull) {
  MetricsRegistry registry;
  const PipelineMetrics pipeline = PipelineMetrics::Create(&registry);
  const ServeMetrics serve = ServeMetrics::Create(&registry);
  const NetMetrics net = NetMetrics::Create(&registry);
  EXPECT_NE(pipeline.scoring_seconds, nullptr);
  EXPECT_NE(pipeline.cascade_escalated, nullptr);
  EXPECT_NE(serve.publish_seconds, nullptr);
  EXPECT_NE(serve.current_epoch, nullptr);
  EXPECT_NE(net.shed_framing_fatal, nullptr);
  // Bundles share the registry's instruments, not copies.
  EXPECT_EQ(pipeline.mutations,
            registry.GetCounter("pipeline_mutations_total"));

  const PipelineMetrics off = PipelineMetrics::Create(nullptr);
  EXPECT_EQ(off.scoring_seconds, nullptr);
  EXPECT_EQ(off.mutations, nullptr);
  EXPECT_EQ(ServeMetrics::Create(nullptr).publish_seconds, nullptr);
  EXPECT_EQ(NetMetrics::Create(nullptr).requests_served, nullptr);
}

TEST(ObsDumpTest, TextDumpIsDeterministicWithCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Increment(3);
  registry.GetGauge("depth")->Set(-2);
  Histogram* histogram = registry.GetHistogram("span_seconds");
  histogram->Observe(1.5e-6);  // bucket le=2e-06
  histogram->Observe(250.0);   // overflow

  const std::string text = DumpMetricsText(registry);
  EXPECT_NE(text.find("# TYPE events_total counter\nevents_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth -2\n"), std::string::npos);
  // Buckets are cumulative at dump time: empty below 2e-06, then 1 for
  // every finite bucket, and +Inf picks up the overflow observation.
  EXPECT_NE(text.find("span_seconds_bucket{le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("span_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("span_seconds_bucket{le=\"100\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("span_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("span_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("span_seconds{quantile=\"0.5\"} 2e-06\n"),
            std::string::npos);
  // Deterministic: an unchanged registry dumps the same bytes.
  EXPECT_EQ(DumpMetricsText(registry), text);
}

TEST(ObsDumpTest, JsonDumpCarriesTheSameNumbers) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Increment(7);
  registry.GetHistogram("span_seconds")->Observe(1e-3);
  const std::string json = DumpMetricsJson(registry);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"events_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"span_seconds\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":0.001"), std::string::npos);
}

TEST(ObsDumpTest, TraceScopeRecordsOnceOnDestructionAndNullIsANoOp) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("span_seconds");
  { TraceScope span(histogram); }
  EXPECT_EQ(histogram->TotalCount(), 1u);
  { TraceScope noop(nullptr); }  // must not crash
  EXPECT_EQ(histogram->TotalCount(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency: writers on the lock-free hot path racing registration and
// scrapes. Run under TSan in CI — the assertions here are secondary to the
// absence of data-race reports.
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, ConcurrentWritersAndScrapersAreRaceFree) {
  constexpr size_t kWriters = 8;
  constexpr size_t kIterations = 2000;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("shared_total");
  Histogram* histogram = registry.GetHistogram("shared_seconds");
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      ASSERT_GE(snapshot.counters.size(), 1u);
      const std::string text = DumpMetricsText(registry);
      ASSERT_NE(text.find("shared_total"), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>(i % 7) * 1e-5);
        registry.GetGauge("writer_gauge")->Set(static_cast<int64_t>(i));
        if (i % 64 == 0) {
          // Race registration against the scraper too.
          registry.GetCounter("writer_" + std::to_string(t) + "_total")
              ->Increment();
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), kWriters * kIterations);
  EXPECT_EQ(histogram->TotalCount(), kWriters * kIterations);
  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.size(), 1u + kWriters);
}

// ---------------------------------------------------------------------------
// Inertness differential: instrumented == uninstrumented, bitwise
// ---------------------------------------------------------------------------

/// Deterministic token-Jaccard matcher (as in stream/shard tests) so both
/// fixtures score meaningfully.
class JaccardMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "jaccard"; }
  std::string Fingerprint() const override { return "jaccard#1"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    const auto ta = Tokens(a);
    const auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0, ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common, ++ia, ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    return static_cast<double>(common) /
           static_cast<double>(total == 0 ? 1 : total);
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }
};

std::vector<Record> WithUids(const RecordTable& table) {
  std::vector<Record> out;
  out.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    Record rec = table.at(static_cast<RecordId>(i));
    rec.Set("_uid", std::to_string(i));
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<Record> FinancialRecords() {
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = 40;
  return WithUids(FinancialGenerator(config).Generate().securities.records);
}

std::vector<Record> WdcRecords() {
  WdcConfig config;
  config.num_entities = 80;
  config.seed = 77;
  return WithUids(WdcProductsGenerator(config).Generate().records);
}

IncrementalPipelineConfig StreamConfig(size_t num_threads) {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 6;
  config.pipeline.cleanup.mu = 3;
  config.pipeline.pre_cleanup_threshold = 9;
  config.pipeline.match_threshold = 0.3;
  config.pipeline.num_threads = num_threads;
  config.token.top_n = 5;
  return config;
}

/// Ingest `records` in three batches.
void IngestInBatches(IncrementalPipeline* pipeline,
                     const std::vector<Record>& records,
                     const PairwiseMatcher& matcher) {
  const size_t batch_size = (records.size() + 2) / 3;
  for (size_t begin = 0; begin < records.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    ASSERT_TRUE(pipeline->Ingest(batch, matcher).ok());
  }
}

void IngestInBatches(ShardedPipeline* pipeline,
                     const std::vector<Record>& records,
                     const PairwiseMatcher& matcher) {
  const size_t batch_size = (records.size() + 2) / 3;
  for (size_t begin = 0; begin < records.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(begin),
                              records.begin() + static_cast<long>(end));
    ASSERT_TRUE(pipeline->Ingest(batch, matcher).ok());
  }
}

void ExpectSameSnapshot(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.predicted_pairs, b.predicted_pairs);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.pre_cleanup_components, b.pre_cleanup_components);
}

/// Byte size of the cumulative wall-clock totals (two doubles: scoring and
/// cleanup seconds) that close both the incremental body and the sharded
/// manifest body. They are run-dependent even between two uninstrumented
/// runs of the same schedule, so the differential excises exactly them;
/// everything before must be bitwise-identical.
constexpr size_t kWallClockTrailerBytes = 2 * sizeof(double);

std::string DeterministicBody(const IncrementalPipeline& pipeline) {
  BinaryWriter writer;
  EXPECT_TRUE(pipeline.Serialize(&writer).ok());
  std::string body = writer.buffer();
  EXPECT_GE(body.size(), kWallClockTrailerBytes);
  body.resize(body.size() - kWallClockTrailerBytes);
  return body;
}

std::string DeterministicManifest(const ShardedPipeline& pipeline) {
  BinaryWriter writer;
  EXPECT_TRUE(pipeline.SerializeManifestBody(&writer).ok());
  std::string body = writer.buffer();
  EXPECT_GE(body.size(), kWallClockTrailerBytes);
  body.resize(body.size() - kWallClockTrailerBytes);
  return body;
}

TEST(ObsInertnessTest, InstrumentedIncrementalRunIsBitwiseIdentical) {
  JaccardMatcher matcher;
  for (const auto& records : {FinancialRecords(), WdcRecords()}) {
    for (const size_t num_threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("records=" + std::to_string(records.size()) +
                   " threads=" + std::to_string(num_threads));
      IncrementalPipelineConfig off_config = StreamConfig(num_threads);
      IncrementalPipeline off(off_config);
      IngestInBatches(&off, records, matcher);

      MetricsRegistry registry;
      IncrementalPipelineConfig on_config = StreamConfig(num_threads);
      on_config.pipeline.metrics = &registry;
      IncrementalPipeline on(on_config);
      IngestInBatches(&on, records, matcher);

      // The instrumented run really recorded...
      EXPECT_EQ(registry.GetCounter("pipeline_mutations_total")->Value(), 3u);
      EXPECT_EQ(registry.GetCounter("pipeline_records_added_total")->Value(),
                records.size());
      EXPECT_GT(
          registry.GetHistogram("pipeline_scoring_seconds")->TotalCount(), 0u);
      // ...and changed nothing: identical snapshots and byte-identical
      // serialized state outside the wall-clock trailer (which also proves
      // no registry state leaked into the serialized config).
      ExpectSameSnapshot(on.Snapshot().ValueOrDie(),
                         off.Snapshot().ValueOrDie());
      EXPECT_EQ(DeterministicBody(on), DeterministicBody(off));
    }
  }
}

TEST(ObsInertnessTest, InstrumentedShardedRunIsBitwiseIdentical) {
  JaccardMatcher matcher;
  for (const auto& records : {FinancialRecords(), WdcRecords()}) {
    for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("records=" + std::to_string(records.size()) +
                   " shards=" + std::to_string(num_shards));
      ShardedPipelineConfig off_config;
      off_config.base = StreamConfig(2);
      off_config.num_shards = num_shards;
      off_config.router_seed = 17;
      ShardedPipeline off(off_config);
      IngestInBatches(&off, records, matcher);

      MetricsRegistry registry;
      ShardedPipelineConfig on_config = off_config;
      on_config.base.pipeline.metrics = &registry;
      ShardedPipeline on(on_config);
      IngestInBatches(&on, records, matcher);

      EXPECT_EQ(registry.GetCounter("pipeline_mutations_total")->Value(), 3u);
      EXPECT_GT(registry.GetHistogram("shard_route_seconds")->TotalCount(),
                0u);
      EXPECT_GT(registry.GetHistogram("shard_exchange_seconds")->TotalCount(),
                0u);
      ExpectSameSnapshot(on.Snapshot().ValueOrDie(),
                         off.Snapshot().ValueOrDie());

      EXPECT_EQ(DeterministicManifest(on), DeterministicManifest(off));
      // Shard bodies carry no wall-clock state at all: full bitwise.
      std::vector<BinaryWriter> on_shards, off_shards;
      ASSERT_TRUE(on.SerializeShardBodies(&on_shards).ok());
      ASSERT_TRUE(off.SerializeShardBodies(&off_shards).ok());
      ASSERT_EQ(on_shards.size(), off_shards.size());
      for (size_t s = 0; s < on_shards.size(); ++s) {
        EXPECT_EQ(on_shards[s].buffer(), off_shards[s].buffer())
            << "shard " << s;
      }
    }
  }
}

TEST(ObsInertnessTest, RestoredPipelineIsUninstrumentedUntilRewired) {
  JaccardMatcher matcher;
  const std::vector<Record> records = FinancialRecords();

  MetricsRegistry registry;
  IncrementalPipelineConfig config = StreamConfig(2);
  config.pipeline.metrics = &registry;
  IncrementalPipeline pipeline(config);
  IngestInBatches(&pipeline, records, matcher);

  auto restored =
      ParseCheckpoint(SerializeCheckpoint(pipeline).ValueOrDie(), matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // The registry pointer is runtime-only state: it never survives the
  // round trip, whatever the saved pipeline had wired.
  EXPECT_EQ((*restored)->config().pipeline.metrics, nullptr);

  const uint64_t mutations_before =
      registry.GetCounter("pipeline_mutations_total")->Value();
  std::vector<Record> extra;
  Record rec;
  rec.Set("name", "restored probe record");
  rec.Set("_uid", "probe");
  extra.push_back(std::move(rec));
  ASSERT_TRUE((*restored)->Ingest(extra, matcher).ok());
  EXPECT_EQ(registry.GetCounter("pipeline_mutations_total")->Value(),
            mutations_before);  // uninstrumented: nothing recorded

  (*restored)->set_metrics(&registry);
  ASSERT_TRUE((*restored)->Ingest({}, matcher).ok());
  EXPECT_EQ(registry.GetCounter("pipeline_mutations_total")->Value(),
            mutations_before + 1);  // re-wired: recording resumes
}

}  // namespace
}  // namespace obs
}  // namespace gralmatch

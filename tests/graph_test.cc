// Tests for the graph substrate: structure maintenance, connected
// components, Stoer-Wagner minimum edge cut, Brandes edge betweenness and
// bridges — including randomized property checks.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/union_find.h"
#include "graph/betweenness.h"
#include "graph/graph.h"
#include "graph/min_cut.h"

namespace gralmatch {
namespace {

TEST(GraphTest, AddEdgeRejectsSelfLoop) {
  Graph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1).ok());
  EXPECT_FALSE(g.AddEdge(-1, 0).ok());
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
}

TEST(GraphTest, EdgeLifecycle) {
  Graph g(4);
  EdgeId e0 = g.AddEdge(0, 1).ValueOrDie();
  EdgeId e1 = g.AddEdge(1, 2).ValueOrDie();
  EXPECT_EQ(g.num_edges_alive(), 2u);
  g.RemoveEdge(e0);
  EXPECT_EQ(g.num_edges_alive(), 1u);
  EXPECT_FALSE(g.edge_alive(e0));
  EXPECT_TRUE(g.edge_alive(e1));
  g.RemoveEdge(e0);  // idempotent
  EXPECT_EQ(g.num_edges_alive(), 1u);
  g.RestoreAllEdges();
  EXPECT_EQ(g.num_edges_alive(), 2u);
}

TEST(GraphTest, AliveNeighborsFiltersTombstones) {
  Graph g(3);
  EdgeId e0 = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(0, 2).ValueOrDie();
  g.RemoveEdge(e0);
  std::vector<std::pair<NodeId, EdgeId>> nbrs;
  g.AliveNeighbors(0, &nbrs);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].first, 2);
  EXPECT_EQ(g.AliveDegree(0), 1u);
}

TEST(GraphTest, ConnectedComponentsIncludeSingletons) {
  Graph g(5);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(3, 4).ValueOrDie();
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{2}));
  EXPECT_EQ(comps[2], (std::vector<NodeId>{3, 4}));
}

TEST(GraphTest, ComponentOfAfterRemoval) {
  Graph g(4);
  g.AddEdge(0, 1).ValueOrDie();
  EdgeId mid = g.AddEdge(1, 2).ValueOrDie();
  g.AddEdge(2, 3).ValueOrDie();
  g.RemoveEdge(mid);
  EXPECT_EQ(g.ComponentOf(0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(g.ComponentOf(3), (std::vector<NodeId>{2, 3}));
}

TEST(GraphTest, EdgesWithinSubset) {
  Graph g(5);
  EdgeId e01 = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 4).ValueOrDie();
  EdgeId e12 = g.AddEdge(1, 2).ValueOrDie();
  auto inside = g.EdgesWithin({0, 1, 2});
  EXPECT_EQ(inside, (std::vector<EdgeId>{e01, e12}));
}

TEST(MinCutTest, RejectsTooSmallComponent) {
  Graph g(2);
  g.AddEdge(0, 1).ValueOrDie();
  EXPECT_FALSE(StoerWagnerMinCut(g, {0}).ok());
}

TEST(MinCutTest, FindsBridgeInBarbell) {
  Graph g(8);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      g.AddEdge(a, b).ValueOrDie();
      g.AddEdge(a + 4, b + 4).ValueOrDie();
    }
  }
  EdgeId bridge = g.AddEdge(0, 4).ValueOrDie();

  auto cut = StoerWagnerMinCut(g, g.ComponentOf(0));
  ASSERT_TRUE(cut.ok());
  EXPECT_DOUBLE_EQ(cut->weight, 1.0);
  ASSERT_EQ(cut->cut_edges.size(), 1u);
  EXPECT_EQ(cut->cut_edges[0], bridge);
  EXPECT_EQ(cut->partition.size(), 4u);
}

TEST(MinCutTest, CycleHasCutOfTwo) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5).ValueOrDie();
  }
  auto cut = StoerWagnerMinCut(g, g.ComponentOf(0));
  ASSERT_TRUE(cut.ok());
  EXPECT_DOUBLE_EQ(cut->weight, 2.0);
  EXPECT_EQ(cut->cut_edges.size(), 2u);
}

TEST(MinCutTest, ParallelEdgesCountTowardWeight) {
  Graph g(3);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  auto cut = StoerWagnerMinCut(g, g.ComponentOf(0));
  ASSERT_TRUE(cut.ok());
  // Cheapest cut isolates node 2 across the single (1,2) edge.
  EXPECT_DOUBLE_EQ(cut->weight, 1.0);
}

// Property: removing the reported cut edges disconnects the component, and
// the cut weight never exceeds the component's minimum alive degree.
TEST(MinCutTest, RandomGraphsCutDisconnectsAndIsBounded) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    size_t n = 5 + rng.Uniform(10);
    Graph g(n);
    // Random connected graph: spanning tree + extra edges.
    for (size_t v = 1; v < n; ++v) {
      g.AddEdge(static_cast<NodeId>(rng.Uniform(v)), static_cast<NodeId>(v))
          .ValueOrDie();
    }
    size_t extra = rng.Uniform(2 * n);
    for (size_t k = 0; k < extra; ++k) {
      NodeId a = static_cast<NodeId>(rng.Uniform(n));
      NodeId b = static_cast<NodeId>(rng.Uniform(n));
      if (a != b) (void)g.AddEdge(a, b).ValueOrDie();
    }

    auto comp = g.ComponentOf(0);
    ASSERT_EQ(comp.size(), n);
    auto cut = StoerWagnerMinCut(g, comp);
    ASSERT_TRUE(cut.ok());

    size_t min_degree = SIZE_MAX;
    for (size_t u = 0; u < n; ++u) {
      min_degree = std::min(min_degree, g.AliveDegree(static_cast<NodeId>(u)));
    }
    EXPECT_LE(cut->weight, static_cast<double>(min_degree));

    for (EdgeId e : cut->cut_edges) g.RemoveEdge(e);
    EXPECT_LT(g.ComponentOf(0).size(), n) << "cut failed to disconnect";
  }
}

TEST(BetweennessTest, PathGraphMiddleEdgeHighest) {
  // 0-1-2-3: edge (1,2) lies on 4 of the 6 shortest paths.
  Graph g(4);
  EdgeId e01 = g.AddEdge(0, 1).ValueOrDie();
  EdgeId e12 = g.AddEdge(1, 2).ValueOrDie();
  EdgeId e23 = g.AddEdge(2, 3).ValueOrDie();
  auto bc = EdgeBetweenness(g, g.ComponentOf(0));
  EXPECT_DOUBLE_EQ(bc[e01], 3.0);  // paths 0-1, 0-2, 0-3
  EXPECT_DOUBLE_EQ(bc[e12], 4.0);  // paths 0-2, 0-3, 1-2, 1-3
  EXPECT_DOUBLE_EQ(bc[e23], 3.0);
  EXPECT_EQ(MaxBetweennessEdge(g, g.ComponentOf(0)), e12);
}

TEST(BetweennessTest, BridgeDominatesInBarbell) {
  Graph g(8);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      g.AddEdge(a, b).ValueOrDie();
      g.AddEdge(a + 4, b + 4).ValueOrDie();
    }
  }
  EdgeId bridge = g.AddEdge(0, 4).ValueOrDie();
  EXPECT_EQ(MaxBetweennessEdge(g, g.ComponentOf(0)), bridge);
}

TEST(BetweennessTest, TriangleSymmetric) {
  Graph g(3);
  EdgeId e0 = g.AddEdge(0, 1).ValueOrDie();
  EdgeId e1 = g.AddEdge(1, 2).ValueOrDie();
  EdgeId e2 = g.AddEdge(0, 2).ValueOrDie();
  auto bc = EdgeBetweenness(g, g.ComponentOf(0));
  EXPECT_DOUBLE_EQ(bc[e0], 1.0);
  EXPECT_DOUBLE_EQ(bc[e1], 1.0);
  EXPECT_DOUBLE_EQ(bc[e2], 1.0);
}

// Property: total edge betweenness equals the sum over node pairs of their
// shortest-path length (each unit of path length crosses exactly one edge).
TEST(BetweennessTest, SumEqualsTotalPathLengthOnTrees) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 4 + rng.Uniform(8);
    Graph g(n);
    std::vector<std::vector<NodeId>> adj(n);
    for (size_t v = 1; v < n; ++v) {
      NodeId p = static_cast<NodeId>(rng.Uniform(v));
      g.AddEdge(p, static_cast<NodeId>(v)).ValueOrDie();
      adj[static_cast<size_t>(p)].push_back(static_cast<NodeId>(v));
      adj[v].push_back(p);
    }
    // BFS all-pairs distances.
    double total_dist = 0.0;
    for (size_t s = 0; s < n; ++s) {
      std::vector<int> dist(n, -1);
      std::vector<NodeId> queue = {static_cast<NodeId>(s)};
      dist[s] = 0;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        NodeId u = queue[qi];
        for (NodeId v : adj[static_cast<size_t>(u)]) {
          if (dist[static_cast<size_t>(v)] < 0) {
            dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
            queue.push_back(v);
          }
        }
      }
      for (size_t t = s + 1; t < n; ++t) total_dist += dist[t];
    }
    auto bc = EdgeBetweenness(g, g.ComponentOf(0));
    double total_bc = 0.0;
    for (const auto& [e, v] : bc) total_bc += v;
    EXPECT_NEAR(total_bc, total_dist, 1e-6);
  }
}

TEST(BridgesTest, FindsExactlyTheBridges) {
  // Triangle 0-1-2 plus pendant chain 2-3-4.
  Graph g(5);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.AddEdge(0, 2).ValueOrDie();
  EdgeId b1 = g.AddEdge(2, 3).ValueOrDie();
  EdgeId b2 = g.AddEdge(3, 4).ValueOrDie();
  auto bridges = FindBridges(g, g.ComponentOf(0));
  EXPECT_EQ(bridges, (std::vector<EdgeId>{b1, b2}));
}

TEST(BridgesTest, ParallelEdgesAreNotBridges) {
  Graph g(2);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(0, 1).ValueOrDie();
  auto bridges = FindBridges(g, g.ComponentOf(0));
  EXPECT_TRUE(bridges.empty());
}

TEST(UnionFindTest, BasicMergeSemantics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(2), 3u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

}  // namespace
}  // namespace gralmatch

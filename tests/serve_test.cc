// Test suite for the serving subsystem: durable checkpoints and concurrent
// epoch-snapshot serving.
//
// Checkpoints: Save -> Load -> Snapshot() must be bitwise-identical to the
// pre-save Snapshot() on both fixtures and across multi-batch schedules, and
// ingestion *after* a Load must still satisfy the stream_test
// batch-equivalence guarantee at 1/2/8 threads — a restored pipeline is
// indistinguishable from one that never restarted, down to the score cache
// (no pair is rescored after a reload). Corrupted inputs — truncated files,
// bad magic, future versions, bit flips, fingerprint mismatches — must fail
// with a clean Status, never crash (exercised under ASan in CI).
//
// Serving: MatchService publishes immutable epoch snapshots; a
// reader/ingester stress test (run under TSan in CI) checks every view is
// internally consistent and epochs are monotonic while ingestion races on.

#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blocking/id_overlap.h"
#include "common/binary_io.h"
#include "blocking/token_overlap.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "serve/checkpoint.h"
#include "serve/framing.h"
#include "serve/match_service.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Matcher and fixtures (mirrors stream_test.cc so the equivalence contract
// under test is the same one)
// ---------------------------------------------------------------------------

/// Deterministic token-Jaccard matcher with a tunable scale that changes its
/// fingerprint (see stream_test.cc).
class JaccardMatcher : public PairwiseMatcher {
 public:
  explicit JaccardMatcher(double scale = 1.0) : scale_(scale) {}

  std::string name() const override { return "jaccard"; }
  std::string Fingerprint() const override {
    return "jaccard#" + std::to_string(scale_);
  }
  double MatchProbability(const Record& a, const Record& b) const override {
    auto ta = Tokens(a);
    auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0;
    size_t ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    double score = scale_ * static_cast<double>(common) /
                   static_cast<double>(total == 0 ? 1 : total);
    return score > 1.0 ? 1.0 : score;
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }

  double scale_;
};

IncrementalPipelineConfig ServeConfig(size_t num_threads) {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 6;
  config.pipeline.cleanup.mu = 3;
  config.pipeline.pre_cleanup_threshold = 9;
  config.pipeline.match_threshold = 0.25;
  config.pipeline.num_threads = num_threads;
  config.token.top_n = 5;
  return config;
}

std::vector<Record> FinancialRecords(size_t num_groups = 60) {
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();
  return bench.securities.records.records();
}

std::vector<Record> WdcRecords() {
  WdcConfig config;
  config.num_entities = 120;
  config.seed = 77;
  return WdcProductsGenerator(config).Generate().records.records();
}

/// Ingest `records` in `batches` equal batches.
void IngestAll(IncrementalPipeline* pipeline, const std::vector<Record>& records,
               size_t begin, size_t end, size_t batches,
               const PairwiseMatcher& matcher) {
  const size_t span = end - begin;
  const size_t batch_size = (span + batches - 1) / batches;
  for (size_t offset = begin; offset < end; offset += batch_size) {
    const size_t stop = std::min(offset + batch_size, end);
    std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                              records.begin() + static_cast<long>(stop));
    ASSERT_TRUE(pipeline->Ingest(batch, matcher).ok());
  }
}

/// From-scratch reference over the pipeline's current record set.
PipelineResult RunBatchReference(const RecordTable& records,
                                 const IncrementalPipelineConfig& config,
                                 const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  if (config.use_id_blocker) {
    IdOverlapBlocker::Options opts;
    opts.num_threads = config.pipeline.num_threads;
    IdOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  if (config.use_token_blocker) {
    TokenOverlapBlocker::Options opts = config.token;
    opts.num_threads = config.pipeline.num_threads;
    TokenOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

/// Full bitwise equality, wall-clock fields included: a reloaded pipeline
/// restores the accumulated seconds bit-for-bit.
void ExpectBitwiseIdentical(const PipelineResult& a, const PipelineResult& b,
                            const std::string& context) {
  EXPECT_EQ(a.predicted_pairs, b.predicted_pairs) << context;
  EXPECT_EQ(a.pre_cleanup_components, b.pre_cleanup_components) << context;
  EXPECT_EQ(a.groups, b.groups) << context;
  EXPECT_EQ(a.cleanup_stats.pre_cleanup_edges_removed,
            b.cleanup_stats.pre_cleanup_edges_removed)
      << context;
  EXPECT_EQ(a.cleanup_stats.min_cut_calls, b.cleanup_stats.min_cut_calls)
      << context;
  EXPECT_EQ(a.cleanup_stats.min_cut_edges_removed,
            b.cleanup_stats.min_cut_edges_removed)
      << context;
  EXPECT_EQ(a.cleanup_stats.betweenness_calls,
            b.cleanup_stats.betweenness_calls)
      << context;
  EXPECT_EQ(a.cleanup_stats.betweenness_edges_removed,
            b.cleanup_stats.betweenness_edges_removed)
      << context;
  EXPECT_EQ(a.cleanup_stats.seconds, b.cleanup_stats.seconds) << context;
  EXPECT_EQ(a.inference_seconds, b.inference_seconds) << context;
}

/// Counters only (the reference run's wall-clock legitimately differs).
void ExpectEquivalent(const PipelineResult& incremental,
                      const PipelineResult& reference,
                      const std::string& context) {
  EXPECT_EQ(incremental.predicted_pairs, reference.predicted_pairs) << context;
  EXPECT_EQ(incremental.pre_cleanup_components,
            reference.pre_cleanup_components)
      << context;
  EXPECT_EQ(incremental.groups, reference.groups) << context;
  EXPECT_EQ(incremental.cleanup_stats.pre_cleanup_edges_removed,
            reference.cleanup_stats.pre_cleanup_edges_removed)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.min_cut_calls,
            reference.cleanup_stats.min_cut_calls)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.min_cut_edges_removed,
            reference.cleanup_stats.min_cut_edges_removed)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.betweenness_calls,
            reference.cleanup_stats.betweenness_calls)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.betweenness_edges_removed,
            reference.cleanup_stats.betweenness_edges_removed)
      << context;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Checkpoint round trips
// ---------------------------------------------------------------------------

TEST(CheckpointTest, RoundTripIsBitwiseIdenticalOnFinancialFixture) {
  const std::vector<Record> records = FinancialRecords();
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(2));
  // Mid-stream and end-of-stream checkpoints both round-trip exactly.
  IngestAll(&pipeline, records, 0, records.size() / 2, 3, matcher);
  for (int phase = 0; phase < 2; ++phase) {
    const std::string image = SerializeCheckpoint(pipeline).ValueOrDie();
    auto restored = ParseCheckpoint(image, matcher);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ExpectBitwiseIdentical((*restored)->Snapshot().ValueOrDie(), pipeline.Snapshot().ValueOrDie(),
                           "phase " + std::to_string(phase));
    EXPECT_EQ((*restored)->records().size(), pipeline.records().size());
    EXPECT_EQ((*restored)->total_matcher_calls(),
              pipeline.total_matcher_calls());
    EXPECT_EQ((*restored)->total_cache_hits(), pipeline.total_cache_hits());
    EXPECT_EQ((*restored)->fingerprint(), pipeline.fingerprint());
    if (phase == 0) {
      IngestAll(&pipeline, records, records.size() / 2, records.size(), 3,
                matcher);
    }
  }
}

TEST(CheckpointTest, RoundTripIsBitwiseIdenticalOnWdcFixture) {
  const std::vector<Record> records = WdcRecords();
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = ServeConfig(1);
  config.pipeline.match_threshold = 0.35;
  IncrementalPipeline pipeline(config);
  IngestAll(&pipeline, records, 0, records.size(), 5, matcher);
  auto restored = ParseCheckpoint(SerializeCheckpoint(pipeline).ValueOrDie(), matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectBitwiseIdentical((*restored)->Snapshot().ValueOrDie(), pipeline.Snapshot().ValueOrDie(), "wdc");
}

TEST(CheckpointTest, SerializationIsDeterministic) {
  const std::vector<Record> records = FinancialRecords(40);
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(4));
  IngestAll(&pipeline, records, 0, records.size(), 4, matcher);
  const std::string image = SerializeCheckpoint(pipeline).ValueOrDie();
  // Same pipeline, same bytes.
  EXPECT_EQ(SerializeCheckpoint(pipeline).ValueOrDie(), image);
  // Save -> Load -> Save reproduces the image byte for byte (the format has
  // no hash-map iteration order or other incidental state in it).
  auto restored = ParseCheckpoint(image, matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SerializeCheckpoint(**restored).ValueOrDie(), image);
}

TEST(CheckpointTest, FileRoundTripViaSaveAndLoad) {
  const std::vector<Record> records = FinancialRecords(40);
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(1));
  IngestAll(&pipeline, records, 0, records.size(), 2, matcher);

  const std::string path = TempPath("serve_roundtrip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(pipeline, path).ok());
  // The atomic-rename staging file must not linger.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  auto restored = LoadCheckpoint(path, matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectBitwiseIdentical((*restored)->Snapshot().ValueOrDie(), pipeline.Snapshot().ValueOrDie(), "file");
  std::remove(path.c_str());
}

TEST(CheckpointTest, ConcurrentSaversToOnePathNeverTearTheFile) {
  // Regression test: two threads saving to the same path used to race on
  // one shared `<path>.tmp` staging name — writer A's rename could publish
  // bytes writer B was still appending. With per-call unique temp names
  // every published image is one writer's complete bytes. Run under TSan
  // in CI.
  const std::string path = TempPath("serve_concurrent_save.ckpt");
  std::remove(path.c_str());
  const std::string image_a(1 << 16, 'A');
  const std::string image_b(1 << 16, 'B');
  std::atomic<bool> done{false};

  auto saver = [&path](const std::string& image) {
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(WriteFileAtomically(path, image).ok());
    }
  };
  // A concurrent reader must only ever observe a complete image — the
  // whole point of publish-by-rename.
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto image = ReadWholeFile(path);
      if (!image.ok()) continue;  // not yet published for the first time
      ASSERT_TRUE(*image == image_a || *image == image_b)
          << "torn read of " << image->size() << " bytes";
    }
  });
  std::thread writer_a(saver, image_a);
  std::thread writer_b(saver, image_b);
  writer_a.join();
  writer_b.join();
  done.store(true, std::memory_order_release);
  reader.join();

  auto final_image = ReadWholeFile(path);
  ASSERT_TRUE(final_image.ok()) << final_image.status().ToString();
  EXPECT_TRUE(*final_image == image_a || *final_image == image_b);

  // Every staging file was renamed or unlinked — none linger.
  const size_t slash = path.find_last_of('/');
  const std::string dir = path.substr(0, slash);
  const std::string base = path.substr(slash + 1);
  DIR* handle = opendir(dir.c_str());
  ASSERT_NE(handle, nullptr);
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    EXPECT_FALSE(name.size() > base.size() && name.compare(0, base.size(), base) == 0)
        << "stray staging file: " << name;
  }
  closedir(handle);
  std::remove(path.c_str());
}

TEST(CheckpointTest, PostLoadIngestionKeepsBatchEquivalenceAtEveryThreadCount) {
  const std::vector<Record> records = FinancialRecords();
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(2));
  IngestAll(&pipeline, records, 0, records.size() / 2, 3, matcher);
  const std::string image = SerializeCheckpoint(pipeline).ValueOrDie();

  for (size_t threads : {1u, 2u, 8u}) {
    auto restored = ParseCheckpoint(image, matcher, /*num_threads_override=*/
                                    threads);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ((*restored)->config().pipeline.num_threads, threads);
    IngestAll(restored->get(), records, records.size() / 2, records.size(), 4,
              matcher);
    ExpectEquivalent(
        (*restored)->Snapshot().ValueOrDie(),
        RunBatchReference((*restored)->records(), (*restored)->config(),
                          matcher),
        "post-load ingest at threads=" + std::to_string(threads));
  }
}

TEST(CheckpointTest, PostLoadIngestionNeverRescoresCachedPairs) {
  // The matcher-call count of (ingest, reload, ingest) must equal that of
  // an uninterrupted run: the restored score cache serves every pair the
  // first half already scored.
  const std::vector<Record> records = FinancialRecords();
  JaccardMatcher matcher;

  IncrementalPipeline uninterrupted(ServeConfig(1));
  IngestAll(&uninterrupted, records, 0, records.size() / 2, 3, matcher);
  IngestAll(&uninterrupted, records, records.size() / 2, records.size(), 3,
            matcher);

  IncrementalPipeline first_half(ServeConfig(1));
  IngestAll(&first_half, records, 0, records.size() / 2, 3, matcher);
  auto restored = ParseCheckpoint(SerializeCheckpoint(first_half).ValueOrDie(), matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  IngestAll(restored->get(), records, records.size() / 2, records.size(), 3,
            matcher);

  EXPECT_EQ((*restored)->total_matcher_calls(),
            uninterrupted.total_matcher_calls());
  EXPECT_EQ((*restored)->total_cache_hits(), uninterrupted.total_cache_hits());
}

TEST(CheckpointTest, EmptyPipelineRoundTrips) {
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(1));
  auto restored = ParseCheckpoint(SerializeCheckpoint(pipeline).ValueOrDie(), matcher);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->records().size(), 0u);
  ExpectBitwiseIdentical((*restored)->Snapshot().ValueOrDie(), pipeline.Snapshot().ValueOrDie(),
                         "empty");
}

// ---------------------------------------------------------------------------
// Corruption and version handling (every case must fail cleanly, not crash;
// CI runs this suite under ASan+UBSan)
// ---------------------------------------------------------------------------

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::vector<Record> records = FinancialRecords(40);
    JaccardMatcher matcher;
    IncrementalPipeline pipeline(ServeConfig(1));
    IngestAll(&pipeline, records, 0, records.size(), 3, matcher);
    image_ = new std::string(SerializeCheckpoint(pipeline).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }

  static std::string* image_;
};

std::string* CheckpointCorruptionTest::image_ = nullptr;

TEST_F(CheckpointCorruptionTest, EmptyInputFailsCleanly) {
  JaccardMatcher matcher;
  auto result = ParseCheckpoint("", matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(CheckpointCorruptionTest, BadMagicRejected) {
  JaccardMatcher matcher;
  std::string image = *image_;
  image[0] ^= 0x5a;
  auto result = ParseCheckpoint(image, matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, TruncationAtAnyPrefixFailsCleanly) {
  JaccardMatcher matcher;
  // Dense sampling through the header, sparse through the body, and the
  // always-interesting last bytes.
  std::vector<size_t> lengths;
  for (size_t k = 0; k < 64 && k < image_->size(); ++k) lengths.push_back(k);
  for (size_t k = 64; k < image_->size(); k += image_->size() / 37 + 1) {
    lengths.push_back(k);
  }
  lengths.push_back(image_->size() - 1);
  for (size_t len : lengths) {
    auto result = ParseCheckpoint(image_->substr(0, len), matcher);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
  }
}

TEST_F(CheckpointCorruptionTest, FutureVersionRejected) {
  JaccardMatcher matcher;
  std::string image = *image_;
  // Version lives at offset 8 (after the 8-byte magic), little-endian.
  image[8] = static_cast<char>(kCheckpointVersion + 1);
  image[9] = image[10] = image[11] = 0;
  auto result = ParseCheckpoint(image, matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("newer"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, FingerprintMismatchRejected) {
  // The matcher changed between save and load: the cached scores are not
  // its scores, so the checkpoint must be refused, not silently trusted.
  JaccardMatcher retrained(1.4);
  auto result = ParseCheckpoint(*image_, retrained);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("fingerprint"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, BodyBitFlipCaughtByChecksum) {
  JaccardMatcher matcher;
  for (double frac : {0.3, 0.6, 0.9}) {
    std::string image = *image_;
    const size_t pos = 64 + static_cast<size_t>(
                                static_cast<double>(image.size() - 72) * frac);
    image[pos] ^= 0x01;
    auto result = ParseCheckpoint(image, matcher);
    ASSERT_FALSE(result.ok()) << "flip at " << pos;
  }
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageRejected) {
  // Appending bytes shifts the checksum-covered region, so the whole-image
  // checksum catches it.
  JaccardMatcher matcher;
  auto result = ParseCheckpoint(*image_ + "extra", matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(CheckpointCorruptionTest, HeaderFingerprintBitFlipIsCorruptionNotMismatch) {
  // A damaged fingerprint byte must be diagnosed as file corruption — not
  // as "the matcher changed", which would send the operator hunting for a
  // model that never existed. The fingerprint string starts at offset 20
  // (magic 8 + version 4 + u64 length prefix).
  JaccardMatcher matcher;
  std::string image = *image_;
  image[20] ^= 0x01;
  auto result = ParseCheckpoint(image, matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, MissingFileFailsCleanly) {
  JaccardMatcher matcher;
  auto result = LoadCheckpoint("/nonexistent/dir/pipeline.ckpt", matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Tombstone sections (format v2): corruption within the tombstone bytes must
// fail as a clean Status, and pre-tombstone (version 1) images must keep
// loading — a tombstone-free pipeline emits the version 1 layout
// byte-for-byte, so the fixture of the suite above doubles as genuine v1
// coverage; this suite pins the v2 side.
// ---------------------------------------------------------------------------

class TombstoneCheckpointCorruptionTest : public ::testing::Test {
 protected:
  // The removal set {11, 22, 33} makes the serialized tombstone section
  // start with a 16-byte sequence (u64 count 3, i32 ids 11, 22, 33) the
  // fixture asserts is unique in the image, so tests can corrupt tombstone
  // bytes specifically.
  static constexpr size_t kTombstonePatternLength = 20;

  static void SetUpTestSuite() {
    const std::vector<Record> records = FinancialRecords(40);
    JaccardMatcher matcher;
    IncrementalPipeline pipeline(ServeConfig(1));
    IngestAll(&pipeline, records, 0, records.size(), 3, matcher);
    pipeline.Remove({11, 22, 33}, matcher).ValueOrDie();
    image_ = new std::string(SerializeCheckpoint(pipeline).ValueOrDie());

    BinaryWriter pattern;
    pattern.WriteU64(3);
    pattern.WriteI32(11);
    pattern.WriteI32(22);
    pattern.WriteI32(33);
    const size_t first = image_->find(pattern.buffer());
    ASSERT_NE(first, std::string::npos);
    ASSERT_EQ(image_->find(pattern.buffer(), first + 1), std::string::npos)
        << "tombstone byte pattern is not unique; pick different ids";
    tombstone_offset_ = first;
  }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }

  /// Recompute the trailing whole-image checksum after a deliberate patch,
  /// so the corruption reaches the structural validators instead of being
  /// masked by the checksum check.
  static std::string WithFixedChecksum(std::string image) {
    image.resize(image.size() - 8);
    BinaryWriter fixed;
    fixed.WriteBytes(image.data(), image.size());
    fixed.WriteU64(Fnv1a64(std::string_view(image)));
    return fixed.buffer();
  }

  static std::string* image_;
  static size_t tombstone_offset_;
};

std::string* TombstoneCheckpointCorruptionTest::image_ = nullptr;
size_t TombstoneCheckpointCorruptionTest::tombstone_offset_ = 0;

TEST_F(TombstoneCheckpointCorruptionTest, TombstonedImagesStampVersionTwo) {
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>((*image_)[8])),
            kCheckpointVersion);
  JaccardMatcher matcher;
  auto restored = ParseCheckpoint(*image_, matcher).ValueOrDie();
  EXPECT_EQ(restored->num_dead(), 3u);
  EXPECT_FALSE(restored->is_alive(11));
  EXPECT_FALSE(restored->is_alive(22));
  EXPECT_FALSE(restored->is_alive(33));
  EXPECT_EQ(SerializeCheckpoint(*restored).ValueOrDie(), *image_);
}

TEST_F(TombstoneCheckpointCorruptionTest, TruncationAtAnyPrefixFailsCleanly) {
  JaccardMatcher matcher;
  std::vector<size_t> lengths;
  for (size_t k = 0; k < 64 && k < image_->size(); ++k) lengths.push_back(k);
  for (size_t k = 64; k < image_->size(); k += image_->size() / 37 + 1) {
    lengths.push_back(k);
  }
  // Cuts inside the tombstone section itself.
  for (size_t k = 0; k <= kTombstonePatternLength; k += 3) {
    lengths.push_back(tombstone_offset_ + k);
  }
  lengths.push_back(image_->size() - 1);
  for (size_t len : lengths) {
    auto result = ParseCheckpoint(image_->substr(0, len), matcher);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
  }
}

TEST_F(TombstoneCheckpointCorruptionTest, TombstoneBitFlipCaughtByChecksum) {
  JaccardMatcher matcher;
  for (size_t k = 0; k < kTombstonePatternLength; k += 2) {
    std::string image = *image_;
    image[tombstone_offset_ + k] ^= 0x01;
    auto result = ParseCheckpoint(image, matcher);
    ASSERT_FALSE(result.ok()) << "flip at tombstone byte " << k;
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

TEST_F(TombstoneCheckpointCorruptionTest,
       StructurallyInvalidTombstonesRejectedPastTheChecksum) {
  // With the checksum recomputed, the patch must be caught by the tombstone
  // section's own validation: ids strictly ascending and in range.
  JaccardMatcher matcher;

  std::string reordered = *image_;
  reordered[tombstone_offset_ + 12] = 11;  // second id 22 -> 11 (duplicate)
  auto result = ParseCheckpoint(WithFixedChecksum(reordered), matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("ascending"), std::string::npos);

  std::string out_of_range = *image_;
  out_of_range[tombstone_offset_ + 16] = 0x7f;  // third id 33 -> huge
  out_of_range[tombstone_offset_ + 17] = 0x7f;
  result = ParseCheckpoint(WithFixedChecksum(out_of_range), matcher);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(TombstoneCheckpointCorruptionTest,
       PreTombstoneCheckpointsStillLoadAndRoundTrip) {
  // A tombstone-free pipeline serializes the version 1 layout byte for
  // byte — exactly what a pre-tombstone writer produced — and a v1 image
  // must load, round-trip, and accept removals (restamping v2) afterwards.
  const std::vector<Record> records = FinancialRecords(40);
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(1));
  IngestAll(&pipeline, records, 0, records.size(), 3, matcher);
  const std::string v1_image = SerializeCheckpoint(pipeline).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>(v1_image[8])), 1u);

  auto restored = ParseCheckpoint(v1_image, matcher).ValueOrDie();
  EXPECT_EQ(restored->num_dead(), 0u);
  EXPECT_EQ(SerializeCheckpoint(*restored).ValueOrDie(), v1_image);

  ASSERT_TRUE(restored->Remove({0}, matcher).ok());
  const std::string v2_image = SerializeCheckpoint(*restored).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>(v2_image[8])), 2u);
}

// ---------------------------------------------------------------------------
// MatchService
// ---------------------------------------------------------------------------

TEST(MatchServiceTest, EmptyServiceServesEpochZero) {
  MatchService service;
  EXPECT_EQ(service.Stats().epoch, 0u);
  EXPECT_EQ(service.Stats().num_records, 0u);
  EXPECT_EQ(service.GroupOf(0), kNoGroup);
  EXPECT_EQ(service.GroupOf(-1), kNoGroup);
  EXPECT_TRUE(service.Members(0).empty());
  EXPECT_TRUE(service.Members(kNoGroup).empty());
}

TEST(MatchServiceTest, PublishedSnapshotAnswersQueriesConsistently) {
  const std::vector<Record> records = FinancialRecords(40);
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(1));
  IngestAll(&pipeline, records, 0, records.size(), 2, matcher);
  const PipelineResult result = pipeline.Snapshot().ValueOrDie();

  MatchService service;
  EXPECT_EQ(service.Publish(result, records.size()), 1u);
  MatchSnapshotPtr view = service.View();
  EXPECT_EQ(view->epoch(), 1u);
  EXPECT_EQ(view->stats().num_records, records.size());
  EXPECT_EQ(view->stats().num_groups, result.groups.size());
  EXPECT_EQ(view->stats().num_predicted_pairs, result.predicted_pairs.size());

  // Every record maps into exactly the group that contains it.
  const auto reference = result.GroupOfRecord(records.size());
  size_t matched_groups = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    const GroupId gid = view->GroupOf(static_cast<RecordId>(r));
    EXPECT_EQ(gid, reference[r]);
    ASSERT_NE(gid, kNoGroup);
    const auto& members = view->Members(gid);
    EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                   static_cast<RecordId>(r)));
  }
  for (size_t g = 0; g < view->num_groups(); ++g) {
    const auto& members = view->Members(static_cast<GroupId>(g));
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    if (members.size() >= 2) ++matched_groups;
    for (RecordId r : members) {
      EXPECT_EQ(view->GroupOf(r), static_cast<GroupId>(g));
    }
  }
  EXPECT_EQ(view->stats().num_matched_groups, matched_groups);
  // Out-of-range queries answer cleanly.
  EXPECT_EQ(view->GroupOf(static_cast<RecordId>(records.size())), kNoGroup);
  EXPECT_TRUE(view->Members(static_cast<GroupId>(view->num_groups())).empty());
}

TEST(MatchServiceTest, HeldViewsAreImmutableAcrossPublishes) {
  const std::vector<Record> records = FinancialRecords(40);
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(1));

  MatchService service;
  IngestAll(&pipeline, records, 0, records.size() / 2, 1, matcher);
  service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  MatchSnapshotPtr old_view = service.View();
  const ServeStats old_stats = old_view->stats();

  IngestAll(&pipeline, records, records.size() / 2, records.size(), 1,
            matcher);
  service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  EXPECT_EQ(service.Stats().epoch, 2u);
  EXPECT_EQ(service.Stats().num_records, records.size());
  // The old view still answers with its own epoch's data.
  EXPECT_TRUE(old_view->stats() == old_stats);
  EXPECT_EQ(old_view->stats().num_records, records.size() / 2);
}

TEST(MatchServiceTest, ConcurrentReadersAlwaysSeeOneConsistentEpoch) {
  // The TSan-checked stress test: one ingester thread publishing epochs
  // while reader threads hammer queries. Each reader verifies that all the
  // queries it makes against one View agree with each other (no torn
  // epochs) and that epochs never go backwards.
  const std::vector<Record> records = FinancialRecords(30);
  const size_t num_batches = 12;
  const size_t batch_size = (records.size() + num_batches - 1) / num_batches;

  MatchService service;
  std::atomic<bool> done{false};
  std::atomic<size_t> total_queries{0};

  const size_t num_readers = 4;
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t t = 0; t < num_readers; ++t) {
    readers.emplace_back([&service, &done, &total_queries, t] {
      uint64_t last_epoch = 0;
      size_t queries = 0;
      uint32_t rng_state = static_cast<uint32_t>(t + 1);
      while (!done.load(std::memory_order_acquire)) {
        MatchSnapshotPtr view = service.View();
        const ServeStats stats = view->stats();
        ASSERT_GE(stats.epoch, last_epoch);
        last_epoch = stats.epoch;
        // Probe a handful of records: GroupOf and Members must agree with
        // each other inside this one view regardless of concurrent
        // publishes.
        for (int probe = 0; probe < 8; ++probe) {
          rng_state = rng_state * 1664525u + 1013904223u;
          if (stats.num_records == 0) break;
          const RecordId r =
              static_cast<RecordId>(rng_state % stats.num_records);
          const GroupId gid = view->GroupOf(r);
          ASSERT_NE(gid, kNoGroup);
          const auto& members = view->Members(gid);
          ASSERT_TRUE(std::binary_search(members.begin(), members.end(), r));
          for (RecordId member : members) {
            ASSERT_EQ(view->GroupOf(member), gid);
          }
          ++queries;
        }
      }
      total_queries.fetch_add(queries);
    });
  }

  JaccardMatcher matcher;
  IncrementalPipeline pipeline(ServeConfig(2));
  uint64_t published = 0;
  for (size_t offset = 0; offset < records.size(); offset += batch_size) {
    const size_t stop = std::min(offset + batch_size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                              records.begin() + static_cast<long>(stop));
    ASSERT_TRUE(pipeline.Ingest(batch, matcher).ok());
    published =
        service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(published, static_cast<uint64_t>(num_batches));
  EXPECT_EQ(service.Stats().epoch, published);
  EXPECT_EQ(service.Stats().num_records, records.size());
  EXPECT_GT(total_queries.load(), 0u);
}

}  // namespace
}  // namespace gralmatch

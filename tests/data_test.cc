// Tests for the data model: records, ground truth, group-wise splits and
// CSV round-trips.

#include <set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "data/record.h"

namespace gralmatch {
namespace {

TEST(RecordTest, SetGetOverwriteKeepsPosition) {
  Record rec(1, RecordKind::kCompany);
  rec.Set("name", "Acme");
  rec.Set("city", "Zurich");
  rec.Set("name", "Acme Corp");
  ASSERT_EQ(rec.attributes().size(), 2u);
  EXPECT_EQ(rec.attributes()[0].first, "name");
  EXPECT_EQ(rec.Get("name"), "Acme Corp");
  EXPECT_EQ(rec.Get("missing"), "");
  EXPECT_TRUE(rec.Has("city"));
  EXPECT_FALSE(rec.Has("missing"));
}

TEST(RecordTest, EraseRemovesAttribute) {
  Record rec(0, RecordKind::kSecurity);
  rec.Set("isin", "X");
  rec.Erase("isin");
  EXPECT_FALSE(rec.Has("isin"));
  rec.Erase("isin");  // idempotent
}

TEST(RecordTest, MultiValuedAttributes) {
  Record rec(0, RecordKind::kSecurity);
  rec.AddMulti("isin", "US1");
  rec.AddMulti("isin", "US2");
  rec.AddMulti("isin", "US1");  // duplicate ignored
  rec.AddMulti("isin", "");     // empty ignored
  EXPECT_EQ(rec.GetMulti("isin"), (std::vector<std::string>{"US1", "US2"}));
  EXPECT_TRUE(rec.GetMulti("cusip").empty());
}

TEST(RecordTest, AllTextSkipsMetadataAndEmpty) {
  Record rec(0, RecordKind::kCompany);
  rec.Set("name", "Acme");
  rec.Set("_event", "acquisition");
  rec.Set("empty", "");
  rec.Set("city", "Basel");
  EXPECT_EQ(rec.AllText(), "Acme Basel");
}

TEST(RecordTableTest, AddAndSourceCount) {
  RecordTable table;
  EXPECT_TRUE(table.empty());
  RecordId a = table.Add(Record(0, RecordKind::kCompany));
  RecordId b = table.Add(Record(2, RecordKind::kCompany));
  table.Add(Record(2, RecordKind::kCompany));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.NumSources(), 2u);
  table.mutable_at(a)->Set("name", "X");
  EXPECT_EQ(table.at(a).Get("name"), "X");
}

GroundTruth MakeTruth() {
  GroundTruth truth;
  truth.Assign(0, 10);
  truth.Assign(1, 10);
  truth.Assign(2, 10);
  truth.Assign(3, 20);
  truth.Assign(4, 20);
  truth.Assign(5, kInvalidEntity);
  return truth;
}

TEST(GroundTruthTest, MatchSemantics) {
  GroundTruth truth = MakeTruth();
  EXPECT_TRUE(truth.IsMatch(0, 1));
  EXPECT_FALSE(truth.IsMatch(0, 3));
  // Unassigned records never match, not even themselves.
  EXPECT_FALSE(truth.IsMatch(5, 5));
  EXPECT_TRUE(truth.IsMatch(RecordPair(4, 3)));
}

TEST(GroundTruthTest, GroupsAndCounts) {
  GroundTruth truth = MakeTruth();
  auto groups = truth.Groups();
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(truth.NumEntities(), 2u);
  EXPECT_EQ(groups[10].size(), 3u);
  // C(3,2) + C(2,2) = 3 + 1.
  EXPECT_EQ(truth.NumTrueMatches(), 4u);
}

TEST(GroundTruthTest, AllTruePairsCompleteGraphs) {
  GroundTruth truth = MakeTruth();
  auto pairs = truth.AllTruePairs();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], RecordPair(0, 1));
  EXPECT_EQ(pairs[3], RecordPair(3, 4));
}

TEST(RecordPairTest, NormalizesOrder) {
  RecordPair p(5, 2);
  EXPECT_EQ(p.a, 2);
  EXPECT_EQ(p.b, 5);
  EXPECT_EQ(p, RecordPair(2, 5));
  EXPECT_LT(RecordPair(1, 9), RecordPair(2, 3));
  RecordPairHash hash;
  EXPECT_EQ(hash(RecordPair(5, 2)), hash(RecordPair(2, 5)));
}

TEST(SplitTest, FractionsRoughlyRespected) {
  GroundTruth truth;
  for (RecordId r = 0; r < 1000; ++r) {
    truth.Assign(r, r / 4);  // 250 groups of 4
  }
  Rng rng(1);
  GroupSplit split = SplitByGroups(truth, &rng);
  size_t train = split.RecordsIn(SplitPart::kTrain).size();
  size_t val = split.RecordsIn(SplitPart::kValidation).size();
  size_t test = split.RecordsIn(SplitPart::kTest).size();
  EXPECT_EQ(train + val + test, 1000u);
  EXPECT_NEAR(train, 600.0, 40.0);
  EXPECT_NEAR(val, 200.0, 40.0);
  EXPECT_NEAR(test, 200.0, 40.0);
}

TEST(SplitTest, GroupsNeverStraddleSplits) {
  GroundTruth truth;
  Rng seed_rng(3);
  // Variable group sizes.
  RecordId next = 0;
  for (EntityId e = 0; e < 200; ++e) {
    size_t size = 1 + seed_rng.Uniform(6);
    for (size_t k = 0; k < size; ++k) truth.Assign(next++, e);
  }
  Rng rng(2);
  GroupSplit split = SplitByGroups(truth, &rng);
  auto groups = truth.Groups();
  for (const auto& [e, members] : groups) {
    std::set<SplitPart> parts;
    for (RecordId r : members) parts.insert(split.part(r));
    EXPECT_EQ(parts.size(), 1u) << "entity " << e << " straddles splits";
  }
}

TEST(CsvTest, ParseQuotedFields) {
  auto rows = ParseCsv("a,\"b,c\",\"d\"\"e\"\nf,,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b,c", "d\"e"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"f", "", ""}));
}

TEST(CsvTest, ParseEmbeddedNewline) {
  auto rows = ParseCsv("x,\"line1\nline2\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated\n").ok());
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  std::string csv = WriteCsv({{"plain", "with,comma", "with\"quote"}});
  EXPECT_EQ(csv, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, RecordsRoundTrip) {
  RecordTable table;
  GroundTruth truth;
  Record r1(0, RecordKind::kCompany);
  r1.Set("name", "Acme, Inc.");
  r1.Set("city", "Zurich");
  truth.Assign(table.Add(std::move(r1)), 7);
  Record r2(3, RecordKind::kCompany);
  r2.Set("name", "Beta \"B\"");
  r2.Set("region", "Bavaria");
  truth.Assign(table.Add(std::move(r2)), 8);

  std::string path = ::testing::TempDir() + "/records_roundtrip.csv";
  ASSERT_TRUE(WriteRecordsCsv(path, table, &truth).ok());

  RecordTable loaded;
  GroundTruth loaded_truth;
  ASSERT_TRUE(
      ReadRecordsCsv(path, RecordKind::kCompany, &loaded, &loaded_truth).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at(0).Get("name"), "Acme, Inc.");
  EXPECT_EQ(loaded.at(0).source(), 0);
  EXPECT_EQ(loaded.at(1).Get("region"), "Bavaria");
  EXPECT_EQ(loaded.at(1).source(), 3);
  EXPECT_EQ(loaded_truth.entity_of(0), 7);
  EXPECT_EQ(loaded_truth.entity_of(1), 8);
}

TEST(CsvTest, ReadMissingFileFails) {
  RecordTable table;
  EXPECT_FALSE(ReadRecordsCsv("/nonexistent/nope.csv", RecordKind::kCompany,
                              &table, nullptr)
                   .ok());
}

// ---------------------------------------------------------------------------
// CSV edge cases and round-trip properties (streaming ingestion feeds this
// parser, so quoting/CRLF/empty-field handling must be watertight).
// ---------------------------------------------------------------------------

TEST(CsvEdgeCaseTest, CrlfLineEndings) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvEdgeCaseTest, CrlfInsideQuotedFieldIsPreserved) {
  auto rows = ParseCsv("x,\"line1\r\nline2\"\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"x", "line1\r\nline2"}));
}

TEST(CsvEdgeCaseTest, BareCarriageReturnIsARowBreak) {
  // Regression: a bare \r (classic-Mac line ending) used to be silently
  // dropped, gluing "a\rb\rc" into one row {"ab c..."}-style. It now
  // terminates the row, like every \r-accepting CSV reader.
  auto rows = ParseCsv("a,b\rc,d\re");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"e"}));
}

TEST(CsvEdgeCaseTest, MixedLineTerminatorsAgree) {
  auto rows = ParseCsv("a\r\nb\rc\nd");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"b"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"c"}));
  EXPECT_EQ((*rows)[3], (std::vector<std::string>{"d"}));
}

TEST(CsvEdgeCaseTest, FinalRowWithCrAndNoNewline) {
  auto rows = ParseCsv("a,b\r");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvEdgeCaseTest, BlankCrlfLinesAreSkipped) {
  auto rows = ParseCsv("a\r\n\r\n\rb\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"b"}));
}

TEST(CsvEdgeCaseTest, FieldsOfBareLineTerminatorsRoundTrip) {
  // The writer quotes \r and \n content, so fields that *are* line
  // terminators survive; on parse the quoted bytes are preserved verbatim.
  const std::vector<std::vector<std::string>> rows = {
      {"\r", "\n"}, {"\r\n"}, {"a\rb", "c\nd"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvEdgeCaseTest, QuotedFieldWithEmbeddedSeparatorsAndQuotes) {
  auto rows = ParseCsv("\"a,b\n\"\"c\"\"\",plain\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a,b\n\"c\"", "plain"}));
}

TEST(CsvEdgeCaseTest, TrailingEmptyFields) {
  auto rows = ParseCsv("a,,\n,,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "", ""}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvEdgeCaseTest, MissingTrailingNewlineStillEmitsLastRow) {
  auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvEdgeCaseTest, BlankLinesAreSkipped) {
  auto rows = ParseCsv("a\n\n\nb\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"b"}));
}

TEST(CsvEdgeCaseTest, SingleEmptyFieldRowRoundTrips) {
  // A lone empty field must not serialize to a blank line (blank lines are
  // skipped on parse); WriteCsv quotes it.
  const std::vector<std::vector<std::string>> rows = {{""}, {"x"}, {""}};
  const std::string csv = WriteCsv(rows);
  EXPECT_EQ(csv, "\"\"\nx\n\"\"\n");
  auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvEdgeCaseTest, ZeroFieldRowIsNotSilentlyDropped) {
  // CSV cannot distinguish a zero-field row from a single empty field;
  // WriteCsv normalizes the former to the latter instead of emitting a
  // blank line that ParseCsv would skip (which silently lost the row).
  const std::string csv = WriteCsv({{}, {"x"}});
  EXPECT_EQ(csv, "\"\"\nx\n");
  auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (std::vector<std::string>{""}));
  EXPECT_EQ((*parsed)[1], (std::vector<std::string>{"x"}));
}

TEST(CsvPropertyTest, RandomRowsRoundTripExactly) {
  // Fields drawn from a charset dense in CSV metacharacters: separators,
  // quotes, both newline conventions, spaces.
  const std::string charset = "ab,\"\n\r ;|";
  Rng rng(20260726);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::vector<std::string>> rows;
    const size_t num_rows = 1 + rng.Uniform(6);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row(1 + rng.Uniform(5));
      for (auto& field : row) {
        const size_t len = rng.Uniform(8);
        for (size_t k = 0; k < len; ++k) {
          field.push_back(charset[rng.Uniform(charset.size())]);
        }
      }
      rows.push_back(std::move(row));
    }
    auto parsed = ParseCsv(WriteCsv(rows));
    ASSERT_TRUE(parsed.ok()) << "round " << round;
    EXPECT_EQ(*parsed, rows) << "round " << round;
  }
}

}  // namespace
}  // namespace gralmatch

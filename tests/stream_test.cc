// Differential test suite for the incremental matching subsystem: after any
// sequence of Ingest() calls, IncrementalPipeline::Snapshot() must be
// identical — predicted pairs, pre-cleanup components, groups, and all
// cleanup counters — to a from-scratch EntityGroupPipeline::Run on the union
// of all batches with the same blockers and matcher, at any thread count.
// Schedules cover: one batch (== full run), K equal batches, singleton
// batches, random split points, and source-interleaved arrival order, on
// both the financial-securities and WDC-products fixtures. The suite also
// proves the pair-score cache prevents matcher re-invocation (a counting
// matcher asserts every scored pair is scored exactly once per fingerprint)
// and that a fingerprint change invalidates the cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/binary_io.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Matchers
// ---------------------------------------------------------------------------

/// Deterministic text matcher (token Jaccard of AllText, scaled): avoids
/// transcendental math so scores are bit-identical everywhere, and carries a
/// tunable `scale` that changes its fingerprint.
class JaccardMatcher : public PairwiseMatcher {
 public:
  explicit JaccardMatcher(double scale = 1.0) : scale_(scale) {}

  std::string name() const override { return "jaccard"; }
  std::string Fingerprint() const override {
    return "jaccard#" + std::to_string(scale_);
  }
  double MatchProbability(const Record& a, const Record& b) const override {
    auto ta = Tokens(a);
    auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0;
    size_t ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    double score = scale_ * static_cast<double>(common) /
                   static_cast<double>(total == 0 ? 1 : total);
    return score > 1.0 ? 1.0 : score;
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }

  double scale_;
};

/// Wrapper proving cache effectiveness: counts calls and the distinct pairs
/// seen (via the "_uid" metadata attribute the fixtures stamp on every
/// record). Thread-safe, as the pipeline requires.
class CountingMatcher : public PairwiseMatcher {
 public:
  explicit CountingMatcher(const PairwiseMatcher* inner) : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_;
      int ua = std::stoi(std::string(a.Get("_uid")));
      int ub = std::stoi(std::string(b.Get("_uid")));
      seen_.insert({std::min(ua, ub), std::max(ua, ub)});
    }
    return inner_->MatchProbability(a, b);
  }

  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  size_t distinct_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }

 private:
  const PairwiseMatcher* inner_;
  mutable std::mutex mu_;
  mutable size_t calls_ = 0;
  mutable std::set<std::pair<int, int>> seen_;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Records of `table` as a vector, each stamped with a unique "_uid"
/// metadata attribute (excluded from matching inputs by convention).
std::vector<Record> WithUids(const RecordTable& table) {
  std::vector<Record> out;
  out.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    Record rec = table.at(static_cast<RecordId>(i));
    rec.Set("_uid", std::to_string(i));
    out.push_back(std::move(rec));
  }
  return out;
}

/// From-scratch reference: the same blockers and pipeline configuration the
/// incremental pipeline maintains, run on the full record set.
PipelineResult RunBatchReference(const RecordTable& records,
                                 const IncrementalPipelineConfig& config,
                                 const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  if (config.use_id_blocker) {
    IdOverlapBlocker::Options opts;
    opts.num_threads = config.pipeline.num_threads;
    IdOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  if (config.use_token_blocker) {
    TokenOverlapBlocker::Options opts = config.token;
    opts.num_threads = config.pipeline.num_threads;
    TokenOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

void ExpectEquivalent(const PipelineResult& incremental,
                      const PipelineResult& reference,
                      const std::string& context) {
  EXPECT_EQ(incremental.predicted_pairs, reference.predicted_pairs) << context;
  EXPECT_EQ(incremental.pre_cleanup_components,
            reference.pre_cleanup_components)
      << context;
  EXPECT_EQ(incremental.groups, reference.groups) << context;
  EXPECT_EQ(incremental.cleanup_stats.pre_cleanup_edges_removed,
            reference.cleanup_stats.pre_cleanup_edges_removed)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.min_cut_calls,
            reference.cleanup_stats.min_cut_calls)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.min_cut_edges_removed,
            reference.cleanup_stats.min_cut_edges_removed)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.betweenness_calls,
            reference.cleanup_stats.betweenness_calls)
      << context;
  EXPECT_EQ(incremental.cleanup_stats.betweenness_edges_removed,
            reference.cleanup_stats.betweenness_edges_removed)
      << context;
}

/// Ingest `records` in batches of the given sizes and differential-check
/// every `check_every`-th ingest (and always the last) against the
/// from-scratch reference.
void RunSchedule(const std::vector<Record>& records,
                 const std::vector<size_t>& batch_sizes,
                 const IncrementalPipelineConfig& config,
                 const PairwiseMatcher& matcher, size_t check_every = 1) {
  IncrementalPipeline pipeline(config);
  size_t offset = 0;
  for (size_t b = 0; b < batch_sizes.size(); ++b) {
    const size_t size = batch_sizes[b];
    ASSERT_LE(offset + size, records.size());
    std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                              records.begin() +
                                  static_cast<long>(offset + size));
    ASSERT_TRUE(pipeline.Ingest(batch, matcher).ok());
    offset += size;
    const bool last = b + 1 == batch_sizes.size();
    if (!last && (b + 1) % check_every != 0) continue;
    const std::string context = "after batch " + std::to_string(b + 1) + "/" +
                                std::to_string(batch_sizes.size()) +
                                " (threads=" +
                                std::to_string(config.pipeline.num_threads) +
                                ")";
    ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                     RunBatchReference(pipeline.records(), config, matcher),
                     context);
  }
  ASSERT_EQ(offset, records.size());
}

std::vector<size_t> EqualBatches(size_t n, size_t k) {
  std::vector<size_t> sizes(k, n / k);
  sizes.back() += n % k;
  return sizes;
}

/// Pipeline configuration tightened so every cleanup phase actually fires
/// on these fixture sizes (pre-cleanup edge removal, min-cut splits and
/// betweenness trims all have nonzero counters — verified by the counter
/// comparison in ExpectEquivalent being non-vacuous).
IncrementalPipelineConfig StreamConfig(size_t num_threads,
                                       double match_threshold) {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 6;
  config.pipeline.cleanup.mu = 3;
  config.pipeline.pre_cleanup_threshold = 9;
  config.pipeline.match_threshold = match_threshold;
  config.pipeline.num_threads = num_threads;
  config.token.top_n = 5;
  return config;
}

// ---------------------------------------------------------------------------
// Financial fixture
// ---------------------------------------------------------------------------

class FinancialStream : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config;
    config.seed = 505;
    config.num_groups = 60;
    FinancialBenchmark bench = FinancialGenerator(config).Generate();
    records_ = new std::vector<Record>(WithUids(bench.securities.records));
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static std::vector<Record>* records_;
};

std::vector<Record>* FinancialStream::records_ = nullptr;

TEST_F(FinancialStream, SingleBatchEqualsFullRun) {
  JaccardMatcher matcher;
  RunSchedule(*records_, {records_->size()}, StreamConfig(1, 0.25), matcher);
}

TEST_F(FinancialStream, KBatchesEquivalentAtEveryThreadCount) {
  JaccardMatcher matcher;
  for (size_t threads : {1u, 2u, 8u}) {
    RunSchedule(*records_, EqualBatches(records_->size(), 6),
                StreamConfig(threads, 0.25), matcher);
  }
}

TEST_F(FinancialStream, SingletonBatchesEquivalent) {
  // Every record its own batch: the maximal-churn schedule (document
  // frequencies, the max-df cap, and bucket sizes shift on every ingest).
  SyntheticConfig config;
  config.seed = 505;
  config.num_groups = 40;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();
  std::vector<Record> records = WithUids(bench.securities.records);
  JaccardMatcher matcher;
  RunSchedule(records, std::vector<size_t>(records.size(), 1),
              StreamConfig(1, 0.25), matcher, /*check_every=*/40);
}

TEST_F(FinancialStream, RandomizedSchedulesEquivalent) {
  JaccardMatcher matcher;
  Rng rng(2026);
  for (int round = 0; round < 3; ++round) {
    std::vector<size_t> sizes;
    size_t remaining = records_->size();
    while (remaining > 0) {
      size_t size = 1 + rng.Uniform(remaining < 90 ? remaining : 90);
      sizes.push_back(size);
      remaining -= size;
    }
    RunSchedule(*records_, sizes, StreamConfig(1, 0.25), matcher,
                /*check_every=*/2);
  }
}

TEST_F(FinancialStream, InterleavedSourceArrivalEquivalent) {
  // Sources drip-feed round-robin (vendor A's file, then vendor B's, ...):
  // the union is a reordering of the fixture, and equivalence must hold for
  // that arrival order too.
  std::vector<Record> interleaved;
  interleaved.reserve(records_->size());
  std::vector<std::vector<size_t>> by_source;
  for (size_t i = 0; i < records_->size(); ++i) {
    const size_t source = static_cast<size_t>((*records_)[i].source());
    if (by_source.size() <= source) by_source.resize(source + 1);
    by_source[source].push_back(i);
  }
  for (size_t k = 0; !by_source.empty(); ++k) {
    bool any = false;
    for (const auto& ids : by_source) {
      if (k < ids.size()) {
        interleaved.push_back((*records_)[ids[k]]);
        any = true;
      }
    }
    if (!any) break;
  }
  ASSERT_EQ(interleaved.size(), records_->size());
  JaccardMatcher matcher;
  for (size_t threads : {1u, 8u}) {
    RunSchedule(interleaved, EqualBatches(interleaved.size(), 5),
                StreamConfig(threads, 0.25), matcher);
  }
}

TEST_F(FinancialStream, ScoreCachePreventsMatcherReinvocation) {
  JaccardMatcher inner;
  CountingMatcher counting(&inner);
  IncrementalPipelineConfig config = StreamConfig(4, 0.25);
  IncrementalPipeline pipeline(config);
  const std::vector<size_t> sizes = EqualBatches(records_->size(), 8);
  size_t offset = 0;
  for (size_t size : sizes) {
    std::vector<Record> batch(records_->begin() + static_cast<long>(offset),
                              records_->begin() +
                                  static_cast<long>(offset + size));
    ASSERT_TRUE(pipeline.Ingest(batch, counting).ok());
    offset += size;
  }
  // The headline cache property: no pair is ever scored twice.
  EXPECT_GT(counting.calls(), 0u);
  EXPECT_EQ(counting.calls(), counting.distinct_pairs());
  EXPECT_EQ(counting.calls(), pipeline.total_matcher_calls());
  // Sanity: the incremental run produced a real result.
  PipelineResult result = pipeline.Snapshot().ValueOrDie();
  EXPECT_GT(result.predicted_pairs.size(), 0u);
  EXPECT_GT(result.groups.size(), 0u);
}

/// Jaccard wrapper that DOES override ScoreBatch (the default loops
/// MatchProbability instead), recording how its pairs arrive. Lets the
/// tests below pin both sides of the batching contract: the pipeline hands
/// the matcher real multi-pair batches, and the scores that come back are
/// identical to the per-pair walk.
class BatchingJaccardMatcher : public PairwiseMatcher {
 public:
  explicit BatchingJaccardMatcher(const JaccardMatcher* inner)
      : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++single_calls_;
    }
    return inner_->MatchProbability(a, b);
  }
  void ScoreBatch(const RecordTable& records, Span<const RecordPair> pairs,
                  Span<double> out) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batch_calls_;
      batched_pairs_ += pairs.size();
      max_batch_ = std::max(max_batch_, pairs.size());
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = inner_->MatchProbability(records.at(pairs[i].a),
                                        records.at(pairs[i].b));
    }
  }

  size_t single_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return single_calls_;
  }
  size_t batch_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_calls_;
  }
  size_t batched_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batched_pairs_;
  }
  size_t max_batch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_batch_;
  }

 private:
  const JaccardMatcher* inner_;
  mutable std::mutex mu_;
  mutable size_t single_calls_ = 0;
  mutable size_t batch_calls_ = 0;
  mutable size_t batched_pairs_ = 0;
  mutable size_t max_batch_ = 0;
};

TEST_F(FinancialStream, BatchedScoringEquivalentAcrossThreadsAndBatchSizes) {
  // Ingest with a ScoreBatch-overriding matcher at every thread count and
  // several batch sizes; every snapshot must equal the per-pair reference
  // (plain JaccardMatcher, score_batch_size=1, serial).
  JaccardMatcher inner;
  IncrementalPipelineConfig reference_config = StreamConfig(1, 0.25);
  reference_config.pipeline.score_batch_size = 1;

  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t batch_size : {1u, 7u, 64u}) {
      BatchingJaccardMatcher batching(&inner);
      IncrementalPipelineConfig config = StreamConfig(threads, 0.25);
      config.pipeline.score_batch_size = batch_size;
      IncrementalPipeline pipeline(config);
      size_t offset = 0;
      for (size_t size : EqualBatches(records_->size(), 4)) {
        std::vector<Record> batch(
            records_->begin() + static_cast<long>(offset),
            records_->begin() + static_cast<long>(offset + size));
        ASSERT_TRUE(pipeline.Ingest(batch, batching).ok());
        offset += size;
      }
      const std::string context = "threads=" + std::to_string(threads) +
                                  " batch_size=" + std::to_string(batch_size);
      ExpectEquivalent(
          pipeline.Snapshot().ValueOrDie(),
          RunBatchReference(pipeline.records(), reference_config, inner),
          context);
      // All scoring went through the ScoreBatch override, and no batch
      // exceeded the configured size.
      EXPECT_EQ(batching.single_calls(), 0u) << context;
      EXPECT_EQ(batching.batched_pairs(), pipeline.total_matcher_calls())
          << context;
      EXPECT_LE(batching.max_batch(), batch_size) << context;
    }
  }
}

TEST_F(FinancialStream, ScoreBatchCallAccountingReflectsChunking) {
  // With score_batch_size=16 the matcher must see multi-pair batches: far
  // fewer ScoreBatch calls than pairs, and exactly ceil(n/16) calls per
  // scoring wave — pinned here via the total over a known schedule.
  JaccardMatcher inner;
  BatchingJaccardMatcher batching(&inner);
  IncrementalPipelineConfig config = StreamConfig(1, 0.25);
  config.pipeline.score_batch_size = 16;
  IncrementalPipeline pipeline(config);
  size_t expected_calls = 0;
  size_t offset = 0;
  for (size_t size : EqualBatches(records_->size(), 5)) {
    std::vector<Record> batch(records_->begin() + static_cast<long>(offset),
                              records_->begin() +
                                  static_cast<long>(offset + size));
    const size_t calls_before = batching.batched_pairs();
    IngestReport report = pipeline.Ingest(batch, batching).ValueOrDie();
    offset += size;
    EXPECT_EQ(batching.batched_pairs() - calls_before, report.pairs_scored);
    expected_calls += (report.pairs_scored + 15) / 16;
  }
  EXPECT_EQ(batching.batch_calls(), expected_calls);
  EXPECT_GT(batching.batched_pairs(), batching.batch_calls());
  EXPECT_EQ(batching.batched_pairs(), pipeline.total_matcher_calls());
}

TEST_F(FinancialStream, FingerprintChangeInvalidatesCacheAndStaysEquivalent) {
  JaccardMatcher matcher_v1(1.0);
  JaccardMatcher matcher_v2(1.4);
  ASSERT_NE(matcher_v1.Fingerprint(), matcher_v2.Fingerprint());

  IncrementalPipelineConfig config = StreamConfig(2, 0.25);
  IncrementalPipeline pipeline(config);
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());

  ASSERT_TRUE(pipeline.Ingest(first, matcher_v1).ok());
  const size_t calls_v1 = pipeline.total_matcher_calls();
  EXPECT_GT(calls_v1, 0u);

  // Swapping the matcher (empty batch) rescores every current candidate and
  // the snapshot tracks the new matcher's from-scratch result.
  IngestReport swap = pipeline.Ingest({}, matcher_v2).ValueOrDie();
  EXPECT_EQ(swap.records_added, 0u);
  EXPECT_GT(swap.pairs_scored, 0u);
  ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                   RunBatchReference(pipeline.records(), config, matcher_v2),
                   "after matcher swap");

  ASSERT_TRUE(pipeline.Ingest(second, matcher_v2).ok());
  ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                   RunBatchReference(pipeline.records(), config, matcher_v2),
                   "after matcher swap + second half");
}

TEST_F(FinancialStream, EmptyBatchIsANoOp) {
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = StreamConfig(1, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
  PipelineResult before = pipeline.Snapshot().ValueOrDie();
  const size_t calls = pipeline.total_matcher_calls();

  IngestReport report = pipeline.Ingest({}, matcher).ValueOrDie();
  EXPECT_EQ(report.records_added, 0u);
  EXPECT_EQ(report.pairs_scored, 0u);
  EXPECT_EQ(report.candidates_added, 0u);
  EXPECT_EQ(report.candidates_removed, 0u);
  EXPECT_EQ(report.components_rebuilt, 0u);
  EXPECT_EQ(pipeline.total_matcher_calls(), calls);
  ExpectEquivalent(pipeline.Snapshot().ValueOrDie(), before, "after empty batch");
}

TEST_F(FinancialStream, ReportsObserveIncrementalScoping) {
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = StreamConfig(1, 0.25);
  IncrementalPipeline pipeline(config);
  const std::vector<size_t> sizes = EqualBatches(records_->size(), 6);
  size_t offset = 0;
  size_t reused_total = 0;
  for (size_t size : sizes) {
    std::vector<Record> batch(records_->begin() + static_cast<long>(offset),
                              records_->begin() +
                                  static_cast<long>(offset + size));
    IngestReport report = pipeline.Ingest(batch, matcher).ValueOrDie();
    offset += size;
    EXPECT_EQ(report.records_added, size);
    reused_total += report.components_reused;
  }
  // Later batches must splice some untouched components through unchanged —
  // the point of dirty-component scoping.
  EXPECT_GT(reused_total, 0u);
}

// ---------------------------------------------------------------------------
// WDC products fixture
// ---------------------------------------------------------------------------

TEST(WdcStream, KBatchesEquivalentAtEveryThreadCount) {
  WdcConfig config;
  config.num_entities = 120;
  config.seed = 77;
  Dataset products = WdcProductsGenerator(config).Generate();
  std::vector<Record> records = WithUids(products.records);
  JaccardMatcher matcher;
  for (size_t threads : {1u, 2u, 8u}) {
    RunSchedule(records, EqualBatches(records.size(), 5),
                StreamConfig(threads, 0.35), matcher);
  }
}

TEST(WdcStream, RandomizedSchedulesEquivalent) {
  WdcConfig config;
  config.num_entities = 120;
  config.seed = 77;
  Dataset products = WdcProductsGenerator(config).Generate();
  std::vector<Record> records = WithUids(products.records);
  JaccardMatcher matcher;
  Rng rng(7);
  for (int round = 0; round < 2; ++round) {
    std::vector<size_t> sizes;
    size_t remaining = records.size();
    while (remaining > 0) {
      size_t size = 1 + rng.Uniform(remaining < 70 ? remaining : 70);
      sizes.push_back(size);
      remaining -= size;
    }
    RunSchedule(records, sizes, StreamConfig(1, 0.35), matcher,
                /*check_every=*/2);
  }
}

TEST(WdcStream, ScoreCacheOnProductsNeverRescores) {
  WdcConfig config;
  config.num_entities = 120;
  config.seed = 77;
  Dataset products = WdcProductsGenerator(config).Generate();
  std::vector<Record> records = WithUids(products.records);
  JaccardMatcher inner;
  CountingMatcher counting(&inner);
  IncrementalPipeline pipeline(StreamConfig(2, 0.35));
  size_t offset = 0;
  for (size_t size : EqualBatches(records.size(), 7)) {
    std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                              records.begin() +
                                  static_cast<long>(offset + size));
    ASSERT_TRUE(pipeline.Ingest(batch, counting).ok());
    offset += size;
  }
  EXPECT_GT(counting.calls(), 0u);
  EXPECT_EQ(counting.calls(), counting.distinct_pairs());
  EXPECT_EQ(counting.calls(), pipeline.total_matcher_calls());
}

// ---------------------------------------------------------------------------
// Poisoned-pipeline fail-fast
// ---------------------------------------------------------------------------

/// Matcher that throws once its call budget is exhausted — models a flaky
/// remote scorer dying mid-ingest. Starts with an unlimited budget; ArmAfter
/// restricts the remaining healthy calls.
class ThrowingMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "throwing"; }
  std::string Fingerprint() const override { return "throwing#1"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ == 0) throw std::runtime_error("scorer backend unavailable");
    if (budget_ != SIZE_MAX) --budget_;
    return JaccardMatcher().MatchProbability(a, b);
  }

  void ArmAfter(size_t calls) {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = calls;
  }

 private:
  mutable std::mutex mu_;
  mutable size_t budget_ = SIZE_MAX;
};

TEST_F(FinancialStream, ThrowingMatcherPoisonsThePipeline) {
  IncrementalPipeline pipeline(StreamConfig(2, 0.25));
  const size_t half = records_->size() / 2;
  std::vector<Record> first(records_->begin(),
                            records_->begin() + static_cast<long>(half));
  std::vector<Record> second(records_->begin() + static_cast<long>(half),
                             records_->end());

  // A healthy ingest, then one whose matcher dies mid-scoring: records and
  // blocking indexes are already updated when the throw happens, so the
  // pipeline transitions to the poisoned state instead of pretending the
  // half-applied ingest succeeded.
  ThrowingMatcher matcher;
  ASSERT_TRUE(pipeline.Ingest(first, matcher).ok());
  ASSERT_TRUE(pipeline.status().ok());

  matcher.ArmAfter(/*calls=*/3);
  Result<IngestReport> aborted = pipeline.Ingest(second, matcher);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kInternal);
  EXPECT_NE(aborted.status().message().find("scorer backend unavailable"),
            std::string::npos);

  // Every subsequent state-observing operation fails with the same clean
  // error — no unspecified state ever escapes.
  EXPECT_FALSE(pipeline.status().ok());
  Result<IngestReport> again = pipeline.Ingest({}, matcher);
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("poisoned"), std::string::npos);
  Result<PipelineResult> snapshot = pipeline.Snapshot();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(snapshot.status().message().find("poisoned"), std::string::npos);
  BinaryWriter writer;
  Status serialized = pipeline.Serialize(&writer);
  ASSERT_FALSE(serialized.ok());
  EXPECT_NE(serialized.message().find("poisoned"), std::string::npos);
}

TEST_F(FinancialStream, MatcherThrowOnFirstIngestAlsoPoisons) {
  IncrementalPipeline pipeline(StreamConfig(1, 0.25));
  ThrowingMatcher matcher;
  matcher.ArmAfter(/*calls=*/0);
  Result<IngestReport> aborted = pipeline.Ingest(*records_, matcher);
  ASSERT_FALSE(aborted.ok());
  EXPECT_FALSE(pipeline.Snapshot().ok());
  EXPECT_FALSE(pipeline.status().ok());
}

}  // namespace
}  // namespace gralmatch

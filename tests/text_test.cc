// Tests for the text substrate: normalization, similarity measures, the
// subword vocabulary, TF-IDF and the corporate-naming helpers.

#include <gtest/gtest.h>

#include "text/corporate.h"
#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tfidf.h"
#include "text/vocab.h"

namespace gralmatch {
namespace {

TEST(NormalizeTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeText("CrowdStrike Holdings, Inc."),
            "crowdstrike holdings inc");
  EXPECT_EQ(NormalizeText("  A--B  "), "a b");
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("..."), "");
}

TEST(NormalizeTest, KeepsDigits) {
  EXPECT_EQ(NormalizeText("Bond 4.25% 2030"), "bond 4 25 2030");
}

TEST(TokenizeTest, WordsAndStopwords) {
  EXPECT_EQ(TokenizeWords("The Data-Pipeline"),
            (std::vector<std::string>{"the", "data", "pipeline"}));
  EXPECT_EQ(TokenizeContentWords("The Data of Pipeline"),
            (std::vector<std::string>{"data", "pipeline"}));
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_FALSE(IsStopword("data"));
}

TEST(SimilarityTest, LevenshteinKnownValues) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("crowdstrike", "crowdstreet"), 3u);
}

TEST(SimilarityTest, LevenshteinSimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-9);
}

TEST(SimilarityTest, JaroEmptyAndSingleCharEdgeCases) {
  // Empty-vs-empty is a perfect match by convention; empty-vs-nonempty has
  // no matching characters at all.
  EXPECT_DOUBLE_EQ(Jaro("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("", "a"), 0.0);
  EXPECT_DOUBLE_EQ(Jaro("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(Jaro("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("a", "b"), 0.0);
  // One char against two: m=1, |a|=1, |b|=2, t=0 -> (1/1 + 1/2 + 1)/3.
  EXPECT_DOUBLE_EQ(Jaro("a", "ab"), (1.0 + 1.0 / 2.0 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(Jaro("ab", "a"), (1.0 / 2.0 + 1.0 + 1.0) / 3.0);
  // "ab" vs "ba": the match window floor(max/2)-1 = 0 admits no cross
  // matches, so the standard value is 0, not a transposition of 2 matches.
  EXPECT_DOUBLE_EQ(Jaro("ab", "ba"), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("a", "a"), 1.0);
}

TEST(SimilarityTest, JaroHandComputedReferenceValues) {
  // Classic textbook pairs, against by-hand runs of the Winkler-variant
  // definition: window = max(|a|,|b|)/2 - 1, transpositions = half the
  // matched positions whose characters disagree.
  // martha/marhta: m=6, th<->ht gives t=1 -> (1 + 1 + 5/6)/3 = 17/18.
  EXPECT_DOUBLE_EQ(Jaro("martha", "marhta"), (1.0 + 1.0 + 5.0 / 6.0) / 3.0);
  // dwayne/duane: m=4 (d,a,n,e), t=0 -> (4/6 + 4/5 + 1)/3 = 37/45.
  EXPECT_DOUBLE_EQ(Jaro("dwayne", "duane"),
                   (4.0 / 6.0 + 4.0 / 5.0 + 1.0) / 3.0);
  // dixon/dicksonx: m=4 (d,i,o,n), t=0 -> (4/5 + 4/8 + 1)/3 = 23/30.
  EXPECT_DOUBLE_EQ(Jaro("dixon", "dicksonx"),
                   (4.0 / 5.0 + 4.0 / 8.0 + 1.0) / 3.0);
  // crate/trace: window 1 admits only r,a,e -> (3/5 + 3/5 + 1)/3 = 11/15.
  EXPECT_DOUBLE_EQ(Jaro("crate", "trace"), (3.0 / 5.0 + 3.0 / 5.0 + 1.0) / 3.0);
  // abcd/badc: all four chars match, every matched position disagrees ->
  // t=2 -> (1 + 1 + 2/4)/3.
  EXPECT_DOUBLE_EQ(Jaro("abcd", "badc"), (1.0 + 1.0 + 2.0 / 4.0) / 3.0);
}

TEST(SimilarityTest, JaroWinklerHandComputedReferenceValues) {
  // jw = j + 0.1 * prefix * (1 - j), prefix capped at 4.
  const double j_martha = (1.0 + 1.0 + 5.0 / 6.0) / 3.0;
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "marhta"),
                   j_martha + 0.1 * 3.0 * (1.0 - j_martha));
  const double j_dwayne = (4.0 / 6.0 + 4.0 / 5.0 + 1.0) / 3.0;
  EXPECT_DOUBLE_EQ(JaroWinkler("dwayne", "duane"),
                   j_dwayne + 0.1 * 1.0 * (1.0 - j_dwayne));
  const double j_dixon = (4.0 / 5.0 + 4.0 / 8.0 + 1.0) / 3.0;
  EXPECT_DOUBLE_EQ(JaroWinkler("dixon", "dicksonx"),
                   j_dixon + 0.1 * 2.0 * (1.0 - j_dixon));
  // Prefix boost caps at 4 shared characters even when more agree.
  const double j_abcdef = (4.0 / 6.0 + 4.0 / 6.0 + 1.0) / 3.0;
  EXPECT_DOUBLE_EQ(JaroWinkler("abcdef", "abcdxy"),
                   j_abcdef + 0.1 * 4.0 * (1.0 - j_abcdef));
}

TEST(SimilarityTest, JaroWinklerProperties) {
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", ""), 0.0);
  // Known value: MARTHA vs MARHTA.
  EXPECT_NEAR(Jaro("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroWinkler("martha", "marhta"), 0.9611, 1e-3);
  // Shared prefixes boost Winkler above plain Jaro.
  EXPECT_GT(JaroWinkler("crowdstrike", "crowdstreet"),
            Jaro("crowdstrike", "crowdstreet"));
}

TEST(SimilarityTest, JaccardTokens) {
  EXPECT_DOUBLE_EQ(JaccardTokens({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardTokens({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTokens({"a"}, {}), 0.0);
  // Multiset duplicates collapse.
  EXPECT_DOUBLE_EQ(JaccardTokens({"a", "a"}, {"a"}), 1.0);
}

TEST(SimilarityTest, TokenOverlapCount) {
  EXPECT_EQ(TokenOverlapCount({"x", "y", "z"}, {"y", "z", "w"}), 2u);
  EXPECT_EQ(TokenOverlapCount({}, {"a"}), 0u);
}

TEST(SimilarityTest, CharNgrams) {
  EXPECT_EQ(CharNgrams("abcd", 3), (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_TRUE(CharNgrams("ab", 3).empty());
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

TEST(SimilarityTest, TrigramSimilarityOrdersPairsSensibly) {
  double close = TrigramSimilarity("CrowdStrike", "Crowd Strike");
  double far = TrigramSimilarity("CrowdStrike", "Volkswagen");
  EXPECT_GT(close, far);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "ab"), 1.0);
}

TEST(VocabTest, FrequentWordsBecomeWholeTokens) {
  SubwordVocab vocab;
  vocab.Train({"alpha beta", "alpha gamma", "alpha beta"}, 100);
  std::vector<int32_t> out;
  vocab.EncodeWord("alpha", &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(vocab.TokenText(out[0]), "alpha");
}

TEST(VocabTest, UnknownWordsDecomposeIntoPieces) {
  SubwordVocab vocab;
  vocab.Train({"crowdstrike platforms", "crowdstreet properties"}, 100);
  std::vector<int32_t> out;
  vocab.EncodeWord("crowdware", &out);  // unseen word, seen substrings
  EXPECT_GT(out.size(), 1u);
  for (int32_t id : out) {
    EXPECT_NE(id, SpecialTokens::kPad);
  }
}

TEST(VocabTest, EncodeTextNeverEmptyForNonEmptyInput) {
  SubwordVocab vocab;
  vocab.Train({"some corpus text"}, 10);
  EXPECT_FALSE(vocab.EncodeText("zzzqqq").empty());
  EXPECT_TRUE(vocab.EncodeText("").empty());
}

TEST(VocabTest, VocabCapRespected) {
  std::vector<std::string> docs;
  for (int i = 0; i < 50; ++i) {
    docs.push_back("word" + std::to_string(i));
  }
  SubwordVocab small;
  small.Train(docs, 5);
  SubwordVocab big;
  big.Train(docs, 50);
  EXPECT_LT(small.size(), big.size());
}

TEST(VocabTest, SaveLoadRoundTrip) {
  SubwordVocab vocab;
  vocab.Train({"alpha beta gamma", "alpha delta"}, 100);
  std::string path = ::testing::TempDir() + "/vocab_roundtrip.txt";
  ASSERT_TRUE(vocab.Save(path).ok());

  SubwordVocab loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), vocab.size());
  EXPECT_EQ(loaded.EncodeText("alpha beta unseenxyz"),
            vocab.EncodeText("alpha beta unseenxyz"));
}

TEST(VocabTest, SpecialTokenTexts) {
  SubwordVocab vocab;
  EXPECT_EQ(vocab.TokenText(SpecialTokens::kCls), "[CLS]");
  EXPECT_EQ(vocab.TokenText(SpecialTokens::kSep), "[SEP]");
  EXPECT_EQ(vocab.TokenText(SpecialTokens::kCol), "[COL]");
  EXPECT_EQ(vocab.TokenText(SpecialTokens::kVal), "[VAL]");
  EXPECT_EQ(vocab.TokenText(9999), "<unk#>");
}

TEST(TfidfTest, CosineIdentityAndDisjoint) {
  TfidfVectorizer tfidf;
  tfidf.Fit({"apple banana", "banana cherry", "apple cherry"});
  auto a = tfidf.Transform("apple banana");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0f, 1e-5f);
  auto b = tfidf.Transform("cherry");
  auto zero = tfidf.Transform("unseen tokens only");
  EXPECT_EQ(CosineSimilarity(a, zero), 0.0f);
  EXPECT_GT(CosineSimilarity(a, b), -1e-9f);
}

TEST(TfidfTest, RareTokensWeighMore) {
  TfidfVectorizer tfidf;
  tfidf.Fit({"common rare1", "common rare2", "common rare3"});
  auto v = tfidf.Transform("common rare1");
  // Two features; the rare one should get the larger weight.
  ASSERT_EQ(v.entries.size(), 2u);
  float common_w = 0.0f, rare_w = 0.0f;
  auto c = tfidf.Transform("common");
  ASSERT_EQ(c.entries.size(), 1u);
  for (const auto& [id, w] : v.entries) {
    if (id == c.entries[0].first) common_w = w;
    else rare_w = w;
  }
  EXPECT_GT(rare_w, common_w);
}

TEST(TfidfTest, MinDfFiltersHapaxes) {
  TfidfVectorizer tfidf;
  tfidf.Fit({"a b", "a c", "a d"}, /*min_df=*/2);
  EXPECT_EQ(tfidf.num_features(), 1u);  // only "a" survives
}

TEST(CorporateTest, TermDetection) {
  EXPECT_TRUE(IsCorporateTerm("Inc"));
  EXPECT_TRUE(IsCorporateTerm("holdings"));
  EXPECT_FALSE(IsCorporateTerm("crowdstrike"));
}

TEST(CorporateTest, AcronymSkipsCorporateTermsAndStopwords) {
  EXPECT_EQ(MakeAcronym("Crowd Strike Platforms Inc"), "CSP");
  EXPECT_EQ(MakeAcronym("Bank of America Corp"), "BA");
  // Single contributing token: ambiguous, no acronym.
  EXPECT_EQ(MakeAcronym("CrowdStrike Inc"), "");
  EXPECT_EQ(MakeAcronym(""), "");
}

TEST(CorporateTest, CanonicalNameStripsLegalForms) {
  EXPECT_EQ(CanonicalCompanyName("CrowdStrike Holdings, Inc."), "crowdstrike");
  EXPECT_EQ(CanonicalCompanyName("Acme Data Ltd"), "acme data");
}

}  // namespace
}  // namespace gralmatch

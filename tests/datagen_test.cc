// Tests for the synthetic benchmark generators: name model, paraphraser,
// data artifacts, the financial companies/securities generator and the
// WDC-products generator.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/artifacts.h"
#include "datagen/financial_gen.h"
#include "datagen/name_model.h"
#include "datagen/paraphrase.h"
#include "datagen/wdc_gen.h"
#include "text/normalize.h"
#include "text/similarity.h"

namespace gralmatch {
namespace {

TEST(NameModelTest, DeterministicPerSeedAndIndex) {
  CompanyNameModel a(42), b(42), c(43);
  BaseCompany x = a.Generate(7);
  BaseCompany y = b.Generate(7);
  EXPECT_EQ(x.name, y.name);
  EXPECT_EQ(x.city, y.city);
  EXPECT_EQ(x.short_description, y.short_description);
  BaseCompany z = c.Generate(7);
  // Different model seed: overwhelmingly likely to differ.
  EXPECT_NE(x.name + x.city, z.name + z.city);
}

TEST(NameModelTest, FieldsPopulated) {
  CompanyNameModel model(1);
  for (size_t i = 0; i < 50; ++i) {
    BaseCompany c = model.Generate(i);
    EXPECT_FALSE(c.name.empty());
    EXPECT_FALSE(c.city.empty());
    EXPECT_FALSE(c.country_code.empty());
    EXPECT_FALSE(c.industry.empty());
    EXPECT_FALSE(c.ticker.empty());
    EXPECT_FALSE(c.stem_prefix.empty());
    EXPECT_FALSE(c.stem_suffix.empty());
  }
}

TEST(NameModelTest, DescriptionRateNearConfigured) {
  CompanyNameModel model(2);
  int with_desc = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (!model.Generate(static_cast<size_t>(i)).short_description.empty()) {
      ++with_desc;
    }
  }
  EXPECT_NEAR(static_cast<double>(with_desc) / n, 0.5, 0.05);
}

TEST(NameModelTest, NameCollisionsExist) {
  // The compositional stems must create distinct entities sharing tokens —
  // the Crowdstrike/Crowdstreet phenomenon the benchmark needs.
  CompanyNameModel model(3);
  std::unordered_set<std::string> first_tokens;
  int collisions = 0;
  for (size_t i = 0; i < 500; ++i) {
    auto toks = TokenizeWords(model.Generate(i).name);
    ASSERT_FALSE(toks.empty());
    if (!first_tokens.insert(toks[0]).second) ++collisions;
  }
  EXPECT_GT(collisions, 50);
}

TEST(ParaphraseTest, ChangesTextButKeepsTokens) {
  Paraphraser para;
  Rng rng(5);
  std::string original =
      "Acme provides analytics solutions for enterprise customers in Zurich.";
  std::string rewritten = para.Paraphrase(original, &rng);
  EXPECT_NE(rewritten, original);
  auto ta = TokenizeContentWords(original);
  auto tb = TokenizeContentWords(rewritten);
  EXPECT_GT(TokenOverlapCount(ta, tb), ta.size() / 3);
}

TEST(ParaphraseTest, AlwaysDiffersForNonTrivialInput) {
  Paraphraser para;
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    std::string text = "Some unremarkable sentence number " +
                       std::to_string(i) + " without synonyms.";
    EXPECT_NE(para.Paraphrase(text, &rng), text);
  }
}

GroupDraft MakeDraft() {
  GroupDraft g;
  g.company_entity = 0;
  g.base.name = "Crowd Strike Platforms Inc";
  g.base.stem_prefix = "crowd";
  g.base.stem_suffix = "strike";
  g.base.city = "Austin";
  g.base.short_description = "Provides security solutions for enterprises.";
  g.sources = {0, 1, 2, 3};
  g.name_variant = {0, 0, 0, 0};
  g.use_acronym.assign(4, false);
  SecurityDraft sec;
  sec.entity = 0;
  sec.name = "Crowd Strike Platforms Common Stock";
  sec.isins = {"US0000000001"};
  sec.cusips = {"CUSIP0001"};
  sec.present_in = {0, 1, 2, 3};
  g.securities.push_back(sec);
  return g;
}

TEST(ArtifactTest, AcronymNameMarksSources) {
  GroupDraft g = MakeDraft();
  Rng rng(1);
  ApplyAcronymName(&g, &rng);
  int marked = 0;
  for (bool b : g.use_acronym) marked += b;
  EXPECT_GT(marked, 0);
}

TEST(ArtifactTest, InsertCorporateTermChoosesTerm) {
  GroupDraft g = MakeDraft();
  Rng rng(2);
  ApplyInsertCorporateTerm(&g, &rng);
  EXPECT_FALSE(g.inserted_corporate_term.empty());
}

TEST(ArtifactTest, ParaphraseMutatesDescription) {
  GroupDraft g = MakeDraft();
  std::string before = g.base.short_description;
  Paraphraser para;
  Rng rng(3);
  ApplyParaphraseAttribute(&g, para, &rng);
  EXPECT_NE(g.base.short_description, before);

  // No description: no-op, no crash.
  GroupDraft empty = MakeDraft();
  empty.base.short_description.clear();
  ApplyParaphraseAttribute(&empty, para, &rng);
  EXPECT_TRUE(empty.base.short_description.empty());
}

TEST(ArtifactTest, MultipleIdsAddsValues) {
  GroupDraft g = MakeDraft();
  Rng rng(4);
  ApplyMultipleIds(&g, &rng);
  EXPECT_EQ(g.securities[0].isins.size(), 2u);
  EXPECT_EQ(g.securities[0].cusips.size(), 2u);
  EXPECT_TRUE(g.securities[0].sedols.empty());  // none present, none added
}

TEST(ArtifactTest, NoIdOverlapsMarksAllSecurities) {
  GroupDraft g = MakeDraft();
  ApplyNoIdOverlaps(&g);
  for (const auto& sec : g.securities) {
    EXPECT_TRUE(sec.no_id_overlaps);
  }
}

TEST(ArtifactTest, MultipleSecuritiesAddsFreshEntities) {
  GroupDraft g = MakeDraft();
  Rng rng(5);
  EntityId next = 100;
  ApplyMultipleSecurities(&g, &rng, &next);
  EXPECT_GT(g.securities.size(), 1u);
  EXPECT_GT(next, 100);
  for (size_t i = 1; i < g.securities.size(); ++i) {
    EXPECT_GE(g.securities[i].entity, 100);
    EXPECT_FALSE(g.securities[i].isins.empty());
    EXPECT_FALSE(g.securities[i].present_in.empty());
  }
}

TEST(ArtifactTest, AcquisitionCreatesOverwrites) {
  GroupDraft acquirer = MakeDraft();
  GroupDraft acquiree = MakeDraft();
  Rng rng(6);
  ApplyAcquisition(&acquirer, &acquiree, &rng);
  EXPECT_TRUE(acquirer.involved_in_acquisition);
  EXPECT_TRUE(acquiree.involved_in_acquisition);
  EXPECT_FALSE(acquiree.overwrites.empty());
  for (const auto& ow : acquiree.overwrites) {
    EXPECT_TRUE(ow.overwrite_company);
    EXPECT_TRUE(ow.overwrite_security_ids);
  }
}

TEST(ArtifactTest, MergerOverwritesIdsOnly) {
  GroupDraft left = MakeDraft();
  GroupDraft right = MakeDraft();
  Rng rng(7);
  ApplyMerger(&left, &right, &rng);
  EXPECT_TRUE(left.involved_in_merger);
  EXPECT_FALSE(left.overwrites.empty());
  for (const auto& ow : left.overwrites) {
    EXPECT_FALSE(ow.overwrite_company);
    EXPECT_TRUE(ow.overwrite_security_ids);
  }
}

SyntheticConfig SmallConfig(uint64_t seed = 11) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_groups = 300;
  return config;
}

TEST(FinancialGenTest, DeterministicGeneration) {
  FinancialGenerator g1(SmallConfig()), g2(SmallConfig());
  FinancialBenchmark a = g1.Generate();
  FinancialBenchmark b = g2.Generate();
  ASSERT_EQ(a.companies.records.size(), b.companies.records.size());
  ASSERT_EQ(a.securities.records.size(), b.securities.records.size());
  for (size_t i = 0; i < a.companies.records.size(); ++i) {
    EXPECT_EQ(a.companies.records.at(static_cast<RecordId>(i)).AllText(),
              b.companies.records.at(static_cast<RecordId>(i)).AllText());
  }
}

TEST(FinancialGenTest, ShapeMatchesPaperRatios) {
  FinancialGenerator gen(SmallConfig());
  FinancialBenchmark bench = gen.Generate();

  size_t groups = 300;
  double records_per_group =
      static_cast<double>(bench.companies.records.size()) / groups;
  EXPECT_NEAR(records_per_group, 4.3, 0.6);  // paper: 868K / 200K = 4.34

  EXPECT_LE(bench.companies.records.NumSources(), 5u);
  EXPECT_GE(bench.companies.records.NumSources(), 4u);

  // Securities exist and reference valid issuers.
  EXPECT_GT(bench.securities.records.size(), bench.companies.records.size() / 2);
  for (const auto& rec : bench.securities.records.records()) {
    ASSERT_TRUE(rec.Has("issuer_ref"));
    int64_t issuer = std::atoll(std::string(rec.Get("issuer_ref")).c_str());
    ASSERT_GE(issuer, 0);
    ASSERT_LT(static_cast<size_t>(issuer), bench.companies.records.size());
    // Issuer record must be from the same data source.
    EXPECT_EQ(bench.companies.records.at(static_cast<RecordId>(issuer)).source(),
              rec.source());
  }
}

TEST(FinancialGenTest, GroupsNeverExceedSourceCountWithoutEvents) {
  SyntheticConfig config = SmallConfig(17);
  config.artifacts.p_acquisition = 0.0;  // acquisition chains merge groups
  FinancialGenerator gen(config);
  FinancialBenchmark bench = gen.Generate();
  // A company group has at most one record per source.
  for (const auto& [e, members] : bench.companies.truth.Groups()) {
    EXPECT_LE(members.size(), 5u);
    std::set<SourceId> sources;
    for (RecordId r : members) {
      EXPECT_TRUE(sources.insert(bench.companies.records.at(r).source()).second)
          << "two records of entity " << e << " share a source";
    }
  }
}

TEST(FinancialGenTest, AcquisitionsMergeEntities) {
  SyntheticConfig config = SmallConfig(23);
  config.artifacts.p_acquisition = 0.2;  // force plenty of events
  FinancialGenerator gen(config);
  FinancialBenchmark bench = gen.Generate();

  // Some groups must be bigger than the per-source maximum of 5, which only
  // acquisitions can produce.
  size_t merged_groups = 0;
  for (const auto& [e, members] : bench.companies.truth.Groups()) {
    if (members.size() > 5) ++merged_groups;
  }
  EXPECT_GT(merged_groups, 0u);

  // And acquisition records carry the metadata flag.
  size_t flagged = 0;
  for (const auto& rec : bench.companies.records.records()) {
    if (rec.Get("_event") == "acquisition") ++flagged;
  }
  EXPECT_GT(flagged, 0u);
}

TEST(FinancialGenTest, MergersCreateIdOverlapNonMatches) {
  SyntheticConfig config = SmallConfig(29);
  config.artifacts.p_merger = 0.25;
  config.artifacts.p_acquisition = 0.0;
  FinancialGenerator gen(config);
  FinancialBenchmark bench = gen.Generate();

  // Find security record pairs sharing an identifier but labelled
  // non-match: the merger-induced false ID overlap of Figure 2.
  std::unordered_map<std::string, std::vector<RecordId>> by_isin;
  for (size_t i = 0; i < bench.securities.records.size(); ++i) {
    const auto& rec = bench.securities.records.at(static_cast<RecordId>(i));
    for (const auto& isin : rec.GetMulti("isin")) {
      by_isin[isin].push_back(static_cast<RecordId>(i));
    }
  }
  size_t false_overlaps = 0;
  for (const auto& [isin, holders] : by_isin) {
    for (size_t i = 0; i < holders.size(); ++i) {
      for (size_t j = i + 1; j < holders.size(); ++j) {
        if (!bench.securities.truth.IsMatch(holders[i], holders[j])) {
          ++false_overlaps;
        }
      }
    }
  }
  EXPECT_GT(false_overlaps, 0u);
}

TEST(FinancialGenTest, NoIdOverlapGroupsHaveDistinctIds) {
  SyntheticConfig config = SmallConfig(31);
  config.artifacts.p_no_id_overlaps = 1.0;  // every group affected
  config.artifacts.p_acquisition = 0.0;
  config.artifacts.p_merger = 0.0;
  config.artifacts.p_multiple_ids = 0.0;
  FinancialGenerator gen(config);
  FinancialBenchmark bench = gen.Generate();

  std::unordered_set<std::string> seen;
  for (const auto& rec : bench.securities.records.records()) {
    for (const auto& isin : rec.GetMulti("isin")) {
      EXPECT_TRUE(seen.insert(isin).second)
          << "identifier " << isin << " shared despite NoIdOverlaps";
    }
  }
}

TEST(FinancialGenTest, ArtifactLogPopulated) {
  SyntheticConfig config = SmallConfig(37);
  FinancialGenerator gen(config);
  gen.Generate();
  const auto& log = gen.artifact_log();
  ASSERT_EQ(log.size(), config.num_groups);
  size_t with_any = 0;
  for (uint32_t bits : log) with_any += bits != 0;
  EXPECT_GT(with_any, config.num_groups / 4);
}

TEST(FinancialGenTest, RealisticSubsetIsEasier) {
  SyntheticConfig real_config = RealisticSubsetConfig(41, 300);
  EXPECT_EQ(real_config.num_sources, 8);
  EXPECT_LT(real_config.artifacts.p_acquisition,
            SyntheticConfig().artifacts.p_acquisition);
  FinancialGenerator gen(real_config);
  FinancialBenchmark bench = gen.Generate();
  EXPECT_GT(bench.companies.records.size(), 300u);
}

TEST(WdcGenTest, HeterogeneousGroupSizes) {
  WdcConfig config;
  config.num_entities = 400;
  WdcProductsGenerator gen(config);
  Dataset products = gen.Generate();
  std::set<size_t> sizes;
  for (const auto& [e, members] : products.truth.Groups()) {
    sizes.insert(members.size());
  }
  EXPECT_GE(sizes.size(), 4u) << "group sizes should vary widely";
  EXPECT_EQ(*sizes.begin(), 1u) << "singletons expected";
}

TEST(WdcGenTest, CornerCasesShareTokens) {
  WdcConfig config;
  config.num_entities = 200;
  config.corner_case_frac = 1.0;
  WdcProductsGenerator gen(config);
  Dataset products = gen.Generate();

  // With 100% corner cases nearly every entity shares brand+family tokens
  // with some other entity: count cross-entity title token overlaps.
  auto groups = products.truth.Groups();
  std::vector<std::string> one_title_per_entity;
  for (const auto& [e, members] : groups) {
    one_title_per_entity.emplace_back(
        products.records.at(members[0]).Get("title"));
  }
  size_t overlapping = 0;
  for (size_t i = 0; i + 1 < one_title_per_entity.size() && i < 50; ++i) {
    for (size_t j = i + 1; j < one_title_per_entity.size() && j < 50; ++j) {
      auto ta = TokenizeWords(one_title_per_entity[i]);
      auto tb = TokenizeWords(one_title_per_entity[j]);
      if (TokenOverlapCount(ta, tb) >= 2) {
        ++overlapping;
      }
    }
  }
  EXPECT_GT(overlapping, 0u);
}

TEST(WdcGenTest, RecordsHaveTitles) {
  WdcProductsGenerator gen(WdcConfig{});
  Dataset products = gen.Generate();
  ASSERT_GT(products.records.size(), 100u);
  for (const auto& rec : products.records.records()) {
    EXPECT_TRUE(rec.Has("title"));
    EXPECT_EQ(rec.kind(), RecordKind::kProduct);
  }
}

}  // namespace
}  // namespace gralmatch

// Tests for the evaluation module: pairwise and group PRF metrics, the
// Cluster Purity Score and the table reporter.

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/report.h"

namespace gralmatch {
namespace {

GroundTruth TwoGroupsTruth() {
  GroundTruth truth;
  // Entity 0: records 0,1,2. Entity 1: records 3,4. Record 5 unassigned is
  // avoided here (kInvalidEntity semantics tested separately).
  truth.Assign(0, 0);
  truth.Assign(1, 0);
  truth.Assign(2, 0);
  truth.Assign(3, 1);
  truth.Assign(4, 1);
  return truth;
}

TEST(PairwisePrfTest, CountsAgainstAllTrueMatches) {
  GroundTruth truth = TwoGroupsTruth();
  // 4 true matches exist: (0,1),(0,2),(1,2),(3,4).
  std::vector<RecordPair> predicted = {RecordPair(0, 1), RecordPair(3, 4),
                                       RecordPair(0, 3)};
  PrfMetrics m = PairwisePrf(predicted, truth);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 2u);
  EXPECT_NEAR(m.Precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.Recall(), 0.5, 1e-9);
  EXPECT_NEAR(m.F1(), 2.0 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5), 1e-9);
}

TEST(PairwisePrfTest, EmptyPredictions) {
  GroundTruth truth = TwoGroupsTruth();
  PrfMetrics m = PairwisePrf({}, truth);
  EXPECT_EQ(m.tp, 0u);
  EXPECT_EQ(m.fp, 0u);
  EXPECT_EQ(m.fn, 4u);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

TEST(GroupPrfTest, PerfectGrouping) {
  GroundTruth truth = TwoGroupsTruth();
  std::vector<std::vector<NodeId>> components = {{0, 1, 2}, {3, 4}};
  PrfMetrics m = GroupPrf(components, truth);
  EXPECT_EQ(m.tp, 4u);
  EXPECT_EQ(m.fp, 0u);
  EXPECT_EQ(m.fn, 0u);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
}

TEST(GroupPrfTest, GluedComponentCountsClosure) {
  GroundTruth truth = TwoGroupsTruth();
  // One glued component of all 5 records: C(5,2)=10 implied matches,
  // 4 true + 6 false.
  std::vector<std::vector<NodeId>> components = {{0, 1, 2, 3, 4}};
  PrfMetrics m = GroupPrf(components, truth);
  EXPECT_EQ(m.tp, 4u);
  EXPECT_EQ(m.fp, 6u);
  EXPECT_EQ(m.fn, 0u);
  EXPECT_NEAR(m.Precision(), 0.4, 1e-9);
  EXPECT_NEAR(m.Recall(), 1.0, 1e-9);
}

TEST(GroupPrfTest, OverSplitGroupsLoseRecall) {
  GroundTruth truth = TwoGroupsTruth();
  std::vector<std::vector<NodeId>> components = {{0, 1}, {2}, {3, 4}};
  PrfMetrics m = GroupPrf(components, truth);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 0u);
  EXPECT_EQ(m.fn, 2u);
}

TEST(GroupPrfTest, MatchesPairwiseOnMaterializedClosure) {
  // Property: GroupPrf(components) == PairwisePrf(all pairs of components).
  GroundTruth truth;
  for (RecordId r = 0; r < 12; ++r) truth.Assign(r, r % 4);
  std::vector<std::vector<NodeId>> components = {{0, 1, 2, 3, 4}, {5, 6}, {7},
                                                 {8, 9, 10, 11}};
  std::vector<RecordPair> closure;
  for (const auto& comp : components) {
    for (size_t i = 0; i < comp.size(); ++i) {
      for (size_t j = i + 1; j < comp.size(); ++j) {
        closure.emplace_back(comp[i], comp[j]);
      }
    }
  }
  PrfMetrics a = GroupPrf(components, truth);
  PrfMetrics b = PairwisePrf(closure, truth);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.fn, b.fn);
}

TEST(ClusterPurityTest, PureAndImpureComponents) {
  GroundTruth truth = TwoGroupsTruth();
  // Pure grouping: purity 1.
  EXPECT_DOUBLE_EQ(ClusterPurity({{0, 1, 2}, {3, 4}}, truth), 1.0);
  // Glued component: 4 true of 10 edges, size-weighted single component.
  EXPECT_NEAR(ClusterPurity({{0, 1, 2, 3, 4}}, truth), 0.4, 1e-9);
}

TEST(ClusterPurityTest, SingletonsCountAsPure) {
  GroundTruth truth = TwoGroupsTruth();
  // 3 singletons + one pure pair: purity 1.
  EXPECT_DOUBLE_EQ(ClusterPurity({{0}, {1}, {2}, {3, 4}}, truth), 1.0);
  EXPECT_DOUBLE_EQ(ClusterPurity({}, truth), 0.0);
}

TEST(ClusterPurityTest, WeightsBySize) {
  GroundTruth truth;
  for (RecordId r = 0; r < 8; ++r) truth.Assign(r, r < 6 ? (r < 3 ? 0 : 1) : 2);
  // Component A: records 0,1,2 (pure, size 3).
  // Component B: records 3,4,5,6,7 -> entities 1,1,1? no: 3,4,5 are entity 1
  // and 6,7 entity 2 => C(5,2)=10 edges, C(3,2)+C(2,2)=4 true -> purity 0.4.
  double purity = ClusterPurity({{0, 1, 2}, {3, 4, 5, 6, 7}}, truth);
  EXPECT_NEAR(purity, (3.0 * 1.0 + 5.0 * 0.4) / 8.0, 1e-9);
}

TEST(LargestComponentTest, Sizes) {
  EXPECT_EQ(LargestComponent({}), 0u);
  EXPECT_EQ(LargestComponent({{1}, {2, 3, 4}, {5, 6}}), 3u);
}

TEST(TableReportTest, AlignsColumns) {
  TableReport table({"Model", "F1"});
  table.AddRow({"DITTO (128)", "38.24"});
  table.AddSeparator();
  table.AddRow({"DistilBERT", "96.53"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("DITTO (128)   38.24"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableReportTest, ShortRowsPadded) {
  TableReport table({"A", "B", "C"});
  table.AddRow({"only-a"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(FormatTest, PercentAndScore) {
  EXPECT_EQ(FormatPercent(0.9726), "97.26");
  EXPECT_EQ(FormatPercent(0.0), "0.00");
  EXPECT_EQ(FormatScore(0.98), "0.98");
}

}  // namespace
}  // namespace gralmatch

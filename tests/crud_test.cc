// Schedule-equivalence differential suite for full CRUD streaming: after ANY
// interleaved add/update/delete schedule, at any thread count and any shard
// count, IncrementalPipeline::Snapshot() and ShardedPipeline::Snapshot()
// must be identical — predicted pairs, pre-cleanup components, groups, and
// all cleanup counters — to a from-scratch EntityGroupPipeline::Run on the
// FINAL SURVIVING record set (survivors keep their original sparse ids; the
// reference's compacted ids are remapped through the monotone survivor
// list). Schedules cover: targeted removals, updates that change blocking
// keys, delete-then-readd identity, delete-everything-then-rebuild, and
// seeded fuzz schedules (>= 200 across both fixtures x 1/2/8 threads x
// S in {1,2,4}). A counting matcher proves deletion never rescores
// unaffected pairs (every matcher call across a whole CRUD schedule is a
// distinct pair), and checkpoint round-trips carry tombstones exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/binary_io.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "serve/checkpoint.h"
#include "serve/framing.h"
#include "serve/match_service.h"
#include "serve/sharded_checkpoint.h"
#include "shard/sharded_pipeline.h"
#include "stream/incremental_pipeline.h"
#include "text/normalize.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// Matchers (same idiom as stream_test.cc)
// ---------------------------------------------------------------------------

/// Deterministic text matcher (token Jaccard of AllText, scaled): avoids
/// transcendental math so scores are bit-identical everywhere.
class JaccardMatcher : public PairwiseMatcher {
 public:
  explicit JaccardMatcher(double scale = 1.0) : scale_(scale) {}

  std::string name() const override { return "jaccard"; }
  std::string Fingerprint() const override {
    return "jaccard#" + std::to_string(scale_);
  }
  double MatchProbability(const Record& a, const Record& b) const override {
    auto ta = Tokens(a);
    auto tb = Tokens(b);
    if (ta.empty() && tb.empty()) return 0.0;
    size_t common = 0;
    size_t ia = 0, ib = 0;
    while (ia < ta.size() && ib < tb.size()) {
      if (ta[ia] < tb[ib]) {
        ++ia;
      } else if (tb[ib] < ta[ia]) {
        ++ib;
      } else {
        ++common;
        ++ia;
        ++ib;
      }
    }
    const size_t total = ta.size() + tb.size() - common;
    double score = scale_ * static_cast<double>(common) /
                   static_cast<double>(total == 0 ? 1 : total);
    return score > 1.0 ? 1.0 : score;
  }

 private:
  static std::vector<std::string> Tokens(const Record& rec) {
    auto toks = TokenizeContentWords(rec.AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    return toks;
  }

  double scale_;
};

/// Counts calls and the distinct pairs seen (via the "_uid" metadata the
/// fixtures stamp on every record). Thread-safe, as the pipeline requires.
class CountingMatcher : public PairwiseMatcher {
 public:
  explicit CountingMatcher(const PairwiseMatcher* inner) : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  std::string Fingerprint() const override { return inner_->Fingerprint(); }
  double MatchProbability(const Record& a, const Record& b) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_;
      int ua = std::stoi(std::string(a.Get("_uid")));
      int ub = std::stoi(std::string(b.Get("_uid")));
      seen_.insert({std::min(ua, ub), std::max(ua, ub)});
    }
    return inner_->MatchProbability(a, b);
  }

  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  size_t distinct_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }

 private:
  const PairwiseMatcher* inner_;
  mutable std::mutex mu_;
  mutable size_t calls_ = 0;
  mutable std::set<std::pair<int, int>> seen_;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Records of `table` as a vector, each stamped with a unique "_uid"
/// metadata attribute (excluded from matching inputs by convention).
std::vector<Record> WithUids(const RecordTable& table) {
  std::vector<Record> out;
  out.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    Record rec = table.at(static_cast<RecordId>(i));
    rec.Set("_uid", std::to_string(i));
    out.push_back(std::move(rec));
  }
  return out;
}

/// From-scratch reference: the same blockers and pipeline configuration the
/// incremental pipeline maintains, run on the full record set.
PipelineResult RunBatchReference(const RecordTable& records,
                                 const IncrementalPipelineConfig& config,
                                 const PairwiseMatcher& matcher) {
  Dataset ds;
  ds.records = records;
  CandidateSet candidates;
  if (config.use_id_blocker) {
    IdOverlapBlocker::Options opts;
    opts.num_threads = config.pipeline.num_threads;
    IdOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  if (config.use_token_blocker) {
    TokenOverlapBlocker::Options opts = config.token;
    opts.num_threads = config.pipeline.num_threads;
    TokenOverlapBlocker(opts).AddCandidates(ds, &candidates);
  }
  return EntityGroupPipeline(config.pipeline)
      .Run(ds, candidates.ToVector(), matcher);
}

/// From-scratch reference on the SURVIVORS of a CRUD history: rebuilds a
/// compacted table of the live records, runs the batch pipeline on it, and
/// remaps the result back to the original sparse ids. The compact->original
/// map is monotone (survivors keep their relative order), so every ordering
/// the batch pipeline guarantees survives the remap unchanged.
PipelineResult SurvivorReference(const RecordTable& records,
                                 const std::vector<char>& alive,
                                 const IncrementalPipelineConfig& config,
                                 const PairwiseMatcher& matcher) {
  RecordTable survivors;
  std::vector<NodeId> original;  // compact id -> original id
  original.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    if (!alive[i]) continue;
    survivors.Add(records.at(static_cast<RecordId>(i)));
    original.push_back(static_cast<NodeId>(i));
  }
  PipelineResult ref = RunBatchReference(survivors, config, matcher);
  for (RecordPair& pair : ref.predicted_pairs) {
    pair.a = static_cast<RecordId>(original[static_cast<size_t>(pair.a)]);
    pair.b = static_cast<RecordId>(original[static_cast<size_t>(pair.b)]);
  }
  for (auto* sets : {&ref.pre_cleanup_components, &ref.groups}) {
    for (std::vector<NodeId>& nodes : *sets) {
      for (NodeId& u : nodes) u = original[static_cast<size_t>(u)];
    }
  }
  return ref;
}

void ExpectEquivalent(const PipelineResult& actual,
                      const PipelineResult& reference,
                      const std::string& context) {
  EXPECT_EQ(actual.predicted_pairs, reference.predicted_pairs) << context;
  EXPECT_EQ(actual.pre_cleanup_components, reference.pre_cleanup_components)
      << context;
  EXPECT_EQ(actual.groups, reference.groups) << context;
  EXPECT_EQ(actual.cleanup_stats.pre_cleanup_edges_removed,
            reference.cleanup_stats.pre_cleanup_edges_removed)
      << context;
  EXPECT_EQ(actual.cleanup_stats.min_cut_calls,
            reference.cleanup_stats.min_cut_calls)
      << context;
  EXPECT_EQ(actual.cleanup_stats.min_cut_edges_removed,
            reference.cleanup_stats.min_cut_edges_removed)
      << context;
  EXPECT_EQ(actual.cleanup_stats.betweenness_calls,
            reference.cleanup_stats.betweenness_calls)
      << context;
  EXPECT_EQ(actual.cleanup_stats.betweenness_edges_removed,
            reference.cleanup_stats.betweenness_edges_removed)
      << context;
}

IncrementalPipelineConfig CrudConfig(size_t num_threads,
                                     double match_threshold) {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 6;
  config.pipeline.cleanup.mu = 3;
  config.pipeline.pre_cleanup_threshold = 9;
  config.pipeline.match_threshold = match_threshold;
  config.pipeline.num_threads = num_threads;
  config.token.top_n = 5;
  return config;
}

// ---------------------------------------------------------------------------
// CRUD schedules
// ---------------------------------------------------------------------------

/// One mutation round. Ids are concrete: the schedule generator simulates
/// id assignment (contiguous, never recycled), so one schedule replays
/// identically on an IncrementalPipeline and on a ShardedPipeline at any
/// shard count.
struct CrudOp {
  std::vector<Record> adds;
  std::vector<RecordId> removals;
  std::vector<RecordUpdate> updates;
};

struct CrudSchedule {
  std::vector<Record> initial;
  std::vector<CrudOp> ops;
  /// Liveness after the whole schedule (parallel to the final id space);
  /// the executor asserts the pipeline agrees.
  std::vector<char> final_alive;
};

/// Draw a random schedule over `pool`: an initial ingest of roughly 60% of
/// the pool, then `num_ops` rounds mixing adds (from the pool's reserve),
/// removals of random live ids, and updates of random live ids — half the
/// update payloads come from the reserve (completely different blocking
/// keys), half append a token to the current payload's name.
CrudSchedule MakeSchedule(const std::vector<Record>& pool, uint64_t seed,
                          size_t num_ops) {
  Rng rng(seed);
  CrudSchedule schedule;
  const size_t n0 = (pool.size() * 3) / 5;
  schedule.initial.assign(pool.begin(), pool.begin() + static_cast<long>(n0));
  size_t reserve_next = n0;

  // Mirror of the pipeline's state: payload per id, live id list.
  std::vector<Record> payload(schedule.initial);
  std::vector<RecordId> live;
  for (size_t i = 0; i < n0; ++i) live.push_back(static_cast<RecordId>(i));
  std::vector<char> alive(n0, 1);

  auto add_record = [&](Record rec, CrudOp* op) {
    const RecordId id = static_cast<RecordId>(payload.size());
    op->adds.push_back(rec);
    payload.push_back(std::move(rec));
    alive.push_back(1);
    live.push_back(id);
  };
  auto kill = [&](size_t live_index) {
    const RecordId id = live[live_index];
    alive[static_cast<size_t>(id)] = 0;
    live[live_index] = live.back();
    live.pop_back();
    return id;
  };

  for (size_t k = 0; k < num_ops; ++k) {
    CrudOp op;
    const size_t count = 1 + rng.Uniform(4);
    size_t kind = rng.Uniform(3);
    if (live.empty()) kind = 0;                        // nothing to mutate
    if (kind != 1 && reserve_next >= pool.size()) kind = 1;  // reserve dry
    if (kind == 0) {
      for (size_t i = 0; i < count && reserve_next < pool.size(); ++i) {
        add_record(pool[reserve_next++], &op);
      }
    } else if (kind == 1) {
      for (size_t i = 0; i < count && !live.empty(); ++i) {
        op.removals.push_back(kill(rng.Uniform(live.size())));
      }
    } else {
      // One Update batch operates on the pre-batch state: the replacement
      // records only become targetable AFTER the round, so their ids are
      // published to `live` once the whole batch is drawn.
      std::vector<RecordId> born;
      for (size_t i = 0; i < count && !live.empty(); ++i) {
        RecordUpdate update;
        update.id = kill(rng.Uniform(live.size()));
        if (rng.Uniform(2) == 0 && reserve_next < pool.size()) {
          update.record = pool[reserve_next++];
        } else {
          update.record = payload[static_cast<size_t>(update.id)];
          update.record.Set(
              "name", std::string(update.record.Get("name")) + " revised");
        }
        Record replacement = update.record;
        op.updates.push_back(std::move(update));
        born.push_back(static_cast<RecordId>(payload.size()));
        payload.push_back(std::move(replacement));
        alive.push_back(1);
      }
      live.insert(live.end(), born.begin(), born.end());
    }
    schedule.ops.push_back(std::move(op));
  }
  schedule.final_alive = std::move(alive);
  return schedule;
}

/// Replay `schedule` (its rounds may mix adds, removals and updates; a
/// round runs removals+adds first, then updates) and differential-check the
/// final snapshot against the survivor reference. Works for both pipeline
/// flavors — same API surface.
template <typename Pipeline>
void RunCrudSchedule(Pipeline* pipeline, const CrudSchedule& schedule,
                     const IncrementalPipelineConfig& config,
                     const PairwiseMatcher& matcher, const std::string& context,
                     size_t check_every = 0) {
  {
    Result<IngestReport> r = pipeline->Ingest(schedule.initial, matcher);
    ASSERT_TRUE(r.ok()) << context << ": " << r.status().message();
  }
  for (size_t k = 0; k < schedule.ops.size(); ++k) {
    const CrudOp& op = schedule.ops[k];
    if (!op.removals.empty()) {
      Result<IngestReport> r = pipeline->Remove(op.removals, matcher);
      ASSERT_TRUE(r.ok()) << context << ": " << r.status().message();
    }
    if (!op.adds.empty()) {
      Result<IngestReport> r = pipeline->Ingest(op.adds, matcher);
      ASSERT_TRUE(r.ok()) << context << ": " << r.status().message();
    }
    if (!op.updates.empty()) {
      Result<IngestReport> r = pipeline->Update(op.updates, matcher);
      ASSERT_TRUE(r.ok()) << context << ": " << r.status().message()
                          << " [op " << k << ", table size "
                          << pipeline->records().size() << "]";
    }
    if (check_every != 0 && (k + 1) % check_every == 0) {
      ExpectEquivalent(
          pipeline->Snapshot().ValueOrDie(),
          SurvivorReference(pipeline->records(), pipeline->alive(), config,
                            matcher),
          context + " after op " + std::to_string(k + 1));
    }
  }
  ASSERT_EQ(pipeline->alive(), schedule.final_alive) << context;
  ExpectEquivalent(pipeline->Snapshot().ValueOrDie(),
                   SurvivorReference(pipeline->records(), pipeline->alive(),
                                     config, matcher),
                   context + " (final)");
}

std::vector<Record> FinancialPool(uint64_t seed, size_t num_groups) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_groups = num_groups;
  FinancialBenchmark bench = FinancialGenerator(config).Generate();
  return WithUids(bench.securities.records);
}

std::vector<Record> WdcPool(uint64_t seed, size_t num_entities) {
  WdcConfig config;
  config.num_entities = num_entities;
  config.seed = seed;
  Dataset products = WdcProductsGenerator(config).Generate();
  return WithUids(products.records);
}

// ---------------------------------------------------------------------------
// Financial fixture
// ---------------------------------------------------------------------------

class FinancialCrud : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<Record>(FinancialPool(505, 40));
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static std::vector<Record>* records_;
};

std::vector<Record>* FinancialCrud::records_ = nullptr;

TEST_F(FinancialCrud, RemoveSubsetEquivalentAtEveryThreadCount) {
  JaccardMatcher matcher;
  for (size_t threads : {1u, 2u, 8u}) {
    IncrementalPipelineConfig config = CrudConfig(threads, 0.25);
    IncrementalPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
    // Every 4th record dies, in three waves.
    std::vector<RecordId> doomed;
    for (size_t i = 0; i < records_->size(); i += 4) {
      doomed.push_back(static_cast<RecordId>(i));
    }
    const size_t third = doomed.size() / 3;
    for (size_t wave = 0; wave < 3; ++wave) {
      const size_t begin = wave * third;
      const size_t end = wave == 2 ? doomed.size() : begin + third;
      std::vector<RecordId> ids(doomed.begin() + static_cast<long>(begin),
                                doomed.begin() + static_cast<long>(end));
      IngestReport report = pipeline.Remove(ids, matcher).ValueOrDie();
      EXPECT_EQ(report.records_removed, ids.size());
      EXPECT_EQ(report.records_added, 0u);
      ExpectEquivalent(
          pipeline.Snapshot().ValueOrDie(),
          SurvivorReference(pipeline.records(), pipeline.alive(), config,
                            matcher),
          "threads=" + std::to_string(threads) + " wave=" +
              std::to_string(wave));
    }
    EXPECT_EQ(pipeline.num_dead(), doomed.size());
    EXPECT_EQ(pipeline.num_live() + pipeline.num_dead(),
              pipeline.records().size());
  }
}

TEST_F(FinancialCrud, UpdateChangingBlockingKeysEquivalent) {
  // Updates whose new payload belongs to a *different* entity group: the
  // old blocking keys (identifiers, tokens) must retract and the new ones
  // must admit, moving the record across groups exactly as a from-scratch
  // run would place it.
  JaccardMatcher matcher;
  std::vector<Record> other = FinancialPool(909, 12);
  for (size_t threads : {1u, 8u}) {
    IncrementalPipelineConfig config = CrudConfig(threads, 0.25);
    IncrementalPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
    std::vector<RecordUpdate> batch;
    for (size_t k = 0; k < 12 && k < other.size(); ++k) {
      RecordUpdate update;
      update.id = static_cast<RecordId>(k * 7 % records_->size());
      update.record = other[k];
      // Ids inside one Update must be unique.
      bool duplicate = false;
      for (const RecordUpdate& prev : batch) {
        duplicate = duplicate || prev.id == update.id;
      }
      if (!duplicate) batch.push_back(std::move(update));
    }
    IngestReport report = pipeline.Update(batch, matcher).ValueOrDie();
    EXPECT_EQ(report.records_removed, batch.size());
    EXPECT_EQ(report.records_added, batch.size());
    ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                     SurvivorReference(pipeline.records(), pipeline.alive(),
                                       config, matcher),
                     "threads=" + std::to_string(threads));
  }
}

TEST_F(FinancialCrud, DeleteThenReaddRestoresTheSameGroups) {
  // Deleting the TAIL of the table and re-adding the exact payloads in the
  // same order must restore the same entity groups (under new ids — ids are
  // never recycled, so identity is checked through the stable "_uid"
  // payload attribute). The suffix restriction matters: the re-add then
  // reproduces the original record ORDER, and the pipeline's contract is
  // equivalence to a from-scratch run on the surviving sequence — blocking
  // (top-n token lists, df caps) is a function of the sequence, not the
  // set, so scattered deletions re-added at the end are a *different*
  // sequence and legitimately may group differently (covered below by the
  // schedule-equivalence check, which is order-aware).
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = CrudConfig(2, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());

  auto uid_groups = [&](const PipelineResult& result) {
    std::set<std::vector<std::string>> groups;
    for (const std::vector<NodeId>& group : result.groups) {
      std::vector<std::string> uids;
      for (NodeId u : group) {
        uids.push_back(std::string(
            pipeline.records().at(static_cast<RecordId>(u)).Get("_uid")));
      }
      std::sort(uids.begin(), uids.end());
      groups.insert(std::move(uids));
    }
    return groups;
  };
  const auto before = uid_groups(pipeline.Snapshot().ValueOrDie());

  // Tail fifth: delete, then re-add the identical payload sequence.
  const size_t cut = (records_->size() * 4) / 5;
  std::vector<RecordId> doomed;
  std::vector<Record> payloads;
  for (size_t i = cut; i < records_->size(); ++i) {
    doomed.push_back(static_cast<RecordId>(i));
    payloads.push_back((*records_)[i]);
  }
  ASSERT_TRUE(pipeline.Remove(doomed, matcher).ok());
  ASSERT_TRUE(pipeline.Ingest(payloads, matcher).ok());
  EXPECT_EQ(uid_groups(pipeline.Snapshot().ValueOrDie()), before);

  // Scattered deletions re-added at the end: groups may differ from
  // `before`, but the snapshot must still equal the from-scratch run on
  // the new surviving sequence.
  std::vector<RecordId> scattered;
  std::vector<Record> scattered_payloads;
  for (size_t i = 3; i < cut; i += 5) {
    scattered.push_back(static_cast<RecordId>(i));
    scattered_payloads.push_back((*records_)[i]);
  }
  ASSERT_TRUE(pipeline.Remove(scattered, matcher).ok());
  ASSERT_TRUE(pipeline.Ingest(scattered_payloads, matcher).ok());
  ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                   SurvivorReference(pipeline.records(), pipeline.alive(),
                                     config, matcher),
                   "delete-then-readd");
}

TEST_F(FinancialCrud, DeleteEverythingThenRebuild) {
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = CrudConfig(2, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());

  // Delete every record in two waves: the snapshot must become completely
  // empty (no pairs, no components, no groups, zeroed cleanup counters).
  std::vector<RecordId> first_half, second_half;
  for (size_t i = 0; i < records_->size(); ++i) {
    (i < records_->size() / 2 ? first_half : second_half)
        .push_back(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(pipeline.Remove(first_half, matcher).ok());
  ASSERT_TRUE(pipeline.Remove(second_half, matcher).ok());
  PipelineResult empty = pipeline.Snapshot().ValueOrDie();
  EXPECT_TRUE(empty.predicted_pairs.empty());
  EXPECT_TRUE(empty.pre_cleanup_components.empty());
  EXPECT_TRUE(empty.groups.empty());
  EXPECT_EQ(pipeline.num_live(), 0u);

  // Rebuild from the same payloads: full equivalence again.
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
  ExpectEquivalent(pipeline.Snapshot().ValueOrDie(),
                   SurvivorReference(pipeline.records(), pipeline.alive(),
                                     config, matcher),
                   "rebuild after delete-everything");
}

TEST_F(FinancialCrud, DeletionNeverRescoresUnaffectedPairs) {
  // Every matcher call across a whole CRUD schedule must be a DISTINCT pair
  // of record instances: the cache is keyed by record id, ids are never
  // recycled, and eviction only drops entries whose endpoint died and can
  // never become a candidate again — so under one fingerprint no id pair is
  // ever scored twice, no matter how records are removed and re-added. The
  // "_uid" stamps below are unique per record INSTANCE (re-adds get fresh
  // uids), making distinct_pairs() exactly the id-pair count.
  JaccardMatcher inner;
  CountingMatcher counting(&inner);
  IncrementalPipelineConfig config = CrudConfig(4, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, counting).ok());
  const size_t calls_after_ingest = counting.calls();
  ASSERT_GT(calls_after_ingest, 0u);

  // A pure removal wave spends matcher calls ONLY on pairs retraction newly
  // admits (a bucket dropping back under its cap exposes never-scored
  // survivor pairs); dirty-component re-cleaning itself reuses cached
  // scores, so the call delta is exactly the report's pairs_scored and
  // every one of them is a first-time pair.
  std::vector<RecordId> doomed;
  for (size_t i = 0; i < records_->size(); i += 6) {
    doomed.push_back(static_cast<RecordId>(i));
  }
  IngestReport report = pipeline.Remove(doomed, counting).ValueOrDie();
  EXPECT_EQ(counting.calls() - calls_after_ingest, report.pairs_scored);
  EXPECT_EQ(counting.calls(), counting.distinct_pairs());
  EXPECT_GT(report.cache_evictions, 0u);

  // Mixed follow-up (re-add the dead payloads under fresh uids + more
  // removals): still never a repeated record-instance pair.
  std::vector<Record> readd;
  for (size_t i = 0; i < records_->size(); i += 6) {
    Record rec = (*records_)[i];
    rec.Set("_uid", std::to_string(10000 + i));
    readd.push_back(std::move(rec));
  }
  ASSERT_TRUE(pipeline.Ingest(readd, counting).ok());
  std::vector<RecordId> more;
  for (size_t i = 1; i < records_->size(); i += 9) {
    more.push_back(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(pipeline.Remove(more, counting).ok());
  EXPECT_EQ(counting.calls(), counting.distinct_pairs());
}

TEST_F(FinancialCrud, ReportsIdenticalBetweenIncrementalAndSharded) {
  // The sharded pipeline's reports must equal the single pipeline's on the
  // same CRUD sequence, field for field — including the new removal and
  // eviction counters.
  JaccardMatcher matcher;
  const CrudSchedule schedule = MakeSchedule(*records_, 404, 8);
  IncrementalPipelineConfig config = CrudConfig(2, 0.25);
  IncrementalPipeline incremental(config);
  ShardedPipelineConfig sharded_config;
  sharded_config.base = config;
  sharded_config.num_shards = 3;
  sharded_config.router_seed = 11;
  ShardedPipeline sharded(sharded_config);

  auto expect_equal_reports = [](const IngestReport& a, const IngestReport& b,
                                 const std::string& context) {
    EXPECT_EQ(a.records_added, b.records_added) << context;
    EXPECT_EQ(a.records_removed, b.records_removed) << context;
    EXPECT_EQ(a.candidates_added, b.candidates_added) << context;
    EXPECT_EQ(a.candidates_removed, b.candidates_removed) << context;
    EXPECT_EQ(a.pairs_scored, b.pairs_scored) << context;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << context;
    EXPECT_EQ(a.cache_evictions, b.cache_evictions) << context;
    EXPECT_EQ(a.components_rebuilt, b.components_rebuilt) << context;
    EXPECT_EQ(a.components_reused, b.components_reused) << context;
  };

  expect_equal_reports(incremental.Ingest(schedule.initial, matcher).ValueOrDie(),
                       sharded.Ingest(schedule.initial, matcher).ValueOrDie(),
                       "initial");
  size_t evictions_total = 0;
  for (size_t k = 0; k < schedule.ops.size(); ++k) {
    const CrudOp& op = schedule.ops[k];
    const std::string context = "op " + std::to_string(k);
    if (!op.removals.empty()) {
      IngestReport a = incremental.Remove(op.removals, matcher).ValueOrDie();
      IngestReport b = sharded.Remove(op.removals, matcher).ValueOrDie();
      expect_equal_reports(a, b, context + " remove");
      evictions_total += a.cache_evictions;
    }
    if (!op.adds.empty()) {
      expect_equal_reports(incremental.Ingest(op.adds, matcher).ValueOrDie(),
                           sharded.Ingest(op.adds, matcher).ValueOrDie(),
                           context + " add");
    }
    if (!op.updates.empty()) {
      IngestReport a = incremental.Update(op.updates, matcher).ValueOrDie();
      IngestReport b = sharded.Update(op.updates, matcher).ValueOrDie();
      expect_equal_reports(a, b, context + " update");
      evictions_total += a.cache_evictions;
    }
  }
  EXPECT_GT(evictions_total, 0u);
  ExpectEquivalent(sharded.Snapshot().ValueOrDie(),
                   incremental.Snapshot().ValueOrDie(), "final snapshots");
}

TEST_F(FinancialCrud, InvalidRemovalsAreCleanErrorsWithoutPoisoning) {
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = CrudConfig(1, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
  const PipelineResult before = pipeline.Snapshot().ValueOrDie();

  // Out of range, negative, duplicate, and double-delete: each is an
  // InvalidArgument that mutates NOTHING (not even partially).
  const RecordId n = static_cast<RecordId>(records_->size());
  for (const std::vector<RecordId>& bad :
       {std::vector<RecordId>{n}, std::vector<RecordId>{-1},
        std::vector<RecordId>{0, 1, 0}}) {
    Result<IngestReport> result = pipeline.Remove(bad, matcher);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(pipeline.status().ok());
  }
  ASSERT_TRUE(pipeline.Remove({2}, matcher).ok());
  Result<IngestReport> twice = pipeline.Remove({2}, matcher);
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(twice.status().message().find("tombstoned"), std::string::npos);

  // Updates validate the same way, and a failed batch changes nothing —
  // including a batch whose FIRST id is fine but whose second is dead.
  RecordUpdate ok_update;
  ok_update.id = 4;
  ok_update.record = (*records_)[5];
  RecordUpdate dead_update;
  dead_update.id = 2;
  dead_update.record = (*records_)[6];
  Result<IngestReport> mixed = pipeline.Update({ok_update, dead_update}, matcher);
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(pipeline.status().ok());
  EXPECT_TRUE(pipeline.is_alive(4));

  // The sharded pipeline enforces the identical contract.
  ShardedPipelineConfig sharded_config;
  sharded_config.base = config;
  sharded_config.num_shards = 2;
  ShardedPipeline sharded(sharded_config);
  ASSERT_TRUE(sharded.Ingest(*records_, matcher).ok());
  Result<IngestReport> sharded_bad = sharded.Remove({n}, matcher);
  ASSERT_FALSE(sharded_bad.ok());
  EXPECT_EQ(sharded_bad.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(sharded.status().ok());
}

TEST_F(FinancialCrud, CheckpointRoundTripCarriesTombstones) {
  JaccardMatcher matcher;
  IncrementalPipelineConfig config = CrudConfig(2, 0.25);
  IncrementalPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());

  // Without tombstones, the image stamps format version 1 (byte offset 8):
  // pre-tombstone readers keep loading tombstone-free checkpoints.
  std::string clean = SerializeCheckpoint(pipeline).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>(clean[8])), 1u);

  std::vector<RecordId> doomed;
  for (size_t i = 0; i < records_->size(); i += 3) {
    doomed.push_back(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(pipeline.Remove(doomed, matcher).ok());
  std::string image = SerializeCheckpoint(pipeline).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>(image[8])), 2u);

  auto restored = ParseCheckpoint(image, matcher).ValueOrDie();
  EXPECT_EQ(restored->num_dead(), doomed.size());
  EXPECT_EQ(restored->alive(), pipeline.alive());
  ExpectEquivalent(restored->Snapshot().ValueOrDie(),
                   pipeline.Snapshot().ValueOrDie(), "restored snapshot");
  // Re-serializing the restored pipeline reproduces the image bitwise.
  EXPECT_EQ(SerializeCheckpoint(*restored).ValueOrDie(), image);

  // The restored pipeline keeps mutating exactly like the original.
  std::vector<RecordId> more = {1, 4};
  ASSERT_TRUE(pipeline.Remove(more, matcher).ok());
  ASSERT_TRUE(restored->Remove(more, matcher).ok());
  ASSERT_TRUE(pipeline.Ingest({(*records_)[0]}, matcher).ok());
  ASSERT_TRUE(restored->Ingest({(*records_)[0]}, matcher).ok());
  ExpectEquivalent(restored->Snapshot().ValueOrDie(),
                   pipeline.Snapshot().ValueOrDie(), "after restored mutations");
  ExpectEquivalent(restored->Snapshot().ValueOrDie(),
                   SurvivorReference(restored->records(), restored->alive(),
                                     config, matcher),
                   "restored vs survivors");
}

TEST_F(FinancialCrud, MatchServiceExcludesTombstonedRecords) {
  // The serving layer needs no tombstone plumbing: dead records are absent
  // from the snapshot's groups, so GroupOf reports kNoGroup for them and
  // group membership lists never contain them.
  JaccardMatcher matcher;
  IncrementalPipeline pipeline(CrudConfig(1, 0.25));
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
  MatchService service;
  service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  const RecordId victim = 0;
  ASSERT_NE(service.GroupOf(victim), kNoGroup);

  ASSERT_TRUE(pipeline.Remove({victim}, matcher).ok());
  service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  EXPECT_EQ(service.GroupOf(victim), kNoGroup);
  MatchSnapshotPtr view = service.View();
  size_t total_members = 0;
  for (size_t g = 0; g < view->num_groups(); ++g) {
    for (RecordId member : view->Members(static_cast<GroupId>(g))) {
      EXPECT_NE(member, victim);
      ++total_members;
    }
  }
  // Every live record sits in exactly one group (singletons included); the
  // dead one sits in none.
  EXPECT_EQ(total_members, pipeline.num_live());
}

// ---------------------------------------------------------------------------
// Seeded fuzz schedules: >= 200 across fixtures x threads x shard counts
// ---------------------------------------------------------------------------

void FuzzIncremental(const std::vector<Record>& pool, double threshold,
                     size_t threads, uint64_t seed_base, size_t num_seeds) {
  JaccardMatcher matcher;
  for (uint64_t seed = 0; seed < num_seeds; ++seed) {
    IncrementalPipelineConfig config = CrudConfig(threads, threshold);
    IncrementalPipeline pipeline(config);
    RunCrudSchedule(&pipeline, MakeSchedule(pool, seed_base + seed, 8), config,
                    matcher,
                    "incremental threads=" + std::to_string(threads) +
                        " seed=" + std::to_string(seed_base + seed));
  }
}

void FuzzSharded(const std::vector<Record>& pool, double threshold,
                 size_t num_shards, size_t threads, uint64_t seed_base,
                 size_t num_seeds) {
  JaccardMatcher matcher;
  for (uint64_t seed = 0; seed < num_seeds; ++seed) {
    ShardedPipelineConfig config;
    config.base = CrudConfig(threads, threshold);
    config.num_shards = num_shards;
    config.router_seed = seed_base + seed;
    ShardedPipeline pipeline(config);
    RunCrudSchedule(&pipeline, MakeSchedule(pool, seed_base + seed, 8),
                    config.base, matcher,
                    "sharded S=" + std::to_string(num_shards) +
                        " threads=" + std::to_string(threads) +
                        " seed=" + std::to_string(seed_base + seed));
  }
}

TEST_F(FinancialCrud, FuzzIncrementalSchedules) {
  // 3 thread counts x 20 seeds = 60 schedules.
  for (size_t threads : {1u, 2u, 8u}) {
    FuzzIncremental(*records_, 0.25, threads, 1000, 20);
  }
}

TEST_F(FinancialCrud, FuzzShardedSchedules) {
  // S in {1,2,4} x 3 thread counts x 7 seeds = 63 schedules.
  for (size_t num_shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 8u}) {
      FuzzSharded(*records_, 0.25, num_shards, threads, 2000, 7);
    }
  }
}

// ---------------------------------------------------------------------------
// WDC products fixture
// ---------------------------------------------------------------------------

class WdcCrud : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<Record>(WdcPool(77, 80));
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static std::vector<Record>* records_;
};

std::vector<Record>* WdcCrud::records_ = nullptr;

TEST_F(WdcCrud, FuzzIncrementalSchedules) {
  // 3 thread counts x 14 seeds = 42 schedules.
  for (size_t threads : {1u, 2u, 8u}) {
    FuzzIncremental(*records_, 0.35, threads, 3000, 14);
  }
}

TEST_F(WdcCrud, FuzzShardedSchedules) {
  // S in {2,4} x 3 thread counts x 7 seeds = 42 schedules.
  for (size_t num_shards : {2u, 4u}) {
    for (size_t threads : {1u, 2u, 8u}) {
      FuzzSharded(*records_, 0.35, num_shards, threads, 4000, 7);
    }
  }
}

TEST_F(WdcCrud, MidScheduleChecksStayEquivalent) {
  // A handful of schedules checked after EVERY op, not just at the end.
  JaccardMatcher matcher;
  for (uint64_t seed : {1u, 2u, 3u}) {
    IncrementalPipelineConfig config = CrudConfig(2, 0.35);
    IncrementalPipeline pipeline(config);
    RunCrudSchedule(&pipeline, MakeSchedule(*records_, seed, 6), config,
                    matcher, "wdc mid-schedule seed=" + std::to_string(seed),
                    /*check_every=*/1);
  }
}

TEST_F(WdcCrud, ShardedCheckpointRoundTripCarriesTombstones) {
  JaccardMatcher matcher;
  ShardedPipelineConfig config;
  config.base = CrudConfig(2, 0.35);
  config.num_shards = 3;
  config.router_seed = 5;
  ShardedPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Ingest(*records_, matcher).ok());
  std::vector<RecordId> doomed;
  for (size_t i = 1; i < records_->size(); i += 4) {
    doomed.push_back(static_cast<RecordId>(i));
  }
  ASSERT_TRUE(pipeline.Remove(doomed, matcher).ok());

  const std::string dir =
      ::testing::TempDir() + "/crud_sharded_ckpt_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ASSERT_TRUE(SaveShardedCheckpoint(pipeline, dir).ok());
  // The manifest stamps version 2 once tombstones exist (byte offset 8).
  const std::string manifest =
      ReadWholeFile(ShardedManifestPath(dir)).ValueOrDie();
  EXPECT_EQ(static_cast<uint32_t>(static_cast<uint8_t>(manifest[8])), 2u);

  auto restored = LoadShardedCheckpoint(dir, matcher).ValueOrDie();
  EXPECT_EQ(restored->num_dead(), doomed.size());
  EXPECT_EQ(restored->alive(), pipeline.alive());
  ExpectEquivalent(restored->Snapshot().ValueOrDie(),
                   pipeline.Snapshot().ValueOrDie(), "restored sharded");

  // Re-saving the restored pipeline reproduces every file byte for byte.
  const std::string dir2 = dir + "_resave";
  ASSERT_TRUE(SaveShardedCheckpoint(*restored, dir2).ok());
  EXPECT_EQ(ReadWholeFile(ShardedManifestPath(dir2)).ValueOrDie(), manifest);

  // And keeps mutating identically.
  std::vector<RecordUpdate> update(1);
  update[0].id = 0;
  update[0].record = (*records_)[2];
  ASSERT_TRUE(pipeline.Update(update, matcher).ok());
  ASSERT_TRUE(restored->Update(update, matcher).ok());
  ExpectEquivalent(restored->Snapshot().ValueOrDie(),
                   pipeline.Snapshot().ValueOrDie(),
                   "restored sharded after update");
}

}  // namespace
}  // namespace gralmatch

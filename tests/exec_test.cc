// The gralmatch_exec subsystem: ThreadPool lifecycle (construction and
// destruction under load, submission from workers), ParallelFor range and
// grain edge cases, deterministic exception propagation, and the
// nested-submission deadlock regression. Hangs are caught by the CTest
// per-test timeout.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace gralmatch {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool lifecycle.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ConstructDestroyIdle) {
  for (size_t threads = 1; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
}

TEST(ThreadPoolTest, ResolveNumThreadsValidatesFlagValues) {
  // Positive requests pass through untouched.
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(8), 8u);
  // 0 means "use the hardware": always at least one worker.
  EXPECT_EQ(ResolveNumThreads(0), ThreadPool::DefaultNumThreads());
  EXPECT_GE(ResolveNumThreads(0), 1u);
  // Negative values clamp to serial instead of wrapping to ~2^64 workers
  // when assigned into the size_t num_threads config fields.
  EXPECT_EQ(ResolveNumThreads(-1), 1u);
  EXPECT_EQ(ResolveNumThreads(-1000000), 1u);
  EXPECT_EQ(ResolveNumThreads(std::numeric_limits<int64_t>::min()), 1u);
}

TEST(ThreadPoolTest, ResolvedValuesAreSafeForMaybeMakePool) {
  // The resolved value of a hostile flag must construct (or skip) a pool
  // without trying to spawn an absurd number of workers.
  EXPECT_EQ(MaybeMakePool(ResolveNumThreads(-7)), nullptr);
  auto pool = MaybeMakePool(ResolveNumThreads(2));
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 2u);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs while most tasks are still queued.
  }
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolTest, RepeatedConstructDestroyUnderLoad) {
  std::atomic<int> executed{0};
  int submitted = 0;
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    for (int i = 0; i < 25; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      ++submitted;
    }
  }
  EXPECT_EQ(executed.load(), submitted);
}

TEST(ThreadPoolTest, InWorkerThreadOnlyInsideOwnWorkers) {
  ThreadPool pool(2);
  ThreadPool other(2);
  EXPECT_FALSE(pool.InWorkerThread());

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool in_own = false, in_other = true;
  pool.Submit([&] {
    bool own = pool.InWorkerThread();
    bool foreign = other.InWorkerThread();
    std::lock_guard<std::mutex> lock(mu);
    in_own = own;
    in_other = foreign;
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_TRUE(in_own);
  EXPECT_FALSE(in_other);
}

// Regression: a task that submits more work into its own pool must not
// deadlock the drain-on-destroy path, and the follow-up task must run.
TEST(ThreadPoolTest, SubmitFromWorkerRunsAndDoesNotDeadlock) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    pool.Submit([&] {
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  EXPECT_EQ(executed.load(), 2);
}

// ---------------------------------------------------------------------------
// ParallelFor ranges and determinism.
// ---------------------------------------------------------------------------

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 0, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 5, 5, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 3, [&](size_t) { calls.fetch_add(1); });  // inverted
  ParallelFor(nullptr, 0, 0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleElementRange) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  ParallelFor(&pool, 3, 4, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i == 3 ? 1 : 0);
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 2, 9, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(7);
  std::iota(expected.begin(), expected.end(), 2u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, OddSizedRangesCoverEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {1u, 2u, 3u, 5u, 17u, 31u, 101u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(&pool, 0, n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, GrainNeverChangesResults) {
  const size_t n = 257;
  std::vector<long> reference(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = static_cast<long>(i * i + 1);
  }
  ThreadPool pool(4);
  for (size_t grain : {0u, 1u, 7u, 64u, 100000u}) {
    std::vector<long> out(n, -1);
    ParallelFor(
        &pool, 0, n,
        [&](size_t i) { out[i] = static_cast<long>(i * i + 1); }, grain);
    EXPECT_EQ(out, reference) << "grain=" << grain;
  }
}

TEST(ParallelForTest, NonZeroBeginRanges) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  ParallelFor(&pool, 40, 73, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 40 && i < 73) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, RangeSmallerThanThreadCount) {
  // Fewer iterations than workers: every index still runs exactly once
  // (each iteration writes only its own slot).
  ThreadPool pool(8);
  for (size_t n : {1u, 2u, 3u, 7u}) {
    std::vector<int> hits(n, 0);
    ParallelFor(&pool, 0, n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "n=" << n;
  }
}

TEST(ParallelForTest, ZeroWorkerPoolRequestTreatedAsOne) {
  // ThreadPool clamps 0 to one worker and MaybeMakePool(0) yields the
  // serial nullptr path; both must behave exactly like num_threads = 1.
  EXPECT_EQ(MaybeMakePool(0), nullptr);
  EXPECT_EQ(MaybeMakePool(1), nullptr);
  ThreadPool zero_pool(0);
  EXPECT_EQ(zero_pool.num_threads(), 1u);
  std::vector<size_t> order;
  ParallelFor(&zero_pool, 0, 6, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelMapTest, RangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  auto out =
      ParallelMap<size_t>(&pool, 3, [](size_t i) { return i * 10; });
  EXPECT_EQ(out, (std::vector<size_t>{0, 10, 20}));
}

TEST(ParallelMapTest, ZeroWorkerPoolRequest) {
  ThreadPool pool(0);
  auto out = ParallelMap<int>(&pool, 4,
                              [](size_t i) { return static_cast<int>(i) - 2; });
  EXPECT_EQ(out, (std::vector<int>{-2, -1, 0, 1}));
}

// ---------------------------------------------------------------------------
// Exception propagation.
// ---------------------------------------------------------------------------

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 0, 100,
                           [](size_t i) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
               std::runtime_error);

  // The pool stays usable after a failed loop.
  std::vector<std::atomic<int>> hits(50);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, 0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, LowestChunkExceptionWinsDeterministically) {
  ThreadPool pool(4);
  // Every index throws; the surviving exception must come from the first
  // index of the lowest chunk — index 0 — on every run and thread count.
  for (int round = 0; round < 5; ++round) {
    std::string message;
    try {
      ParallelFor(&pool, 0, 64, [](size_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "0");
  }
}

TEST(ParallelForTest, SerialPathPropagatesExceptions) {
  EXPECT_THROW(ParallelFor(nullptr, 0, 10,
                           [](size_t i) {
                             if (i == 5) throw std::logic_error("serial");
                           }),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Nested submission (deadlock regression).
// ---------------------------------------------------------------------------

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // A single-worker pool is the adversarial case: the outer loop runs on the
  // only worker, so a blocking inner dispatch could never be served. The
  // inner loop must detect it is on a worker thread and run inline.
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::vector<int>> grid(8, std::vector<int>(16, 0));
    ParallelFor(&pool, 0, grid.size(), [&](size_t r) {
      ParallelFor(&pool, 0, grid[r].size(), [&](size_t c) {
        grid[r][c] = static_cast<int>(r * 100 + c);
      });
    });
    for (size_t r = 0; r < grid.size(); ++r) {
      for (size_t c = 0; c < grid[r].size(); ++c) {
        ASSERT_EQ(grid[r][c], static_cast<int>(r * 100 + c));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelMap ordering.
// ---------------------------------------------------------------------------

TEST(ParallelMapTest, PreservesIndexOrdering) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto out = ParallelMap<long>(
        &pool, 501, [](size_t i) { return static_cast<long>(i) * 3 + 1; });
    ASSERT_EQ(out.size(), 501u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<long>(i) * 3 + 1);
    }
  }
}

TEST(ParallelMapTest, NonTrivialElementType) {
  ThreadPool pool(4);
  auto out = ParallelMap<std::string>(
      &pool, 64, [](size_t i) { return "item-" + std::to_string(i); });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], "item-" + std::to_string(i));
  }
}

TEST(ParallelMapTest, EmptyAndNullPool) {
  ThreadPool pool(4);
  EXPECT_TRUE((ParallelMap<int>(&pool, 0, [](size_t) { return 1; }).empty()));
  auto serial = ParallelMap<int>(nullptr, 5, [](size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(serial, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Stress: repeated loops sharing one pool.
// ---------------------------------------------------------------------------

TEST(ExecStressTest, ManySequentialParallelForsAccumulateExactly) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  long expected = 0;
  for (int round = 0; round < 50; ++round) {
    const size_t n = 10 + static_cast<size_t>(round) * 7;
    ParallelFor(&pool, 0, n, [&](size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    expected += static_cast<long>(n * (n - 1) / 2);
  }
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace gralmatch

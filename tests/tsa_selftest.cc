// Negative-compile fixture for the clang Thread Safety Analysis wiring.
//
// The CI static-analysis job compiles this file twice with
// `clang++ -Wthread-safety -Werror -fsyntax-only`:
//
//   1. without GRALMATCH_TSA_SELFTEST — must COMPILE (proves the annotated
//      wrappers in common/mutex.h are themselves analysis-clean), and
//   2. with -DGRALMATCH_TSA_SELFTEST — must FAIL with a -Wthread-safety
//      diagnostic (proves the analysis is actually on: a silently
//      misconfigured flag would otherwise let every annotation rot).
//
// Deliberately not a registered gtest suite: nothing here runs, it only
// compiles. Keep the violation minimal — one unguarded read of a
// GUARDED_BY member — so the expected diagnostic stays stable across
// clang versions.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gralmatch {

class TsaSelftestCounter {
 public:
  void Increment() {
    MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const {
    MutexLock lock(&mu_);
    return value_;
  }

#ifdef GRALMATCH_TSA_SELFTEST
  // Must NOT compile under -Wthread-safety -Werror: reads value_ without
  // holding mu_. If clang accepts this, the analysis is not running.
  int GetRacy() const { return value_; }
#endif

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace gralmatch

// Property tests for the identifier-standard generators: every generated
// identifier must validate (check digits included), and single-character
// mutations must be caught by the check digit with high probability.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/identifiers.h"

namespace gralmatch {
namespace {

class IdentifierSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdentifierSeedTest, GeneratedIsinsValidate) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string isin = GenerateIsin(&rng);
    EXPECT_TRUE(IsValidIsin(isin)) << isin;
    EXPECT_EQ(isin.size(), 12u);
  }
}

TEST_P(IdentifierSeedTest, GeneratedCusipsValidate) {
  Rng rng(GetParam() ^ 1);
  for (int i = 0; i < 200; ++i) {
    std::string cusip = GenerateCusip(&rng);
    EXPECT_TRUE(IsValidCusip(cusip)) << cusip;
    EXPECT_EQ(cusip.size(), 9u);
  }
}

TEST_P(IdentifierSeedTest, GeneratedSedolsValidate) {
  Rng rng(GetParam() ^ 2);
  for (int i = 0; i < 200; ++i) {
    std::string sedol = GenerateSedol(&rng);
    EXPECT_TRUE(IsValidSedol(sedol)) << sedol;
    EXPECT_EQ(sedol.size(), 7u);
  }
}

TEST_P(IdentifierSeedTest, GeneratedValorsValidate) {
  Rng rng(GetParam() ^ 3);
  for (int i = 0; i < 200; ++i) {
    std::string valor = GenerateValor(&rng);
    EXPECT_TRUE(IsValidValor(valor)) << valor;
  }
}

TEST_P(IdentifierSeedTest, GeneratedLeisValidate) {
  Rng rng(GetParam() ^ 4);
  for (int i = 0; i < 100; ++i) {
    std::string lei = GenerateLei(&rng);
    EXPECT_TRUE(IsValidLei(lei)) << lei;
    EXPECT_EQ(lei.size(), 20u);
  }
}

// Mutating one digit of an identifier must break the check digit (always,
// for the numeric mutations tested here).
TEST_P(IdentifierSeedTest, IsinDigitMutationDetected) {
  Rng rng(GetParam() ^ 5);
  for (int i = 0; i < 100; ++i) {
    std::string isin = GenerateIsin(&rng);
    size_t pos = 2 + rng.Uniform(10);
    char original = isin[pos];
    if (original < '0' || original > '9') continue;
    char mutated = static_cast<char>('0' + (original - '0' + 1 + rng.Uniform(8)) % 10);
    if (mutated == original) continue;
    isin[pos] = mutated;
    EXPECT_FALSE(IsValidIsin(isin)) << isin;
  }
}

TEST_P(IdentifierSeedTest, LeiMutationDetected) {
  Rng rng(GetParam() ^ 6);
  for (int i = 0; i < 100; ++i) {
    std::string lei = GenerateLei(&rng);
    size_t pos = rng.Uniform(18);
    char original = lei[pos];
    if (original < '0' || original > '9') continue;
    char mutated = static_cast<char>('0' + (original - '0' + 1 + rng.Uniform(8)) % 10);
    if (mutated == original) continue;
    lei[pos] = mutated;
    EXPECT_FALSE(IsValidLei(lei)) << lei;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentifierSeedTest,
                         ::testing::Values(1u, 42u, 7777u, 123456789u));

TEST(IdentifierTest, KnownRealIsins) {
  // Real-world ISINs with correct check digits.
  EXPECT_TRUE(IsValidIsin("US0378331005"));  // Apple
  EXPECT_TRUE(IsValidIsin("US5949181045"));  // Microsoft
  EXPECT_FALSE(IsValidIsin("US0378331006"));
  EXPECT_FALSE(IsValidIsin("us0378331005"));  // lower-case prefix
  EXPECT_FALSE(IsValidIsin("US03783310"));    // wrong length
}

TEST(IdentifierTest, KnownRealCusip) {
  EXPECT_TRUE(IsValidCusip("037833100"));  // Apple
  EXPECT_FALSE(IsValidCusip("037833101"));
  EXPECT_FALSE(IsValidCusip("0378331"));
}

TEST(IdentifierTest, KnownRealSedol) {
  EXPECT_TRUE(IsValidSedol("0263494"));  // BAE Systems
  EXPECT_FALSE(IsValidSedol("0263495"));
  EXPECT_FALSE(IsValidSedol("A263494"));  // vowel
}

TEST(IdentifierTest, ValorShape) {
  EXPECT_TRUE(IsValidValor("123456"));
  EXPECT_FALSE(IsValidValor("12345"));       // too short
  EXPECT_FALSE(IsValidValor("1234567890"));  // too long
  EXPECT_FALSE(IsValidValor("12345a"));
}

TEST(IdentifierTest, CountryPrefixHonored) {
  Rng rng(5);
  std::string isin = GenerateIsin(&rng, "CH");
  EXPECT_EQ(isin.substr(0, 2), "CH");
  EXPECT_TRUE(IsValidIsin(isin));
}

TEST(IdentifierTest, GeneratorsProduceDistinctValues) {
  Rng rng(9);
  std::string a = GenerateIsin(&rng);
  std::string b = GenerateIsin(&rng);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gralmatch

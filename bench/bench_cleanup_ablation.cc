// Ablation benches for the design choices DESIGN.md calls out:
//  (1) Minimum Edge Cut vs Edge Betweenness Centrality on planted
//      false-positive bridges: runtime and true-positive edge loss as the
//      component size grows (the paper's "MEC is faster, BC removes fewer
//      true edges" claim, §4.2/§6.2.1).
//  (2) gamma sweep: Post-Cleanup F1 as the min-cut threshold varies
//      (robustness claim of §6.2.1).
//  (3) Pre-Cleanup on/off on the synthetic companies dataset with the fast
//      classical matcher (its role in bounding cleanup runtime, §4.2.1).
//
// Usage: bench_cleanup_ablation [--scale P] [--seed S]

#include <cstdio>

#include "bench_util.h"
#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/embeddedness.h"
#include "core/label_propagation.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "matching/baselines.h"

namespace gralmatch {
namespace bench {
namespace {

/// Two same-size *sparse* communities (a connecting ring plus each chord
/// with probability 0.45 — realistic match graphs are not complete cliques)
/// joined by `bridges` false edges. Returns the graph and the false edges.
Graph MakePlanted(size_t clique, size_t bridges, std::vector<EdgeId>* false_edges,
                  Rng* rng) {
  Graph g(2 * clique);
  for (size_t side = 0; side < 2; ++side) {
    size_t base = side * clique;
    for (size_t a = 0; a < clique; ++a) {
      g.AddEdge(static_cast<NodeId>(base + a),
                static_cast<NodeId>(base + (a + 1) % clique))
          .ValueOrDie();
    }
    for (size_t a = 0; a < clique; ++a) {
      for (size_t b = a + 2; b < clique; ++b) {
        if (a == 0 && b == clique - 1) continue;  // ring edge already there
        if (rng->Bernoulli(0.45)) {
          g.AddEdge(static_cast<NodeId>(base + a), static_cast<NodeId>(base + b))
              .ValueOrDie();
        }
      }
    }
  }
  false_edges->clear();
  while (false_edges->size() < bridges) {
    NodeId u = static_cast<NodeId>(rng->Uniform(clique));
    NodeId v = static_cast<NodeId>(clique + rng->Uniform(clique));
    false_edges->push_back(g.AddEdge(u, v).ValueOrDie());
  }
  return g;
}

void MecVsBc(const BenchConfig& config) {
  std::printf("--- Ablation 1: MEC vs BC on planted bridges ---\n");
  TableReport table({"Clique Size", "Bridges", "Method", "Time",
                     "False Edges Removed", "True Edges Removed"});
  Rng rng(config.seed);
  for (size_t clique : {8, 16, 24, 32}) {
    for (size_t bridges : {1, 3}) {
      for (int method = 0; method < 2; ++method) {
        Rng local = rng.Fork();
        std::vector<EdgeId> false_edges;
        Graph g = MakePlanted(clique, bridges, &false_edges, &local);

        GraphCleanupConfig cconfig;
        cconfig.mu = clique;
        cconfig.gamma =
            method == 0 ? clique : GraphCleanupConfig::kNoMinCut;  // MEC : BC
        GraLMatchCleanup cleanup(cconfig);
        CleanupStats stats;
        Stopwatch watch;
        cleanup.Run(&g, &stats);
        double seconds = watch.ElapsedSeconds();

        size_t false_removed = 0;
        for (EdgeId e : false_edges) false_removed += !g.edge_alive(e);
        size_t total_removed = stats.min_cut_edges_removed +
                               stats.betweenness_edges_removed;
        table.AddRow({std::to_string(clique), std::to_string(bridges),
                      method == 0 ? "Min Edge Cut" : "Betweenness",
                      StrFormat("%.2f ms", seconds * 1e3),
                      StrFormat("%zu/%zu", false_removed, false_edges.size()),
                      std::to_string(total_removed - false_removed)});
      }
    }
  }
  table.Print();
  std::printf("\n");
}

void GammaSweep(const BenchConfig& config) {
  std::printf("--- Ablation 2: gamma sweep on synthetic companies "
              "(classical matcher) ---\n");
  FinancialBenchmark synthetic = MakeSynthetic(config);
  Dataset wdc_unused;
  FinancialBenchmark realistic_unused;
  auto tasks = MakeTasks(config, &realistic_unused, &synthetic, &wdc_unused);
  const MatchTask& task = tasks[1];  // Synthetic Companies
  ExperimentView view = MakeView(task, &synthetic, config);

  // Train the fast classical matcher on the train split.
  PairSamplingOptions opts;
  opts.seed = config.seed;
  auto train = SamplePairs(*task.data, task.split, SplitPart::kTrain, opts);
  TfidfLogRegMatcher matcher;
  matcher.Train(task.data->records, train);

  // Score once; rerun only the cleanup per gamma.
  EntityGroupPipeline scorer;
  auto candidates = view.candidates.ToVector();
  PipelineResult base = scorer.Run(view.sub, candidates, matcher);
  std::vector<Candidate> positives;
  for (const auto& pair : base.predicted_pairs) {
    positives.push_back({pair, view.candidates.ProvenanceOf(pair)});
  }

  TableReport table({"gamma", "Post-P", "Post-R", "Post-F1", "Cleanup Time"});
  for (size_t gamma : {10, 15, 25, 40, 60, 100}) {
    PipelineConfig pconfig;
    pconfig.cleanup.gamma = gamma;
    pconfig.cleanup.mu = view.mu;
    pconfig.pre_cleanup_threshold = view.pre_cleanup_threshold;
    EntityGroupPipeline pipeline(pconfig);
    PipelineResult result =
        pipeline.RunOnPredictions(view.sub.records.size(), positives);
    PrfMetrics post = GroupPrf(result.groups, view.sub.truth);
    table.AddRow({std::to_string(gamma), FormatPercent(post.Precision()),
                  FormatPercent(post.Recall()), FormatPercent(post.F1()),
                  StrFormat("%.0f ms", result.cleanup_stats.seconds * 1e3)});
  }
  table.Print();
  std::printf("Shape target: Post-F1 varies little across gamma "
              "(robustness, paper §6.2.1).\n\n");
}

void PreCleanupOnOff(const BenchConfig& config) {
  std::printf("--- Ablation 3: Pre-Cleanup on/off (synthetic companies, "
              "classical matcher) ---\n");
  FinancialBenchmark synthetic = MakeSynthetic(config);
  Dataset wdc_unused;
  FinancialBenchmark realistic_unused;
  auto tasks = MakeTasks(config, &realistic_unused, &synthetic, &wdc_unused);
  const MatchTask& task = tasks[1];
  ExperimentView view = MakeView(task, &synthetic, config);

  PairSamplingOptions opts;
  opts.seed = config.seed;
  auto train = SamplePairs(*task.data, task.split, SplitPart::kTrain, opts);
  TfidfLogRegMatcher matcher;
  matcher.Train(task.data->records, train);

  // An aggressive decision threshold produces the false-positive-rich
  // prediction set (large glued components) that the Pre-Cleanup targets.
  PipelineConfig score_config;
  score_config.match_threshold = 0.3;
  EntityGroupPipeline scorer(score_config);
  auto candidates = view.candidates.ToVector();
  PipelineResult base = scorer.Run(view.sub, candidates, matcher);
  std::vector<Candidate> positives;
  for (const auto& pair : base.predicted_pairs) {
    positives.push_back({pair, view.candidates.ProvenanceOf(pair)});
  }
  std::printf("(decision threshold 0.3: %zu positive predictions, largest "
              "implied component %zu)\n",
              positives.size(),
              LargestComponent(base.pre_cleanup_components));

  TableReport table({"Pre-Cleanup Threshold", "Edges Dropped", "Post-P",
                     "Post-R", "Post-F1", "Cleanup Time"});
  for (size_t threshold : {25ul, 50ul, 0ul}) {
    PipelineConfig pconfig;
    pconfig.cleanup.gamma = view.gamma;
    pconfig.cleanup.mu = view.mu;
    pconfig.pre_cleanup_threshold = threshold;
    EntityGroupPipeline pipeline(pconfig);
    Stopwatch watch;
    PipelineResult result =
        pipeline.RunOnPredictions(view.sub.records.size(), positives);
    PrfMetrics post = GroupPrf(result.groups, view.sub.truth);
    table.AddRow({threshold == 0 ? "off" : std::to_string(threshold),
                  std::to_string(result.cleanup_stats.pre_cleanup_edges_removed),
                  FormatPercent(post.Precision()), FormatPercent(post.Recall()),
                  FormatPercent(post.F1()),
                  Stopwatch::FormatSeconds(watch.ElapsedSeconds())});
  }
  table.Print();
  std::printf("Shape target: Pre-Cleanup bounds cleanup runtime on giant "
              "components with little quality cost (paper §4.2.1).\n");
}

void HeterogeneousCleanups(const BenchConfig& config) {
  std::printf("--- Ablation 4: heterogeneous group sizes (WDC-style) — "
              "Algorithm 1 vs size-agnostic cleanups ---\n");
  Dataset products = MakeWdc(config);
  // Perfect predictions plus planted false bridges between random groups:
  // isolates the cleanup's contribution from matcher quality.
  Rng rng(config.seed ^ 0xAB);
  std::vector<Candidate> positives;
  for (const auto& pair : products.truth.AllTruePairs()) {
    positives.push_back({pair, kBlockerTokenOverlap});
  }
  size_t planted = products.truth.NumEntities() / 10;
  for (size_t k = 0; k < planted; ++k) {
    RecordId a = static_cast<RecordId>(rng.Uniform(products.records.size()));
    RecordId b = static_cast<RecordId>(rng.Uniform(products.records.size()));
    if (a == b || products.truth.IsMatch(a, b)) continue;
    positives.push_back({RecordPair(a, b), kBlockerTokenOverlap});
  }

  TableReport table({"Cleanup", "Post-P", "Post-R", "Post-F1", "Purity", "Time"});
  auto add_row = [&](const char* label,
                     const std::vector<std::vector<NodeId>>& groups,
                     double seconds) {
    PrfMetrics post = GroupPrf(groups, products.truth);
    table.AddRow({label, FormatPercent(post.Precision()),
                  FormatPercent(post.Recall()), FormatPercent(post.F1()),
                  FormatScore(ClusterPurity(groups, products.truth)),
                  StrFormat("%.0f ms", seconds * 1e3)});
  };

  {
    PipelineConfig pconfig;
    pconfig.cleanup.gamma = 25;
    pconfig.cleanup.mu = 5;
    EntityGroupPipeline pipeline(pconfig);
    Stopwatch watch;
    PipelineResult result =
        pipeline.RunOnPredictions(products.records.size(), positives);
    add_row("Algorithm 1 (mu=5)", result.groups, watch.ElapsedSeconds());
  }
  {
    Graph graph(products.records.size());
    // Discard audited: candidate endpoints are record ids in range.
    for (const auto& cand : positives) {
      (void)graph.AddEdge(cand.pair.a, cand.pair.b);
    }
    Stopwatch watch;
    auto groups = LabelPropagationGroups(graph);
    add_row("Label propagation", groups, watch.ElapsedSeconds());
  }
  {
    Graph graph(products.records.size());
    // Discard audited: candidate endpoints are record ids in range.
    for (const auto& cand : positives) {
      (void)graph.AddEdge(cand.pair.a, cand.pair.b);
    }
    Stopwatch watch;
    auto groups = EmbeddednessGroups(&graph);
    add_row("Embeddedness filter", groups, watch.ElapsedSeconds());
  }
  table.Print();
  std::printf("Shape target: Algorithm 1 loses recall on groups larger than "
              "mu even with perfect input predictions; the size-agnostic "
              "cleanups keep large groups while still removing planted false "
              "bridges (the paper's §6.2.3 future-work direction).\n");
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::printf("=== Cleanup ablations (scale %.0f%%, seed %llu) ===\n\n",
              config.scale, static_cast<unsigned long long>(config.seed));
  MecVsBc(config);
  GammaSweep(config);
  PreCleanupOnOff(config);
  std::printf("\n");
  HeterogeneousCleanups(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

// Regenerates Table 2 of the paper: blockings applied, number of records,
// number of candidate pairs and the cleanup size thresholds (gamma, mu) of
// the end-to-end entity group matching experiment for each dataset.
//
// Usage: bench_table2_blocking [--scale P] [--seed S]

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/stopwatch.h"
#include "eval/report.h"

namespace gralmatch {
namespace bench {
namespace {

std::string Count(size_t v) { return WithThousandsSep(static_cast<long long>(v)); }

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::printf("=== Table 2: blockings of the entity group matching experiment "
              "(scale %.0f%%, seed %llu) ===\n",
              config.scale, static_cast<unsigned long long>(config.seed));
  std::printf(
      "Paper reference: Real Companies 6.3K records/51K pairs (gamma 40, mu 8); "
      "Synthetic Companies 174K/1.14M (25, 5);\n"
      "Real Securities 12.8K/41K (40, 8); Synthetic Securities 197K/826K "
      "(25, 5); WDC 1K/9.1K (25, 5).\n"
      "Candidate counts scale with --scale; the pairs-per-record ratio is the "
      "shape to compare.\n\n");

  FinancialBenchmark realistic = MakeRealistic(config);
  FinancialBenchmark synthetic = MakeSynthetic(config);
  Dataset wdc = MakeWdc(config);
  auto tasks = MakeTasks(config, &realistic, &synthetic, &wdc);

  TableReport table({"Dataset", "Blockings", "# Records", "# Candidate Pairs",
                     "Pairs/Record", "Blocking Recall", "gamma", "mu",
                     "Build Time"});
  for (const auto& task : tasks) {
    const FinancialBenchmark* fin =
        task.is_wdc ? nullptr
                    : (task.name.rfind("Real", 0) == 0 ? &realistic : &synthetic);
    Stopwatch watch;
    ExperimentView view = MakeView(task, fin, config);
    double seconds = watch.ElapsedSeconds();

    // Blocking recall: fraction of the sub-dataset's true matches that
    // appear among the candidates (the paper discusses this as the source
    // of the Stage-1 recall gap).
    uint64_t found = 0;
    for (const auto& cand : view.candidates.ToVector()) {
      if (view.sub.truth.IsMatch(cand.pair)) ++found;
    }
    uint64_t total = view.sub.truth.NumTrueMatches();

    table.AddRow({task.name, view.blockings, Count(view.sub.records.size()),
                  Count(view.candidates.size()),
                  StrFormat("%.1f", view.sub.records.empty()
                                        ? 0.0
                                        : static_cast<double>(view.candidates.size()) /
                                              static_cast<double>(view.sub.records.size())),
                  StrFormat("%.1f%%", total == 0 ? 0.0
                                                 : 100.0 * static_cast<double>(found) /
                                                       static_cast<double>(total)),
                  std::to_string(view.gamma), std::to_string(view.mu),
                  Stopwatch::FormatSeconds(seconds)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

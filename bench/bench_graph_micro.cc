// Google-benchmark microbenchmarks for the performance-critical kernels:
// graph algorithms (Stoer-Wagner min cut, Brandes edge betweenness,
// connected components), the parallel cleanup hot path at 1/2/4 threads,
// text kernels and transformer inference.
//
// Thread-count convention for comparing BENCH_graph_micro.json artifacts:
// the `/threads:N` suffix of BM_GraphCleanup names the worker count; speedup
// claims compare `/threads:N real_time` against `/threads:1` *of the same
// artifact* (same machine, same build) — never across machines.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/rng.h"
#include "core/cleanup.h"
#include "core/pipeline.h"
#include "datagen/financial_gen.h"
#include "exec/parallel.h"
#include "graph/betweenness.h"
#include "graph/graph.h"
#include "graph/min_cut.h"
#include "matching/baselines.h"
#include "matching/transformer_matcher.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/match_service.h"
#include "shard/sharded_pipeline.h"
#include "stream/incremental_pipeline.h"
#include "text/similarity.h"
#include "text/vocab.h"

namespace gralmatch {
namespace {

/// Random connected graph: spanning tree plus 2n extra edges.
Graph MakeRandomGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (size_t v = 1; v < n; ++v) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(v)), static_cast<NodeId>(v))
        .ValueOrDie();
  }
  // Discard-free here: ValueOrDie asserts success; ids are in range.
  for (size_t k = 0; k < 2 * n; ++k) {
    NodeId a = static_cast<NodeId>(rng.Uniform(n));
    NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b) (void)g.AddEdge(a, b).ValueOrDie();
  }
  return g;
}

void BM_StoerWagnerMinCut(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = MakeRandomGraph(n, 1);
  auto comp = g.ComponentOf(0);
  for (auto _ : state) {
    auto cut = StoerWagnerMinCut(g, comp);
    benchmark::DoNotOptimize(cut);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_StoerWagnerMinCut)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_EdgeBetweenness(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = MakeRandomGraph(n, 2);
  auto comp = g.ComponentOf(0);
  for (auto _ : state) {
    auto bc = EdgeBetweenness(g, comp);
    benchmark::DoNotOptimize(bc);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_EdgeBetweenness)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_ConnectedComponents(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = MakeRandomGraph(n, 3);
  for (auto _ : state) {
    auto comps = g.ConnectedComponents();
    benchmark::DoNotOptimize(comps);
  }
}
BENCHMARK(BM_ConnectedComponents)->Arg(1000)->Arg(10000);

/// The cleanup hot path's workload shape: many independent oversized noisy
/// communities (no cross edges), each of which phase 1 must min-cut apart
/// and phase 2 must trim down to mu.
Graph MakeClusteredGraph(size_t communities, size_t community_size,
                         uint64_t seed) {
  Rng rng(seed);
  Graph g(communities * community_size);
  for (size_t c = 0; c < communities; ++c) {
    const size_t begin = c * community_size;
    const size_t end = begin + community_size;
    // Discard audited: synthetic in-range endpoints, so AddEdge cannot
    // fail; the edge ids are unused.
    for (size_t a = begin; a < end; ++a) {
      // Ring for connectivity plus random chords.
      size_t b = a + 1 == end ? begin : a + 1;
      (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      for (size_t c2 = a + 2; c2 < end; ++c2) {
        if (rng.Bernoulli(0.12)) {
          (void)g.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(c2));
        }
      }
    }
  }
  return g;
}

/// The GraLMatch cleanup at range(0) worker threads. Components are
/// independent, so the parallel path fans them out; /threads:1 is the serial
/// reference the speedup is measured against (same artifact only).
void BM_GraphCleanup(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Graph g = MakeClusteredGraph(/*communities=*/12, /*community_size=*/48, 7);
  GraphCleanupConfig config;
  config.gamma = 24;
  config.mu = 6;
  GraLMatchCleanup cleanup(config);
  ThreadPool pool(threads);
  ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    g.RestoreAllEdges();  // O(E) memset, negligible next to the cleanup
    auto groups = cleanup.Run(&g, nullptr, pool_ptr);
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_GraphCleanup)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads")
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// Dispatch overhead of the ParallelFor chunking for a cheap body.
void BM_ParallelForDispatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  ThreadPool pool(threads);
  std::vector<double> out(4096);
  for (auto _ : state) {
    ParallelFor(
        &pool, 0, out.size(),
        [&out](size_t i) { out[i] = static_cast<double>(i) * 0.5; },
        /*grain=*/64);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads")
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Incremental ingestion vs. full recomputation. Both benchmarks process the
// same schedule — the securities fixture arriving in `batches` equal batches
// with a result required after every batch — so the ratio of the two rows is
// the streaming win. Compare rows within one artifact only.
// ---------------------------------------------------------------------------

/// Securities records of a mid-sized financial fixture (shared, built once).
const std::vector<Record>& IncrementalBenchRecords() {
  static const std::vector<Record>* records = [] {
    SyntheticConfig config;
    config.seed = 505;
    config.num_groups = 120;
    FinancialBenchmark bench = FinancialGenerator(config).Generate();
    auto* out = new std::vector<Record>();
    out->reserve(bench.securities.records.size());
    for (size_t i = 0; i < bench.securities.records.size(); ++i) {
      out->push_back(bench.securities.records.at(static_cast<RecordId>(i)));
    }
    return out;
  }();
  return *records;
}

IncrementalPipelineConfig IncrementalBenchConfig() {
  IncrementalPipelineConfig config;
  config.pipeline.cleanup.gamma = 25;
  config.pipeline.cleanup.mu = 5;
  config.pipeline.pre_cleanup_threshold = 50;
  config.token.top_n = 5;
  return config;
}

void BM_IncrementalIngest(benchmark::State& state) {
  const size_t batches = static_cast<size_t>(state.range(0));
  const std::vector<Record>& records = IncrementalBenchRecords();
  const size_t batch_size = (records.size() + batches - 1) / batches;
  HeuristicIdMatcher matcher;
  for (auto _ : state) {
    IncrementalPipeline pipeline(IncrementalBenchConfig());
    for (size_t offset = 0; offset < records.size(); offset += batch_size) {
      const size_t end = std::min(offset + batch_size, records.size());
      std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                                records.begin() + static_cast<long>(end));
      pipeline.Ingest(batch, matcher).ValueOrDie();
      PipelineResult result = pipeline.Snapshot().ValueOrDie();
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_IncrementalIngest)->Arg(4)->Arg(16)->ArgName("batches")
    ->Unit(benchmark::kMillisecond);

void BM_FullRecompute(benchmark::State& state) {
  const size_t batches = static_cast<size_t>(state.range(0));
  const std::vector<Record>& records = IncrementalBenchRecords();
  const size_t batch_size = (records.size() + batches - 1) / batches;
  const IncrementalPipelineConfig config = IncrementalBenchConfig();
  HeuristicIdMatcher matcher;
  // Prefix tables built once: the timed region is blocking + scoring +
  // cleanup from scratch after every batch, which is what the incremental
  // path replaces.
  std::vector<Dataset> prefixes;
  for (size_t offset = 0; offset < records.size(); offset += batch_size) {
    const size_t end = std::min(offset + batch_size, records.size());
    Dataset ds;
    for (size_t i = 0; i < end; ++i) ds.records.Add(records[i]);
    prefixes.push_back(std::move(ds));
  }
  for (auto _ : state) {
    for (const Dataset& prefix : prefixes) {
      CandidateSet candidates;
      IdOverlapBlocker().AddCandidates(prefix, &candidates);
      TokenOverlapBlocker(config.token).AddCandidates(prefix, &candidates);
      PipelineResult result = EntityGroupPipeline(config.pipeline)
                                  .Run(prefix, candidates.ToVector(), matcher);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_FullRecompute)->Arg(4)->Arg(16)->ArgName("batches")
    ->Unit(benchmark::kMillisecond);

// BM_ShardedIngest runs the BM_IncrementalIngest schedule (same fixture,
// same config, fixed 16 batches) through a ShardedPipeline at S shards:
// the shards:1 row vs BM_IncrementalIngest/batches:16 is the cost of the
// exchange/merge layer, and shards:{2,4} vs shards:1 is the partitioning
// behaviour. Same-artifact comparisons only, like every row here.
void BM_ShardedIngest(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  constexpr size_t kBatches = 16;
  const std::vector<Record>& records = IncrementalBenchRecords();
  const size_t batch_size = (records.size() + kBatches - 1) / kBatches;
  ShardedPipelineConfig config;
  config.base = IncrementalBenchConfig();
  config.num_shards = num_shards;
  HeuristicIdMatcher matcher;
  for (auto _ : state) {
    ShardedPipeline pipeline(config);
    for (size_t offset = 0; offset < records.size(); offset += batch_size) {
      const size_t end = std::min(offset + batch_size, records.size());
      std::vector<Record> batch(records.begin() + static_cast<long>(offset),
                                records.begin() + static_cast<long>(end));
      pipeline.Ingest(batch, matcher).ValueOrDie();
      PipelineResult result = pipeline.Snapshot().ValueOrDie();
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->ArgName("shards")
    ->Unit(benchmark::kMillisecond);

// BM_CrudChurn measures steady-state corrections on a fully-ingested
// pipeline: each round removes ~5% of the live records, updates another
// ~5% (exact remove + re-add in one dirty pass), and snapshots. The
// timed region starts after the initial ingest, so the rows price the
// retraction path — candidate deltas, cache eviction, dirty-component
// re-cleaning — rather than first-time scoring. Compare against the
// BM_IncrementalIngest rows of the same artifact.
void BM_CrudChurn(benchmark::State& state) {
  const size_t rounds = static_cast<size_t>(state.range(0));
  const std::vector<Record>& records = IncrementalBenchRecords();
  HeuristicIdMatcher matcher;
  for (auto _ : state) {
    state.PauseTiming();
    IncrementalPipeline pipeline(IncrementalBenchConfig());
    pipeline.Ingest(records, matcher).ValueOrDie();
    Rng rng(99);
    state.ResumeTiming();
    for (size_t round = 0; round < rounds; ++round) {
      std::vector<RecordId> live;
      for (size_t id = 0; id < pipeline.records().size(); ++id) {
        if (pipeline.is_alive(static_cast<RecordId>(id))) {
          live.push_back(static_cast<RecordId>(id));
        }
      }
      const size_t churn = live.size() / 20 + 1;
      for (size_t k = 0; k < 2 * churn; ++k) {
        const size_t j = k + static_cast<size_t>(rng.Uniform(live.size() - k));
        std::swap(live[k], live[j]);
      }
      std::vector<RecordId> removals(live.begin(),
                                     live.begin() + static_cast<long>(churn));
      std::sort(removals.begin(), removals.end());
      std::vector<RecordUpdate> updates;
      updates.reserve(churn);
      for (size_t k = churn; k < 2 * churn; ++k) {
        RecordUpdate update;
        update.id = live[k];
        update.record = records[rng.Uniform(records.size())];
        updates.push_back(std::move(update));
      }
      pipeline.Remove(removals, matcher).ValueOrDie();
      pipeline.Update(updates, matcher).ValueOrDie();
      PipelineResult result = pipeline.Snapshot().ValueOrDie();
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_CrudChurn)->Arg(4)->Arg(16)->ArgName("rounds")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Checkpointing and serving. BM_CheckpointSave/Load measure the in-memory
// serialize/parse cost of a fully-ingested pipeline (file I/O excluded:
// it's machine noise); BM_ServeQuery measures the lock-free read path under
// a published snapshot. Compare rows within one artifact only.
// ---------------------------------------------------------------------------

/// A pipeline with the full incremental fixture ingested (shared, built
/// once).
const IncrementalPipeline& CheckpointBenchPipeline() {
  static const IncrementalPipeline* pipeline = [] {
    auto* p = new IncrementalPipeline(IncrementalBenchConfig());
    HeuristicIdMatcher matcher;
    p->Ingest(IncrementalBenchRecords(), matcher).ValueOrDie();
    return p;
  }();
  return *pipeline;
}

void BM_CheckpointSave(benchmark::State& state) {
  const IncrementalPipeline& pipeline = CheckpointBenchPipeline();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string image = SerializeCheckpoint(pipeline).ValueOrDie();
    bytes = image.size();
    benchmark::DoNotOptimize(image.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckpointSave)->Unit(benchmark::kMillisecond);

void BM_CheckpointLoad(benchmark::State& state) {
  const std::string image =
      SerializeCheckpoint(CheckpointBenchPipeline()).ValueOrDie();
  HeuristicIdMatcher matcher;
  for (auto _ : state) {
    auto restored = ParseCheckpoint(image, matcher);
    if (!restored.ok()) {
      state.SkipWithError("checkpoint load failed");
      break;
    }
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(image.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckpointLoad)->Unit(benchmark::kMillisecond);

void BM_ServeQuery(benchmark::State& state) {
  const IncrementalPipeline& pipeline = CheckpointBenchPipeline();
  MatchService service;
  service.Publish(pipeline.Snapshot().ValueOrDie(), pipeline.records().size());
  const size_t n = pipeline.records().size();
  uint32_t rng_state = 1;
  for (auto _ : state) {
    rng_state = rng_state * 1664525u + 1013904223u;
    MatchSnapshotPtr view = service.View();
    const RecordId r = static_cast<RecordId>(rng_state % n);
    const GroupId gid = view->GroupOf(r);
    benchmark::DoNotOptimize(view->Members(gid).size());
  }
}
BENCHMARK(BM_ServeQuery);

// ---------------------------------------------------------------------------
// Networked serving. BM_NetQuery measures the full RPC round trip
// (frame encode -> loopback socket -> server decode -> snapshot query ->
// reply) against BM_ServeQuery's in-process baseline. /threads:N runs N
// concurrent clients, each on its own connection: items_per_second at the
// highest thread count is the saturation QPS, and the p50_us / p99_us
// counters are per-thread round-trip latency percentiles (averaged across
// threads; exact nearest-rank via obs::SampleQuantile).
// BM_NetQueryBurst pipelines `burst` requests per call — the batching
// path: one epoch resolution and one send per burst. Compare rows within
// one artifact only.
// ---------------------------------------------------------------------------

/// One server over the checkpoint-bench pipeline's published snapshot
/// (shared; started once).
NetServer& NetBenchServer() {
  struct Shared {
    MatchService service;
    std::unique_ptr<NetServer> server;
  };
  static Shared* shared = [] {
    auto* s = new Shared;
    const IncrementalPipeline& pipeline = CheckpointBenchPipeline();
    s->service.Publish(pipeline.Snapshot().ValueOrDie(),
                       pipeline.records().size());
    NetServerOptions options;
    options.max_connections = 16;
    s->server = NetServer::Start(&s->service, options).ValueOrDie();
    return s;
  }();
  return *shared->server;
}

void BM_NetQuery(benchmark::State& state) {
  auto client = NetClient::Connect(NetBenchServer().port()).ValueOrDie();
  const size_t n = CheckpointBenchPipeline().records().size();
  uint32_t rng_state = static_cast<uint32_t>(state.thread_index()) *
                           2654435761u + 1u;
  std::vector<double> latencies_us;
  for (auto _ : state) {
    rng_state = rng_state * 1664525u + 1013904223u;
    const auto start = std::chrono::steady_clock::now();
    auto reply = client->GroupOf(static_cast<RecordId>(rng_state % n));
    const auto stop = std::chrono::steady_clock::now();
    if (!reply.ok()) {
      state.SkipWithError("net query failed");
      break;
    }
    benchmark::DoNotOptimize(reply->group);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (!latencies_us.empty()) {
    // Exact nearest-rank percentiles via the obs library (the same
    // definition tests/obs_test.cc pins), not an ad-hoc index.
    state.counters["p50_us"] = benchmark::Counter(
        obs::SampleQuantile(latencies_us, 0.50),
        benchmark::Counter::kAvgThreads);
    state.counters["p99_us"] = benchmark::Counter(
        obs::SampleQuantile(latencies_us, 0.99),
        benchmark::Counter::kAvgThreads);
  }
}
BENCHMARK(BM_NetQuery)->ThreadRange(1, 8)->UseRealTime();

void BM_NetQueryBurst(benchmark::State& state) {
  auto client = NetClient::Connect(NetBenchServer().port()).ValueOrDie();
  const size_t n = CheckpointBenchPipeline().records().size();
  const size_t burst_size = static_cast<size_t>(state.range(0));
  uint32_t rng_state = 1;
  for (auto _ : state) {
    std::vector<NetRequest> burst;
    burst.reserve(burst_size);
    for (size_t k = 0; k < burst_size; ++k) {
      rng_state = rng_state * 1664525u + 1013904223u;
      burst.push_back(NetRequest::GroupOf(rng_state % n));
    }
    auto replies = client->Call(burst);
    if (!replies.ok()) {
      state.SkipWithError("net burst failed");
      break;
    }
    benchmark::DoNotOptimize(replies->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(burst_size));
}
BENCHMARK(BM_NetQueryBurst)->Arg(8)->Arg(64)->ArgName("burst");

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "crowdstrike holdings incorporated";
  std::string b = "crowd strike platforms international";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = "crowdstrike holdings incorporated";
  std::string b = "crowd strike platforms international";
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinkler(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_VocabEncode(benchmark::State& state) {
  SubwordVocab vocab;
  vocab.Train({"crowdstrike holdings provides security solutions",
               "quantum energy resources limited zurich",
               "data pipeline analytics incorporated"},
              1000);
  std::string text =
      "Quantum CrowdStrike Data Pipeline unseenword123 Zurich Analytics";
  for (auto _ : state) {
    benchmark::DoNotOptimize(vocab.EncodeText(text));
  }
}
BENCHMARK(BM_VocabEncode);

void BM_TransformerPredict(benchmark::State& state) {
  TransformerConfig config;
  config.vocab_size = 6000;
  config.max_seq_len = static_cast<size_t>(state.range(0));
  TransformerClassifier model(config);
  Rng rng(4);
  std::vector<int32_t> tokens(config.max_seq_len);
  for (auto& t : tokens) t = static_cast<int32_t>(rng.Uniform(6000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(tokens));
  }
}
BENCHMARK(BM_TransformerPredict)->Arg(48)->Arg(96);

// Batched matcher inference: every iteration scores the same 256 fixture
// pairs through TransformerMatcher::ScoreBatch in chunks of `batch`, so the
// per-iteration work is constant and the batch:32 / batch:256 rows against
// batch:1 *of the same artifact* are the amortization win of the packed
// forward pass (one activation workspace and weight-matrix sweep per chunk
// instead of per pair). Scores are bitwise-identical across rows by the
// ScoreBatch contract — this knob trades nothing but allocator traffic.
// Scores 256 fixed pairs through TransformerMatcher::ScoreBatch in chunks of
// `batch`, so batch:1 is the per-pair baseline and batch:256 one packed
// forward pass. The model is sized so the layer weights (~2.5 MB) exceed a
// typical L2 cache with short sequences: that is the regime real transformer
// inference lives in — per-pair scoring re-streams every weight matrix from
// shared cache for each pair, while a packed batch streams them once per
// layer. At the tiny default config (d_model 32, weights ~260 KB) everything
// stays cache-hot and the batch rows collapse to within noise of each other,
// which would benchmark the allocator, not the batching.
void BM_MatcherScoreBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  static const RecordTable* records = [] {
    auto* table = new RecordTable();
    for (const Record& rec : IncrementalBenchRecords()) table->Add(rec);
    return table;
  }();
  static const TransformerMatcher* matcher = [] {
    TransformerMatcherConfig config;
    config.d_model = 128;
    config.num_heads = 4;
    config.num_layers = 2;
    config.d_ff = 1024;
    config.max_seq_len = 6;
    auto* m = new TransformerMatcher(config);
    m->BuildVocab(*records);
    return m;
  }();
  constexpr size_t kPairs = 256;
  std::vector<RecordPair> pairs;
  pairs.reserve(kPairs);
  for (size_t i = 0; i < kPairs; ++i) {
    const RecordId a = static_cast<RecordId>((2 * i) % records->size());
    const RecordId b = static_cast<RecordId>((2 * i + 1) % records->size());
    pairs.push_back(RecordPair(a, b));
  }
  std::vector<double> scores(kPairs, 0.0);
  for (auto _ : state) {
    for (size_t begin = 0; begin < kPairs; begin += batch) {
      const size_t count = std::min(batch, kPairs - begin);
      matcher->ScoreBatch(*records,
                          Span<const RecordPair>(pairs.data() + begin, count),
                          Span<double>(scores.data() + begin, count));
    }
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kPairs));
}
BENCHMARK(BM_MatcherScoreBatch)->Arg(1)->Arg(32)->Arg(256)->ArgName("batch")
    ->Unit(benchmark::kMillisecond);

void BM_TransformerTrainStep(benchmark::State& state) {
  TransformerConfig config;
  config.vocab_size = 6000;
  config.max_seq_len = 48;
  TransformerClassifier model(config);
  Rng rng(5);
  std::vector<int32_t> tokens(config.max_seq_len);
  for (auto& t : tokens) t = static_cast<int32_t>(rng.Uniform(6000));
  int label = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ForwardBackward(tokens, label));
    label ^= 1;
  }
}
BENCHMARK(BM_TransformerTrainStep);

}  // namespace
}  // namespace gralmatch

BENCHMARK_MAIN();

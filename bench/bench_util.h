#ifndef GRALMATCH_BENCH_BENCH_UTIL_H_
#define GRALMATCH_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared harness for the table-regenerating benchmarks: scaled dataset
/// construction, fine-tuning-pair assembly, model training with an on-disk
/// cache (bench_table3 trains, bench_table4 reuses), and the test-split
/// experiment views with their blocking configurations (paper Table 2).

#include <memory>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "common/cli.h"
#include "data/dataset.h"
#include "datagen/financial_gen.h"
#include "datagen/wdc_gen.h"
#include "matching/pair_sampling.h"
#include "matching/transformer_matcher.h"
#include "matching/variants.h"

namespace gralmatch {
namespace bench {

/// Knobs common to all table benches.
struct BenchConfig {
  double scale = 100.0;   ///< percent of the default workload size
  uint64_t seed = 42;
  /// Worker threads for blocking, candidate scoring, and graph cleanup.
  /// Results are identical at any thread count; when comparing timings in
  /// bench artifacts, always state the thread count and compare equal ones.
  size_t num_threads = 1;
  size_t epochs = 3;      ///< paper: 5; scaled default for single-core runs
  std::string model_dir = "gralmatch_models";
  bool retrain = false;   ///< ignore cached models
  /// Scaled token budgets standing in for the paper's 128/256 limits. The
  /// short budget is chosen so that Ditto's tag overhead binds on
  /// identifier-heavy records (the §6.1 truncation effect); the long budget
  /// so that it does not.
  size_t short_seq = 32;
  size_t long_seq = 96;
  /// Caps on sampled fine-tuning positives (0 = uncapped).
  size_t max_train_positives = 1000;
  size_t max_val_positives = 400;
  size_t max_test_positives = 1200;
  /// Total-pair cap of the reduced "-15K" training set.
  size_t reduced_train_pairs = 3500;
};

/// Parse --scale/--seed/--num_threads/--epochs/--model_dir/--retrain from
/// argv.
BenchConfig ParseBenchConfig(int argc, char** argv);

/// Default workload sizes at scale 100.
size_t ScaledSyntheticGroups(const BenchConfig& config);   // 1200
size_t ScaledRealisticGroups(const BenchConfig& config);   // 300
size_t ScaledWdcEntities(const BenchConfig& config);       // 250

/// Generate the synthetic benchmark (paper §3.2) at bench scale.
FinancialBenchmark MakeSynthetic(const BenchConfig& config);
/// Generate the realistic ("real data" stand-in) benchmark at bench scale.
FinancialBenchmark MakeRealistic(const BenchConfig& config);
/// Generate the WDC-Products-style benchmark at bench scale.
Dataset MakeWdc(const BenchConfig& config);

/// One fine-tuning/matching task (a dataset row of Tables 3/4).
struct MatchTask {
  std::string name;       ///< "Synthetic Companies", ...
  const Dataset* data = nullptr;
  GroupSplit split;
  bool is_securities = false;
  bool is_wdc = false;
};

/// The five dataset rows, in paper order. The returned tasks reference the
/// storage passed in (which must outlive them).
std::vector<MatchTask> MakeTasks(const BenchConfig& config,
                                 FinancialBenchmark* realistic,
                                 FinancialBenchmark* synthetic, Dataset* wdc);

/// Fine-tuning pairs of a task (train/val/test, 5:1 negatives).
struct TaskPairs {
  std::vector<LabeledPair> train, val, test;
};
TaskPairs MakePairs(const MatchTask& task, const BenchConfig& config,
                    bool reduced_training);

/// RecordTable restricted to one split part (vocabulary building).
RecordTable CopySplitRecords(const Dataset& data, const GroupSplit& split,
                             SplitPart part);

/// A trained (or cache-loaded) transformer matcher.
struct TrainedModel {
  std::unique_ptr<TransformerMatcher> matcher;
  TrainResult train_result;
  bool from_cache = false;
};

/// Train a model variant for a task, or load it from the cache directory.
TrainedModel GetModel(const MatchTask& task, ModelVariant variant,
                      const BenchConfig& config);

/// Which model variants run on a task (the paper trains the "-15K" variant
/// on the synthetic datasets only).
std::vector<ModelVariant> VariantsForTask(const MatchTask& task);

/// Test-split experiment view: the blocked sub-dataset of §5.3 (Table 2).
struct ExperimentView {
  Dataset sub;                     ///< test-split records, ids remapped
  /// Companies only: securities issued by the sub records, issuer_ref
  /// remapped to sub ids (feeds the companies-mode ID Overlap blocker).
  RecordTable sub_securities;
  /// Securities only: heuristic company groups over the FULL companies
  /// table (connected components of ID-overlap candidates), feeding the
  /// Issuer Match blocker.
  std::vector<int64_t> company_group_full;
  CandidateSet candidates;
  std::string blockings;           ///< display string, e.g. "ID+Token"
  size_t gamma = 25;
  size_t mu = 5;
  size_t pre_cleanup_threshold = 0;
};

/// Build the experiment view of a task (generates blocking candidates).
ExperimentView MakeView(const MatchTask& task,
                        const FinancialBenchmark* fin_benchmark,
                        const BenchConfig& config);

}  // namespace bench
}  // namespace gralmatch

#endif  // GRALMATCH_BENCH_BENCH_UTIL_H_

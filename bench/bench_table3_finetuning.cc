// Regenerates Table 3 of the paper: pairwise precision / recall / F1 of the
// fine-tuned model variants on held-out test pairs, plus training time.
// Trained models are cached under --model_dir so that bench_table4 can
// reuse them without retraining.
//
// Usage: bench_table3_finetuning [--scale P] [--seed S] [--epochs N]
//                                [--model_dir DIR] [--retrain]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "nn/trainer.h"

namespace gralmatch {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::printf("=== Table 3: fine-tuned pairwise matching on test pairs "
              "(scale %.0f%%, seed %llu, %zu epochs) ===\n",
              config.scale, static_cast<unsigned long long>(config.seed),
              config.epochs);
  std::printf(
      "Paper shape targets: near-perfect scores on companies except DITTO "
      "(short) on real companies; DITTO (short) collapses on securities "
      "(tag tokens crowd out identifiers);\n"
      "DistilBERT-15K trades recall for precision at a fraction of the "
      "training time; DITTO (long) strongest overall F1 on synthetic "
      "securities.\n\n");

  FinancialBenchmark realistic = MakeRealistic(config);
  FinancialBenchmark synthetic = MakeSynthetic(config);
  Dataset wdc = MakeWdc(config);
  auto tasks = MakeTasks(config, &realistic, &synthetic, &wdc);

  TableReport table({"Dataset", "Model", "Precision", "Recall", "F1 Score",
                     "Training Time", "Cache"});
  for (const auto& task : tasks) {
    TaskPairs pairs = MakePairs(task, config, /*reduced_training=*/false);
    std::fprintf(stderr, "[table3] %s: %zu train / %zu val / %zu test pairs\n",
                 task.name.c_str(), pairs.train.size(), pairs.val.size(),
                 pairs.test.size());
    for (ModelVariant variant : VariantsForTask(task)) {
      TrainedModel model = GetModel(task, variant, config);

      BinaryMetrics metrics;
      for (const auto& lp : pairs.test) {
        bool predicted = model.matcher->IsMatch(task.data->records.at(lp.pair.a),
                                                task.data->records.at(lp.pair.b));
        if (predicted && lp.label == 1) ++metrics.tp;
        else if (predicted && lp.label == 0) ++metrics.fp;
        else if (!predicted && lp.label == 1) ++metrics.fn;
        else ++metrics.tn;
      }
      table.AddRow({task.name, VariantDisplayName(variant),
                    FormatPercent(metrics.Precision()),
                    FormatPercent(metrics.Recall()), FormatPercent(metrics.F1()),
                    Stopwatch::FormatSeconds(model.train_result.train_seconds),
                    model.from_cache ? "cached" : "trained"});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nModels cached in '%s' (bench_table4 reuses them; pass "
              "--retrain to force fresh training).\n",
              config.model_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

#include "bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "blocking/id_overlap.h"
#include "blocking/issuer_match.h"
#include "blocking/token_overlap.h"
#include "common/strings.h"
#include "common/union_find.h"
#include "exec/thread_pool.h"

namespace gralmatch {
namespace bench {

namespace {

std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

size_t Scaled(size_t base, const BenchConfig& config) {
  size_t scaled = static_cast<size_t>(base * config.scale / 100.0);
  return scaled < 20 ? 20 : scaled;
}

}  // namespace

BenchConfig ParseBenchConfig(int argc, char** argv) {
  CliFlags flags = CliFlags::Parse(argc, argv);
  BenchConfig config;
  config.scale = flags.GetDouble("scale", config.scale);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.num_threads = ResolveNumThreads(
      flags.GetInt("num_threads", static_cast<int64_t>(config.num_threads)));
  config.epochs = static_cast<size_t>(flags.GetInt("epochs", 3));
  config.model_dir = flags.GetString("model_dir", config.model_dir);
  config.retrain = flags.Has("retrain");
  config.short_seq = static_cast<size_t>(
      flags.GetInt("short_seq", static_cast<int64_t>(config.short_seq)));
  config.long_seq = static_cast<size_t>(
      flags.GetInt("long_seq", static_cast<int64_t>(config.long_seq)));
  return config;
}

size_t ScaledSyntheticGroups(const BenchConfig& config) {
  return Scaled(1200, config);
}
size_t ScaledRealisticGroups(const BenchConfig& config) {
  return Scaled(300, config);
}
size_t ScaledWdcEntities(const BenchConfig& config) {
  return Scaled(600, config);
}

FinancialBenchmark MakeSynthetic(const BenchConfig& config) {
  SyntheticConfig gen_config;
  gen_config.seed = config.seed;
  gen_config.num_groups = ScaledSyntheticGroups(config);
  return FinancialGenerator(gen_config).Generate();
}

FinancialBenchmark MakeRealistic(const BenchConfig& config) {
  SyntheticConfig gen_config =
      RealisticSubsetConfig(config.seed ^ 0xBEEF, ScaledRealisticGroups(config));
  return FinancialGenerator(gen_config).Generate();
}

Dataset MakeWdc(const BenchConfig& config) {
  WdcConfig gen_config;
  gen_config.seed = config.seed ^ 0xF00D;
  gen_config.num_entities = ScaledWdcEntities(config);
  return WdcProductsGenerator(gen_config).Generate();
}

std::vector<MatchTask> MakeTasks(const BenchConfig& config,
                                 FinancialBenchmark* realistic,
                                 FinancialBenchmark* synthetic, Dataset* wdc) {
  std::vector<MatchTask> tasks;
  Rng split_rng(config.seed ^ 0x5B17);

  auto add = [&](const std::string& name, const Dataset* data,
                 bool is_securities, bool is_wdc) {
    MatchTask task;
    task.name = name;
    task.data = data;
    Rng rng = split_rng.Fork();
    task.split = SplitByGroups(data->truth, &rng);
    task.is_securities = is_securities;
    task.is_wdc = is_wdc;
    tasks.push_back(std::move(task));
  };

  add("Real Companies", &realistic->companies, false, false);
  add("Synthetic Companies", &synthetic->companies, false, false);
  add("Real Securities", &realistic->securities, true, false);
  add("Synthetic Securities", &synthetic->securities, true, false);
  add("WDC Products", wdc, false, true);
  return tasks;
}

TaskPairs MakePairs(const MatchTask& task, const BenchConfig& config,
                    bool reduced_training) {
  TaskPairs out;
  PairSamplingOptions opts;
  opts.seed = config.seed ^ 0x9A1B5;

  opts.max_positives = reduced_training ? 0 : config.max_train_positives;
  out.train = SamplePairs(*task.data, task.split, SplitPart::kTrain, opts);
  opts.max_positives = config.max_val_positives;
  out.val = SamplePairs(*task.data, task.split, SplitPart::kValidation, opts);
  opts.max_positives = config.max_test_positives;
  out.test = SamplePairs(*task.data, task.split, SplitPart::kTest, opts);

  if (reduced_training) {
    // The "-15K" protocol (§5.2.1): keep only easily-labelled pairs, capped.
    Rng rng(config.seed ^ 0x15AB);
    auto filtered = FilterEasyPairs(*task.data, out.train, 0);
    rng.Shuffle(&filtered);
    if (filtered.size() > config.reduced_train_pairs) {
      filtered.resize(config.reduced_train_pairs);
    }
    out.train = std::move(filtered);
    auto val_filtered = FilterEasyPairs(*task.data, out.val, 0);
    rng.Shuffle(&val_filtered);
    if (val_filtered.size() > config.reduced_train_pairs / 2) {
      val_filtered.resize(config.reduced_train_pairs / 2);
    }
    out.val = std::move(val_filtered);
  }
  return out;
}

RecordTable CopySplitRecords(const Dataset& data, const GroupSplit& split,
                             SplitPart part) {
  RecordTable out;
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (split.part(static_cast<RecordId>(i)) == part) {
      out.Add(data.records.at(static_cast<RecordId>(i)));
    }
  }
  return out;
}

std::vector<ModelVariant> VariantsForTask(const MatchTask& task) {
  if (task.is_wdc) {
    return {ModelVariant::kDitto128, ModelVariant::kDitto256,
            ModelVariant::kDistilBert128All};
  }
  if (task.name.rfind("Synthetic", 0) == 0) {
    return AllModelVariants();
  }
  return {ModelVariant::kDitto128, ModelVariant::kDitto256,
          ModelVariant::kDistilBert128All};
}

TrainedModel GetModel(const MatchTask& task, ModelVariant variant,
                      const BenchConfig& config) {
  TrainedModel out;
  TransformerMatcherConfig mconfig = MakeVariantConfig(
      variant, config.seed ^ 0x7777, config.short_seq, config.long_seq);
  mconfig.trainer.epochs = config.epochs;
  mconfig.trainer.lr = 1.5e-3f;
  mconfig.trainer.shuffle_seed = config.seed ^ 0xD00D;

  std::string dir = config.model_dir + "/" + Slug(task.name) + "/" +
                    Slug(VariantDisplayName(variant));

  if (!config.retrain) {
    auto cached = std::make_unique<TransformerMatcher>(mconfig);
    if (cached->Load(dir).ok()) {
      out.matcher = std::move(cached);
      out.from_cache = true;
      // Restore the recorded training time for table display.
      std::ifstream meta(dir + "/train_meta.txt");
      if (meta) {
        meta >> out.train_result.train_seconds >> out.train_result.best_epoch;
      }
      return out;
    }
  }

  out.matcher = std::make_unique<TransformerMatcher>(mconfig);
  RecordTable train_records =
      CopySplitRecords(*task.data, task.split, SplitPart::kTrain);
  out.matcher->BuildVocab(train_records);

  TaskPairs pairs =
      MakePairs(task, config, VariantUsesReducedTraining(variant));
  out.train_result =
      out.matcher->FineTune(task.data->records, pairs.train, pairs.val);

  Status saved = out.matcher->Save(dir);
  if (saved.ok()) {
    std::ofstream meta(dir + "/train_meta.txt");
    meta << out.train_result.train_seconds << " "
         << out.train_result.best_epoch << "\n";
  } else {
    std::fprintf(stderr, "warning: could not cache model: %s\n",
                 saved.ToString().c_str());
  }
  return out;
}

namespace {

/// Heuristic company grouping over the full companies table: connected
/// components of the ID-overlap candidate graph. This stands in for the
/// "previous matching" of the issuers that the Issuer Match blocking
/// requires (§5.3.1).
std::vector<int64_t> HeuristicCompanyGroups(const Dataset& companies,
                                            const RecordTable& securities) {
  CandidateSet candidates;
  IdOverlapBlocker blocker(&securities);
  blocker.AddCandidates(companies, &candidates);
  UnionFind uf(companies.records.size());
  for (const auto& cand : candidates.ToVector()) {
    uf.Union(static_cast<size_t>(cand.pair.a), static_cast<size_t>(cand.pair.b));
  }
  std::vector<int64_t> groups(companies.records.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    groups[i] = static_cast<int64_t>(uf.Find(i));
  }
  return groups;
}

}  // namespace

ExperimentView MakeView(const MatchTask& task,
                        const FinancialBenchmark* fin_benchmark,
                        const BenchConfig& config) {
  (void)config;
  ExperimentView view;
  const bool is_real = task.name.rfind("Real", 0) == 0;
  view.gamma = is_real ? 40 : 25;
  view.mu = is_real ? 8 : 5;

  // Test-split sub-dataset with remapped record ids.
  std::unordered_map<RecordId, RecordId> new_id;
  view.sub.name = task.name + " (test split)";
  for (size_t i = 0; i < task.data->records.size(); ++i) {
    if (task.split.part(static_cast<RecordId>(i)) != SplitPart::kTest) continue;
    RecordId id = view.sub.records.Add(task.data->records.at(static_cast<RecordId>(i)));
    view.sub.truth.Assign(id, task.data->truth.entity_of(static_cast<RecordId>(i)));
    new_id[static_cast<RecordId>(i)] = id;
  }

  if (task.is_wdc) {
    view.blockings = "Token Overlap";
    // Product titles share brand/family tokens across many offers, so the
    // document-frequency cap must be looser than for company names.
    TokenOverlapBlocker::Options topts;
    topts.top_n = 10;
    topts.min_overlap = 2;
    topts.max_token_df = 0.30;
    topts.num_threads = config.num_threads;
    TokenOverlapBlocker token_blocker(topts);
    token_blocker.AddCandidates(view.sub, &view.candidates);
    return view;
  }

  if (!task.is_securities) {
    // Companies: ID Overlap (joined through issued securities) + Token
    // Overlap; Pre-Cleanup active (paper §4.2.1).
    view.blockings = "ID Overlap, Token Overlap";
    view.pre_cleanup_threshold = 50;
    for (size_t i = 0; i < fin_benchmark->securities.records.size(); ++i) {
      const Record& sec =
          fin_benchmark->securities.records.at(static_cast<RecordId>(i));
      std::string_view issuer = sec.Get("issuer_ref");
      if (issuer.empty()) continue;
      RecordId orig =
          static_cast<RecordId>(std::atoi(std::string(issuer).c_str()));
      auto it = new_id.find(orig);
      if (it == new_id.end()) continue;
      Record copy = sec;
      copy.Set("issuer_ref", std::to_string(it->second));
      view.sub_securities.Add(std::move(copy));
    }
    IdOverlapBlocker::Options id_opts;
    id_opts.num_threads = config.num_threads;
    IdOverlapBlocker id_blocker(&view.sub_securities, id_opts);
    id_blocker.AddCandidates(view.sub, &view.candidates);
    // top-n tuned to the paper's candidate density (~6.5 pairs per record
    // on synthetic companies, Table 2).
    TokenOverlapBlocker::Options topts;
    topts.top_n = 8;
    topts.min_overlap = 2;
    topts.max_token_df = 0.08;
    topts.num_threads = config.num_threads;
    TokenOverlapBlocker token_blocker(topts);
    token_blocker.AddCandidates(view.sub, &view.candidates);
    return view;
  }

  // Securities: ID Overlap + Issuer Match.
  view.blockings = "ID Overlap, Issuer Match";
  IdOverlapBlocker::Options id_opts;
  id_opts.num_threads = config.num_threads;
  IdOverlapBlocker id_blocker(id_opts);
  id_blocker.AddCandidates(view.sub, &view.candidates);
  view.company_group_full = HeuristicCompanyGroups(
      fin_benchmark->companies, fin_benchmark->securities.records);
  IssuerMatchBlocker issuer_blocker(&view.company_group_full);
  issuer_blocker.AddCandidates(view.sub, &view.candidates);
  return view;
}

}  // namespace bench
}  // namespace gralmatch

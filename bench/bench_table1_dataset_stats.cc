// Regenerates Table 1 of the paper: general statistics of the real
// (simulated; see DESIGN.md) and synthetic companies & securities datasets.
//
// Usage: bench_table1_dataset_stats [--scale P] [--seed S]

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "eval/report.h"

namespace gralmatch {
namespace bench {
namespace {

struct DatasetStats {
  size_t sources = 0;
  size_t entities = 0;
  size_t records = 0;
  uint64_t matches = 0;
  double matches_per_entity = 0.0;
  double desc_fraction = 0.0;
};

DatasetStats ComputeStats(const Dataset& data) {
  DatasetStats stats;
  stats.sources = data.records.NumSources();
  stats.entities = data.truth.NumEntities();
  stats.records = data.records.size();
  stats.matches = data.truth.NumTrueMatches();
  stats.matches_per_entity =
      stats.entities == 0
          ? 0.0
          : static_cast<double>(stats.matches) / static_cast<double>(stats.entities);
  size_t with_desc = 0;
  for (const auto& rec : data.records.records()) {
    with_desc += rec.Has("short_description");
  }
  stats.desc_fraction = stats.records == 0
                            ? 0.0
                            : static_cast<double>(with_desc) /
                                  static_cast<double>(stats.records);
  return stats;
}

std::string Count(size_t v) { return WithThousandsSep(static_cast<long long>(v)); }

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::printf("=== Table 1: dataset statistics (scale %.0f%%, seed %llu) ===\n",
              config.scale, static_cast<unsigned long long>(config.seed));
  std::printf(
      "Paper reference (at 200K groups): synthetic companies 868K records / "
      "1.5M matches / 7.5 matches-per-entity / 32%% descriptions;\n"
      "synthetic securities ~984K records / ~1.5M matches / ~5.4 per entity. "
      "This run is a %.0f%%-scale regeneration; ratios are the comparison "
      "target, absolute counts scale with --scale.\n\n",
      config.scale);

  FinancialBenchmark realistic = MakeRealistic(config);
  FinancialBenchmark synthetic = MakeSynthetic(config);

  struct Row {
    const char* label;
    const Dataset* data;
  };
  const Row rows[] = {
      {"Real Companies (sim)", &realistic.companies},
      {"Synthetic Companies", &synthetic.companies},
      {"Real Securities (sim)", &realistic.securities},
      {"Synthetic Securities", &synthetic.securities},
  };

  TableReport table({"Dataset", "# Sources", "# Entities", "# Records",
                     "# Matches", "Avg Matches/Entity", "% w/ Descriptions"});
  for (const Row& row : rows) {
    DatasetStats stats = ComputeStats(*row.data);
    table.AddRow({row.label, Count(stats.sources), Count(stats.entities),
                  Count(stats.records), Count(stats.matches),
                  StrFormat("%.2f", stats.matches_per_entity),
                  row.data->has_issuers()
                      ? "-"
                      : StrFormat("%.0f%%", stats.desc_fraction * 100.0)});
  }
  table.Print();

  std::printf(
      "\nShape checks vs paper Table 1:\n"
      "  companies records/entity ratio ~4.3, matches/entity ~7.5;\n"
      "  securities matches/entity below companies' (smaller groups);\n"
      "  ~1/3 of company records carry a text description.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

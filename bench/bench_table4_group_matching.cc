// Regenerates Table 4 of the paper: end-to-end entity group matching with
// blocking and GraLMatch. For every dataset/model pair it reports the
// pairwise scores on blocked candidates (Stage 1), the Pre Graph Cleanup
// scores including implied transitive matches (Stage 2), the Post Graph
// Cleanup scores (Stage 3), Cluster Purity and inference time. The
// sensitivity rows of §5.2.1 (-MEC, 1/2 gamma, -BC) are emitted for the
// synthetic companies dataset, as in the paper.
//
// Usage: bench_table4_group_matching [--scale P] [--seed S]
//        [--num_threads N] [--model_dir DIR] [--retrain] [--no-sensitivity]
//
// --num_threads N fans blocking, pairwise scoring and the per-component
// graph cleanup out over N workers; the table values are identical at any N
// (only the Inference column's wall-clock changes). When comparing timings
// across runs or artifacts, always compare equal thread counts.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace gralmatch {
namespace bench {
namespace {

struct StageScores {
  PrfMetrics pairwise;
  PrfMetrics pre;
  double pre_purity = 0.0;
  PrfMetrics post;
  double post_purity = 0.0;
  double inference_seconds = 0.0;
  double cleanup_seconds = 0.0;
};

StageScores Evaluate(const ExperimentView& view, const PipelineResult& result) {
  StageScores s;
  s.pairwise = PairwisePrf(result.predicted_pairs, view.sub.truth);
  s.pre = GroupPrf(result.pre_cleanup_components, view.sub.truth);
  s.pre_purity = ClusterPurity(result.pre_cleanup_components, view.sub.truth);
  s.post = GroupPrf(result.groups, view.sub.truth);
  s.post_purity = ClusterPurity(result.groups, view.sub.truth);
  s.inference_seconds = result.inference_seconds;
  s.cleanup_seconds = result.cleanup_stats.seconds;
  return s;
}

void AddRow(TableReport* table, const std::string& dataset,
            const std::string& model, const StageScores& s) {
  table->AddRow({dataset, model, FormatPercent(s.pairwise.Precision()),
                 FormatPercent(s.pairwise.Recall()),
                 FormatPercent(s.pairwise.F1()), FormatPercent(s.pre.Precision()),
                 FormatPercent(s.pre.Recall()), FormatPercent(s.pre.F1()),
                 FormatScore(s.pre_purity), FormatPercent(s.post.Precision()),
                 FormatPercent(s.post.Recall()), FormatPercent(s.post.F1()),
                 FormatScore(s.post_purity),
                 Stopwatch::FormatSeconds(s.inference_seconds)});
}

PipelineConfig MakePipelineConfig(const ExperimentView& view,
                                  const BenchConfig& bench_config) {
  PipelineConfig config;
  config.cleanup.gamma = view.gamma;
  config.cleanup.mu = view.mu;
  config.pre_cleanup_threshold = view.pre_cleanup_threshold;
  config.num_threads = bench_config.num_threads;
  return config;
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  CliFlags flags = CliFlags::Parse(argc, argv);
  bool sensitivity = !flags.Has("no-sensitivity");

  std::printf("=== Table 4: entity group matching with blocking and GraLMatch "
              "(scale %.0f%%, seed %llu, threads %zu) ===\n",
              config.scale, static_cast<unsigned long long>(config.seed),
              config.num_threads);
  std::printf(
      "Paper shape targets: Pre-Cleanup precision collapses on companies "
      "datasets (false positives glue giant components; purity ~0);\n"
      "Post-Cleanup restores precision at a recall cost; highest-pairwise-"
      "precision model wins Post-Cleanup F1 on synthetic companies "
      "(DistilBERT-15K > -ALL);\n"
      "securities degrade mildly pre-cleanup (smaller components); WDC "
      "post-cleanup is hurt by the mu=#sources assumption.\n\n");

  FinancialBenchmark realistic = MakeRealistic(config);
  FinancialBenchmark synthetic = MakeSynthetic(config);
  Dataset wdc = MakeWdc(config);
  auto tasks = MakeTasks(config, &realistic, &synthetic, &wdc);

  TableReport table({"Dataset", "Model", "PW-P", "PW-R", "PW-F1", "Pre-P",
                     "Pre-R", "Pre-F1", "Pre-ClPur", "Post-P", "Post-R",
                     "Post-F1", "Post-ClPur", "Inference"});

  for (const auto& task : tasks) {
    const FinancialBenchmark* fin =
        task.is_wdc ? nullptr
                    : (task.name.rfind("Real", 0) == 0 ? &realistic : &synthetic);
    ExperimentView view = MakeView(task, fin, config);
    auto candidates = view.candidates.ToVector();
    std::fprintf(stderr, "[table4] %s: %zu records, %zu candidate pairs\n",
                 task.name.c_str(), view.sub.records.size(), candidates.size());

    PipelineConfig pipe_config = MakePipelineConfig(view, config);
    for (ModelVariant variant : VariantsForTask(task)) {
      TrainedModel model = GetModel(task, variant, config);
      EntityGroupPipeline pipeline(pipe_config);
      PipelineResult result =
          pipeline.Run(view.sub, candidates, *model.matcher);
      AddRow(&table, task.name, VariantDisplayName(variant),
             Evaluate(view, result));

      // Sensitivity analysis (§5.2.1) on the synthetic companies dataset:
      // rerun only the cleanup on the same positive predictions.
      if (sensitivity && task.name == "Synthetic Companies" &&
          variant == ModelVariant::kDistilBert128All) {
        std::vector<Candidate> positives;
        for (const auto& pair : result.predicted_pairs) {
          positives.push_back({pair, view.candidates.ProvenanceOf(pair)});
        }
        struct SensitivityRow {
          const char* suffix;
          size_t gamma;
        };
        const SensitivityRow rows[] = {
            {"-MEC", view.mu},                       // gamma = mu
            {" (1/2 gamma)", view.gamma / 2},        // halved threshold
            {"-BC", GraphCleanupConfig::kNoMinCut},  // betweenness only
        };
        for (const auto& row : rows) {
          PipelineConfig sconfig = pipe_config;
          sconfig.cleanup.gamma = row.gamma;
          EntityGroupPipeline spipeline(sconfig);
          PipelineResult sresult = spipeline.RunOnPredictions(
              view.sub.records.size(), positives);
          StageScores scores = Evaluate(view, sresult);
          scores.inference_seconds = result.inference_seconds;
          AddRow(&table, task.name,
                 VariantDisplayName(variant) + std::string(row.suffix), scores);
        }
      }
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nNote: pairwise (PW) columns score the blocked predictions only and "
      "are not comparable to the Pre/Post group columns, which include all "
      "implied transitive matches (paper §5.3.2).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

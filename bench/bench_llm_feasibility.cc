// Regenerates the §5.2 feasibility argument: a LlaMa2-class LLM at ~7 s per
// candidate pair cannot run the pairwise matching step at dataset scale
// (90+ days on the paper's 1.14M synthetic-companies candidates), while the
// small fine-tuned transformer evaluates the same step in minutes. Measures
// the actual throughput of this repo's transformer matcher and projects
// both to the paper-scale candidate counts.
//
// Usage: bench_llm_feasibility [--scale P] [--seed S]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "eval/report.h"
#include "matching/baselines.h"

namespace gralmatch {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::printf("=== LLM feasibility (paper §5.2): pairwise step wall-clock "
              "projections ===\n\n");

  // Measure the small transformer's per-pair latency on real records.
  FinancialBenchmark synthetic = MakeSynthetic(config);
  TransformerMatcherConfig mconfig =
      MakeVariantConfig(ModelVariant::kDistilBert128All, config.seed,
                        config.short_seq, config.long_seq);
  TransformerMatcher matcher(mconfig);
  matcher.BuildVocab(synthetic.companies.records);

  const size_t probe_pairs = 2000;
  Stopwatch watch;
  size_t scored = 0;
  for (size_t i = 0; i + 1 < synthetic.companies.records.size() && scored < probe_pairs;
       i += 2, ++scored) {
    matcher.MatchProbability(
        synthetic.companies.records.at(static_cast<RecordId>(i)),
        synthetic.companies.records.at(static_cast<RecordId>(i + 1)));
  }
  double transformer_sec_per_pair = watch.ElapsedSeconds() / double(scored);

  SlowLlmMatcher llm(std::make_unique<HeuristicIdMatcher>(),
                     /*seconds_per_pair=*/7.0);

  struct Workload {
    const char* label;
    uint64_t pairs;
  };
  const Workload workloads[] = {
      {"Real Companies (51K pairs)", 51000},
      {"Real Securities (41K pairs)", 41000},
      {"Synthetic Securities (826K pairs)", 826000},
      {"Synthetic Companies (1.14M pairs)", 1140000},
  };

  TableReport table({"Workload", "LLM @7s/pair", "Transformer (measured)",
                     "Speedup"});
  for (const Workload& w : workloads) {
    double llm_seconds = llm.ProjectedSeconds(w.pairs);
    double tf_seconds = transformer_sec_per_pair * double(w.pairs);
    table.AddRow({w.label,
                  StrFormat("%.1f days", llm_seconds / 86400.0),
                  Stopwatch::FormatSeconds(tf_seconds),
                  StrFormat("%.0fx", llm_seconds / tf_seconds)});
  }
  table.Print();

  std::printf("\nMeasured transformer latency: %.2f ms/pair (single core). "
              "Paper conclusion reproduced: the LLM needs 90+ days for the "
              "synthetic companies pairwise step and is ruled out.\n",
              transformer_sec_per_pair * 1e3);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gralmatch

int main(int argc, char** argv) { return gralmatch::bench::Main(argc, argv); }

#ifndef GRALMATCH_CORE_CLEANUP_H_
#define GRALMATCH_CORE_CLEANUP_H_

/// \file cleanup.h
/// The GraLMatch Graph Cleanup (Algorithm 1 of the paper) plus the
/// Pre-Cleanup of §4.2.1. Both operate on the match graph in place by
/// tombstoning edges; the surviving connected components are the entity
/// groups.

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gralmatch {

class ThreadPool;

/// Thresholds of Algorithm 1.
struct GraphCleanupConfig {
  /// Components larger than gamma are split with Minimum Edge Cut.
  /// Set to kNoMinCut to skip the min-cut phase (the "-BC" variant).
  size_t gamma = 25;
  /// Components larger than mu lose their max-betweenness edge, one at a
  /// time. The paper sets mu to the number of data sources. Setting
  /// gamma == mu reproduces the "-MEC" variant (betweenness phase is a
  /// no-op because phase 1 already reached mu).
  size_t mu = 5;

  static constexpr size_t kNoMinCut = std::numeric_limits<size_t>::max();
};

/// Bookkeeping of a cleanup run.
struct CleanupStats {
  size_t pre_cleanup_edges_removed = 0;
  size_t min_cut_calls = 0;
  size_t min_cut_edges_removed = 0;
  size_t betweenness_calls = 0;
  size_t betweenness_edges_removed = 0;
  double seconds = 0.0;
};

/// Pre Graph Cleanup (§4.2.1): inside every connected component larger than
/// `component_threshold`, remove edges that were obtained *only* through the
/// Token Overlap blocking (provenance exactly kBlockerTokenOverlap — an edge
/// also found by an identifier overlap is kept). `edge_provenance[e]` gives
/// the blocker bits of edge e.
void PreCleanup(Graph* graph, const std::vector<uint32_t>& edge_provenance,
                size_t component_threshold, CleanupStats* stats);

/// \brief Algorithm 1: split oversized components via Minimum Edge Cut, then
/// trim remaining oversized components via Edge Betweenness Centrality.
class GraLMatchCleanup {
 public:
  GraLMatchCleanup() : config_() {}
  explicit GraLMatchCleanup(GraphCleanupConfig config) : config_(config) {}

  /// Run the cleanup, tombstoning removed edges in `graph`. Returns the
  /// connected components (entity groups) of the cleaned graph, singletons
  /// included.
  ///
  /// With a `pool` of more than one worker, oversized components are cleaned
  /// in parallel (they are edge-disjoint and independent); the result —
  /// groups, removed edge set, and all CleanupStats counters except the
  /// wall-clock `seconds` — is bitwise-identical to the serial run.
  std::vector<std::vector<NodeId>> Run(Graph* graph,
                                       CleanupStats* stats = nullptr,
                                       ThreadPool* pool = nullptr) const;

  const GraphCleanupConfig& config() const { return config_; }

 private:
  GraphCleanupConfig config_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_CORE_CLEANUP_H_

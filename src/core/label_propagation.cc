#include "core/label_propagation.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace gralmatch {

std::vector<std::vector<NodeId>> LabelPropagationGroups(
    const Graph& graph, const LabelPropagationOptions& options) {
  const size_t n = graph.num_nodes();
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), 0);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);

  std::vector<std::pair<NodeId, EdgeId>> neighbors;
  std::unordered_map<NodeId, double> weight_of_label;
  for (size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    rng.Shuffle(&order);
    bool changed = false;
    for (size_t u : order) {
      graph.AliveNeighbors(static_cast<NodeId>(u), &neighbors);
      if (neighbors.empty()) continue;
      weight_of_label.clear();
      for (const auto& [v, e] : neighbors) {
        weight_of_label[label[static_cast<size_t>(v)]] += 1.0;
      }
      NodeId best = label[u];
      double best_weight = weight_of_label.count(best)
                               ? weight_of_label[best]
                               : 0.0;
      for (const auto& [lab, w] : weight_of_label) {
        if (w > best_weight || (w == best_weight && lab < best)) {
          best = lab;
          best_weight = w;
        }
      }
      if (best != label[u]) {
        label[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::unordered_map<NodeId, std::vector<NodeId>> by_label;
  for (size_t u = 0; u < n; ++u) {
    by_label[label[u]].push_back(static_cast<NodeId>(u));
  }
  std::vector<std::vector<NodeId>> groups;
  groups.reserve(by_label.size());
  for (auto& [lab, members] : by_label) {
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });
  return groups;
}

}  // namespace gralmatch

#include "core/score_batching.h"

#include <algorithm>
#include <cassert>

#include "exec/parallel.h"

namespace gralmatch {

void ScorePairsBatched(ThreadPool* pool, const RecordTable& records,
                       const PairwiseMatcher& matcher,
                       Span<const RecordPair> pairs, size_t batch_size,
                       Span<double> out) {
  assert(out.size() == pairs.size());
  const size_t n = pairs.size();
  if (n == 0) return;
  const size_t batch = std::max<size_t>(batch_size, 1);
  const size_t num_chunks = (n + batch - 1) / batch;
  ParallelFor(pool, 0, num_chunks, [&](size_t c) {
    const size_t begin = c * batch;
    const size_t count = std::min(batch, n - begin);
    matcher.ScoreBatch(records, pairs.subspan(begin, count),
                       out.subspan(begin, count));
  });
}

}  // namespace gralmatch

#ifndef GRALMATCH_CORE_SCORE_BATCHING_H_
#define GRALMATCH_CORE_SCORE_BATCHING_H_

/// \file score_batching.h
/// The one chunked batched-scoring routine every pipeline scoring site
/// (EntityGroupPipeline::Run, IncrementalPipeline ingest, ShardedPipeline)
/// goes through, so batching policy lives in one place. See
/// docs/matchers.md "Batched inference".

#include <cstddef>

#include "common/span.h"
#include "data/ground_truth.h"
#include "data/record.h"
#include "matching/cascade_matcher.h"
#include "matching/matcher.h"
#include "obs/metrics.h"

namespace gralmatch {

class ThreadPool;

/// Score `pairs` against `records` into `out` (out.size() == pairs.size())
/// by slicing the pair list into contiguous chunks of at most `batch_size`
/// pairs, calling matcher.ScoreBatch once per chunk, and fanning the chunks
/// out across `pool` (serial when null).
///
/// Deterministic by construction: chunk boundaries depend only on
/// pairs.size() and batch_size, each chunk writes only its own out-slice,
/// and the ScoreBatch contract makes every chunking bitwise-identical to
/// per-pair scoring — so results are independent of both batch_size and
/// thread count. A batch_size of 0 is treated as 1. Exceptions from the
/// matcher propagate deterministically (lowest failing chunk first), which
/// the pipelines rely on for their poisoning semantics.
void ScorePairsBatched(ThreadPool* pool, const RecordTable& records,
                       const PairwiseMatcher& matcher,
                       Span<const RecordPair> pairs, size_t batch_size,
                       Span<double> out);

/// \brief RAII capture of CascadeMatcher gate/escalate activity across one
/// scoring region: records the stats() delta into the two obs counters on
/// destruction. Inert when either counter is null or the matcher is not a
/// CascadeMatcher (no dynamic_cast is even attempted in the null case), so
/// uninstrumented scoring pays one branch.
class CascadeStatsScope {
 public:
  CascadeStatsScope(const PairwiseMatcher& matcher,
                    obs::Counter* gate_resolved, obs::Counter* escalated)
      : gate_resolved_(gate_resolved), escalated_(escalated) {
    if (gate_resolved_ == nullptr && escalated_ == nullptr) return;
    cascade_ = dynamic_cast<const CascadeMatcher*>(&matcher);
    if (cascade_ != nullptr) before_ = cascade_->stats();
  }
  ~CascadeStatsScope() {
    if (cascade_ == nullptr) return;
    const CascadeMatcher::Stats after = cascade_->stats();
    if (gate_resolved_ != nullptr) {
      gate_resolved_->Increment(after.gate_resolved - before_.gate_resolved);
    }
    if (escalated_ != nullptr) {
      escalated_->Increment(after.escalated - before_.escalated);
    }
  }

  CascadeStatsScope(const CascadeStatsScope&) = delete;
  CascadeStatsScope& operator=(const CascadeStatsScope&) = delete;

 private:
  const CascadeMatcher* cascade_ = nullptr;
  obs::Counter* const gate_resolved_;
  obs::Counter* const escalated_;
  CascadeMatcher::Stats before_{};
};

}  // namespace gralmatch

#endif  // GRALMATCH_CORE_SCORE_BATCHING_H_

#ifndef GRALMATCH_CORE_EMBEDDEDNESS_H_
#define GRALMATCH_CORE_EMBEDDEDNESS_H_

/// \file embeddedness.h
/// Size-agnostic graph cleanup via edge embeddedness: an edge whose
/// endpoints share (almost) no common neighbors is topologically a bridge
/// between two groups — exactly the shape of a false positive pairwise
/// prediction — while edges inside a true entity group are backed by many
/// common neighbors, regardless of the group's size. This is the second
/// heterogeneous-group-size cleanup (besides label propagation) addressing
/// the paper's WDC limitation (§6.2.3).

#include <vector>

#include "graph/graph.h"

namespace gralmatch {

struct EmbeddednessOptions {
  /// Remove an edge when common_neighbors / (min_degree - 1) falls below
  /// this threshold. Edges incident to a degree-1 endpoint are always kept
  /// (pairs cannot have common neighbors).
  double min_strength = 0.34;
};

/// Per-edge embeddedness strength in [0, 1] for every alive edge.
/// strength(u, v) = |N(u) ∩ N(v)| / (min(deg(u), deg(v)) - 1), defined as
/// 1 when min degree is 1.
double EdgeEmbeddedness(const Graph& graph, EdgeId edge);

/// Tombstone all alive edges below the strength threshold; returns the
/// number of removed edges.
size_t RemoveWeaklyEmbeddedEdges(Graph* graph,
                                 const EmbeddednessOptions& options = {});

/// Convenience: filter then return the connected components.
std::vector<std::vector<NodeId>> EmbeddednessGroups(
    Graph* graph, const EmbeddednessOptions& options = {});

}  // namespace gralmatch

#endif  // GRALMATCH_CORE_EMBEDDEDNESS_H_

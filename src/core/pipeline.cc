#include "core/pipeline.h"

#include <memory>

#include "common/stopwatch.h"
#include "core/score_batching.h"
#include "exec/parallel.h"
#include "obs/metrics.h"

namespace gralmatch {

std::vector<int64_t> PipelineResult::GroupOfRecord(size_t num_records) const {
  std::vector<int64_t> out(num_records, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId u : groups[g]) {
      if (static_cast<size_t>(u) < num_records) {
        out[static_cast<size_t>(u)] = static_cast<int64_t>(g);
      }
    }
  }
  return out;
}

PipelineResult EntityGroupPipeline::Run(const Dataset& dataset,
                                        const std::vector<Candidate>& candidates,
                                        const PairwiseMatcher& matcher) const {
  std::unique_ptr<ThreadPool> pool = MaybeMakePool(config_.num_threads);

  // Pairwise prediction, batched: contiguous score_batch_size chunks of the
  // candidate list each make one ScoreBatch call, and the chunks fan out
  // across the pool. The stopwatch wraps the whole scoring region (dispatch
  // to join), not the per-batch calls, so inference_seconds is the stage's
  // wall-clock at any thread count. Each chunk writes only its own score
  // slice, keeping the positive set order-identical to serial — and the
  // ScoreBatch contract keeps it bitwise-identical to per-pair scoring.
  const obs::PipelineMetrics metrics =
      obs::PipelineMetrics::Create(config_.metrics);
  Stopwatch watch;
  std::vector<RecordPair> pairs;
  pairs.reserve(candidates.size());
  for (const Candidate& cand : candidates) pairs.push_back(cand.pair);
  std::vector<double> scores(candidates.size(), 0.0);
  {
    CascadeStatsScope cascade_scope(matcher, metrics.cascade_gate_resolved,
                                    metrics.cascade_escalated);
    ScorePairsBatched(pool.get(), dataset.records, matcher,
                      Span<const RecordPair>(pairs.data(), pairs.size()),
                      config_.score_batch_size,
                      Span<double>(scores.data(), scores.size()));
  }
  const double inference_seconds = watch.ElapsedSeconds();
  if (metrics.scoring_seconds != nullptr) {
    metrics.scoring_seconds->Observe(inference_seconds);
  }
  if (metrics.pairs_scored != nullptr) {
    metrics.pairs_scored->Increment(candidates.size());
  }

  std::vector<Candidate> positives;
  positives.reserve(candidates.size() / 4 + 1);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (scores[i] >= config_.match_threshold) positives.push_back(candidates[i]);
  }

  PipelineResult result =
      RunOnPredictionsImpl(dataset.records.size(), positives, pool.get());
  result.inference_seconds = inference_seconds;
  return result;
}

PipelineResult EntityGroupPipeline::RunOnPredictions(
    size_t num_records, const std::vector<Candidate>& positives) const {
  std::unique_ptr<ThreadPool> pool = MaybeMakePool(config_.num_threads);
  return RunOnPredictionsImpl(num_records, positives, pool.get());
}

PipelineResult EntityGroupPipeline::RunOnPredictionsImpl(
    size_t num_records, const std::vector<Candidate>& positives,
    ThreadPool* pool) const {
  PipelineResult result;
  Graph graph(num_records);
  std::vector<uint32_t> edge_provenance;
  edge_provenance.reserve(positives.size());
  for (const auto& cand : positives) {
    auto added = graph.AddEdge(cand.pair.a, cand.pair.b);
    if (added.ok()) {
      edge_provenance.push_back(cand.provenance);
      result.predicted_pairs.push_back(cand.pair);
    }
  }

  // Stage 2 snapshot: components implied by the raw predictions.
  result.pre_cleanup_components = graph.ConnectedComponents();

  // Pre Graph Cleanup + Algorithm 1 (components fan out across `pool`).
  PreCleanup(&graph, edge_provenance, config_.pre_cleanup_threshold,
             &result.cleanup_stats);
  GraLMatchCleanup cleanup(config_.cleanup);
  result.groups = cleanup.Run(&graph, &result.cleanup_stats, pool);
  return result;
}

}  // namespace gralmatch

#include "core/pipeline.h"

#include "common/stopwatch.h"

namespace gralmatch {

std::vector<int64_t> PipelineResult::GroupOfRecord(size_t num_records) const {
  std::vector<int64_t> out(num_records, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId u : groups[g]) {
      if (static_cast<size_t>(u) < num_records) {
        out[static_cast<size_t>(u)] = static_cast<int64_t>(g);
      }
    }
  }
  return out;
}

PipelineResult EntityGroupPipeline::Run(const Dataset& dataset,
                                        const std::vector<Candidate>& candidates,
                                        const PairwiseMatcher& matcher) const {
  Stopwatch watch;
  std::vector<Candidate> positives;
  positives.reserve(candidates.size() / 4 + 1);
  for (const auto& cand : candidates) {
    const Record& a = dataset.records.at(cand.pair.a);
    const Record& b = dataset.records.at(cand.pair.b);
    if (matcher.MatchProbability(a, b) >= config_.match_threshold) {
      positives.push_back(cand);
    }
  }
  double inference_seconds = watch.ElapsedSeconds();

  PipelineResult result =
      RunOnPredictions(dataset.records.size(), positives);
  result.inference_seconds = inference_seconds;
  return result;
}

PipelineResult EntityGroupPipeline::RunOnPredictions(
    size_t num_records, const std::vector<Candidate>& positives) const {
  PipelineResult result;
  Graph graph(num_records);
  std::vector<uint32_t> edge_provenance;
  edge_provenance.reserve(positives.size());
  for (const auto& cand : positives) {
    auto added = graph.AddEdge(cand.pair.a, cand.pair.b);
    if (added.ok()) {
      edge_provenance.push_back(cand.provenance);
      result.predicted_pairs.push_back(cand.pair);
    }
  }

  // Stage 2 snapshot: components implied by the raw predictions.
  result.pre_cleanup_components = graph.ConnectedComponents();

  // Pre Graph Cleanup + Algorithm 1.
  PreCleanup(&graph, edge_provenance, config_.pre_cleanup_threshold,
             &result.cleanup_stats);
  GraLMatchCleanup cleanup(config_.cleanup);
  result.groups = cleanup.Run(&graph, &result.cleanup_stats);
  return result;
}

}  // namespace gralmatch

#ifndef GRALMATCH_CORE_PIPELINE_H_
#define GRALMATCH_CORE_PIPELINE_H_

/// \file pipeline.h
/// The end-to-end entity group matching pipeline of Figure 1: blocking
/// candidates -> pairwise prediction -> Pre Graph Cleanup -> GraLMatch
/// Graph Cleanup -> entity groups, with snapshots of all three evaluation
/// stages of §5.3.2.

#include <memory>
#include <vector>

#include "blocking/blocker.h"
#include "core/cleanup.h"
#include "data/dataset.h"
#include "matching/matcher.h"

namespace gralmatch {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Pipeline parameters.
struct PipelineConfig {
  GraphCleanupConfig cleanup;
  /// Probability threshold for a positive pairwise prediction.
  double match_threshold = 0.5;
  /// Pre-Cleanup component-size threshold (paper: 50 for the company
  /// datasets, 0 disables the step).
  size_t pre_cleanup_threshold = 0;
  /// Worker threads for candidate scoring and per-component cleanup.
  /// 1 (the default) runs fully serial; any N > 1 produces bitwise-identical
  /// PipelineResult groups, pairs, and cleanup counters (only the wall-clock
  /// fields vary). The matcher's MatchProbability must be const-thread-safe,
  /// which holds for all matchers in this repo.
  size_t num_threads = 1;
  /// Maximum pairs per PairwiseMatcher::ScoreBatch call during candidate
  /// scoring. Larger batches amortize per-call costs (the transformer runs
  /// one packed forward pass per batch); the ScoreBatch contract guarantees
  /// any value — including 1 — produces bitwise-identical results, so this
  /// is purely a throughput knob. 0 behaves like 1.
  size_t score_batch_size = 64;
  /// Optional observability sink (obs/metrics.h). Runtime-only and inert:
  /// the pointer is never serialized (checkpoint configs enumerate their
  /// fields explicitly), never compared, and never influences any output —
  /// null (the default) skips all recording. Restored pipelines start with
  /// metrics unset; re-wire after load if scraping should continue.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Snapshots of the three evaluation stages.
struct PipelineResult {
  /// Stage 1: positively predicted candidate pairs.
  std::vector<RecordPair> predicted_pairs;
  /// Stage 2: connected components implied by the raw predictions (their
  /// complete graphs are the Pre Graph Cleanup match set).
  std::vector<std::vector<NodeId>> pre_cleanup_components;
  /// Stage 3: entity groups after the GraLMatch Graph Cleanup.
  std::vector<std::vector<NodeId>> groups;

  CleanupStats cleanup_stats;
  /// Wall-clock of the whole pairwise prediction stage, measured from
  /// dispatch to join around the (possibly parallel) scoring region — never
  /// inside it — so it stays meaningful under concurrency.
  double inference_seconds = 0.0;

  /// Group id per record (singletons included), derived from `groups`;
  /// useful as the company-matching input of the Issuer Match blocking.
  std::vector<int64_t> GroupOfRecord(size_t num_records) const;
};

/// \brief End-to-end entity group matcher.
class EntityGroupPipeline {
 public:
  EntityGroupPipeline() : config_() {}
  explicit EntityGroupPipeline(PipelineConfig config) : config_(config) {}

  /// Score `candidates` with `matcher` and run both cleanup steps.
  PipelineResult Run(const Dataset& dataset,
                     const std::vector<Candidate>& candidates,
                     const PairwiseMatcher& matcher) const;

  /// Variant that takes precomputed positive predictions (with provenance)
  /// instead of scoring candidates; used by benches that share predictions
  /// across cleanup configurations.
  PipelineResult RunOnPredictions(size_t num_records,
                                  const std::vector<Candidate>& positives) const;

  const PipelineConfig& config() const { return config_; }

 private:
  /// Shared implementation; `pool` may be null (serial).
  PipelineResult RunOnPredictionsImpl(size_t num_records,
                                      const std::vector<Candidate>& positives,
                                      ThreadPool* pool) const;

  PipelineConfig config_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_CORE_PIPELINE_H_

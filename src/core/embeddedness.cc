#include "core/embeddedness.h"

#include <algorithm>
#include <unordered_set>

namespace gralmatch {

double EdgeEmbeddedness(const Graph& graph, EdgeId edge) {
  const Graph::Edge& e = graph.edge(edge);
  std::vector<std::pair<NodeId, EdgeId>> nu, nv;
  graph.AliveNeighbors(e.u, &nu);
  graph.AliveNeighbors(e.v, &nv);
  // Distinct neighbors (parallel edges collapse for this purpose).
  std::unordered_set<NodeId> set_u;
  for (const auto& [n, eid] : nu) {
    if (n != e.v) set_u.insert(n);
  }
  size_t deg_u = set_u.size() + 1;  // +1 for v itself
  std::unordered_set<NodeId> set_v;
  for (const auto& [n, eid] : nv) {
    if (n != e.u) set_v.insert(n);
  }
  size_t deg_v = set_v.size() + 1;

  size_t min_deg = std::min(deg_u, deg_v);
  if (min_deg <= 1) return 1.0;

  size_t common = 0;
  for (NodeId n : set_u) common += set_v.count(n);
  if (min_deg - 1 == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(min_deg - 1);
}

size_t RemoveWeaklyEmbeddedEdges(Graph* graph,
                                 const EmbeddednessOptions& options) {
  // Decide on the original topology, then remove, so that removals do not
  // cascade within one pass (deterministic and order-independent).
  std::vector<EdgeId> to_remove;
  for (size_t e = 0; e < graph->num_edges_total(); ++e) {
    EdgeId eid = static_cast<EdgeId>(e);
    if (!graph->edge_alive(eid)) continue;
    if (EdgeEmbeddedness(*graph, eid) < options.min_strength) {
      to_remove.push_back(eid);
    }
  }
  for (EdgeId e : to_remove) graph->RemoveEdge(e);
  return to_remove.size();
}

std::vector<std::vector<NodeId>> EmbeddednessGroups(
    Graph* graph, const EmbeddednessOptions& options) {
  RemoveWeaklyEmbeddedEdges(graph, options);
  return graph->ConnectedComponents();
}

}  // namespace gralmatch

#include "core/cleanup.h"

#include <algorithm>
#include <deque>

#include "blocking/blocker.h"
#include "common/stopwatch.h"
#include "exec/parallel.h"
#include "graph/betweenness.h"
#include "graph/min_cut.h"

namespace gralmatch {

void PreCleanup(Graph* graph, const std::vector<uint32_t>& edge_provenance,
                size_t component_threshold, CleanupStats* stats) {
  if (component_threshold == 0) return;
  for (const auto& comp : graph->ConnectedComponents()) {
    if (comp.size() <= component_threshold) continue;
    for (EdgeId e : graph->EdgesWithin(comp)) {
      uint32_t prov = e < static_cast<EdgeId>(edge_provenance.size())
                          ? edge_provenance[static_cast<size_t>(e)]
                          : 0;
      if (prov == kBlockerTokenOverlap) {
        graph->RemoveEdge(e);
        if (stats) ++stats->pre_cleanup_edges_removed;
      }
    }
  }
}

namespace {

// Phase 1 (lines 3-6): while the largest component exceeds gamma, remove
// a minimum edge cut. Removing the cut is guaranteed to disconnect the
// component, so both sides are re-enqueued. Phase 2 (lines 7-10): while a
// component exceeds mu, remove the single edge with maximum betweenness
// centrality; the component may or may not split. Processing each
// component independently is equivalent to the paper's global
// argmax-by-size loop because components do not interact — the same fact
// the parallel path exploits to fan components out across threads.
void RunPhases(const GraphCleanupConfig& config, Graph* graph,
               std::deque<std::vector<NodeId>> work,
               std::vector<std::vector<NodeId>>* done, CleanupStats* stats) {
  std::deque<std::vector<NodeId>> phase2;
  while (!work.empty()) {
    std::vector<NodeId> comp = std::move(work.front());
    work.pop_front();
    if (comp.size() <= config.gamma ||
        config.gamma == GraphCleanupConfig::kNoMinCut) {
      phase2.push_back(std::move(comp));
      continue;
    }
    auto cut = StoerWagnerMinCut(*graph, comp);
    if (!cut.ok() || cut->cut_edges.empty()) {
      // Degenerate (should not happen on a connected component); give up on
      // this component rather than loop forever.
      phase2.push_back(std::move(comp));
      continue;
    }
    if (stats) {
      ++stats->min_cut_calls;
      stats->min_cut_edges_removed += cut->cut_edges.size();
    }
    for (EdgeId e : cut->cut_edges) graph->RemoveEdge(e);
    // The cut separates `partition` from the rest of the component.
    std::vector<NodeId> rest;
    rest.reserve(comp.size() - cut->partition.size());
    {
      // partition is sorted; comp is sorted.
      size_t pi = 0;
      for (NodeId u : comp) {
        if (pi < cut->partition.size() && cut->partition[pi] == u) {
          ++pi;
        } else {
          rest.push_back(u);
        }
      }
    }
    work.push_back(std::move(cut->partition));
    work.push_back(std::move(rest));
  }

  while (!phase2.empty()) {
    std::vector<NodeId> comp = std::move(phase2.front());
    phase2.pop_front();
    if (comp.size() <= config.mu) {
      done->push_back(std::move(comp));
      continue;
    }
    EdgeId e = MaxBetweennessEdge(*graph, comp);
    if (stats) ++stats->betweenness_calls;
    if (e < 0) {
      done->push_back(std::move(comp));
      continue;
    }
    NodeId u = graph->edge(e).u;
    NodeId v = graph->edge(e).v;
    graph->RemoveEdge(e);
    if (stats) ++stats->betweenness_edges_removed;
    std::vector<NodeId> side_u = graph->ComponentOf(u);
    if (std::binary_search(side_u.begin(), side_u.end(), v)) {
      // Did not split; keep working on the same component.
      phase2.push_back(std::move(side_u));
    } else {
      phase2.push_back(std::move(side_u));
      phase2.push_back(graph->ComponentOf(v));
    }
  }
}

/// Per-component result of the parallel path, merged back serially.
struct ComponentCleanup {
  std::vector<std::vector<NodeId>> groups;  // parent node ids
  std::vector<EdgeId> removed_edges;        // parent edge ids
  CleanupStats stats;
};

/// Run both phases on a compact copy of one component. The copy maps the
/// (sorted) component nodes to 0..k-1 and inserts its alive edges in
/// increasing parent-edge-id order with their original orientation, so every
/// ordering the algorithms tie-break on — node comparisons, adjacency-list
/// order, edge-id order, betweenness accumulation order — is preserved and
/// the local decisions are bitwise-identical to an in-place serial run.
/// Workers never mutate the shared graph; removals are applied at merge.
ComponentCleanup CleanupComponentCopy(const GraphCleanupConfig& config,
                                      const Graph& graph,
                                      const std::vector<NodeId>& comp) {
  Graph local(comp.size());
  // Collect the component's alive edges by walking its own adjacency lists
  // (Graph::EdgesWithin would allocate an O(total-nodes) membership mask per
  // component, turning the parallel path into O(components x graph size)).
  // `comp` is a connected component, so both endpoints are inside it; each
  // alive edge is emitted once, from its smaller endpoint, then sorted into
  // the same increasing-edge-id order EdgesWithin produces.
  std::vector<EdgeId> edges;
  std::vector<std::pair<NodeId, EdgeId>> incident;
  for (NodeId u : comp) {
    graph.AliveNeighbors(u, &incident);
    for (const auto& [nbr, eid] : incident) {
      const Graph::Edge& e = graph.edge(eid);
      if (u == std::min(e.u, e.v)) edges.push_back(eid);
    }
  }
  std::sort(edges.begin(), edges.end());
  std::vector<EdgeId> parent_edge;
  parent_edge.reserve(edges.size());
  auto local_id = [&comp](NodeId u) {
    return static_cast<NodeId>(std::lower_bound(comp.begin(), comp.end(), u) -
                               comp.begin());
  };
  for (EdgeId e : edges) {
    // Discard audited: endpoints come from the parent graph's edge list and
    // are remapped in range, so AddEdge cannot fail; the id is unused.
    (void)local.AddEdge(local_id(graph.edge(e).u), local_id(graph.edge(e).v));
    parent_edge.push_back(e);
  }

  std::vector<NodeId> local_comp(comp.size());
  for (size_t i = 0; i < comp.size(); ++i) {
    local_comp[i] = static_cast<NodeId>(i);
  }
  std::deque<std::vector<NodeId>> work;
  work.push_back(std::move(local_comp));

  ComponentCleanup result;
  std::vector<std::vector<NodeId>> local_done;
  RunPhases(config, &local, std::move(work), &local_done, &result.stats);

  result.groups.reserve(local_done.size());
  for (auto& group : local_done) {
    for (NodeId& u : group) u = comp[static_cast<size_t>(u)];
    result.groups.push_back(std::move(group));
  }
  for (EdgeId e = 0; e < static_cast<EdgeId>(local.num_edges_total()); ++e) {
    if (!local.edge_alive(e)) {
      result.removed_edges.push_back(parent_edge[static_cast<size_t>(e)]);
    }
  }
  return result;
}

}  // namespace

std::vector<std::vector<NodeId>> GraLMatchCleanup::Run(Graph* graph,
                                                       CleanupStats* stats,
                                                       ThreadPool* pool) const {
  Stopwatch watch;
  std::vector<std::vector<NodeId>> done;  // components at or below mu
  std::vector<std::vector<NodeId>> components = graph->ConnectedComponents();

  if (pool == nullptr || pool->num_threads() <= 1) {
    std::deque<std::vector<NodeId>> work;
    for (auto& comp : components) work.push_back(std::move(comp));
    RunPhases(config_, graph, std::move(work), &done, stats);
  } else {
    // Components that can still lose edges in either phase (kNoMinCut is
    // SIZE_MAX, so min() keeps plain `mu` for the "-BC" variant).
    const size_t untouched_max = std::min(config_.mu, config_.gamma);
    std::vector<std::vector<NodeId>> oversized;
    for (auto& comp : components) {
      if (comp.size() <= untouched_max) {
        done.push_back(std::move(comp));
      } else {
        oversized.push_back(std::move(comp));
      }
    }
    std::vector<ComponentCleanup> results(oversized.size());
    ParallelFor(pool, 0, oversized.size(), [&](size_t i) {
      results[i] = CleanupComponentCopy(config_, *graph, oversized[i]);
    });
    for (ComponentCleanup& r : results) {
      for (EdgeId e : r.removed_edges) graph->RemoveEdge(e);
      for (auto& group : r.groups) done.push_back(std::move(group));
      if (stats) {
        stats->min_cut_calls += r.stats.min_cut_calls;
        stats->min_cut_edges_removed += r.stats.min_cut_edges_removed;
        stats->betweenness_calls += r.stats.betweenness_calls;
        stats->betweenness_edges_removed += r.stats.betweenness_edges_removed;
      }
    }
  }

  // Deterministic output order (by smallest node).
  std::sort(done.begin(), done.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });
  if (stats) stats->seconds += watch.ElapsedSeconds();
  return done;
}

}  // namespace gralmatch

#include "core/cleanup.h"

#include <algorithm>
#include <deque>

#include "common/stopwatch.h"
#include "blocking/blocker.h"
#include "graph/betweenness.h"
#include "graph/min_cut.h"

namespace gralmatch {

void PreCleanup(Graph* graph, const std::vector<uint32_t>& edge_provenance,
                size_t component_threshold, CleanupStats* stats) {
  if (component_threshold == 0) return;
  for (const auto& comp : graph->ConnectedComponents()) {
    if (comp.size() <= component_threshold) continue;
    for (EdgeId e : graph->EdgesWithin(comp)) {
      uint32_t prov = e < static_cast<EdgeId>(edge_provenance.size())
                          ? edge_provenance[static_cast<size_t>(e)]
                          : 0;
      if (prov == kBlockerTokenOverlap) {
        graph->RemoveEdge(e);
        if (stats) ++stats->pre_cleanup_edges_removed;
      }
    }
  }
}

std::vector<std::vector<NodeId>> GraLMatchCleanup::Run(
    Graph* graph, CleanupStats* stats) const {
  Stopwatch watch;
  std::vector<std::vector<NodeId>> done;   // components at or below mu
  std::deque<std::vector<NodeId>> work;    // components still to inspect
  for (auto& comp : graph->ConnectedComponents()) {
    work.push_back(std::move(comp));
  }

  // Phase 1 (lines 3-6): while the largest component exceeds gamma, remove
  // a minimum edge cut. Removing the cut is guaranteed to disconnect the
  // component, so both sides are re-enqueued. Phase 2 (lines 7-10): while a
  // component exceeds mu, remove the single edge with maximum betweenness
  // centrality; the component may or may not split. Processing each
  // component independently is equivalent to the paper's global
  // argmax-by-size loop because components do not interact.
  std::deque<std::vector<NodeId>> phase2;
  while (!work.empty()) {
    std::vector<NodeId> comp = std::move(work.front());
    work.pop_front();
    if (comp.size() <= config_.gamma || config_.gamma == GraphCleanupConfig::kNoMinCut) {
      phase2.push_back(std::move(comp));
      continue;
    }
    auto cut = StoerWagnerMinCut(*graph, comp);
    if (!cut.ok() || cut->cut_edges.empty()) {
      // Degenerate (should not happen on a connected component); give up on
      // this component rather than loop forever.
      phase2.push_back(std::move(comp));
      continue;
    }
    if (stats) {
      ++stats->min_cut_calls;
      stats->min_cut_edges_removed += cut->cut_edges.size();
    }
    for (EdgeId e : cut->cut_edges) graph->RemoveEdge(e);
    // The cut separates `partition` from the rest of the component.
    std::vector<NodeId> rest;
    rest.reserve(comp.size() - cut->partition.size());
    std::vector<bool> in_side(0);
    {
      // partition is sorted; comp is sorted.
      size_t pi = 0;
      for (NodeId u : comp) {
        if (pi < cut->partition.size() && cut->partition[pi] == u) {
          ++pi;
        } else {
          rest.push_back(u);
        }
      }
    }
    work.push_back(std::move(cut->partition));
    work.push_back(std::move(rest));
  }

  while (!phase2.empty()) {
    std::vector<NodeId> comp = std::move(phase2.front());
    phase2.pop_front();
    if (comp.size() <= config_.mu) {
      done.push_back(std::move(comp));
      continue;
    }
    EdgeId e = MaxBetweennessEdge(*graph, comp);
    if (stats) ++stats->betweenness_calls;
    if (e < 0) {
      done.push_back(std::move(comp));
      continue;
    }
    NodeId u = graph->edge(e).u;
    NodeId v = graph->edge(e).v;
    graph->RemoveEdge(e);
    if (stats) ++stats->betweenness_edges_removed;
    std::vector<NodeId> side_u = graph->ComponentOf(u);
    if (std::binary_search(side_u.begin(), side_u.end(), v)) {
      // Did not split; keep working on the same component.
      phase2.push_back(std::move(side_u));
    } else {
      phase2.push_back(std::move(side_u));
      phase2.push_back(graph->ComponentOf(v));
    }
  }

  // Deterministic output order (by smallest node).
  std::sort(done.begin(), done.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });
  if (stats) stats->seconds += watch.ElapsedSeconds();
  return done;
}

}  // namespace gralmatch

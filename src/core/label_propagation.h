#ifndef GRALMATCH_CORE_LABEL_PROPAGATION_H_
#define GRALMATCH_CORE_LABEL_PROPAGATION_H_

/// \file label_propagation.h
/// Alternative graph cleanup for heterogeneous group sizes — the extension
/// the paper calls for in §4.2/§6.2.3 ("other Graph Cleanup methods able to
/// produce groups of heterogeneous sizes should be considered", for
/// settings like WDC Products where mu = #sources over-splits).
///
/// Semi-synchronous label propagation: every node starts in its own
/// community; on each sweep a node adopts the label carrying the largest
/// total edge weight among its neighbors (parallel edges add weight, ties
/// broken toward the smaller label for determinism). Densely connected true
/// groups converge to one label regardless of their size, while a single
/// false positive bridge carries too little weight to merge two groups.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace gralmatch {

struct LabelPropagationOptions {
  size_t max_sweeps = 20;
  uint64_t seed = 12;   ///< node-visit order shuffling
};

/// Community assignment over the alive edges of `graph`. Returns groups in
/// the same shape as GraLMatchCleanup::Run (sorted members, singletons
/// included, deterministic order).
std::vector<std::vector<NodeId>> LabelPropagationGroups(
    const Graph& graph, const LabelPropagationOptions& options = {});

}  // namespace gralmatch

#endif  // GRALMATCH_CORE_LABEL_PROPAGATION_H_

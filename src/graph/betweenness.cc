#include "graph/betweenness.h"

#include <algorithm>
#include <queue>

namespace gralmatch {

std::unordered_map<EdgeId, double> EdgeBetweenness(
    const Graph& graph, const std::vector<NodeId>& component) {
  const size_t n = component.size();
  std::unordered_map<NodeId, int> local;
  local.reserve(n);
  for (size_t i = 0; i < n; ++i) local[component[i]] = static_cast<int>(i);

  // Local adjacency (neighbor local index, edge id), alive edges only.
  std::vector<std::vector<std::pair<int, EdgeId>>> adj(n);
  for (EdgeId e : graph.EdgesWithin(component)) {
    int u = local[graph.edge(e).u];
    int v = local[graph.edge(e).v];
    adj[static_cast<size_t>(u)].emplace_back(v, e);
    adj[static_cast<size_t>(v)].emplace_back(u, e);
  }

  std::unordered_map<EdgeId, double> bc;
  std::vector<int> dist(n), order;
  std::vector<double> sigma(n), delta(n);
  std::vector<std::vector<std::pair<int, EdgeId>>> preds(n);

  for (size_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();
    order.clear();

    // BFS shortest-path DAG from s; parallel edges each count as a path.
    std::queue<int> queue;
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.push(static_cast<int>(s));
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      order.push_back(u);
      for (const auto& [v, e] : adj[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(v)] < 0) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
          queue.push(v);
        }
        if (dist[static_cast<size_t>(v)] == dist[static_cast<size_t>(u)] + 1) {
          sigma[static_cast<size_t>(v)] += sigma[static_cast<size_t>(u)];
          preds[static_cast<size_t>(v)].emplace_back(u, e);
        }
      }
    }

    // Dependency accumulation in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      int v = *it;
      for (const auto& [u, e] : preds[static_cast<size_t>(v)]) {
        double c = sigma[static_cast<size_t>(u)] / sigma[static_cast<size_t>(v)] *
                   (1.0 + delta[static_cast<size_t>(v)]);
        bc[e] += c;
        delta[static_cast<size_t>(u)] += c;
      }
    }
  }

  // Each unordered (s, t) pair was counted from both endpoints.
  for (auto& [e, value] : bc) value /= 2.0;
  return bc;
}

EdgeId MaxBetweennessEdge(const Graph& graph,
                          const std::vector<NodeId>& component) {
  auto bc = EdgeBetweenness(graph, component);
  EdgeId best = -1;
  double best_value = -1.0;
  for (const auto& [e, value] : bc) {
    if (value > best_value || (value == best_value && (best < 0 || e < best))) {
      best_value = value;
      best = e;
    }
  }
  return best;
}

std::vector<EdgeId> FindBridges(const Graph& graph,
                                const std::vector<NodeId>& component) {
  const size_t n = component.size();
  std::unordered_map<NodeId, int> local;
  for (size_t i = 0; i < n; ++i) local[component[i]] = static_cast<int>(i);
  std::vector<std::vector<std::pair<int, EdgeId>>> adj(n);
  for (EdgeId e : graph.EdgesWithin(component)) {
    int u = local[graph.edge(e).u];
    int v = local[graph.edge(e).v];
    adj[static_cast<size_t>(u)].emplace_back(v, e);
    adj[static_cast<size_t>(v)].emplace_back(u, e);
  }

  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<EdgeId> bridges;
  int timer = 0;

  // Iterative DFS; frame = (node, parent edge, next incidence index).
  struct Frame {
    int node;
    EdgeId parent_edge;
    size_t next = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (disc[root] >= 0) continue;
    std::vector<Frame> stack;
    stack.push_back({static_cast<int>(root), -1});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& top = stack.back();
      size_t u = static_cast<size_t>(top.node);
      if (top.next < adj[u].size()) {
        auto [v, e] = adj[u][top.next++];
        if (e == top.parent_edge) continue;
        if (disc[static_cast<size_t>(v)] >= 0) {
          low[u] = std::min(low[u], disc[static_cast<size_t>(v)]);
        } else {
          disc[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] = timer++;
          stack.push_back({v, e});
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          size_t p = static_cast<size_t>(stack.back().node);
          low[p] = std::min(low[p], low[u]);
          if (low[u] > disc[p]) bridges.push_back(top.parent_edge);
        }
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

}  // namespace gralmatch

#include "graph/min_cut.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace gralmatch {

// Stoer-Wagner minimum cut, O(V^3) array implementation on the induced
// subgraph. Parallel edges accumulate weight. The "best partition" is
// tracked through the contraction sequence so that the crossing edge set of
// the original subgraph can be reported.
Result<MinCutResult> StoerWagnerMinCut(const Graph& graph,
                                       const std::vector<NodeId>& component) {
  const size_t n = component.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "minimum cut requires a component with at least 2 nodes");
  }

  // Local indexing.
  std::unordered_map<NodeId, int> local;
  local.reserve(n);
  for (size_t i = 0; i < n; ++i) local[component[i]] = static_cast<int>(i);

  // Dense weight matrix of the induced subgraph.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  std::vector<EdgeId> edges = graph.EdgesWithin(component);
  for (EdgeId e : edges) {
    int u = local[graph.edge(e).u];
    int v = local[graph.edge(e).v];
    w[static_cast<size_t>(u)][static_cast<size_t>(v)] += 1.0;
    w[static_cast<size_t>(v)][static_cast<size_t>(u)] += 1.0;
  }

  // merged_into[i]: the set of original local nodes contracted into i.
  std::vector<std::vector<int>> merged(n);
  for (size_t i = 0; i < n; ++i) merged[i] = {static_cast<int>(i)};

  std::vector<bool> gone(n, false);   // contracted away
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<int> best_side;

  size_t remaining = n;
  while (remaining > 1) {
    // Minimum cut phase: maximum adjacency search.
    std::vector<double> conn(n, 0.0);
    std::vector<bool> in_a(n, false);
    int prev = -1, last = -1;
    for (size_t step = 0; step < remaining; ++step) {
      int sel = -1;
      double best = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (gone[i] || in_a[i]) continue;
        if (conn[i] > best) {
          best = conn[i];
          sel = static_cast<int>(i);
        }
      }
      in_a[static_cast<size_t>(sel)] = true;
      prev = last;
      last = sel;
      for (size_t i = 0; i < n; ++i) {
        if (gone[i] || in_a[i]) continue;
        conn[i] += w[static_cast<size_t>(sel)][i];
      }
    }
    // Cut-of-the-phase: the last added node versus the rest.
    double phase_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (gone[i] || static_cast<int>(i) == last) continue;
      phase_weight += w[static_cast<size_t>(last)][i];
    }
    if (phase_weight < best_weight) {
      best_weight = phase_weight;
      best_side = merged[static_cast<size_t>(last)];
    }
    // Contract last into prev.
    for (size_t i = 0; i < n; ++i) {
      if (gone[i]) continue;
      w[static_cast<size_t>(prev)][i] += w[static_cast<size_t>(last)][i];
      w[i][static_cast<size_t>(prev)] = w[static_cast<size_t>(prev)][i];
    }
    w[static_cast<size_t>(prev)][static_cast<size_t>(prev)] = 0.0;
    gone[static_cast<size_t>(last)] = true;
    merged[static_cast<size_t>(prev)].insert(
        merged[static_cast<size_t>(prev)].end(),
        merged[static_cast<size_t>(last)].begin(),
        merged[static_cast<size_t>(last)].end());
    --remaining;
  }

  MinCutResult result;
  result.weight = best_weight;
  std::vector<bool> on_side(n, false);
  for (int i : best_side) {
    on_side[static_cast<size_t>(i)] = true;
    result.partition.push_back(component[static_cast<size_t>(i)]);
  }
  std::sort(result.partition.begin(), result.partition.end());
  for (EdgeId e : edges) {
    bool su = on_side[static_cast<size_t>(local[graph.edge(e).u])];
    bool sv = on_side[static_cast<size_t>(local[graph.edge(e).v])];
    if (su != sv) result.cut_edges.push_back(e);
  }
  return result;
}

}  // namespace gralmatch

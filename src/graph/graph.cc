#include "graph/graph.h"

#include <algorithm>
#include <queue>

namespace gralmatch {

Graph::Graph(size_t num_nodes) : adjacency_(num_nodes) {}

void Graph::EnsureNodes(size_t n) {
  if (adjacency_.size() < n) adjacency_.resize(n);
}

Result<EdgeId> Graph::AddEdge(NodeId u, NodeId v) {
  if (u == v) return Status::InvalidArgument("self-loop edges are not allowed");
  if (u < 0 || v < 0) return Status::InvalidArgument("negative node id");
  EnsureNodes(static_cast<size_t>(std::max(u, v)) + 1);
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v});
  alive_.push_back(true);
  ++alive_count_;
  adjacency_[static_cast<size_t>(u)].emplace_back(v, id);
  adjacency_[static_cast<size_t>(v)].emplace_back(u, id);
  return id;
}

void Graph::RemoveEdge(EdgeId e) {
  size_t idx = static_cast<size_t>(e);
  if (idx >= alive_.size() || !alive_[idx]) return;
  alive_[idx] = false;
  --alive_count_;
}

void Graph::RestoreAllEdges() {
  std::fill(alive_.begin(), alive_.end(), true);
  alive_count_ = alive_.size();
}

void Graph::AliveNeighbors(NodeId u,
                           std::vector<std::pair<NodeId, EdgeId>>* out) const {
  out->clear();
  for (const auto& [nbr, eid] : adjacency_[static_cast<size_t>(u)]) {
    if (alive_[static_cast<size_t>(eid)]) out->emplace_back(nbr, eid);
  }
}

size_t Graph::AliveDegree(NodeId u) const {
  size_t d = 0;
  for (const auto& [nbr, eid] : adjacency_[static_cast<size_t>(u)]) {
    if (alive_[static_cast<size_t>(eid)]) ++d;
  }
  return d;
}

std::vector<std::vector<NodeId>> Graph::ConnectedComponents() const {
  std::vector<std::vector<NodeId>> components;
  std::vector<bool> visited(adjacency_.size(), false);
  std::vector<NodeId> stack;
  for (size_t start = 0; start < adjacency_.size(); ++start) {
    if (visited[start]) continue;
    std::vector<NodeId> comp;
    stack.push_back(static_cast<NodeId>(start));
    visited[start] = true;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (const auto& [nbr, eid] : adjacency_[static_cast<size_t>(u)]) {
        if (!alive_[static_cast<size_t>(eid)]) continue;
        if (!visited[static_cast<size_t>(nbr)]) {
          visited[static_cast<size_t>(nbr)] = true;
          stack.push_back(nbr);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

std::vector<NodeId> Graph::ComponentOf(NodeId start) const {
  std::vector<NodeId> comp;
  std::vector<bool> visited(adjacency_.size(), false);
  std::vector<NodeId> stack = {start};
  visited[static_cast<size_t>(start)] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    comp.push_back(u);
    for (const auto& [nbr, eid] : adjacency_[static_cast<size_t>(u)]) {
      if (!alive_[static_cast<size_t>(eid)]) continue;
      if (!visited[static_cast<size_t>(nbr)]) {
        visited[static_cast<size_t>(nbr)] = true;
        stack.push_back(nbr);
      }
    }
  }
  std::sort(comp.begin(), comp.end());
  return comp;
}

std::vector<EdgeId> Graph::EdgesWithin(const std::vector<NodeId>& nodes) const {
  std::vector<bool> in_set(adjacency_.size(), false);
  for (NodeId u : nodes) in_set[static_cast<size_t>(u)] = true;
  std::vector<EdgeId> out;
  for (NodeId u : nodes) {
    for (const auto& [nbr, eid] : adjacency_[static_cast<size_t>(u)]) {
      if (!alive_[static_cast<size_t>(eid)]) continue;
      if (!in_set[static_cast<size_t>(nbr)]) continue;
      // Emit each edge once: from its smaller endpoint (or from u == edge.u
      // for parallel-edge safety).
      const Edge& e = edges_[static_cast<size_t>(eid)];
      NodeId lo = std::min(e.u, e.v);
      if (u == lo) out.push_back(eid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gralmatch

#ifndef GRALMATCH_GRAPH_BETWEENNESS_H_
#define GRALMATCH_GRAPH_BETWEENNESS_H_

/// \file betweenness.h
/// Edge betweenness centrality (Brandes' algorithm) on a connected component
/// of the match graph. GraLMatch repeatedly removes the most-between edge of
/// oversized components (Algorithm 1, lines 7-10): a false positive edge
/// bridging two true groups carries almost all shortest paths between them.

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace gralmatch {

/// Betweenness centrality of every alive edge of the subgraph induced by
/// `component`: c_B(e) = sum over node pairs (s, t) of the fraction of
/// shortest s-t paths passing through e (unnormalized, undirected; each
/// unordered pair contributes once).
std::unordered_map<EdgeId, double> EdgeBetweenness(
    const Graph& graph, const std::vector<NodeId>& component);

/// The alive edge of `component` with maximum betweenness centrality
/// (smallest edge id wins ties, for determinism). Returns -1 if the induced
/// subgraph has no edges.
EdgeId MaxBetweennessEdge(const Graph& graph,
                          const std::vector<NodeId>& component);

/// Bridges (cut edges) of the subgraph induced by `component`.
std::vector<EdgeId> FindBridges(const Graph& graph,
                                const std::vector<NodeId>& component);

}  // namespace gralmatch

#endif  // GRALMATCH_GRAPH_BETWEENNESS_H_

#ifndef GRALMATCH_GRAPH_MIN_CUT_H_
#define GRALMATCH_GRAPH_MIN_CUT_H_

/// \file min_cut.h
/// Global minimum edge cut via the Stoer-Wagner algorithm, restricted to one
/// connected component of the match graph. GraLMatch removes the returned
/// edge set to split oversized components (Algorithm 1, lines 3-6).

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gralmatch {

/// Result of a minimum-cut computation.
struct MinCutResult {
  /// Edges crossing the minimum cut (alive edge ids of the input graph).
  std::vector<EdgeId> cut_edges;
  /// Total cut weight (== cut_edges.size() for the unweighted match graph,
  /// counting parallel edges individually).
  double weight = 0.0;
  /// Nodes on one side of the cut.
  std::vector<NodeId> partition;
};

/// Compute a global minimum edge cut of the subgraph induced by `component`
/// (which must be connected in `graph`'s alive edges and contain >= 2 nodes;
/// otherwise kInvalidArgument).
Result<MinCutResult> StoerWagnerMinCut(const Graph& graph,
                                       const std::vector<NodeId>& component);

}  // namespace gralmatch

#endif  // GRALMATCH_GRAPH_MIN_CUT_H_

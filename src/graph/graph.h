#ifndef GRALMATCH_GRAPH_GRAPH_H_
#define GRALMATCH_GRAPH_GRAPH_H_

/// \file graph.h
/// Undirected match graph with lazy edge deletion: nodes are records, edges
/// are positively predicted pairwise matches. GraLMatch's cleanup repeatedly
/// inspects connected components and deletes edges, so deletion is O(1)
/// (a tombstone bit) and components are recomputed by BFS on demand.

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace gralmatch {

/// Node index within a Graph.
using NodeId = int32_t;
/// Edge index within a Graph.
using EdgeId = int32_t;

/// \brief Undirected multigraph with tombstoned edges.
class Graph {
 public:
  struct Edge {
    NodeId u = -1;
    NodeId v = -1;
  };

  explicit Graph(size_t num_nodes = 0);

  /// Grow the node set to at least n nodes.
  void EnsureNodes(size_t n);

  /// Add an undirected edge; self-loops are rejected with kInvalidArgument.
  Result<EdgeId> AddEdge(NodeId u, NodeId v);

  /// Tombstone an edge; removing an already-removed edge is a no-op.
  void RemoveEdge(EdgeId e);

  /// Un-tombstone all edges (used by benchmarks that re-run cleanup).
  void RestoreAllEdges();

  bool edge_alive(EdgeId e) const { return alive_[static_cast<size_t>(e)]; }
  const Edge& edge(EdgeId e) const { return edges_[static_cast<size_t>(e)]; }

  size_t num_nodes() const { return adjacency_.size(); }
  /// Total edges ever added (including tombstoned ones).
  size_t num_edges_total() const { return edges_.size(); }
  /// Currently alive edges.
  size_t num_edges_alive() const { return alive_count_; }

  /// Alive incident (neighbor, edge id) pairs of a node.
  /// The underlying list may contain tombstoned entries; callers must use
  /// this accessor (it filters).
  void AliveNeighbors(NodeId u, std::vector<std::pair<NodeId, EdgeId>>* out) const;

  /// Degree counting alive edges only.
  size_t AliveDegree(NodeId u) const;

  /// Connected components over alive edges, including singletons.
  /// Deterministic: components ordered by smallest contained node.
  std::vector<std::vector<NodeId>> ConnectedComponents() const;

  /// Component containing `start` (alive edges only).
  std::vector<NodeId> ComponentOf(NodeId start) const;

  /// Alive edge ids with both endpoints inside `nodes`.
  std::vector<EdgeId> EdgesWithin(const std::vector<NodeId>& nodes) const;

 private:
  std::vector<Edge> edges_;
  std::vector<bool> alive_;
  size_t alive_count_ = 0;
  /// adjacency_[u]: (neighbor, edge id) incidences, including tombstoned.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adjacency_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_GRAPH_GRAPH_H_

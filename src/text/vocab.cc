#include "text/vocab.h"

#include <algorithm>
#include <fstream>

#include "text/normalize.h"

namespace gralmatch {

int32_t SubwordVocab::Intern(const std::string& piece) {
  auto it = token_to_id_.find(piece);
  if (it != token_to_id_.end()) return it->second;
  int32_t id = next_id_++;
  token_to_id_.emplace(piece, id);
  id_to_token_.push_back(piece);
  return id;
}

void SubwordVocab::Train(const std::vector<std::string>& docs, size_t max_words) {
  std::unordered_map<std::string, uint64_t> word_freq;
  std::unordered_map<std::string, uint64_t> piece_freq;
  for (const auto& doc : docs) {
    for (const auto& w : TokenizeWords(doc)) {
      ++word_freq[w];
      // Collect candidate continuation pieces: char 1..3-grams.
      for (size_t n = 1; n <= max_piece_len_; ++n) {
        if (w.size() < n) break;
        for (size_t i = 0; i + n <= w.size(); ++i) {
          ++piece_freq[w.substr(i, n)];
        }
      }
    }
  }

  // Most frequent whole words first (ties broken lexicographically for
  // determinism).
  std::vector<std::pair<std::string, uint64_t>> words(word_freq.begin(),
                                                      word_freq.end());
  std::sort(words.begin(), words.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (words.size() > max_words) words.resize(max_words);
  for (const auto& [w, f] : words) Intern(w);

  // All single characters always become pieces so decomposition never fails;
  // longer pieces only if seen at least twice.
  std::vector<std::pair<std::string, uint64_t>> pieces(piece_freq.begin(),
                                                       piece_freq.end());
  std::sort(pieces.begin(), pieces.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [p, f] : pieces) {
    if (p.size() == 1 || f >= 2) Intern("##" + p);
  }
}

void SubwordVocab::EncodeWord(std::string_view word,
                              std::vector<int32_t>* out) const {
  std::string w(word);
  auto it = token_to_id_.find(w);
  if (it != token_to_id_.end()) {
    out->push_back(it->second);
    return;
  }
  // Greedy longest-match decomposition into "##" pieces.
  size_t pos = 0;
  while (pos < w.size()) {
    bool matched = false;
    size_t take = std::min(max_piece_len_, w.size() - pos);
    for (size_t n = take; n >= 1; --n) {
      auto pit = token_to_id_.find("##" + w.substr(pos, n));
      if (pit != token_to_id_.end()) {
        out->push_back(pit->second);
        pos += n;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out->push_back(SpecialTokens::kUnk);
      ++pos;
    }
  }
}

std::vector<int32_t> SubwordVocab::EncodeText(std::string_view text) const {
  std::vector<int32_t> out;
  for (const auto& w : TokenizeWords(text)) EncodeWord(w, &out);
  return out;
}

int32_t SubwordVocab::WordId(std::string_view word) const {
  auto it = token_to_id_.find(std::string(word));
  return it == token_to_id_.end() ? SpecialTokens::kUnk : it->second;
}

Status SubwordVocab::Save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  for (const auto& tok : id_to_token_) file << tok << '\n';
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SubwordVocab::Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  token_to_id_.clear();
  id_to_token_.clear();
  next_id_ = SpecialTokens::kFirstFree;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Intern(line);
  }
  return Status::OK();
}

std::string SubwordVocab::TokenText(int32_t id) const {
  switch (id) {
    case SpecialTokens::kPad: return "[PAD]";
    case SpecialTokens::kUnk: return "[UNK]";
    case SpecialTokens::kCls: return "[CLS]";
    case SpecialTokens::kSep: return "[SEP]";
    case SpecialTokens::kCol: return "[COL]";
    case SpecialTokens::kVal: return "[VAL]";
    default: break;
  }
  size_t idx = static_cast<size_t>(id - SpecialTokens::kFirstFree);
  if (idx < id_to_token_.size()) return id_to_token_[idx];
  return "<unk#>";
}

}  // namespace gralmatch

#ifndef GRALMATCH_TEXT_TFIDF_H_
#define GRALMATCH_TEXT_TFIDF_H_

/// \file tfidf.h
/// Sparse TF-IDF vectorization with cosine similarity, used by the classical
/// logistic-regression matcher baseline and by blocking diagnostics.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gralmatch {

/// Sparse vector: sorted (feature id, weight) pairs.
struct SparseVector {
  std::vector<std::pair<int32_t, float>> entries;

  /// L2 norm.
  float Norm() const;
};

/// Cosine similarity of two sparse vectors (0 if either has zero norm).
float CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// \brief TF-IDF vectorizer over word tokens.
///
/// Fit() learns the feature space and document frequencies; Transform()
/// produces an L2-normalized TF-IDF vector. Unknown tokens are dropped.
class TfidfVectorizer {
 public:
  /// Learn vocabulary and IDF weights from a corpus.
  /// \param min_df drop tokens appearing in fewer than min_df documents.
  void Fit(const std::vector<std::string>& docs, size_t min_df = 1);

  /// Vectorize a document (L2-normalized).
  SparseVector Transform(std::string_view doc) const;

  /// Number of features.
  size_t num_features() const { return idf_.size(); }

  bool fitted() const { return !idf_.empty(); }

 private:
  std::unordered_map<std::string, int32_t> feature_ids_;
  std::vector<float> idf_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_TEXT_TFIDF_H_

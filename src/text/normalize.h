#ifndef GRALMATCH_TEXT_NORMALIZE_H_
#define GRALMATCH_TEXT_NORMALIZE_H_

/// \file normalize.h
/// Text normalization and word tokenization used by blocking, TF-IDF and the
/// transformer tokenizer. Normalization is intentionally lossy: matching is
/// about token statistics, not display text.

#include <string>
#include <string_view>
#include <vector>

namespace gralmatch {

/// Lower-case, map punctuation to spaces, collapse whitespace runs.
/// Digits and ASCII letters are kept; everything else becomes a separator.
std::string NormalizeText(std::string_view s);

/// NormalizeText followed by whitespace splitting.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Tokens of TokenizeWords with common stopwords removed.
std::vector<std::string> TokenizeContentWords(std::string_view s);

/// True for a small closed class of English stopwords.
bool IsStopword(std::string_view token);

}  // namespace gralmatch

#endif  // GRALMATCH_TEXT_NORMALIZE_H_

#ifndef GRALMATCH_TEXT_VOCAB_H_
#define GRALMATCH_TEXT_VOCAB_H_

/// \file vocab.h
/// Subword vocabulary for the transformer matcher: frequent whole words plus
/// WordPiece-style greedy longest-match fallback pieces, so that rare company
/// names still decompose into informative fragments instead of a single OOV.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gralmatch {

/// Reserved token ids.
struct SpecialTokens {
  static constexpr int32_t kPad = 0;
  static constexpr int32_t kUnk = 1;
  static constexpr int32_t kCls = 2;
  static constexpr int32_t kSep = 3;   ///< between the two records of a pair
  static constexpr int32_t kCol = 4;   ///< Ditto-style [COL] tag
  static constexpr int32_t kVal = 5;   ///< Ditto-style [VAL] tag
  static constexpr int32_t kFirstFree = 6;
};

/// \brief Trainable subword vocabulary.
///
/// Train() collects word frequencies from a corpus; the most frequent words
/// become whole-word tokens, and all observed character 2/3-grams become
/// continuation pieces (prefixed "##"). Encode() maps a word to a whole-word
/// id when possible, otherwise greedily decomposes it left-to-right into the
/// longest known pieces.
class SubwordVocab {
 public:
  SubwordVocab() = default;

  /// Build the vocabulary from normalized documents.
  /// \param docs corpus; each entry is tokenized with TokenizeWords.
  /// \param max_words cap on whole-word entries (most frequent first).
  void Train(const std::vector<std::string>& docs, size_t max_words = 8000);

  /// Encode one word into one or more token ids (never empty; emits kUnk
  /// for characters with no known piece).
  void EncodeWord(std::string_view word, std::vector<int32_t>* out) const;

  /// Encode free text: normalize, tokenize, subword-encode each word.
  std::vector<int32_t> EncodeText(std::string_view text) const;

  /// Id for a column-name token (whole-word lookup only, else kUnk).
  int32_t WordId(std::string_view word) const;

  /// Total number of token ids (including specials).
  int32_t size() const { return next_id_; }

  /// Human-readable token for an id (for debugging; "<unk#>" if unknown).
  std::string TokenText(int32_t id) const;

  bool trained() const { return next_id_ > SpecialTokens::kFirstFree; }

  /// Persist the vocabulary (one token per line, id order).
  Status Save(const std::string& path) const;

  /// Load a vocabulary previously written with Save(), replacing contents.
  Status Load(const std::string& path);

 private:
  int32_t Intern(const std::string& piece);

  std::unordered_map<std::string, int32_t> token_to_id_;
  std::vector<std::string> id_to_token_;
  int32_t next_id_ = SpecialTokens::kFirstFree;
  size_t max_piece_len_ = 3;
};

}  // namespace gralmatch

#endif  // GRALMATCH_TEXT_VOCAB_H_

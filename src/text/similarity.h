#ifndef GRALMATCH_TEXT_SIMILARITY_H_
#define GRALMATCH_TEXT_SIMILARITY_H_

/// \file similarity.h
/// Classical string and token-set similarity measures, used by heuristic
/// matchers, blocking diagnostics and tests.

#include <string_view>
#include <vector>
#include <string>

namespace gralmatch {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t Levenshtein(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity in [0, 1]: 1 - dist / max(|a|, |b|).
/// Both strings empty yields 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double Jaro(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with standard prefix scale 0.1.
double JaroWinkler(std::string_view a, std::string_view b);

/// Jaccard similarity of two token multisets treated as sets.
double JaccardTokens(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Number of distinct tokens present in both a and b.
size_t TokenOverlapCount(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Character n-grams of a string (contiguous, overlapping). n must be >= 1.
std::vector<std::string> CharNgrams(std::string_view s, size_t n);

/// Jaccard similarity of char trigram sets (with normalization applied first).
double TrigramSimilarity(std::string_view a, std::string_view b);

}  // namespace gralmatch

#endif  // GRALMATCH_TEXT_SIMILARITY_H_

#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "text/normalize.h"

namespace gralmatch {

float SparseVector::Norm() const {
  double s = 0.0;
  for (const auto& [id, w] : entries) s += static_cast<double>(w) * w;
  return static_cast<float>(std::sqrt(s));
}

float CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else if (a.entries[i].first > b.entries[j].first) {
      ++j;
    } else {
      dot += static_cast<double>(a.entries[i].second) * b.entries[j].second;
      ++i;
      ++j;
    }
  }
  float na = a.Norm(), nb = b.Norm();
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return static_cast<float>(dot / (static_cast<double>(na) * nb));
}

void TfidfVectorizer::Fit(const std::vector<std::string>& docs, size_t min_df) {
  std::unordered_map<std::string, uint32_t> df;
  for (const auto& doc : docs) {
    auto toks = TokenizeWords(doc);
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    for (const auto& t : toks) ++df[t];
  }
  // Deterministic feature ordering.
  std::vector<std::pair<std::string, uint32_t>> items(df.begin(), df.end());
  std::sort(items.begin(), items.end());
  const double n = static_cast<double>(docs.size());
  for (const auto& [tok, d] : items) {
    if (d < min_df) continue;
    int32_t id = static_cast<int32_t>(idf_.size());
    feature_ids_.emplace(tok, id);
    idf_.push_back(static_cast<float>(std::log((1.0 + n) / (1.0 + d)) + 1.0));
  }
}

SparseVector TfidfVectorizer::Transform(std::string_view doc) const {
  std::unordered_map<int32_t, float> tf;
  for (const auto& t : TokenizeWords(doc)) {
    auto it = feature_ids_.find(t);
    if (it != feature_ids_.end()) tf[it->second] += 1.0f;
  }
  SparseVector out;
  out.entries.reserve(tf.size());
  for (const auto& [id, f] : tf) {
    out.entries.emplace_back(id, f * idf_[static_cast<size_t>(id)]);
  }
  std::sort(out.entries.begin(), out.entries.end());
  float norm = out.Norm();
  if (norm > 0.0f) {
    for (auto& [id, w] : out.entries) w /= norm;
  }
  return out;
}

}  // namespace gralmatch

#include "text/normalize.h"

#include <cctype>
#include <unordered_set>

namespace gralmatch {

std::string NormalizeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_space = true;
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
      last_space = false;
    } else if (!last_space) {
      out.push_back(' ');
      last_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::string norm = NormalizeText(s);
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= norm.size(); ++i) {
    if (i == norm.size() || norm[i] == ' ') {
      if (i > start) out.emplace_back(norm.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool IsStopword(std::string_view token) {
  static const std::unordered_set<std::string> kStopwords = {
      "a",   "an",  "and", "the", "of",  "in",  "on",  "for", "to",  "by",
      "at",  "is",  "are", "was", "be",  "as",  "it",  "its", "with", "that",
      "this", "from", "or", "we",  "our", "their"};
  return kStopwords.count(std::string(token)) > 0;
}

std::vector<std::string> TokenizeContentWords(std::string_view s) {
  std::vector<std::string> toks = TokenizeWords(s);
  std::vector<std::string> out;
  out.reserve(toks.size());
  for (auto& t : toks) {
    if (!IsStopword(t)) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace gralmatch

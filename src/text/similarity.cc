#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "text/normalize.h"

namespace gralmatch {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(Levenshtein(a, b)) / static_cast<double>(m);
}

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0, k = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++t;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - t / 2.0) / m) / 3.0;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  double j = Jaro(a, b);
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i]) ++prefix;
    else break;
  }
  return j + 0.1 * static_cast<double>(prefix) * (1.0 - j);
}

double JaccardTokens(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

size_t TokenOverlapCount(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  return inter;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<std::string> out;
  if (n == 0 || s.size() < n) return out;
  out.reserve(s.size() - n + 1);
  for (size_t i = 0; i + n <= s.size(); ++i) {
    out.emplace_back(s.substr(i, n));
  }
  return out;
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  std::string na = NormalizeText(a), nb = NormalizeText(b);
  auto ga = CharNgrams(na, 3), gb = CharNgrams(nb, 3);
  if (ga.empty() && gb.empty()) return na == nb ? 1.0 : 0.0;
  return JaccardTokens(ga, gb);
}

}  // namespace gralmatch

#ifndef GRALMATCH_TEXT_CORPORATE_H_
#define GRALMATCH_TEXT_CORPORATE_H_

/// \file corporate.h
/// Corporate-naming utilities shared by the data generator and the heuristic
/// matchers: legal-form term tables, acronym construction, and name
/// canonicalization that strips legal forms.

#include <string>
#include <string_view>
#include <vector>

namespace gralmatch {

/// Legal-form / corporate terms ("Inc", "Ltd", "Corp", ...).
const std::vector<std::string>& CorporateTerms();

/// True if the (normalized) token is a corporate term.
bool IsCorporateTerm(std::string_view token);

/// Acronym of the non-corporate, non-stopword tokens of a name:
/// "Crowd Strike Platforms Inc" -> "CSP". Names with fewer than two
/// contributing tokens return an empty string (acronyms would be ambiguous).
std::string MakeAcronym(std::string_view name);

/// Name with corporate terms removed and whitespace re-collapsed,
/// lower-cased: "CrowdStrike Holdings, Inc." -> "crowdstrike holdings".
std::string CanonicalCompanyName(std::string_view name);

}  // namespace gralmatch

#endif  // GRALMATCH_TEXT_CORPORATE_H_

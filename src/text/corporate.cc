#include "text/corporate.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"
#include "text/normalize.h"

namespace gralmatch {

const std::vector<std::string>& CorporateTerms() {
  static const std::vector<std::string> kTerms = {
      "inc",  "incorporated", "ltd",  "limited", "corp", "corporation",
      "llc",  "plc",          "ag",   "sa",      "gmbh", "co",
      "company", "holdings",  "group", "industries", "international",
      "technologies", "solutions", "systems", "partners", "ventures"};
  return kTerms;
}

bool IsCorporateTerm(std::string_view token) {
  static const std::unordered_set<std::string> kSet(CorporateTerms().begin(),
                                                    CorporateTerms().end());
  return kSet.count(ToLower(token)) > 0;
}

std::string MakeAcronym(std::string_view name) {
  std::string acronym;
  size_t contributing = 0;
  for (const auto& tok : TokenizeWords(name)) {
    if (IsCorporateTerm(tok) || IsStopword(tok)) continue;
    acronym.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(tok[0]))));
    ++contributing;
  }
  if (contributing < 2) return "";
  return acronym;
}

std::string CanonicalCompanyName(std::string_view name) {
  std::vector<std::string> kept;
  for (const auto& tok : TokenizeWords(name)) {
    if (IsCorporateTerm(tok)) continue;
    kept.push_back(tok);
  }
  return Join(kept, " ");
}

}  // namespace gralmatch

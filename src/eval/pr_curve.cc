#include "eval/pr_curve.h"

namespace gralmatch {

std::vector<ThresholdPoint> PrecisionRecallCurve(
    const std::vector<ScoredPair>& scored, const GroundTruth& truth,
    const std::vector<double>& thresholds) {
  const uint64_t total_true = truth.NumTrueMatches();
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  for (double threshold : thresholds) {
    ThresholdPoint point;
    point.threshold = threshold;
    for (const auto& sp : scored) {
      if (sp.score < threshold) continue;
      if (truth.IsMatch(sp.pair)) {
        ++point.tp;
      } else {
        ++point.fp;
      }
    }
    point.fn = total_true >= point.tp ? total_true - point.tp : 0;
    out.push_back(point);
  }
  return out;
}

ThresholdPoint BestF1Point(const std::vector<ThresholdPoint>& curve) {
  ThresholdPoint best;
  bool found = false;
  for (const auto& point : curve) {
    if (!found || point.F1() > best.F1()) {
      best = point;
      found = true;
    }
  }
  return best;
}

}  // namespace gralmatch

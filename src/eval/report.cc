#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace gralmatch {

void TableReport::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TableReport::AddSeparator() { rows_.emplace_back(); }

std::string TableReport::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += cell;
      out.append(widths[i] - cell.size() + (i + 1 < widths.size() ? 3 : 0), ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
    return out;
  };

  std::string out = render_row(header_);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    if (row.empty()) {
      out.append(total, '-');
      out.push_back('\n');
    } else {
      out += render_row(row);
    }
  }
  return out;
}

void TableReport::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatPercent(double fraction) {
  return StrFormat("%.2f", fraction * 100.0);
}

std::string FormatScore(double value) { return StrFormat("%.2f", value); }

}  // namespace gralmatch

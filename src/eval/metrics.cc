#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace gralmatch {

PrfMetrics PairwisePrf(const std::vector<RecordPair>& predicted,
                       const GroundTruth& truth) {
  PrfMetrics m;
  for (const auto& pair : predicted) {
    if (truth.IsMatch(pair)) {
      ++m.tp;
    } else {
      ++m.fp;
    }
  }
  uint64_t total_true = truth.NumTrueMatches();
  m.fn = total_true >= m.tp ? total_true - m.tp : 0;
  return m;
}

namespace {

/// TP count of one component's complete graph: sum over entities of
/// C(count, 2) for the records of that entity inside the component.
uint64_t ComponentTruePairs(const std::vector<NodeId>& component,
                            const GroundTruth& truth) {
  std::unordered_map<EntityId, uint64_t> counts;
  for (NodeId u : component) {
    EntityId e = truth.entity_of(static_cast<RecordId>(u));
    if (e != kInvalidEntity) ++counts[e];
  }
  uint64_t tp = 0;
  for (const auto& [e, c] : counts) tp += c * (c - 1) / 2;
  return tp;
}

}  // namespace

PrfMetrics GroupPrf(const std::vector<std::vector<NodeId>>& components,
                    const GroundTruth& truth) {
  PrfMetrics m;
  for (const auto& comp : components) {
    uint64_t size = comp.size();
    uint64_t total = size * (size - 1) / 2;
    uint64_t tp = ComponentTruePairs(comp, truth);
    m.tp += tp;
    m.fp += total - tp;
  }
  uint64_t total_true = truth.NumTrueMatches();
  m.fn = total_true >= m.tp ? total_true - m.tp : 0;
  return m;
}

double ClusterPurity(const std::vector<std::vector<NodeId>>& components,
                     const GroundTruth& truth) {
  double weighted = 0.0;
  uint64_t total_records = 0;
  for (const auto& comp : components) {
    uint64_t size = comp.size();
    total_records += size;
    if (size <= 1) {
      weighted += static_cast<double>(size);  // purity 1 by convention
      continue;
    }
    uint64_t total = size * (size - 1) / 2;
    uint64_t tp = ComponentTruePairs(comp, truth);
    weighted += static_cast<double>(size) *
                (static_cast<double>(tp) / static_cast<double>(total));
  }
  return total_records == 0 ? 0.0 : weighted / static_cast<double>(total_records);
}

size_t LargestComponent(const std::vector<std::vector<NodeId>>& components) {
  size_t best = 0;
  for (const auto& comp : components) best = std::max(best, comp.size());
  return best;
}

}  // namespace gralmatch

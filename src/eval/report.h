#ifndef GRALMATCH_EVAL_REPORT_H_
#define GRALMATCH_EVAL_REPORT_H_

/// \file report.h
/// ASCII table rendering for the benchmark harnesses that regenerate the
/// paper's tables.

#include <string>
#include <vector>

namespace gralmatch {

/// \brief Simple column-aligned ASCII table.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; missing trailing cells render empty.
  void AddRow(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void AddSeparator();

  /// Render with padded columns.
  std::string ToString() const;

  /// Render and write to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// "97.26" style percentage formatting used across the paper's tables.
std::string FormatPercent(double fraction);

/// "0.98" style score formatting (cluster purity).
std::string FormatScore(double value);

}  // namespace gralmatch

#endif  // GRALMATCH_EVAL_REPORT_H_

#ifndef GRALMATCH_EVAL_METRICS_H_
#define GRALMATCH_EVAL_METRICS_H_

/// \file metrics.h
/// Evaluation metrics of §5.3.2/§5.3.3: pairwise precision/recall/F1, the
/// three-stage entity-group metrics (transitive closure evaluated
/// analytically per component, so giant components never materialize their
/// quadratic edge sets), and the Cluster Purity Score.

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "graph/graph.h"

namespace gralmatch {

/// Precision / recall / F1 from match counts.
struct PrfMetrics {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t fn = 0;

  double Precision() const {
    return tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0 : double(tp) / double(tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Pairwise metrics of an explicit prediction list. FN counts all unfound
/// true matches of `truth` (blocking misses included, as in the paper's
/// Stage-1 scores).
PrfMetrics PairwisePrf(const std::vector<RecordPair>& predicted,
                       const GroundTruth& truth);

/// Entity-group metrics of a component list: every component contributes its
/// complete graph as predicted matches (the transitive closure), counted
/// analytically. Components must not share records.
PrfMetrics GroupPrf(const std::vector<std::vector<NodeId>>& components,
                    const GroundTruth& truth);

/// Cluster Purity Score (§5.3.3): size-weighted average over components of
/// (true positive matches) / (total matches) of the component's complete
/// graph. Singleton components are perfectly pure by convention.
double ClusterPurity(const std::vector<std::vector<NodeId>>& components,
                     const GroundTruth& truth);

/// Size of the largest component (0 for an empty list).
size_t LargestComponent(const std::vector<std::vector<NodeId>>& components);

}  // namespace gralmatch

#endif  // GRALMATCH_EVAL_METRICS_H_

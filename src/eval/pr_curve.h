#ifndef GRALMATCH_EVAL_PR_CURVE_H_
#define GRALMATCH_EVAL_PR_CURVE_H_

/// \file pr_curve.h
/// Precision/recall trade-off across decision thresholds. The paper shows
/// that pairwise *precision* is the deciding factor for entity group
/// matching; this utility is how a deployment picks the operating point
/// (EntityGroupPipeline's match_threshold) for a given matcher.

#include <vector>

#include "data/ground_truth.h"

namespace gralmatch {

/// One scored candidate pair.
struct ScoredPair {
  RecordPair pair;
  double score = 0.0;   ///< matcher probability
};

/// Metrics at one decision threshold.
struct ThresholdPoint {
  double threshold = 0.0;
  uint64_t tp = 0, fp = 0, fn = 0;

  double Precision() const {
    return tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0 : double(tp) / double(tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Evaluate `scored` against `truth` at each threshold (predict match when
/// score >= threshold). FN counts all unfound true matches of `truth`, as
/// in PairwisePrf. Thresholds are processed as given; pass a sorted grid
/// for a conventional curve.
std::vector<ThresholdPoint> PrecisionRecallCurve(
    const std::vector<ScoredPair>& scored, const GroundTruth& truth,
    const std::vector<double>& thresholds);

/// The threshold of `curve` with the best F1 (ties: lower threshold).
ThresholdPoint BestF1Point(const std::vector<ThresholdPoint>& curve);

}  // namespace gralmatch

#endif  // GRALMATCH_EVAL_PR_CURVE_H_

#include "shard/sharded_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/stopwatch.h"
#include "core/score_batching.h"
#include "exec/parallel.h"
#include "obs/metrics.h"

namespace gralmatch {

ShardedPipeline::ShardedPipeline(ShardedPipelineConfig config)
    : config_(config),
      router_(config.num_shards, config.router_seed),
      pool_(MaybeMakePool(config.base.pipeline.num_threads)),
      shards_(router_.num_shards()),
      exchange_(config.base) {
  config_.num_shards = router_.num_shards();  // clamped to >= 1
}

ShardedPipeline::~ShardedPipeline() = default;

Status ShardedPipeline::PoisonError() const {
  return Status::Internal(
      "sharded pipeline is poisoned (" + poison_reason_ +
      "); its state is inconsistent — discard this instance and restore "
      "from a checkpoint");
}

Status ShardedPipeline::status() const {
  return poisoned_ ? PoisonError() : Status::OK();
}

size_t ShardedPipeline::total_matcher_calls() const {
  size_t total = 0;
  for (const ShardState& shard : shards_) total += shard.matcher_calls;
  return total;
}

size_t ShardedPipeline::total_cache_hits() const {
  size_t total = 0;
  for (const ShardState& shard : shards_) total += shard.cache_hits;
  return total;
}

Status ShardedPipeline::ValidateRemovals(
    const std::vector<RecordId>& ids) const {
  std::unordered_set<RecordId> seen;
  for (RecordId id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= records_.size()) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": id out of range");
    }
    if (!alive_[static_cast<size_t>(id)]) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": already tombstoned");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": duplicated in the removal set");
    }
  }
  return Status::OK();
}

Result<IngestReport> ShardedPipeline::Ingest(const std::vector<Record>& batch,
                                             const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  try {
    return MutateImpl(batch, {}, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("an ingest aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "an ingest aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

Result<IngestReport> ShardedPipeline::Remove(const std::vector<RecordId>& ids,
                                             const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  GRALMATCH_RETURN_NOT_OK(ValidateRemovals(ids));
  try {
    return MutateImpl({}, ids, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("a removal aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "a removal aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

Result<IngestReport> ShardedPipeline::Update(
    const std::vector<RecordUpdate>& batch, const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  std::vector<RecordId> ids;
  std::vector<Record> adds;
  ids.reserve(batch.size());
  adds.reserve(batch.size());
  for (const RecordUpdate& update : batch) {
    ids.push_back(update.id);
    adds.push_back(update.record);
  }
  GRALMATCH_RETURN_NOT_OK(ValidateRemovals(ids));
  try {
    return MutateImpl(adds, ids, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("an update aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "an update aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

IngestReport ShardedPipeline::MutateImpl(
    const std::vector<Record>& adds, const std::vector<RecordId>& removal_ids,
    const PairwiseMatcher& matcher) {
  const size_t num_shards = shards_.size();
  const obs::PipelineMetrics metrics =
      obs::PipelineMetrics::Create(config_.base.pipeline.metrics);
  IngestReport report;
  report.records_added = adds.size();
  report.records_removed = removal_ids.size();

  Stopwatch route_watch;
  // Phase 1 — route. Records keep global contiguous ids; the router only
  // decides which shard-local state owns them. Tombstoned records keep
  // their slot in the table and their owner's `owned` list (checkpoint
  // reassembly needs every id to have exactly one provider).
  const size_t old_n = records_.size();
  for (const Record& rec : adds) {
    const size_t shard = router_.ShardOf(rec);
    const RecordId id = records_.Add(rec);
    shard_of_record_.push_back(static_cast<uint32_t>(shard));
    shards_[shard].owned.push_back(id);
  }
  const size_t new_n = records_.size();
  alive_.resize(new_n, 1);
  for (RecordId id : removal_ids) alive_[static_cast<size_t>(id)] = 0;
  num_dead_ += removal_ids.size();
  store_.EnsureNumRecords(new_n);

  // A fingerprint change invalidates every shard's cache at once — the
  // fingerprint is pipeline-global, exactly as in the single pipeline.
  const std::string fingerprint = matcher.Fingerprint();
  const bool rescore_all = !fingerprint_.empty() && fingerprint != fingerprint_;
  if (rescore_all) {
    for (ShardState& shard : shards_) shard.score_cache.clear();
  }
  fingerprint_ = fingerprint;
  if (metrics.route_seconds != nullptr) {
    metrics.route_seconds->Observe(route_watch.ElapsedSeconds());
  }

  Stopwatch exchange_watch;
  // Phase 2 — candidate exchange. Retraction first: the exchange pulls the
  // tombstoned records' keys out of the global indexes (re-extracted from
  // the retained payloads — no shard republishes anything). Then each shard
  // extracts (publishes) the blocking keys of the new records it owns and
  // the exchange folds every publication in. Both rounds return exact
  // global deltas; the candidate transitions below diff a pre-mutation
  // snapshot against the final state, so they are independent of this
  // internal order.
  CandidateExchange::Deltas retractions;
  if (!removal_ids.empty()) {
    retractions = exchange_.Retract(records_, removal_ids, pool_.get());
  }
  std::vector<RecordKeys> published(new_n - old_n);
  std::vector<std::vector<RecordId>> new_by_shard(num_shards);
  for (size_t id = old_n; id < new_n; ++id) {
    new_by_shard[shard_of_record_[id]].push_back(static_cast<RecordId>(id));
  }
  ParallelFor(pool_.get(), 0, num_shards, [&](size_t s) {
    for (const RecordId id : new_by_shard[s]) {
      RecordKeys& keys = published[static_cast<size_t>(id) - old_n];
      if (config_.base.use_id_blocker) {
        keys.id_keys = IncrementalIdOverlapIndex::ExtractKeys(records_.at(id));
      }
      if (config_.base.use_token_blocker) {
        keys.token_keys =
            IncrementalTokenOverlapIndex::ExtractKeys(records_.at(id));
      }
    }
  });
  CandidateExchange::Deltas deltas =
      exchange_.Exchange(records_, std::move(published), pool_.get());

  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_prov;
  auto apply_delta = [&](const CandidateDelta& delta, uint32_t bit) {
    for (const RecordPair& pair : delta.added) {
      uint32_t& prov = candidate_prov_[pair];
      old_prov.emplace(pair, prov);
      prov |= bit;
    }
    for (const RecordPair& pair : delta.removed) {
      auto it = candidate_prov_.find(pair);
      old_prov.emplace(pair, it->second);
      it->second &= ~bit;
    }
  };
  if (config_.base.use_id_blocker) {
    apply_delta(retractions.id, kBlockerIdOverlap);
    apply_delta(deltas.id, kBlockerIdOverlap);
  }
  if (config_.base.use_token_blocker) {
    apply_delta(retractions.token, kBlockerTokenOverlap);
    apply_delta(deltas.token, kBlockerTokenOverlap);
  }

  std::vector<RecordPair> cand_added, cand_removed, prov_changed;
  for (const auto& [pair, before] : old_prov) {
    const uint32_t now = candidate_prov_.at(pair);
    if (before == 0 && now != 0) {
      cand_added.push_back(pair);
    } else if (before != 0 && now == 0) {
      cand_removed.push_back(pair);
      candidate_prov_.erase(pair);
    } else if (before != now) {
      prov_changed.push_back(pair);
    }
  }
  std::sort(cand_added.begin(), cand_added.end());
  std::sort(cand_removed.begin(), cand_removed.end());
  std::sort(prov_changed.begin(), prov_changed.end());
  report.candidates_added = cand_added.size();
  report.candidates_removed = cand_removed.size();
  if (metrics.exchange_seconds != nullptr) {
    metrics.exchange_seconds->Observe(exchange_watch.ElapsedSeconds());
  }

  // Evict cached scores touching a tombstoned record from their owner
  // shards. Ids never recycle, so an evicted entry can never be asked for
  // again; surviving entries keep serving re-admitted pairs. Unaffected
  // pairs are deliberately NOT rescored — deletion must not spend matcher
  // calls on them. The summed eviction count equals the single pipeline's.
  if (!removal_ids.empty()) {
    std::vector<char> removed_now(new_n, 0);
    for (RecordId id : removal_ids) removed_now[static_cast<size_t>(id)] = 1;
    for (ShardState& shard : shards_) {
      for (auto it = shard.score_cache.begin();
           it != shard.score_cache.end();) {
        if (removed_now[static_cast<size_t>(it->first.a)] ||
            removed_now[static_cast<size_t>(it->first.b)]) {
          it = shard.score_cache.erase(it);
          ++report.cache_evictions;
        } else {
          ++it;
        }
      }
    }
  }

  // Phase 3 — shard-parallel scoring. Every pair is checked against (and
  // cached in) its owner shard's cache only; ownership is stable, so no
  // pair is ever scored twice pipeline-wide per fingerprint.
  std::vector<std::vector<RecordPair>> to_score(num_shards);
  if (rescore_all) {
    for (const auto& [pair, prov] : candidate_prov_) {
      to_score[OwnerOf(pair)].push_back(pair);
    }
  } else {
    for (const RecordPair& pair : cand_added) {
      ShardState& owner = shards_[OwnerOf(pair)];
      if (owner.score_cache.count(pair)) {
        ++owner.cache_hits;
        ++report.cache_hits;
      } else {
        to_score[OwnerOf(pair)].push_back(pair);
      }
    }
  }
  // Flatten with per-shard slices contiguous: shards score concurrently on
  // the shared pool, and a shard's slice parallelizes internally too.
  std::vector<RecordPair> flat;
  for (std::vector<RecordPair>& pairs : to_score) {
    std::sort(pairs.begin(), pairs.end());
    flat.insert(flat.end(), pairs.begin(), pairs.end());
  }
  // Batched scoring over the flattened list: chunk boundaries depend only on
  // flat.size() and score_batch_size (shard slices stay contiguous within
  // it), so results are bitwise-identical to per-pair at any thread count.
  Stopwatch scoring_watch;
  std::vector<double> scores(flat.size(), 0.0);
  {
    CascadeStatsScope cascade_scope(matcher, metrics.cascade_gate_resolved,
                                    metrics.cascade_escalated);
    ScorePairsBatched(pool_.get(), records_, matcher,
                      Span<const RecordPair>(flat.data(), flat.size()),
                      config_.base.pipeline.score_batch_size,
                      Span<double>(scores.data(), scores.size()));
  }
  report.scoring_seconds = scoring_watch.ElapsedSeconds();
  scoring_seconds_total_ += report.scoring_seconds;
  for (size_t k = 0; k < flat.size(); ++k) {
    shards_[OwnerOf(flat[k])].score_cache[flat[k]] = scores[k];
  }
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s].matcher_calls += to_score[s].size();
  }
  report.pairs_scored = flat.size();

  // Positive-edge transitions, tracked per owner shard but merged into one
  // global stream for the component store.
  const double threshold = config_.base.pipeline.match_threshold;
  std::vector<RecordPair> pos_added, pos_removed, pos_prov_changed;
  if (rescore_all) {
    std::vector<std::unordered_set<RecordPair, RecordPairHash>> now_positive(
        num_shards);
    for (const auto& [pair, prov] : candidate_prov_) {
      const size_t owner = OwnerOf(pair);
      if (shards_[owner].score_cache.at(pair) >= threshold) {
        now_positive[owner].insert(pair);
      }
    }
    for (size_t s = 0; s < num_shards; ++s) {
      for (const RecordPair& pair : now_positive[s]) {
        if (!shards_[s].positives.count(pair)) pos_added.push_back(pair);
      }
      for (const RecordPair& pair : shards_[s].positives) {
        if (!now_positive[s].count(pair)) pos_removed.push_back(pair);
      }
      shards_[s].positives = std::move(now_positive[s]);
    }
  } else {
    for (const RecordPair& pair : cand_added) {
      ShardState& owner = shards_[OwnerOf(pair)];
      if (owner.score_cache.at(pair) >= threshold) {
        owner.positives.insert(pair);
        pos_added.push_back(pair);
      }
    }
    for (const RecordPair& pair : cand_removed) {
      if (shards_[OwnerOf(pair)].positives.erase(pair) > 0) {
        pos_removed.push_back(pair);
      }
    }
    for (const RecordPair& pair : prov_changed) {
      if (shards_[OwnerOf(pair)].positives.count(pair)) {
        pos_prov_changed.push_back(pair);
      }
    }
  }
  std::sort(pos_added.begin(), pos_added.end());
  std::sort(pos_removed.begin(), pos_removed.end());
  std::sort(pos_prov_changed.begin(), pos_prov_changed.end());

  // Phase 4 — cross-shard merge: union the per-shard transitions into the
  // global component store and re-clean the dirty region.
  Stopwatch cleanup_watch;
  GroupStore::ApplyReport cleanup = store_.Apply(
      pos_added, pos_removed, pos_prov_changed, rescore_all,
      [this](const RecordPair& pair) { return candidate_prov_.at(pair); },
      config_.base.pipeline, pool_.get());
  report.components_rebuilt = cleanup.components_rebuilt;
  report.components_reused = cleanup.components_reused;
  report.cleanup_seconds = cleanup_watch.ElapsedSeconds();
  cleanup_seconds_total_ += report.cleanup_seconds;

  // Observability rollup (null-guarded, inert: the report is the semantic
  // output and does not depend on whether a registry is wired). The merge
  // phase doubles as the cleanup phase here, so it feeds both histograms.
  if (config_.base.pipeline.metrics != nullptr) {
    metrics.scoring_seconds->Observe(report.scoring_seconds);
    metrics.merge_seconds->Observe(report.cleanup_seconds);
    metrics.cleanup_seconds->Observe(report.cleanup_seconds);
    metrics.mutations->Increment();
    metrics.records_added->Increment(report.records_added);
    metrics.records_removed->Increment(report.records_removed);
    metrics.pairs_scored->Increment(report.pairs_scored);
    metrics.cache_hits->Increment(report.cache_hits);
    metrics.cache_evictions->Increment(report.cache_evictions);
    metrics.components_rebuilt->Increment(report.components_rebuilt);
    metrics.components_reused->Increment(report.components_reused);
  }
  return report;
}

Result<PipelineResult> ShardedPipeline::Snapshot() const {
  if (poisoned_) return PoisonError();
  PipelineResult result;
  for (const ShardState& shard : shards_) {
    result.predicted_pairs.insert(result.predicted_pairs.end(),
                                  shard.positives.begin(),
                                  shard.positives.end());
  }
  std::sort(result.predicted_pairs.begin(), result.predicted_pairs.end());
  store_.FillSnapshot(records_.size(), &alive_, &result);
  result.cleanup_stats.seconds = cleanup_seconds_total_;
  result.inference_seconds = scoring_seconds_total_;
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint bodies
// ---------------------------------------------------------------------------

Status ShardedPipeline::SerializeManifestBody(BinaryWriter* writer) const {
  if (poisoned_) return PoisonError();
  writer->WriteU64(config_.base.pipeline.cleanup.gamma);
  writer->WriteU64(config_.base.pipeline.cleanup.mu);
  writer->WriteDouble(config_.base.pipeline.match_threshold);
  writer->WriteU64(config_.base.pipeline.pre_cleanup_threshold);
  writer->WriteU64(config_.base.pipeline.num_threads);
  writer->WriteU64(config_.base.token.top_n);
  writer->WriteU64(config_.base.token.min_overlap);
  writer->WriteDouble(config_.base.token.max_token_df);
  writer->WriteU8(config_.base.use_token_blocker ? 1 : 0);
  writer->WriteU8(config_.base.use_id_blocker ? 1 : 0);
  writer->WriteU64(config_.num_shards);
  writer->WriteU64(config_.router_seed);
  writer->WriteString(fingerprint_);
  writer->WriteU64(records_.size());
  writer->WriteI32(store_.next_comp_id());
  writer->WriteDouble(scoring_seconds_total_);
  writer->WriteDouble(cleanup_seconds_total_);
  return Status::OK();
}

Status ShardedPipeline::SerializeShardBodies(
    std::vector<BinaryWriter>* writers) const {
  if (poisoned_) return PoisonError();
  // A component is stored with the shard owning its smallest node — one
  // owner per component, every component stored exactly once. One pass
  // buckets the whole store by owner shard.
  std::vector<std::vector<std::pair<int32_t, const GroupStore::ComponentState*>>>
      owned(shards_.size());
  for (const auto& [cid, comp] : store_.components()) {
    owned[shard_of_record_[static_cast<size_t>(comp.nodes.front())]]
        .emplace_back(cid, &comp);
  }
  writers->clear();
  writers->resize(shards_.size());
  // Tombstone sections are all-or-none across the shard files: they exist
  // exactly when the pipeline has any dead record (then the whole
  // checkpoint is stamped version 2), so a shard with no dead records still
  // writes an empty section and every file parses under one version.
  const bool with_tombstones = num_dead_ > 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].Save(records_, alive_, with_tombstones, owned[s],
                    &(*writers)[s]);
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedPipeline>> ShardedPipeline::DeserializeFromParts(
    BinaryReader* manifest_body, std::vector<BinaryReader>* shard_bodies,
    uint32_t version, size_t num_threads_override) {
  ShardedPipelineConfig config;
  uint64_t u = 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.pipeline.cleanup.gamma = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.pipeline.cleanup.mu = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(
      manifest_body->ReadDouble(&config.base.pipeline.match_threshold));
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.pipeline.pre_cleanup_threshold = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.pipeline.num_threads = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.token.top_n = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.base.token.min_overlap = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(
      manifest_body->ReadDouble(&config.base.token.max_token_df));
  uint8_t flag = 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU8(&flag));
  config.base.use_token_blocker = flag != 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU8(&flag));
  config.base.use_id_blocker = flag != 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&u));
  config.num_shards = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&config.router_seed));
  if (config.num_shards == 0 ||
      config.num_shards != shard_bodies->size()) {
    return Status::IOError(
        "corrupted manifest: shard count disagrees with the shard files");
  }
  if (num_threads_override > 0) {
    config.base.pipeline.num_threads = num_threads_override;
  }

  auto pipeline = std::make_unique<ShardedPipeline>(config);
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadString(&pipeline->fingerprint_));
  uint64_t num_records = 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadU64(&num_records));
  const size_t n = static_cast<size_t>(num_records);
  int32_t next_comp_id = 0;
  GRALMATCH_RETURN_NOT_OK(manifest_body->ReadI32(&next_comp_id));
  GRALMATCH_RETURN_NOT_OK(
      manifest_body->ReadDouble(&pipeline->scoring_seconds_total_));
  GRALMATCH_RETURN_NOT_OK(
      manifest_body->ReadDouble(&pipeline->cleanup_seconds_total_));

  // Parse every shard's slice, then reassemble the global record table:
  // the ids must tile [0, n) exactly, and each record must route to the
  // shard that stored it (otherwise pair ownership — and with it every
  // cache lookup — would disagree with the saved state).
  std::vector<ShardCheckpointPart> parts;
  parts.reserve(shard_bodies->size());
  for (BinaryReader& body : *shard_bodies) {
    auto part = ShardCheckpointPart::Parse(&body, n, version);
    if (!part.ok()) return part.status();
    parts.push_back(std::move(part).MoveValueUnsafe());
  }
  std::vector<Record> table(n);
  std::vector<int32_t> provider(n, -1);
  for (size_t s = 0; s < parts.size(); ++s) {
    for (auto& [id, rec] : parts[s].records) {
      if (provider[static_cast<size_t>(id)] != -1) {
        return Status::IOError(
            "corrupted shard checkpoint: record stored by two shards");
      }
      provider[static_cast<size_t>(id)] = static_cast<int32_t>(s);
      table[static_cast<size_t>(id)] = std::move(rec);
    }
  }
  for (size_t id = 0; id < n; ++id) {
    if (provider[id] < 0) {
      return Status::IOError(
          "corrupted shard checkpoint: record ids do not cover the record "
          "table (missing id " +
          std::to_string(id) + ")");
    }
    pipeline->records_.Add(std::move(table[id]));
    pipeline->shard_of_record_.push_back(static_cast<uint32_t>(provider[id]));
  }
  for (size_t id = 0; id < n; ++id) {
    if (pipeline->router_.ShardOf(
            pipeline->records_.at(static_cast<RecordId>(id))) !=
        static_cast<size_t>(provider[id])) {
      return Status::IOError(
          "corrupted shard checkpoint: record stored on a shard the router "
          "does not map it to");
    }
  }

  // Tombstones, merged from every shard's section (each shard stores the
  // dead ids it owns; Parse verified they reference that shard's records,
  // which are globally unique, so no id can arrive twice).
  pipeline->alive_.assign(n, 1);
  std::vector<RecordId> dead_ids;
  for (const ShardCheckpointPart& part : parts) {
    for (RecordId id : part.tombstones) {
      pipeline->alive_[static_cast<size_t>(id)] = 0;
      dead_ids.push_back(id);
    }
  }
  std::sort(dead_ids.begin(), dead_ids.end());
  pipeline->num_dead_ = dead_ids.size();

  // Tombstoned records retract every pair they touch, so a cached score or
  // positive referencing one is corruption.
  auto check_alive = [&pipeline](const RecordPair& pair) {
    if (!pipeline->alive_[static_cast<size_t>(pair.a)] ||
        !pipeline->alive_[static_cast<size_t>(pair.b)]) {
      return Status::IOError(
          "corrupted shard checkpoint: record pair references a tombstoned "
          "record");
    }
    return Status::OK();
  };

  // Shard-local scoring state; every pair must be owned by its shard.
  for (size_t s = 0; s < parts.size(); ++s) {
    ShardState& shard = pipeline->shards_[s];
    shard.owned.reserve(parts[s].records.size());
    for (const auto& [id, rec] : parts[s].records) shard.owned.push_back(id);
    for (const auto& [pair, score] : parts[s].score_cache) {
      if (pipeline->OwnerOf(pair) != s) {
        return Status::IOError(
            "corrupted shard checkpoint: cached score for a pair another "
            "shard owns");
      }
      GRALMATCH_RETURN_NOT_OK(check_alive(pair));
    }
    shard.score_cache = std::move(parts[s].score_cache);
    for (const RecordPair& pair : parts[s].positives) {
      if (pipeline->OwnerOf(pair) != s) {
        return Status::IOError(
            "corrupted shard checkpoint: positive pair another shard owns");
      }
      GRALMATCH_RETURN_NOT_OK(check_alive(pair));
      if (!shard.positives.insert(pair).second) {
        return Status::IOError(
            "corrupted shard checkpoint: duplicate positive pair");
      }
    }
    shard.matcher_calls = parts[s].matcher_calls;
    shard.cache_hits = parts[s].cache_hits;
  }

  // Rebuild the global blocking state from the reassembled record table and
  // tombstone set — index state is a pure function of (records,
  // tombstones), so one bulk publication round plus one bulk retraction
  // reproduces exactly what the saved exchange held — and derive the
  // candidate set from it.
  pipeline->exchange_.RebuildFromRecords(pipeline->records_, dead_ids,
                                         pipeline->pool_.get());
  if (config.base.use_id_blocker) {
    for (const RecordPair& pair :
         pipeline->exchange_.id_index().CurrentPairs()) {
      pipeline->candidate_prov_[pair] |= kBlockerIdOverlap;
    }
  }
  if (config.base.use_token_blocker) {
    for (const RecordPair& pair :
         pipeline->exchange_.token_index().CurrentPairs()) {
      pipeline->candidate_prov_[pair] |= kBlockerTokenOverlap;
    }
  }

  // Cross-shard invariants, mirroring the single-pipeline checkpoint: every
  // candidate scored in its owner's cache, every positive a candidate, and
  // a pre-ingest fingerprint only with empty state.
  for (const auto& [pair, prov] : pipeline->candidate_prov_) {
    if (!pipeline->shards_[pipeline->OwnerOf(pair)].score_cache.count(pair)) {
      return Status::IOError(
          "corrupted shard checkpoint: candidate pair without a cached "
          "score");
    }
  }
  bool any_state = !pipeline->candidate_prov_.empty();
  for (const ShardState& shard : pipeline->shards_) {
    any_state = any_state || !shard.score_cache.empty() ||
                !shard.positives.empty();
    for (const RecordPair& pair : shard.positives) {
      if (!pipeline->candidate_prov_.count(pair)) {
        return Status::IOError(
            "corrupted shard checkpoint: positive pair missing from the "
            "candidate set");
      }
    }
  }
  if (pipeline->fingerprint_.empty() && (n != 0 || any_state)) {
    return Status::IOError(
        "corrupted shard checkpoint: pre-ingest fingerprint with non-empty "
        "state");
  }

  // Global components, reassembled from their owner shards.
  pipeline->store_.EnsureNumRecords(n);
  for (size_t s = 0; s < parts.size(); ++s) {
    for (auto& [cid, comp] : parts[s].components) {
      if (comp.nodes.empty()) {
        return Status::IOError("corrupted checkpoint: empty component");
      }
      if (pipeline->shard_of_record_[static_cast<size_t>(
              comp.nodes.front())] != s) {
        return Status::IOError(
            "corrupted shard checkpoint: component stored on a shard that "
            "does not own its smallest node");
      }
      GRALMATCH_RETURN_NOT_OK(
          pipeline->store_.InsertComponent(cid, std::move(comp), n));
    }
  }
  pipeline->store_.SetNextComponentId(next_comp_id);
  // A tombstoned record has lost every positive edge, so it must have left
  // its component (Snapshot relies on this to skip dead singletons).
  for (size_t r = 0; r < n; ++r) {
    if (!pipeline->alive_[r] && pipeline->store_.comp_of_node()[r] >= 0) {
      return Status::IOError(
          "corrupted shard checkpoint: tombstoned record still inside a "
          "component");
    }
  }
  GRALMATCH_RETURN_NOT_OK(
      pipeline->store_.Validate([&pipeline](const RecordPair& pair) {
        return pipeline->shards_[pipeline->OwnerOf(pair)].positives.count(
                   pair) > 0;
      }));
  return pipeline;
}

}  // namespace gralmatch

#include "shard/candidate_exchange.h"

#include <utility>

#include "exec/thread_pool.h"

namespace gralmatch {

CandidateExchange::Deltas CandidateExchange::Exchange(
    const RecordTable& records, std::vector<RecordKeys> published,
    ThreadPool* pool) {
  Deltas deltas;
  if (use_id_) {
    std::vector<std::vector<std::string>> id_keys;
    id_keys.reserve(published.size());
    for (RecordKeys& keys : published) {
      id_keys.push_back(std::move(keys.id_keys));
    }
    deltas.id = id_index_.AddPublishedRecords(records, id_keys, pool);
  }
  if (use_token_) {
    std::vector<std::vector<std::string>> token_keys;
    token_keys.reserve(published.size());
    for (RecordKeys& keys : published) {
      token_keys.push_back(std::move(keys.token_keys));
    }
    deltas.token =
        token_index_.AddPublishedRecords(records, std::move(token_keys), pool);
  }
  return deltas;
}

CandidateExchange::Deltas CandidateExchange::Retract(
    const RecordTable& records, const std::vector<RecordId>& removed_ids,
    ThreadPool* pool) {
  Deltas deltas;
  if (use_id_) {
    deltas.id = id_index_.RemoveRecords(records, removed_ids, pool);
  }
  if (use_token_) {
    deltas.token = token_index_.RemoveRecords(records, removed_ids, pool);
  }
  return deltas;
}

void CandidateExchange::RebuildFromRecords(
    const RecordTable& records, const std::vector<RecordId>& dead_ids,
    ThreadPool* pool) {
  if (use_id_) {
    id_index_ = IncrementalIdOverlapIndex();
    (void)id_index_.AddRecords(records, pool);
    (void)id_index_.RemoveRecords(records, dead_ids, pool);
  }
  if (use_token_) {
    token_index_ = IncrementalTokenOverlapIndex(token_options_);
    (void)token_index_.AddRecords(records, pool);
    (void)token_index_.RemoveRecords(records, dead_ids, pool);
  }
}

}  // namespace gralmatch

#include "shard/shard_state.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/binary_io.h"

namespace gralmatch {

void ShardState::Save(
    const RecordTable& records, const std::vector<char>& alive,
    bool with_tombstones,
    const std::vector<std::pair<int32_t, const GroupStore::ComponentState*>>&
        owned_components,
    BinaryWriter* writer) const {
  // Owned records with their global ids: the union of every shard's list
  // reassembles the record table, id-complete and in order. Dead records
  // are stored too — their retained payloads re-extract blocking keys on
  // restore and keep the id space contiguous.
  writer->WriteU64(owned.size());
  for (const RecordId id : owned) {
    const Record& rec = records.at(id);
    writer->WriteI32(id);
    writer->WriteI32(rec.source());
    writer->WriteU8(static_cast<uint8_t>(rec.kind()));
    writer->WriteU64(rec.attributes().size());
    for (const auto& [name, value] : rec.attributes()) {
      writer->WriteString(name);
      writer->WriteString(value);
    }
  }

  // Tombstones (format v2): the owned ids that are dead, ascending (owned
  // is ascending). Present in every shard file or none — the caller passes
  // the same with_tombstones to all shards.
  if (with_tombstones) {
    std::vector<RecordId> dead;
    for (const RecordId id : owned) {
      if (!alive[static_cast<size_t>(id)]) dead.push_back(id);
    }
    writer->WriteU64(dead.size());
    for (const RecordId id : dead) writer->WriteI32(id);
  }

  std::vector<std::pair<RecordPair, double>> scores(score_cache.begin(),
                                                    score_cache.end());
  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer->WriteU64(scores.size());
  for (const auto& [pair, score] : scores) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteDouble(score);
  }

  std::vector<RecordPair> sorted_positives(positives.begin(), positives.end());
  std::sort(sorted_positives.begin(), sorted_positives.end());
  WriteRecordPairs(sorted_positives, writer);

  writer->WriteU64(matcher_calls);
  writer->WriteU64(cache_hits);

  // Components in sorted id order (the caller passes them presorted or not;
  // sort here so the bytes never depend on map iteration order).
  std::vector<std::pair<int32_t, const GroupStore::ComponentState*>> comps =
      owned_components;
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer->WriteU64(comps.size());
  for (const auto& [cid, comp] : comps) {
    writer->WriteI32(cid);
    WriteComponentState(*comp, writer);
  }
}

Result<ShardCheckpointPart> ShardCheckpointPart::Parse(BinaryReader* reader,
                                                       size_t num_records,
                                                       uint32_t version) {
  ShardCheckpointPart part;

  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(17, &count));
  part.records.reserve(static_cast<size_t>(count));
  RecordId prev_id = -1;
  for (uint64_t k = 0; k < count; ++k) {
    RecordId id = -1;
    int32_t source = 0;
    uint8_t kind = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&id));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&source));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&kind));
    if (id < 0 || static_cast<size_t>(id) >= num_records) {
      return Status::IOError(
          "corrupted shard checkpoint: record id out of range");
    }
    if (id <= prev_id) {
      return Status::IOError(
          "corrupted shard checkpoint: record ids not strictly ascending");
    }
    prev_id = id;
    if (kind > static_cast<uint8_t>(RecordKind::kProduct)) {
      return Status::IOError(
          "corrupted shard checkpoint: unknown record kind " +
          std::to_string(kind));
    }
    Record rec(static_cast<SourceId>(source), static_cast<RecordKind>(kind));
    uint64_t num_attrs = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &num_attrs));
    for (uint64_t a = 0; a < num_attrs; ++a) {
      std::string name, value;
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&name));
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&value));
      rec.Set(name, value);
    }
    part.records.emplace_back(id, std::move(rec));
  }

  // Tombstone section (format v2+): this shard's dead ids, a strictly
  // ascending subset of its record ids. Version 1 files predate tombstones.
  if (version >= 2) {
    uint64_t num_dead = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &num_dead));
    part.tombstones.reserve(static_cast<size_t>(num_dead));
    RecordId prev_dead = -1;
    for (uint64_t k = 0; k < num_dead; ++k) {
      RecordId id = -1;
      GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&id));
      if (id <= prev_dead) {
        return Status::IOError(
            "corrupted shard checkpoint: tombstone ids not strictly "
            "ascending");
      }
      prev_dead = id;
      const auto it = std::lower_bound(
          part.records.begin(), part.records.end(), id,
          [](const std::pair<RecordId, Record>& entry, RecordId target) {
            return entry.first < target;
          });
      if (it == part.records.end() || it->first != id) {
        return Status::IOError(
            "corrupted shard checkpoint: tombstone for a record this shard "
            "does not store");
      }
      part.tombstones.push_back(id);
    }
  }

  auto check_pair = [num_records](const RecordPair& pair) {
    if (pair.a < 0 || pair.b < 0 ||
        static_cast<size_t>(pair.a) >= num_records ||
        static_cast<size_t>(pair.b) >= num_records) {
      return Status::IOError(
          "corrupted shard checkpoint: record pair out of range");
    }
    return Status::OK();
  };
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &count));
  part.score_cache.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    double score = 0.0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&score));
    GRALMATCH_RETURN_NOT_OK(check_pair(pair));
    part.score_cache[pair] = score;
  }

  GRALMATCH_RETURN_NOT_OK(ReadRecordPairs(reader, num_records, &part.positives));

  uint64_t u = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  part.matcher_calls = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  part.cache_hits = static_cast<size_t>(u);

  uint64_t num_comps = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &num_comps));
  part.components.reserve(static_cast<size_t>(num_comps));
  for (uint64_t k = 0; k < num_comps; ++k) {
    int32_t cid = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&cid));
    GroupStore::ComponentState comp;
    GRALMATCH_RETURN_NOT_OK(ReadComponentState(reader, num_records, &comp));
    part.components.emplace_back(cid, std::move(comp));
  }
  return part;
}

}  // namespace gralmatch

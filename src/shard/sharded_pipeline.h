#ifndef GRALMATCH_SHARD_SHARDED_PIPELINE_H_
#define GRALMATCH_SHARD_SHARDED_PIPELINE_H_

/// \file sharded_pipeline.h
/// Partitioned incremental matching: the record space is split across S
/// shard-local states so ingest scales beyond one pipeline's memory and
/// lock domain, while the result stays *exactly* the single pipeline's.
///
/// Each Ingest round runs four phases:
///
///  1. Route: a deterministic content-hash ShardRouter assigns every new
///     record to a shard (shard_router.h). Pair ownership follows record
///     ownership: a pair belongs to the shard of its smaller record id.
///  2. Exchange: shards publish their new records' blocking keys
///     (identifier values, content tokens) and the CandidateExchange folds
///     every publication into global incremental indexes, producing the
///     exact candidate-pair delta — including pairs and retractions that
///     span shards (candidate_exchange.h).
///  3. Score: each shard scores the delta pairs it owns that miss its
///     shard-local cache, all shards concurrently on one ThreadPool (the
///     flattened task list keeps per-shard slices contiguous).
///  4. Merge: every shard's positive-edge transitions are merged and
///     union-found into *global* components — cross-shard edges join
///     components living on different shards — and the shared
///     dirty-component cleanup (stream/group_store.h) re-cleans exactly the
///     touched region.
///
/// Remove() and Update() extend the same machinery to the full CRUD
/// surface: a removal tombstones the records (ids are never recycled and
/// payloads stay in the table), the exchange retracts their blocking keys
/// globally, owner shards evict the cached scores the dead records touch,
/// and the dirty-component cleanup re-cleans exactly the components that
/// lost a node or an edge. An update is an exact remove-then-add of the new
/// payload inside one mutation round.
///
/// Schedule-equivalence contract (enforced by tests/shard_test.cc and
/// tests/crud_test.cc): Snapshot() after ANY interleaved add/update/delete
/// schedule, at any shard count S and any thread count, is identical —
/// predicted pairs, pre-cleanup components, groups, and all cleanup
/// counters — to the S=1 result, to IncrementalPipeline on the same
/// mutation sequence, and to a from-scratch EntityGroupPipeline::Run on the
/// final surviving record set. The argument: the exchange reproduces the
/// global candidate set exactly (additions and retractions both); a pair's
/// owner shard is stable, so the union of shard caches equals the single
/// cache key-for-key (each pair scored at most once per fingerprint,
/// pipeline-wide); the positive set is the same threshold test on the same
/// scores; and the merge feeds the identical transition stream to the
/// identical GroupStore machinery.
///
/// Checkpoints are partitioned the same way the state is: one framed file
/// per shard plus a manifest (serve/sharded_checkpoint.h).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "matching/matcher.h"
#include "shard/candidate_exchange.h"
#include "shard/shard_router.h"
#include "shard/shard_state.h"
#include "stream/group_store.h"
#include "stream/incremental_pipeline.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;
class ThreadPool;

/// Parameters of the sharded pipeline: the incremental pipeline's config
/// plus the partitioning.
struct ShardedPipelineConfig {
  /// Blocking/threshold/cleanup/num_threads semantics are exactly the
  /// incremental pipeline's; num_threads sizes the one pool all shards
  /// share.
  IncrementalPipelineConfig base;
  /// Number of shard-local states (clamped to at least 1).
  size_t num_shards = 1;
  /// Router seed: changes the partition, never the result.
  uint64_t router_seed = 0;
};

/// \brief Sharded incremental entity-group matching pipeline.
class ShardedPipeline {
 public:
  explicit ShardedPipeline(ShardedPipelineConfig config);
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Route, exchange, score and merge one batch; see file comment. The
  /// returned report is identical to the one IncrementalPipeline would
  /// return for the same ingest sequence (same scoring and cache-hit
  /// counts, same dirty-component scoping — only wall-clock differs).
  /// Same fail-fast contract as IncrementalPipeline::Ingest: a matcher
  /// throw poisons the pipeline and every later call returns a clean error.
  Result<IngestReport> Ingest(const std::vector<Record>& batch,
                              const PairwiseMatcher& matcher);

  /// Tombstone `ids` pipeline-wide; exact mirror of
  /// IncrementalPipeline::Remove. Every id must be in range, alive and
  /// unique — a bad set is an InvalidArgument error and mutates nothing.
  /// `matcher` may be consulted: a cross-shard retraction can re-admit a
  /// bucket or token that was previously over its cap, and re-admitted
  /// never-scored pairs must be scored.
  Result<IngestReport> Remove(const std::vector<RecordId>& ids,
                              const PairwiseMatcher& matcher);

  /// Replace each record's payload: an exact removal of the old ids plus an
  /// ingest of the new payloads in one mutation round (one dirty-component
  /// pass). New payloads get fresh ids; same validation as Remove.
  Result<IngestReport> Update(const std::vector<RecordUpdate>& batch,
                              const PairwiseMatcher& matcher);

  /// Current result; see the schedule-equivalence contract above.
  Result<PipelineResult> Snapshot() const;

  /// OK, or the poison error describing why the pipeline must be discarded.
  Status status() const;

  /// All ingested records in ingest order, ids assigned contiguously
  /// (global ids — shard membership never renumbers a record). Tombstoned
  /// records keep their slot; check is_alive().
  const RecordTable& records() const { return records_; }

  /// Liveness per record id (parallel to records()); 1 = alive.
  const std::vector<char>& alive() const { return alive_; }
  bool is_alive(RecordId id) const {
    return alive_[static_cast<size_t>(id)] != 0;
  }
  size_t num_dead() const { return num_dead_; }
  size_t num_live() const { return records_.size() - num_dead_; }

  const ShardedPipelineConfig& config() const { return config_; }

  /// Re-wire the observability sink. Runtime-only — never serialized into
  /// the manifest or shard bodies — so a pipeline restored from a sharded
  /// checkpoint always comes back uninstrumented; call this to resume
  /// recording into a caller-owned registry.
  void set_metrics(obs::MetricsRegistry* metrics) {
    config_.base.pipeline.metrics = metrics;
  }

  const ShardRouter& router() const { return router_; }
  size_t num_shards() const { return shards_.size(); }

  /// Records currently owned by `shard`.
  size_t ShardRecordCount(size_t shard) const {
    return shards_[shard].owned.size();
  }

  /// Fingerprint of the matcher used by the last Ingest ("" before the
  /// first); the manifest checkpoint stores it like the single-pipeline
  /// checkpoint does.
  const std::string& fingerprint() const { return fingerprint_; }

  /// Cumulative matcher invocations / cache hits, summed over shards.
  size_t total_matcher_calls() const;
  size_t total_cache_hits() const;

  // -- Checkpoint bodies ----------------------------------------------------
  // Framing (magic, version, per-file checksums, the manifest's per-shard
  // checksum list) is serve/sharded_checkpoint.h's job.

  /// Global coordinator state: config (shard count and router seed
  /// included), fingerprint, record count, component-id high-water mark and
  /// cumulative wall-clock totals. Everything else lives in shard bodies.
  Status SerializeManifestBody(BinaryWriter* writer) const;

  /// Every shard's slice, one writer per shard (`writers` is resized to
  /// num_shards()): its records (with global ids), its tombstones (only
  /// when the pipeline has any dead record — tombstone-free pipelines keep
  /// the version 1 byte layout, serve/sharded_checkpoint.h stamps the
  /// version to match), score cache, positives, counters, and the
  /// components whose smallest node it owns. All slices serialize in one
  /// call so the component store is bucketed by owner shard in a single
  /// pass instead of scanned once per shard.
  Status SerializeShardBodies(std::vector<BinaryWriter>* writers) const;

  /// Reassemble a pipeline from a manifest body and all S shard bodies (in
  /// shard order), parsed under checkpoint format `version`. The global
  /// blocking indexes are rebuilt from the reassembled record table and
  /// tombstone set — index state is a pure function of (records,
  /// tombstones), so the rebuilt exchange produces exactly the deltas the
  /// saved one would — and every cross-shard invariant is re-validated:
  /// record ids must cover [0, n) exactly, each record must route to the
  /// shard that stored it, every candidate must be scored in its owner
  /// shard's cache, positives must be owned candidates, components must
  /// partition consistently and never contain a tombstoned record. Any
  /// violation is a clean error.
  static Result<std::unique_ptr<ShardedPipeline>> DeserializeFromParts(
      BinaryReader* manifest_body, std::vector<BinaryReader>* shard_bodies,
      uint32_t version, size_t num_threads_override = 0);

 private:
  IngestReport MutateImpl(const std::vector<Record>& adds,
                          const std::vector<RecordId>& removal_ids,
                          const PairwiseMatcher& matcher);

  Status ValidateRemovals(const std::vector<RecordId>& ids) const;

  Status PoisonError() const;

  /// Owner shard of a pair: the shard of its smaller record id.
  size_t OwnerOf(const RecordPair& pair) const {
    return shard_of_record_[static_cast<size_t>(pair.a)];
  }

  ShardedPipelineConfig config_;
  ShardRouter router_;
  std::unique_ptr<ThreadPool> pool_;
  RecordTable records_;
  /// Liveness per record id (parallel to records_); tombstoned slots stay.
  std::vector<char> alive_;
  size_t num_dead_ = 0;
  /// Shard per record id (parallel to records_).
  std::vector<uint32_t> shard_of_record_;
  std::vector<ShardState> shards_;
  CandidateExchange exchange_;

  /// Current candidate pairs -> blocker provenance bits (global: the
  /// cleanup needs provenance for pairs of any shard).
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> candidate_prov_;
  std::string fingerprint_;

  /// Global components (cross-shard edges merge shard-disjoint node sets).
  GroupStore store_;

  bool poisoned_ = false;
  std::string poison_reason_;

  double scoring_seconds_total_ = 0.0;
  double cleanup_seconds_total_ = 0.0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_SHARD_SHARDED_PIPELINE_H_

#ifndef GRALMATCH_SHARD_CANDIDATE_EXCHANGE_H_
#define GRALMATCH_SHARD_CANDIDATE_EXCHANGE_H_

/// \file candidate_exchange.h
/// The cross-shard candidate discovery layer. Blocking is inherently global
/// — a token's document-frequency eligibility, the rising max-df cap, and a
/// record's top-n ranking all depend on the *whole* record set, and an
/// identifier bucket spans every shard holding the value — so shard-local
/// indexes alone would miss (or mistakenly keep) pairs whose evidence lives
/// on another shard.
///
/// The exchange solves this exactly rather than approximately: each shard
/// publishes its new records' blocking keys (identifier values and content
/// tokens, extracted shard-parallel via the indexes' ExtractKeys hooks), and
/// the exchange folds every shard's publications into one pair of global
/// incremental indexes (blocking/incremental_index.h). Pairs spanning shards
/// are therefore discovered — and retracted — exactly as the single-pipeline
/// indexes would, which is what makes the sharded pipeline's
/// shard-count-invariance contract (sharded_pipeline.h) provable instead of
/// probabilistic.

#include <vector>

#include "blocking/incremental_index.h"
#include "data/record.h"
#include "stream/incremental_pipeline.h"

namespace gralmatch {

class ThreadPool;

/// Blocking keys one shard publishes for one newly ingested record.
struct RecordKeys {
  std::vector<std::string> id_keys;     ///< IncrementalIdOverlapIndex keys
  std::vector<std::string> token_keys;  ///< IncrementalTokenOverlapIndex keys
};

/// \brief Global blocking state fed by per-shard key publications.
class CandidateExchange {
 public:
  explicit CandidateExchange(const IncrementalPipelineConfig& config)
      : use_id_(config.use_id_blocker),
        use_token_(config.use_token_blocker),
        token_options_(config.token),
        token_index_(config.token) {}

  /// Exact candidate-set changes of one exchange round, per blocking.
  struct Deltas {
    CandidateDelta id;
    CandidateDelta token;
  };

  /// Fold the batch's published keys into the global indexes.
  /// `published[k]` holds the keys of record `records.size() - published.size() + k`
  /// (the newly appended tail), extracted by that record's owner shard with
  /// the respective index's ExtractKeys. Returns the exact global deltas.
  Deltas Exchange(const RecordTable& records,
                  std::vector<RecordKeys> published, ThreadPool* pool);

  /// Cross-shard retraction round: pull `removed_ids` (in range, live,
  /// unique, any owner shard) out of the global indexes. Keys are
  /// re-extracted from the records' retained payloads, so no shard needs to
  /// republish anything. Returns the exact global deltas — retraction can
  /// *add* pairs (a bucket shrinking back under its cap, a df falling back
  /// into eligibility).
  Deltas Retract(const RecordTable& records,
                 const std::vector<RecordId>& removed_ids, ThreadPool* pool);

  /// Rebuild the global indexes from scratch over `records` minus
  /// `dead_ids` (checkpoint restore): one bulk round of every record's
  /// publications followed by one bulk retraction of the tombstoned ids.
  /// Index state is a pure function of (record table, tombstone set) —
  /// every structure is defined by those plus the options, not by arrival
  /// history — so the rebuilt exchange diffs future batches exactly as the
  /// original would have.
  void RebuildFromRecords(const RecordTable& records,
                          const std::vector<RecordId>& dead_ids,
                          ThreadPool* pool);

  const IncrementalIdOverlapIndex& id_index() const { return id_index_; }
  const IncrementalTokenOverlapIndex& token_index() const {
    return token_index_;
  }

 private:
  bool use_id_ = true;
  bool use_token_ = true;
  TokenOverlapBlocker::Options token_options_;
  IncrementalIdOverlapIndex id_index_;
  IncrementalTokenOverlapIndex token_index_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_SHARD_CANDIDATE_EXCHANGE_H_

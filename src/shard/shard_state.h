#ifndef GRALMATCH_SHARD_SHARD_STATE_H_
#define GRALMATCH_SHARD_SHARD_STATE_H_

/// \file shard_state.h
/// The shard-local slice of a ShardedPipeline: which records the router
/// assigned to the shard, and the scoring state of the pairs the shard
/// *owns*. Pair ownership is deterministic — a pair belongs to the shard of
/// its smaller record id — so every pair has exactly one score cache
/// responsible for it and the union of all shard caches reproduces the
/// single pipeline's cache key-for-key (the heart of the shard-count
/// invariance proof in sharded_pipeline.h).
///
/// This is the IncrementalPipeline's per-pair state factored into a
/// partitionable value type; the global state (records, blocking indexes,
/// component store) stays in the coordinating pipeline.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "data/ground_truth.h"
#include "data/record.h"
#include "stream/group_store.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;

/// \brief One shard's records and pair-scoring state.
struct ShardState {
  /// Global ids of the records routed to this shard, ascending (appended in
  /// ingest order, and ids are assigned in ingest order).
  std::vector<RecordId> owned;
  /// Score cache for the pairs this shard owns, under the pipeline's
  /// current matcher fingerprint.
  std::unordered_map<RecordPair, double, RecordPairHash> score_cache;
  /// Owned pairs currently at or above the match threshold.
  std::unordered_set<RecordPair, RecordPairHash> positives;
  /// Cumulative matcher invocations / cache hits attributed to this shard.
  size_t matcher_calls = 0;
  size_t cache_hits = 0;

  /// Serialize this shard's slice — owned records (with global ids and full
  /// payloads, so the union of all shard files reassembles the record
  /// table), tombstones (the owned ids that are dead in the pipeline-global
  /// `alive` mask; written only when `with_tombstones`, which the pipeline
  /// sets for ALL shards exactly when any record pipeline-wide is dead, so
  /// the per-file layout is a function of the checkpoint version alone),
  /// score cache, positives, counters, and the components whose smallest
  /// node this shard owns (`owned_components`, from the global GroupStore).
  /// Map-backed state is written sorted, so equal slices serialize to equal
  /// bytes.
  void Save(const RecordTable& records, const std::vector<char>& alive,
            bool with_tombstones,
            const std::vector<std::pair<int32_t, const GroupStore::ComponentState*>>&
                owned_components,
            BinaryWriter* writer) const;
};

/// Parsed form of ShardState::Save output; the coordinating pipeline merges
/// the parts of every shard back into global state.
struct ShardCheckpointPart {
  /// (global id, payload), ascending by id.
  std::vector<std::pair<RecordId, Record>> records;
  /// Dead ids owned by this shard, ascending (format v2+; empty before).
  std::vector<RecordId> tombstones;
  std::unordered_map<RecordPair, double, RecordPairHash> score_cache;
  std::vector<RecordPair> positives;
  size_t matcher_calls = 0;
  size_t cache_hits = 0;
  std::vector<std::pair<int32_t, GroupStore::ComponentState>> components;

  /// Read one shard body laid out under checkpoint format `version`.
  /// `num_records` bounds every record id and pair; record ids must be
  /// strictly ascending within the shard and tombstones must be a strictly
  /// ascending subset of them. Structural validation only — cross-shard
  /// invariants are the pipeline's job.
  static Result<ShardCheckpointPart> Parse(BinaryReader* reader,
                                           size_t num_records,
                                           uint32_t version);
};

}  // namespace gralmatch

#endif  // GRALMATCH_SHARD_SHARD_STATE_H_

#include "shard/shard_router.h"

#include <string_view>

namespace gralmatch {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Absorb(std::string_view bytes, uint64_t* h) {
  for (const char c : bytes) {
    *h ^= static_cast<uint8_t>(c);
    *h *= kFnvPrime;
  }
}

void AbsorbByte(uint8_t byte, uint64_t* h) {
  *h ^= byte;
  *h *= kFnvPrime;
}

}  // namespace

ShardRouter::ShardRouter(size_t num_shards, uint64_t seed)
    : num_shards_(num_shards == 0 ? 1 : num_shards), seed_(seed) {}

uint64_t ShardRouter::KeyOf(const Record& record) const {
  uint64_t h = kFnvOffset;
  for (int shift = 0; shift < 64; shift += 8) {
    AbsorbByte(static_cast<uint8_t>(seed_ >> shift), &h);
  }
  const uint16_t source = static_cast<uint16_t>(record.source());
  AbsorbByte(static_cast<uint8_t>(source), &h);
  AbsorbByte(static_cast<uint8_t>(source >> 8), &h);
  AbsorbByte(static_cast<uint8_t>(record.kind()), &h);
  for (const auto& [name, value] : record.attributes()) {
    if (!name.empty() && name.front() == '_') continue;  // metadata
    // 0x1F/0x1E separators keep ("ab","c") and ("a","bc") distinct.
    Absorb(name, &h);
    AbsorbByte(0x1F, &h);
    Absorb(value, &h);
    AbsorbByte(0x1E, &h);
  }
  return h;
}

}  // namespace gralmatch

#ifndef GRALMATCH_SHARD_SHARD_ROUTER_H_
#define GRALMATCH_SHARD_SHARD_ROUTER_H_

/// \file shard_router.h
/// Deterministic content-hash routing of records to shards. The route is a
/// pure function of the record's *content* (source, kind, non-metadata
/// attributes) and the router's (shard count, seed) — never of arrival
/// order, record id, or thread count — so the same feed partitions the same
/// way on every run, and a record that recurs in a later batch lands on the
/// shard that already knows its neighbourhood.
///
/// Metadata attributes (names beginning with '_') are excluded by the same
/// convention that keeps them out of every matching input: instrumentation
/// stamps must not move a record between shards.

#include <cstddef>
#include <cstdint>

#include "data/record.h"

namespace gralmatch {

/// \brief Stateless content-hash shard router.
class ShardRouter {
 public:
  ShardRouter() = default;
  /// `num_shards` is clamped to at least 1; `seed` perturbs the hash so two
  /// deployments can partition the same feed differently.
  ShardRouter(size_t num_shards, uint64_t seed);

  size_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// Seeded FNV-1a 64 digest of the record's routing content.
  uint64_t KeyOf(const Record& record) const;

  /// Shard this record belongs to, in [0, num_shards).
  size_t ShardOf(const Record& record) const {
    return static_cast<size_t>(KeyOf(record) % num_shards_);
  }

 private:
  size_t num_shards_ = 1;
  uint64_t seed_ = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_SHARD_SHARD_ROUTER_H_

#ifndef GRALMATCH_MATCHING_MATCHER_H_
#define GRALMATCH_MATCHING_MATCHER_H_

/// \file matcher.h
/// Pairwise matcher interface. GraLMatch is matcher-agnostic (Figure 1 of
/// the paper): any component that scores record pairs can feed the graph
/// cleanup. See docs/matchers.md for the catalogue of implementations and
/// the batched-scoring / fingerprint contracts in prose.

#include <string>

#include "common/span.h"
#include "data/ground_truth.h"
#include "data/record.h"

namespace gralmatch {

/// \brief Scores record pairs as Match / NoMatch.
class PairwiseMatcher {
 public:
  virtual ~PairwiseMatcher() = default;

  /// Display name ("DistilBERT (128)-ALL", ...).
  virtual std::string name() const = 0;

  /// Probability in [0, 1] that the two records refer to the same entity.
  virtual double MatchProbability(const Record& a, const Record& b) const = 0;

  /// Score a batch of candidate pairs into `out` (out.size() == pairs.size();
  /// out[i] is the score of pairs[i] against `records`).
  ///
  /// Contract — batch composition never changes results: for every i,
  /// out[i] is bitwise-identical to
  /// MatchProbability(records.at(pairs[i].a), records.at(pairs[i].b)), for
  /// any split of a pair set into batches and any batch order. Overrides
  /// exist purely to amortize per-call costs (one padded/packed forward pass
  /// in TransformerMatcher, gate-then-escalate batching in CascadeMatcher);
  /// they must never make scores depend on the other pairs in the batch.
  /// The differential suites (tests/property_test.cc random batch splits,
  /// the batch-vs-per-pair pipeline tests) enforce this bitwise.
  ///
  /// The default implementation loops MatchProbability, which trivially
  /// satisfies the contract. Like MatchProbability, ScoreBatch must be
  /// const-thread-safe: the scoring sites fan batches out across threads.
  virtual void ScoreBatch(const RecordTable& records,
                          Span<const RecordPair> pairs,
                          Span<double> out) const {
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = MatchProbability(records.at(pairs[i].a), records.at(pairs[i].b));
    }
  }

  /// Stable identifier of this matcher's scoring function.
  ///
  /// Contract — the fingerprint must change whenever scores can change: two
  /// matchers with equal fingerprints must produce identical
  /// MatchProbability/ScoreBatch outputs on every record pair. Pair-score
  /// caches (stream/, shard/) and checkpoints (serve/) key on it, so any
  /// state that influences a score has to be folded in:
  ///   - trained parameters (TfidfLogRegMatcher digests its weights,
  ///     TransformerMatcher bumps a per-mutation revision),
  ///   - configuration that routes or thresholds scoring (CascadeMatcher
  ///     folds its band thresholds, reference mode, and both inner
  ///     fingerprints — two cascades that differ only in a threshold must
  ///     not alias, tests/matching_test.cc pins this),
  ///   - inner matchers of any wrapper (SlowLlmMatcher).
  /// The default is the display name, which is only correct for stateless,
  /// parameterless matchers.
  virtual std::string Fingerprint() const { return name(); }

  /// Binary decision at the 0.5 threshold.
  bool IsMatch(const Record& a, const Record& b) const {
    return MatchProbability(a, b) >= 0.5;
  }
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_MATCHER_H_

#ifndef GRALMATCH_MATCHING_MATCHER_H_
#define GRALMATCH_MATCHING_MATCHER_H_

/// \file matcher.h
/// Pairwise matcher interface. GraLMatch is matcher-agnostic (Figure 1 of
/// the paper): any component that scores record pairs can feed the graph
/// cleanup.

#include <string>

#include "data/record.h"

namespace gralmatch {

/// \brief Scores record pairs as Match / NoMatch.
class PairwiseMatcher {
 public:
  virtual ~PairwiseMatcher() = default;

  /// Display name ("DistilBERT (128)-ALL", ...).
  virtual std::string name() const = 0;

  /// Probability in [0, 1] that the two records refer to the same entity.
  virtual double MatchProbability(const Record& a, const Record& b) const = 0;

  /// Stable identifier of this matcher's scoring function: two matchers
  /// with equal fingerprints must produce identical MatchProbability
  /// outputs on every record pair. Pair-score caches (stream/) key on it,
  /// so matchers with trained or configurable state must fold a parameter
  /// digest into the string; the default is the display name, which is only
  /// correct for stateless matchers.
  virtual std::string Fingerprint() const { return name(); }

  /// Binary decision at the 0.5 threshold.
  bool IsMatch(const Record& a, const Record& b) const {
    return MatchProbability(a, b) >= 0.5;
  }
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_MATCHER_H_

#include "matching/pair_sampling.h"

#include <algorithm>
#include <unordered_set>

#include "blocking/id_overlap.h"
#include "text/corporate.h"
#include "text/similarity.h"

namespace gralmatch {

std::vector<LabeledPair> SamplePairs(const Dataset& dataset,
                                     const GroupSplit& split, SplitPart part,
                                     const PairSamplingOptions& options) {
  Rng rng(options.seed);
  std::vector<LabeledPair> out;

  // Positives: complete graph of every group restricted to this part.
  auto groups = dataset.truth.Groups();
  std::vector<EntityId> entities;
  entities.reserve(groups.size());
  for (const auto& [e, members] : groups) entities.push_back(e);
  std::sort(entities.begin(), entities.end());

  std::vector<RecordPair> positives;
  for (EntityId e : entities) {
    const auto& members = groups[e];
    for (size_t i = 0; i < members.size(); ++i) {
      if (split.part(members[i]) != part) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (split.part(members[j]) != part) continue;
        positives.emplace_back(members[i], members[j]);
      }
    }
  }
  if (options.max_positives > 0 && positives.size() > options.max_positives) {
    rng.Shuffle(&positives);
    positives.resize(options.max_positives);
    std::sort(positives.begin(), positives.end());
  }
  for (const auto& p : positives) out.push_back({p, 1});

  // Random cross-source negatives from the same part.
  std::vector<RecordId> part_records = split.RecordsIn(part);
  std::unordered_set<RecordPair, RecordPairHash> seen(positives.begin(),
                                                      positives.end());
  size_t target =
      static_cast<size_t>(options.negatives_per_positive *
                          static_cast<double>(positives.size()));
  size_t attempts = 0;
  const size_t max_attempts = target * 20 + 100;
  while (out.size() < positives.size() + target && attempts++ < max_attempts) {
    if (part_records.size() < 2) break;
    RecordId a = part_records[rng.Uniform(part_records.size())];
    RecordId b = part_records[rng.Uniform(part_records.size())];
    if (a == b) continue;
    if (dataset.records.at(a).source() == dataset.records.at(b).source()) {
      continue;
    }
    RecordPair pair(a, b);
    if (dataset.truth.IsMatch(pair)) continue;
    if (!seen.insert(pair).second) continue;
    out.push_back({pair, 0});
  }
  return out;
}

namespace {

/// True if the two records share any identifier value.
bool ShareIdentifier(const Record& a, const Record& b) {
  for (const auto& attr : IdentifierAttributes()) {
    auto va = a.GetMulti(attr);
    if (va.empty()) continue;
    auto vb = b.GetMulti(attr);
    for (const auto& x : va) {
      for (const auto& y : vb) {
        if (x == y) return true;
      }
    }
  }
  return false;
}

/// "Easily labelled" positive pair: matchable with a glance — shared
/// identifier or near-identical canonical names.
bool IsEasyPositive(const Record& a, const Record& b) {
  if (ShareIdentifier(a, b)) return true;
  std::string ca = CanonicalCompanyName(a.Get("name").empty()
                                            ? a.Get("title")
                                            : a.Get("name"));
  std::string cb = CanonicalCompanyName(b.Get("name").empty()
                                            ? b.Get("title")
                                            : b.Get("name"));
  if (ca.empty() || cb.empty()) return false;
  return JaroWinkler(ca, cb) >= 0.95;
}

}  // namespace

std::vector<LabeledPair> FilterEasyPairs(const Dataset& dataset,
                                         const std::vector<LabeledPair>& pairs,
                                         size_t max_pairs) {
  std::vector<LabeledPair> out;
  for (const auto& lp : pairs) {
    if (max_pairs > 0 && out.size() >= max_pairs) break;
    const Record& a = dataset.records.at(lp.pair.a);
    const Record& b = dataset.records.at(lp.pair.b);
    if (a.Get("_event") == "acquisition" || b.Get("_event") == "acquisition") {
      continue;
    }
    if (lp.label == 1 && !IsEasyPositive(a, b)) continue;
    out.push_back(lp);
  }
  return out;
}

}  // namespace gralmatch

#include "matching/variants.h"

namespace gralmatch {

std::string VariantDisplayName(ModelVariant variant) {
  switch (variant) {
    case ModelVariant::kDitto128: return "DITTO (128)";
    case ModelVariant::kDitto256: return "DITTO (256)";
    case ModelVariant::kDistilBert128All: return "DistilBERT (128)-ALL";
    case ModelVariant::kDistilBert128_15K: return "DistilBERT (128)-15K";
  }
  return "unknown";
}

bool VariantUsesReducedTraining(ModelVariant variant) {
  return variant == ModelVariant::kDistilBert128_15K;
}

TransformerMatcherConfig MakeVariantConfig(ModelVariant variant, uint64_t seed,
                                           size_t short_seq, size_t long_seq) {
  TransformerMatcherConfig config;
  config.display_name = VariantDisplayName(variant);
  config.seed = seed;
  switch (variant) {
    case ModelVariant::kDitto128:
      config.ditto_encoding = true;
      config.max_seq_len = short_seq;
      break;
    case ModelVariant::kDitto256:
      config.ditto_encoding = true;
      config.max_seq_len = long_seq;
      break;
    case ModelVariant::kDistilBert128All:
    case ModelVariant::kDistilBert128_15K:
      config.ditto_encoding = false;
      config.max_seq_len = short_seq;
      break;
  }
  return config;
}

const std::vector<ModelVariant>& AllModelVariants() {
  static const std::vector<ModelVariant> kVariants = {
      ModelVariant::kDitto128, ModelVariant::kDitto256,
      ModelVariant::kDistilBert128All, ModelVariant::kDistilBert128_15K};
  return kVariants;
}

}  // namespace gralmatch

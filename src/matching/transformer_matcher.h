#ifndef GRALMATCH_MATCHING_TRANSFORMER_MATCHER_H_
#define GRALMATCH_MATCHING_TRANSFORMER_MATCHER_H_

/// \file transformer_matcher.h
/// The language-model pairwise matcher: a subword vocabulary, a pair
/// serializer (plain or Ditto-tagged) and the from-scratch transformer
/// classifier, with fine-tuning, persistence and the PairwiseMatcher
/// interface. One instance corresponds to one model row of Tables 3/4.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "matching/matcher.h"
#include "matching/pair_sampling.h"
#include "matching/serializer.h"
#include "nn/trainer.h"
#include "text/vocab.h"

namespace gralmatch {

/// Configuration of a transformer matcher variant.
struct TransformerMatcherConfig {
  std::string display_name = "DistilBERT";
  bool ditto_encoding = false;   ///< Ditto [COL]/[VAL] tags vs plain values
  size_t max_seq_len = 48;       ///< stands in for the paper's 128/256 tokens
  size_t d_model = 32;
  size_t num_heads = 2;
  size_t num_layers = 2;
  size_t d_ff = 64;
  size_t vocab_max_words = 6000;
  uint64_t seed = 1234;
  Trainer::Options trainer;
};

/// \brief Transformer-based pairwise matcher.
class TransformerMatcher : public PairwiseMatcher {
 public:
  explicit TransformerMatcher(TransformerMatcherConfig config);

  /// Train the subword vocabulary on the given records and initialize the
  /// model. Must be called (or Load()) before fine-tuning or scoring.
  void BuildVocab(const RecordTable& records);

  /// Turn labelled pairs into encoded training examples.
  std::vector<TrainExample> MakeExamples(
      const RecordTable& records, const std::vector<LabeledPair>& pairs) const;

  /// Fine-tune on labelled pairs with best-epoch selection on `val`.
  TrainResult FineTune(const RecordTable& records,
                       const std::vector<LabeledPair>& train,
                       const std::vector<LabeledPair>& val);

  // PairwiseMatcher:
  std::string name() const override { return config_.display_name; }
  double MatchProbability(const Record& a, const Record& b) const override;

  /// Batched override: encodes every pair, then runs ONE packed forward
  /// pass (TransformerClassifier::PredictBatch) instead of pairs.size()
  /// independent ones — per-pair allocation and weight-matrix traffic are
  /// amortized over the batch. Scores are bitwise-identical to per-pair
  /// MatchProbability for any batch composition (the PredictBatch
  /// guarantee); see docs/matchers.md "Batched inference".
  void ScoreBatch(const RecordTable& records, Span<const RecordPair> pairs,
                  Span<double> out) const override;

  /// Name plus a process-unique revision that changes on every mutation of
  /// the trained state (BuildVocab, FineTune, Load), so a retrained or
  /// reloaded matcher never aliases a stale pair-score cache entry. Not
  /// stable across processes — it keys in-memory caches only.
  std::string Fingerprint() const override;

  /// Persist vocabulary + weights into a directory (created if needed).
  Status Save(const std::string& dir) const;

  /// Restore a matcher saved with Save(). The config must match.
  Status Load(const std::string& dir);

  bool ready() const { return model_ != nullptr; }
  const TransformerMatcherConfig& config() const { return config_; }
  const SubwordVocab& vocab() const { return vocab_; }
  const PairSerializer& serializer() const { return *serializer_; }

 private:
  TransformerMatcherConfig config_;
  SubwordVocab vocab_;
  std::unique_ptr<PairSerializer> serializer_;
  std::unique_ptr<TransformerClassifier> model_;
  /// Bumped to a fresh process-unique value by every state mutation.
  uint64_t revision_ = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_TRANSFORMER_MATCHER_H_

#include "matching/cascade_matcher.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace gralmatch {

namespace {
/// Exact bit pattern of a double as a hex string, so Fingerprint() cannot
/// alias two thresholds that round-trip to the same decimal text.
std::string DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}
}  // namespace

CascadeMatcher::CascadeMatcher(const PairwiseMatcher* gate,
                               const PairwiseMatcher* expensive,
                               Options options)
    : gate_(gate), expensive_(expensive), options_(options) {}

std::string CascadeMatcher::name() const {
  return "Cascade(" + gate_->name() + "->" + expensive_->name() + ")";
}

double CascadeMatcher::MatchProbability(const Record& a,
                                        const Record& b) const {
  const double g = gate_->MatchProbability(a, b);
  if (!Escalates(g)) {
    gate_resolved_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.exact_reference) return g;
  } else {
    escalated_.fetch_add(1, std::memory_order_relaxed);
  }
  return expensive_->MatchProbability(a, b);
}

void CascadeMatcher::ScoreBatch(const RecordTable& records,
                                Span<const RecordPair> pairs,
                                Span<double> out) const {
  const size_t n = pairs.size();
  if (n == 0) return;
  gate_->ScoreBatch(records, pairs, out);

  // Gather the pairs the gate could not resolve (all of them in
  // exact_reference mode), keeping batch order so the expensive matcher
  // sees the same subsequence any per-pair walk would produce.
  std::vector<RecordPair> escalate;
  std::vector<size_t> positions;
  uint64_t resolved = 0;
  uint64_t banded = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool band = Escalates(out[i]);
    if (band) {
      ++banded;
    } else {
      ++resolved;
    }
    if (band || options_.exact_reference) {
      escalate.push_back(pairs[i]);
      positions.push_back(i);
    }
  }
  gate_resolved_.fetch_add(resolved, std::memory_order_relaxed);
  escalated_.fetch_add(banded, std::memory_order_relaxed);
  if (escalate.empty()) return;

  std::vector<double> expensive_scores(escalate.size());
  expensive_->ScoreBatch(
      records, Span<const RecordPair>(escalate.data(), escalate.size()),
      Span<double>(expensive_scores.data(), expensive_scores.size()));
  for (size_t k = 0; k < positions.size(); ++k) {
    out[positions[k]] = expensive_scores[k];
  }
}

std::string CascadeMatcher::Fingerprint() const {
  return "cascade|lo=" + DoubleBits(options_.lower_threshold) +
         "|hi=" + DoubleBits(options_.upper_threshold) +
         "|ref=" + (options_.exact_reference ? "1" : "0") + "|gate=[" +
         gate_->Fingerprint() + "]|exp=[" + expensive_->Fingerprint() + "]";
}

}  // namespace gralmatch

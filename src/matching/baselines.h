#ifndef GRALMATCH_MATCHING_BASELINES_H_
#define GRALMATCH_MATCHING_BASELINES_H_

/// \file baselines.h
/// Non-transformer pairwise matchers: the identifier-overlap heuristic that
/// the financial industry uses as its benchmark (§5.3.1), a classical
/// TF-IDF + logistic-regression matcher, and the calibrated-latency LLM
/// stand-in used for the §5.2 feasibility arithmetic.

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "matching/matcher.h"
#include "matching/pair_sampling.h"
#include "text/tfidf.h"

namespace gralmatch {

/// \brief Matches iff the records share any identifier value (for company
/// records: no identifiers means never matched).
class HeuristicIdMatcher : public PairwiseMatcher {
 public:
  std::string name() const override { return "ID Heuristic"; }
  double MatchProbability(const Record& a, const Record& b) const override;
};

/// \brief Logistic regression over classical similarity features:
/// TF-IDF cosine of all text, Jaccard and Jaro-Winkler of names, and an
/// identifier-overlap indicator. A Magellan-style baseline.
class TfidfLogRegMatcher : public PairwiseMatcher {
 public:
  struct Options {
    size_t epochs = 8;
    float lr = 0.5f;
    uint64_t seed = 3;
  };

  TfidfLogRegMatcher() : options_() {}
  explicit TfidfLogRegMatcher(Options options) : options_(options) {}

  /// Fit the TF-IDF space on `records` and the regression on the pairs.
  void Train(const RecordTable& records, const std::vector<LabeledPair>& pairs);

  std::string name() const override { return "TFIDF-LogReg"; }
  double MatchProbability(const Record& a, const Record& b) const override;

  /// Name plus a digest of the learned weights, so a retrained matcher
  /// never aliases a stale pair-score cache entry.
  std::string Fingerprint() const override;

  /// The learned feature weights (bias last), for tests/inspection.
  const std::vector<float>& weights() const { return weights_; }

  static constexpr size_t kNumFeatures = 4;

 private:
  std::vector<float> Features(const Record& a, const Record& b) const;

  Options options_;
  TfidfVectorizer tfidf_;
  std::vector<float> weights_;
};

/// \brief Calibrated-latency wrapper reproducing the paper's LLM argument:
/// a LlaMa2-class model needs ~7 s per candidate pair, making million-pair
/// workloads infeasible (90+ days). Scoring delegates to an inner matcher;
/// ProjectedSeconds does the feasibility arithmetic without sleeping.
class SlowLlmMatcher : public PairwiseMatcher {
 public:
  /// \param inner matcher that produces the actual decision.
  /// \param seconds_per_pair calibrated LLM latency (paper: 7 s).
  SlowLlmMatcher(std::unique_ptr<PairwiseMatcher> inner, double seconds_per_pair)
      : inner_(std::move(inner)), seconds_per_pair_(seconds_per_pair) {}

  std::string name() const override { return "LLM (7s/pair)"; }
  double MatchProbability(const Record& a, const Record& b) const override {
    return inner_->MatchProbability(a, b);
  }

  /// Scores come from the inner matcher, so the fingerprint must too: two
  /// wrappers around different inner matchers may not alias in a pair-score
  /// cache.
  std::string Fingerprint() const override {
    return name() + "|" + inner_->Fingerprint();
  }

  /// Wall-clock this matcher would need for `num_pairs` evaluations.
  double ProjectedSeconds(uint64_t num_pairs) const {
    return seconds_per_pair_ * static_cast<double>(num_pairs);
  }

  double seconds_per_pair() const { return seconds_per_pair_; }

 private:
  std::unique_ptr<PairwiseMatcher> inner_;
  double seconds_per_pair_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_BASELINES_H_

#include "matching/transformer_matcher.h"

#include <atomic>
#include <filesystem>

namespace gralmatch {

namespace {
/// Process-unique revision source for Fingerprint(): every trained-state
/// mutation of any TransformerMatcher draws a fresh value.
uint64_t NextRevision() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1) + 1;
}
}  // namespace

TransformerMatcher::TransformerMatcher(TransformerMatcherConfig config)
    : config_(std::move(config)) {
  if (config_.ditto_encoding) {
    serializer_ = std::make_unique<DittoSerializer>();
  } else {
    serializer_ = std::make_unique<PlainSerializer>();
  }
}

void TransformerMatcher::BuildVocab(const RecordTable& records) {
  std::vector<std::string> docs;
  docs.reserve(records.size());
  for (const auto& rec : records.records()) {
    docs.push_back(serializer_->VocabText(rec));
  }
  vocab_ = SubwordVocab();
  vocab_.Train(docs, config_.vocab_max_words);

  TransformerConfig model_config;
  model_config.vocab_size = vocab_.size();
  model_config.d_model = config_.d_model;
  model_config.num_heads = config_.num_heads;
  model_config.num_layers = config_.num_layers;
  model_config.d_ff = config_.d_ff;
  model_config.max_seq_len = config_.max_seq_len;
  model_config.num_classes = 2;
  model_config.seed = config_.seed;
  model_ = std::make_unique<TransformerClassifier>(model_config);
  revision_ = NextRevision();
}

std::vector<TrainExample> TransformerMatcher::MakeExamples(
    const RecordTable& records, const std::vector<LabeledPair>& pairs) const {
  std::vector<TrainExample> out;
  out.reserve(pairs.size());
  for (const auto& lp : pairs) {
    TrainExample ex;
    EncodedSequence seq =
        serializer_->EncodePair(records.at(lp.pair.a), records.at(lp.pair.b),
                                vocab_, config_.max_seq_len);
    ex.tokens = std::move(seq.tokens);
    ex.segments = std::move(seq.segments);
    ex.shared = std::move(seq.shared);
    ex.label = lp.label;
    out.push_back(std::move(ex));
  }
  return out;
}

TrainResult TransformerMatcher::FineTune(const RecordTable& records,
                                         const std::vector<LabeledPair>& train,
                                         const std::vector<LabeledPair>& val) {
  auto train_examples = MakeExamples(records, train);
  auto val_examples = MakeExamples(records, val);
  Trainer trainer(config_.trainer);
  TrainResult result = trainer.Fit(model_.get(), train_examples, val_examples);
  revision_ = NextRevision();
  return result;
}

std::string TransformerMatcher::Fingerprint() const {
  return name() + "@rev" + std::to_string(revision_);
}

double TransformerMatcher::MatchProbability(const Record& a,
                                            const Record& b) const {
  EncodedSequence seq = serializer_->EncodePair(a, b, vocab_, config_.max_seq_len);
  auto probs = model_->Predict(seq);
  return probs[1];
}

void TransformerMatcher::ScoreBatch(const RecordTable& records,
                                    Span<const RecordPair> pairs,
                                    Span<double> out) const {
  std::vector<EncodedSequence> sequences;
  sequences.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    sequences.push_back(serializer_->EncodePair(records.at(pair.a),
                                                records.at(pair.b), vocab_,
                                                config_.max_seq_len));
  }
  const Matrix probs =
      model_->PredictBatch(Span<const EncodedSequence>(sequences.data(),
                                                       sequences.size()));
  for (size_t i = 0; i < pairs.size(); ++i) {
    out[i] = static_cast<double>(probs.at(i, 1));
  }
}

Status TransformerMatcher::Save(const std::string& dir) const {
  if (model_ == nullptr) return Status::Internal("matcher not initialized");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);
  GRALMATCH_RETURN_NOT_OK(vocab_.Save(dir + "/vocab.txt"));
  GRALMATCH_RETURN_NOT_OK(model_->Save(dir + "/model.bin"));
  return Status::OK();
}

Status TransformerMatcher::Load(const std::string& dir) {
  GRALMATCH_RETURN_NOT_OK(vocab_.Load(dir + "/vocab.txt"));
  if (!vocab_.trained()) {
    return Status::InvalidArgument("empty vocabulary in " + dir);
  }
  TransformerConfig model_config;
  model_config.vocab_size = vocab_.size();
  model_config.d_model = config_.d_model;
  model_config.num_heads = config_.num_heads;
  model_config.num_layers = config_.num_layers;
  model_config.d_ff = config_.d_ff;
  model_config.max_seq_len = config_.max_seq_len;
  model_config.num_classes = 2;
  model_config.seed = config_.seed;
  model_ = std::make_unique<TransformerClassifier>(model_config);
  GRALMATCH_RETURN_NOT_OK(model_->Load(dir + "/model.bin"));
  revision_ = NextRevision();
  return Status::OK();
}

}  // namespace gralmatch

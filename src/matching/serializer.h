#ifndef GRALMATCH_MATCHING_SERIALIZER_H_
#define GRALMATCH_MATCHING_SERIALIZER_H_

/// \file serializer.h
/// Record-pair serialization into token sequences. Two schemes from the
/// paper: the plain value concatenation used by the DistilBERT variants and
/// Ditto's tagged encoding ("[COL] city [VAL] Zurich"), which adds structure
/// but consumes extra tokens — the root cause of DITTO's short-sequence
/// failures on identifier-heavy records (§6.1).

#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "nn/transformer.h"
#include "text/vocab.h"

namespace gralmatch {

/// \brief Strategy for encoding a record (and record pair) into token ids.
class PairSerializer {
 public:
  virtual ~PairSerializer() = default;

  virtual std::string name() const = 0;

  /// Append the token encoding of one record (metadata '_' attributes are
  /// always skipped).
  virtual void AppendRecordTokens(const Record& record, const SubwordVocab& vocab,
                                  std::vector<int32_t>* out) const = 0;

  /// Encode "[CLS] A [SEP] B" truncated to max_len. Symmetric truncation:
  /// each record gets roughly half the budget so that record B is never
  /// fully pushed out by a long record A. The result carries segment ids
  /// (A vs B) and shared-token flags (token present on both sides), which
  /// the classifier consumes as input features (see EncodedSequence).
  EncodedSequence EncodePair(const Record& a, const Record& b,
                             const SubwordVocab& vocab, size_t max_len) const;

  /// Text used for vocabulary training (token statistics of the encoding).
  virtual std::string VocabText(const Record& record) const;
};

/// Plain serialization: attribute values separated by spaces.
class PlainSerializer : public PairSerializer {
 public:
  std::string name() const override { return "plain"; }
  void AppendRecordTokens(const Record& record, const SubwordVocab& vocab,
                          std::vector<int32_t>* out) const override;
};

/// Ditto-style serialization: [COL] <attr name> [VAL] <value> per attribute.
class DittoSerializer : public PairSerializer {
 public:
  std::string name() const override { return "ditto"; }
  void AppendRecordTokens(const Record& record, const SubwordVocab& vocab,
                          std::vector<int32_t>* out) const override;
  std::string VocabText(const Record& record) const override;
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_SERIALIZER_H_

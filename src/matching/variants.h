#ifndef GRALMATCH_MATCHING_VARIANTS_H_
#define GRALMATCH_MATCHING_VARIANTS_H_

/// \file variants.h
/// The model variants evaluated in the paper's Tables 3 and 4 (§5.2),
/// mapped to transformer-matcher configurations. The paper's 128/256-token
/// limits scale to 48/96 subword tokens here (the CPU-scale model; the
/// tag-vs-truncation interaction under study is preserved).

#include <string>
#include <vector>

#include "matching/transformer_matcher.h"

namespace gralmatch {

/// Model rows of Tables 3 and 4.
enum class ModelVariant {
  kDitto128,           ///< Ditto encoding, short sequences
  kDitto256,           ///< Ditto encoding, long sequences
  kDistilBert128All,   ///< plain encoding, short sequences, all train pairs
  kDistilBert128_15K,  ///< plain encoding, reduced "easy" training set
};

/// Paper display name ("DITTO (128)", "DistilBERT (128)-ALL", ...).
std::string VariantDisplayName(ModelVariant variant);

/// True for the variant trained on the reduced (filtered) training set.
bool VariantUsesReducedTraining(ModelVariant variant);

/// Matcher configuration for a variant. `short_seq`/`long_seq` give the
/// scaled 128/256-token budgets.
TransformerMatcherConfig MakeVariantConfig(ModelVariant variant, uint64_t seed,
                                           size_t short_seq = 48,
                                           size_t long_seq = 96);

/// All four variants in table order.
const std::vector<ModelVariant>& AllModelVariants();

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_VARIANTS_H_

#include "matching/serializer.h"

#include <algorithm>
#include <unordered_set>

namespace gralmatch {

EncodedSequence PairSerializer::EncodePair(const Record& a, const Record& b,
                                           const SubwordVocab& vocab,
                                           size_t max_len) const {
  std::vector<int32_t> ta, tb;
  AppendRecordTokens(a, vocab, &ta);
  AppendRecordTokens(b, vocab, &tb);

  // Symmetric budget: [CLS] A [SEP] B with per-record cap. If one record is
  // short, the other may use the slack.
  const size_t budget = max_len > 2 ? max_len - 2 : 0;
  size_t half = budget / 2;
  size_t len_a = std::min(ta.size(), half);
  size_t len_b = std::min(tb.size(), budget - len_a);
  len_a = std::min(ta.size(), budget - len_b);

  // Shared-token flags: a (non-special) token id occurring in both records.
  std::unordered_set<int32_t> in_a(ta.begin(), ta.begin() + static_cast<long>(len_a));
  std::unordered_set<int32_t> in_b(tb.begin(), tb.begin() + static_cast<long>(len_b));

  EncodedSequence out;
  out.tokens.reserve(2 + len_a + len_b);
  auto push = [&](int32_t id, int8_t segment) {
    bool shared = id >= SpecialTokens::kFirstFree && in_a.count(id) > 0 &&
                  in_b.count(id) > 0;
    out.tokens.push_back(id);
    out.segments.push_back(segment);
    out.shared.push_back(shared ? 1 : 0);
  };
  push(SpecialTokens::kCls, 0);
  for (size_t i = 0; i < len_a; ++i) push(ta[i], 0);
  push(SpecialTokens::kSep, 1);
  for (size_t i = 0; i < len_b; ++i) push(tb[i], 1);
  return out;
}

std::string PairSerializer::VocabText(const Record& record) const {
  return record.AllText();
}

void PlainSerializer::AppendRecordTokens(const Record& record,
                                         const SubwordVocab& vocab,
                                         std::vector<int32_t>* out) const {
  for (const auto& [name, value] : record.attributes()) {
    if (value.empty() || (!name.empty() && name[0] == '_')) continue;
    if (name == "issuer_ref") continue;  // internal link, not content
    for (const auto& id : vocab.EncodeText(value)) out->push_back(id);
  }
}

void DittoSerializer::AppendRecordTokens(const Record& record,
                                         const SubwordVocab& vocab,
                                         std::vector<int32_t>* out) const {
  for (const auto& [name, value] : record.attributes()) {
    if (value.empty() || (!name.empty() && name[0] == '_')) continue;
    if (name == "issuer_ref") continue;
    out->push_back(SpecialTokens::kCol);
    for (const auto& id : vocab.EncodeText(name)) out->push_back(id);
    out->push_back(SpecialTokens::kVal);
    for (const auto& id : vocab.EncodeText(value)) out->push_back(id);
  }
}

std::string DittoSerializer::VocabText(const Record& record) const {
  std::string out;
  for (const auto& [name, value] : record.attributes()) {
    if (value.empty() || (!name.empty() && name[0] == '_')) continue;
    if (name == "issuer_ref") continue;
    out += name;
    out.push_back(' ');
    out += value;
    out.push_back(' ');
  }
  return out;
}

}  // namespace gralmatch

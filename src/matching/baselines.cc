#include "matching/baselines.h"

#include <cmath>
#include <cstring>

#include "blocking/id_overlap.h"
#include "common/rng.h"
#include "text/corporate.h"
#include "text/normalize.h"
#include "text/similarity.h"

namespace gralmatch {

namespace {

bool ShareIdentifier(const Record& a, const Record& b) {
  for (const auto& attr : IdentifierAttributes()) {
    auto va = a.GetMulti(attr);
    if (va.empty()) continue;
    auto vb = b.GetMulti(attr);
    for (const auto& x : va) {
      for (const auto& y : vb) {
        if (x == y) return true;
      }
    }
  }
  return false;
}

std::string_view NameOf(const Record& r) {
  std::string_view name = r.Get("name");
  return name.empty() ? r.Get("title") : name;
}

}  // namespace

double HeuristicIdMatcher::MatchProbability(const Record& a,
                                            const Record& b) const {
  return ShareIdentifier(a, b) ? 1.0 : 0.0;
}

std::vector<float> TfidfLogRegMatcher::Features(const Record& a,
                                                const Record& b) const {
  std::vector<float> f(kNumFeatures, 0.0f);
  f[0] = CosineSimilarity(tfidf_.Transform(a.AllText()),
                          tfidf_.Transform(b.AllText()));
  auto ta = TokenizeWords(NameOf(a)), tb = TokenizeWords(NameOf(b));
  f[1] = static_cast<float>(JaccardTokens(ta, tb));
  f[2] = static_cast<float>(JaroWinkler(CanonicalCompanyName(NameOf(a)),
                                        CanonicalCompanyName(NameOf(b))));
  f[3] = ShareIdentifier(a, b) ? 1.0f : 0.0f;
  return f;
}

void TfidfLogRegMatcher::Train(const RecordTable& records,
                               const std::vector<LabeledPair>& pairs) {
  std::vector<std::string> docs;
  docs.reserve(records.size());
  for (const auto& rec : records.records()) docs.push_back(rec.AllText());
  tfidf_ = TfidfVectorizer();
  tfidf_.Fit(docs, /*min_df=*/2);

  weights_.assign(kNumFeatures + 1, 0.0f);  // bias last
  std::vector<std::vector<float>> features;
  features.reserve(pairs.size());
  for (const auto& lp : pairs) {
    features.push_back(Features(records.at(lp.pair.a), records.at(lp.pair.b)));
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const auto& f = features[idx];
      float z = weights_[kNumFeatures];
      for (size_t j = 0; j < kNumFeatures; ++j) z += weights_[j] * f[j];
      float p = 1.0f / (1.0f + std::exp(-z));
      float g = p - static_cast<float>(pairs[idx].label);
      for (size_t j = 0; j < kNumFeatures; ++j) {
        weights_[j] -= options_.lr * g * f[j];
      }
      weights_[kNumFeatures] -= options_.lr * g;
    }
  }
}

double TfidfLogRegMatcher::MatchProbability(const Record& a,
                                            const Record& b) const {
  auto f = Features(a, b);
  float z = weights_.empty() ? 0.0f : weights_[kNumFeatures];
  for (size_t j = 0; j < kNumFeatures && j < weights_.size(); ++j) {
    z += weights_[j] * f[j];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

std::string TfidfLogRegMatcher::Fingerprint() const {
  // FNV-1a over the learned weight bytes: any retraining that changes a
  // single weight bit changes the fingerprint.
  uint64_t hash = 1469598103934665603ull;
  for (float w : weights_) {
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(w), "float is 32-bit");
    std::memcpy(&bits, &w, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return name() + "#" + std::to_string(hash);
}

}  // namespace gralmatch

#ifndef GRALMATCH_MATCHING_CASCADE_MATCHER_H_
#define GRALMATCH_MATCHING_CASCADE_MATCHER_H_

/// \file cascade_matcher.h
/// Calibrated two-tier scoring cascade: a cheap gate matcher (typically
/// TfidfLogRegMatcher) scores every pair, and only pairs the gate is
/// *uncertain* about — gate score inside [lower_threshold, upper_threshold]
/// — are escalated to an expensive matcher (typically TransformerMatcher).
/// Confident gate verdicts are returned as-is. The escalation band is part
/// of the matcher's identity: different thresholds mean different scores,
/// so Fingerprint() folds them in (the PairwiseMatcher contract).
///
/// The quality trade is pinned, not hoped for: tests/golden_test.cc runs
/// the cascade against the exact (non-cascaded) expensive reference in two
/// modes — `exact_reference = true` must reproduce the expensive matcher
/// bitwise, and the real cascade's quality delta is pinned as constants.
/// See docs/matchers.md "Score cascade".

#include <atomic>
#include <cstdint>
#include <string>

#include "matching/matcher.h"

namespace gralmatch {

/// \brief Gates pairs through a cheap matcher, escalating the uncertain
/// band to an expensive one. Non-owning: both inner matchers must outlive
/// the cascade.
class CascadeMatcher : public PairwiseMatcher {
 public:
  struct Options {
    /// Escalation band, inclusive on both ends: a gate score g is resolved
    /// by the gate alone iff g < lower_threshold or g > upper_threshold;
    /// otherwise the pair is escalated and the expensive score is returned.
    double lower_threshold = 0.1;
    double upper_threshold = 0.9;
    /// Audit mode: every pair's returned score comes from the expensive
    /// matcher (bitwise-equal to scoring with the expensive matcher alone),
    /// while the gate still runs and the stats() counters still record what
    /// the cascade *would* have resolved cheaply. This is the differential
    /// reference the pinned-quality-delta golden test compares against.
    bool exact_reference = false;
  };

  /// Both matchers are borrowed, not owned.
  CascadeMatcher(const PairwiseMatcher* gate, const PairwiseMatcher* expensive,
                 Options options);

  std::string name() const override;

  double MatchProbability(const Record& a, const Record& b) const override;

  /// Batched override: one gate ScoreBatch over the whole batch, then one
  /// expensive ScoreBatch over the gathered uncertain band — so the
  /// expensive matcher's own batching (the transformer's packed forward)
  /// amortizes over exactly the pairs that need it. Scores are
  /// bitwise-identical to per-pair MatchProbability for any batch split,
  /// provided both inner matchers honor the ScoreBatch contract.
  void ScoreBatch(const RecordTable& records, Span<const RecordPair> pairs,
                  Span<double> out) const override;

  /// Folds both inner fingerprints, the exact bit patterns of both
  /// thresholds, and the reference mode: any change that can move a score
  /// changes the fingerprint (cache-keying contract in matcher.h).
  std::string Fingerprint() const override;

  /// Cumulative scoring counters (monotone; thread-safe).
  struct Stats {
    uint64_t gate_resolved = 0;  ///< pairs resolved by the gate alone
    uint64_t escalated = 0;      ///< pairs sent to the expensive matcher
  };
  Stats stats() const {
    return Stats{gate_resolved_.load(std::memory_order_relaxed),
                 escalated_.load(std::memory_order_relaxed)};
  }
  void ResetStats() const {
    gate_resolved_.store(0, std::memory_order_relaxed);
    escalated_.store(0, std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  /// True iff a gate score falls in the escalation band.
  bool Escalates(double gate_score) const {
    return gate_score >= options_.lower_threshold &&
           gate_score <= options_.upper_threshold;
  }

  const PairwiseMatcher* gate_;
  const PairwiseMatcher* expensive_;
  Options options_;
  mutable std::atomic<uint64_t> gate_resolved_{0};
  mutable std::atomic<uint64_t> escalated_{0};
};

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_CASCADE_MATCHER_H_

#ifndef GRALMATCH_MATCHING_PAIR_SAMPLING_H_
#define GRALMATCH_MATCHING_PAIR_SAMPLING_H_

/// \file pair_sampling.h
/// Construction of labelled fine-tuning pairs (§5.1.3): all positive pairs
/// of a split plus randomly sampled negatives at a 5:1 negative:positive
/// ratio, and the "-15K" reduced-training-set filter of §5.2.1.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/ground_truth.h"

namespace gralmatch {

/// A labelled record pair.
struct LabeledPair {
  RecordPair pair;
  int label = 0;  ///< 1 = Match, 0 = NoMatch
};

struct PairSamplingOptions {
  double negatives_per_positive = 5.0;   ///< the paper's 5:1 ratio
  /// Cap on positive pairs (0 = no cap). Negatives scale with the cap.
  size_t max_positives = 0;
  uint64_t seed = 17;
};

/// Sample training pairs from the records of one split part: every positive
/// pair whose two records lie in `part`, plus random cross-source negatives
/// from the same part.
std::vector<LabeledPair> SamplePairs(const Dataset& dataset,
                                     const GroupSplit& split, SplitPart part,
                                     const PairSamplingOptions& options);

/// The "-15K" filter of §5.2.1: keep only pairs whose records were not
/// involved in an acquisition (metadata "_event") and that are matchable
/// via identifier overlap — for securities, a shared identifier value; for
/// companies/products, near-identical canonical names. Keeps at most
/// `max_pairs` pairs (the paper keeps the first 10K/5K).
std::vector<LabeledPair> FilterEasyPairs(const Dataset& dataset,
                                         const std::vector<LabeledPair>& pairs,
                                         size_t max_pairs);

}  // namespace gralmatch

#endif  // GRALMATCH_MATCHING_PAIR_SAMPLING_H_

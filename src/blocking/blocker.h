#ifndef GRALMATCH_BLOCKING_BLOCKER_H_
#define GRALMATCH_BLOCKING_BLOCKER_H_

/// \file blocker.h
/// Blocking interfaces (§5.3.1): blockers turn a dataset into a set of
/// candidate record pairs, tagged with which blocking produced them — the
/// Pre-Cleanup step of GraLMatch needs to know which predicted matches came
/// from the Token Overlap blocking.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"

namespace gralmatch {

/// Provenance bits for candidate pairs.
enum BlockerKind : uint32_t {
  kBlockerIdOverlap = 1u << 0,
  kBlockerTokenOverlap = 1u << 1,
  kBlockerIssuerMatch = 1u << 2,
};

/// A candidate pair with the set of blockings that produced it.
struct Candidate {
  RecordPair pair;
  uint32_t provenance = 0;
};

/// \brief Deduplicated set of candidate pairs with provenance union.
class CandidateSet {
 public:
  /// Insert a pair (or add provenance to an existing one).
  void Add(RecordPair pair, BlockerKind kind);

  /// Merge another candidate set into this one.
  void Merge(const CandidateSet& other);

  size_t size() const { return pairs_.size(); }

  /// Sorted snapshot (deterministic order).
  std::vector<Candidate> ToVector() const;

  /// Provenance bits of a pair (0 if absent).
  uint32_t ProvenanceOf(const RecordPair& pair) const;

 private:
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> pairs_;
};

/// \brief A blocking strategy.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Short display name ("ID Overlap", ...).
  virtual std::string name() const = 0;

  /// Provenance bit contributed by this blocker.
  virtual BlockerKind kind() const = 0;

  /// Add this blocker's candidate pairs for `dataset` into `out`.
  /// Only cross-source pairs are produced (records of the same data source
  /// are never candidates, as in the paper's multi-source setting).
  virtual void AddCandidates(const Dataset& dataset, CandidateSet* out) const = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_BLOCKING_BLOCKER_H_

#include "blocking/incremental_index.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "exec/parallel.h"
#include "text/normalize.h"

namespace gralmatch {

namespace {

/// Serialize a pair->refcount map in sorted pair order (deterministic bytes).
void WriteRefcounts(
    const std::unordered_map<RecordPair, uint32_t, RecordPairHash>& refcount,
    BinaryWriter* writer) {
  std::vector<std::pair<RecordPair, uint32_t>> entries(refcount.begin(),
                                                       refcount.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer->WriteU64(entries.size());
  for (const auto& [pair, count] : entries) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteU32(count);
  }
}

/// Read a pair->refcount map whose record ids must lie in [0, limit) and
/// whose counts must be positive (zero entries are never stored).
Status ReadRefcounts(
    BinaryReader* reader, size_t limit,
    std::unordered_map<RecordPair, uint32_t, RecordPairHash>* refcount) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(12, &count));
  refcount->clear();
  refcount->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    uint32_t refs = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&refs));
    if (pair.a < 0 || pair.b < 0 || static_cast<size_t>(pair.a) >= limit ||
        static_cast<size_t>(pair.b) >= limit || refs == 0) {
      return Status::IOError("corrupted index state: bad refcount entry");
    }
    (*refcount)[pair] = refs;
  }
  return Status::OK();
}

void WriteRecordIds(const std::vector<RecordId>& ids, BinaryWriter* writer) {
  writer->WriteU64(ids.size());
  for (RecordId id : ids) writer->WriteI32(id);
}

/// Read a RecordId vector whose entries must lie in [0, limit).
Status ReadRecordIds(BinaryReader* reader, size_t limit,
                     std::vector<RecordId>* ids) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
  ids->clear();
  ids->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordId id = kInvalidRecord;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&id));
    if (id < 0 || static_cast<size_t>(id) >= limit) {
      return Status::IOError("corrupted index state: record id " +
                             std::to_string(id) + " out of range");
    }
    ids->push_back(id);
  }
  return Status::OK();
}

/// Finalize a refcount-delta pass: compare each touched pair's pre-batch
/// refcount snapshot against its current one, emit membership transitions,
/// and drop zero entries. Deltas are sorted so callers see a deterministic
/// order regardless of hash-map iteration.
CandidateDelta FinalizeDelta(
    const std::unordered_map<RecordPair, uint32_t, RecordPairHash>& old_ref,
    std::unordered_map<RecordPair, uint32_t, RecordPairHash>* refcount) {
  CandidateDelta delta;
  for (const auto& [pair, old_count] : old_ref) {
    auto it = refcount->find(pair);
    const uint32_t now = it == refcount->end() ? 0 : it->second;
    if (old_count == 0 && now > 0) {
      delta.added.push_back(pair);
    } else if (old_count > 0 && now == 0) {
      delta.removed.push_back(pair);
    }
    if (now == 0 && it != refcount->end()) refcount->erase(it);
  }
  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  return delta;
}

}  // namespace

// ---------------------------------------------------------------------------
// Token Overlap
// ---------------------------------------------------------------------------

std::vector<RecordId> IncrementalTokenOverlapIndex::RankRecord(
    const RecordTable& records, RecordId record) const {
  std::unordered_map<RecordId, uint32_t> overlap;
  const SourceId source = records.at(record).source();
  for (int32_t tid : record_tokens_[static_cast<size_t>(record)]) {
    const TokenInfo& info = tokens_[static_cast<size_t>(tid)];
    if (info.df < 2 || info.df > max_df_) continue;
    for (RecordId other : info.postings) {
      if (other == record) continue;
      if (records.at(other).source() == source) continue;
      ++overlap[other];
    }
  }
  std::vector<std::pair<RecordId, uint32_t>> ranked;
  ranked.reserve(overlap.size());
  for (const auto& [rid, cnt] : overlap) {
    if (cnt >= options_.min_overlap) ranked.emplace_back(rid, cnt);
  }
  const size_t keep = std::min(options_.top_n, ranked.size());
  auto by_count_then_id = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(keep),
                    ranked.end(), by_count_then_id);
  std::vector<RecordId> kept;
  kept.reserve(keep);
  for (size_t k = 0; k < keep; ++k) kept.push_back(ranked[k].first);
  return kept;
}

std::vector<std::string> IncrementalTokenOverlapIndex::ExtractKeys(
    const Record& record) {
  auto toks = TokenizeContentWords(record.AllText());
  std::sort(toks.begin(), toks.end());
  toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
  return toks;
}

CandidateDelta IncrementalTokenOverlapIndex::AddRecords(
    const RecordTable& records, ThreadPool* pool) {
  const size_t old_n = num_records_;
  const size_t new_n = records.size();
  if (new_n <= old_n) return {};

  // Tokenize the new records (deduplicated tokens); records are independent,
  // so this fans out.
  std::vector<std::vector<std::string>> new_tokens(new_n - old_n);
  ParallelFor(
      pool, 0, new_tokens.size(),
      [&](size_t k) {
        new_tokens[k] =
            ExtractKeys(records.at(static_cast<RecordId>(old_n + k)));
      },
      /*grain=*/32);
  return AddPublishedRecords(records, std::move(new_tokens), pool);
}

CandidateDelta IncrementalTokenOverlapIndex::AddPublishedRecords(
    const RecordTable& records, std::vector<std::vector<std::string>> published,
    ThreadPool* pool) {
  const size_t old_n = num_records_;
  const size_t new_n = records.size();
  if (new_n <= old_n) return {};
  std::vector<std::vector<std::string>>& new_tokens = published;

  // Intern tokens and update document frequencies / postings in place,
  // remembering each touched token's pre-batch df.
  const uint32_t old_max_df = max_df_;
  std::unordered_map<int32_t, uint32_t> old_df;
  record_tokens_.resize(new_n);
  for (size_t k = 0; k < new_tokens.size(); ++k) {
    const RecordId rid = static_cast<RecordId>(old_n + k);
    auto& ids = record_tokens_[static_cast<size_t>(rid)];
    ids.reserve(new_tokens[k].size());
    for (auto& tok : new_tokens[k]) {
      auto [it, inserted] =
          token_id_.emplace(std::move(tok), static_cast<int32_t>(tokens_.size()));
      if (inserted) tokens_.emplace_back();
      const int32_t tid = it->second;
      TokenInfo& info = tokens_[static_cast<size_t>(tid)];
      old_df.emplace(tid, info.df);  // keeps the first (pre-batch) value
      if (info.df > 0) df_buckets_[info.df].erase(tid);
      ++info.df;
      df_buckets_[info.df].insert(tid);
      info.postings.push_back(rid);
      ids.push_back(tid);
    }
  }
  num_records_ = new_n;
  num_live_ += new_tokens.size();
  // The df cap is a fraction of the *live* record count: a from-scratch run
  // on the survivors never sees the retracted records at all.
  max_df_ = static_cast<uint32_t>(options_.max_token_df *
                                  static_cast<double>(num_live_)) +
            1;

  // Dirty records: the new records, plus holders of any token whose
  // postings or eligibility changed. A token matters only while eligible
  // (2 <= df <= max_df) on at least one side of the batch; tokens that were
  // and remain out of bounds cannot change any ranking.
  std::vector<char> dirty(new_n, 0);
  for (size_t r = old_n; r < new_n; ++r) dirty[r] = 1;
  auto mark_holders = [&](int32_t tid) {
    for (RecordId r : tokens_[static_cast<size_t>(tid)].postings) {
      dirty[static_cast<size_t>(r)] = 1;
    }
  };
  for (const auto& [tid, df_before] : old_df) {
    const uint32_t df_now = tokens_[static_cast<size_t>(tid)].df;
    const bool was_eligible = df_before >= 2 && df_before <= old_max_df;
    const bool is_eligible = df_now >= 2 && df_now <= max_df_;
    if (was_eligible || is_eligible) mark_holders(tid);
  }
  // The max-df cap rises with the record count: untouched tokens with df in
  // (old cap, new cap] were over the cap and are now re-admitted.
  for (uint32_t d = old_max_df + 1; d <= max_df_; ++d) {
    auto bucket = df_buckets_.find(d);
    if (bucket == df_buckets_.end()) continue;
    for (int32_t tid : bucket->second) {
      if (!old_df.count(tid)) mark_holders(tid);
    }
  }

  // Re-rank every dirty record into its own slot (deterministic), then diff
  // against its previous top-n list serially.
  std::vector<RecordId> dirty_ids;
  for (size_t r = 0; r < new_n; ++r) {
    if (dirty[r]) dirty_ids.push_back(static_cast<RecordId>(r));
  }
  std::vector<std::vector<RecordId>> new_kept(dirty_ids.size());
  ParallelFor(
      pool, 0, dirty_ids.size(),
      [&](size_t k) { new_kept[k] = RankRecord(records, dirty_ids[k]); },
      /*grain=*/4);

  kept_.resize(new_n);
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_ref;
  auto bump = [&](const RecordPair& pair, int delta) {
    uint32_t& count = refcount_[pair];
    old_ref.emplace(pair, count);  // snapshot the pre-batch value once
    count = static_cast<uint32_t>(static_cast<int>(count) + delta);
  };
  for (size_t k = 0; k < dirty_ids.size(); ++k) {
    const RecordId i = dirty_ids[k];
    const auto& before = kept_[static_cast<size_t>(i)];
    const auto& after = new_kept[k];
    for (RecordId o : before) {
      if (std::find(after.begin(), after.end(), o) == after.end()) {
        bump(RecordPair(i, o), -1);
      }
    }
    for (RecordId o : after) {
      if (std::find(before.begin(), before.end(), o) == before.end()) {
        bump(RecordPair(i, o), +1);
      }
    }
    kept_[static_cast<size_t>(i)] = std::move(new_kept[k]);
  }
  return FinalizeDelta(old_ref, &refcount_);
}

CandidateDelta IncrementalTokenOverlapIndex::RemoveRecords(
    const RecordTable& records, const std::vector<RecordId>& removed_ids,
    ThreadPool* pool) {
  if (removed_ids.empty()) return {};
  std::vector<char> removed(num_records_, 0);
  for (RecordId r : removed_ids) removed[static_cast<size_t>(r)] = 1;

  // Release the removed records' tokens: each df drops, its df-bucket
  // membership moves, and the record leaves the postings (which therefore
  // keep listing exactly the live holders). `old_df` snapshots each touched
  // token's pre-removal df once.
  const uint32_t old_max_df = max_df_;
  std::unordered_map<int32_t, uint32_t> old_df;
  for (RecordId r : removed_ids) {
    for (int32_t tid : record_tokens_[static_cast<size_t>(r)]) {
      TokenInfo& info = tokens_[static_cast<size_t>(tid)];
      old_df.emplace(tid, info.df);
      df_buckets_[info.df].erase(tid);
      --info.df;
      if (info.df > 0) df_buckets_[info.df].insert(tid);
      info.postings.erase(
          std::remove(info.postings.begin(), info.postings.end(), r),
          info.postings.end());
    }
  }
  num_live_ -= removed_ids.size();
  max_df_ = static_cast<uint32_t>(options_.max_token_df *
                                  static_cast<double>(num_live_)) +
            1;

  // Dirty records: live holders of any token whose postings or eligibility
  // changed. The cap falls with the live count, so untouched tokens with df
  // in (new cap, old cap] drop *out* of eligibility — the mirror image of
  // the rising-cap re-admission scan in AddPublishedRecords.
  std::vector<char> dirty(num_records_, 0);
  auto mark_holders = [&](int32_t tid) {
    for (RecordId r : tokens_[static_cast<size_t>(tid)].postings) {
      dirty[static_cast<size_t>(r)] = 1;
    }
  };
  for (const auto& [tid, df_before] : old_df) {
    const uint32_t df_now = tokens_[static_cast<size_t>(tid)].df;
    const bool was_eligible = df_before >= 2 && df_before <= old_max_df;
    const bool is_eligible = df_now >= 2 && df_now <= max_df_;
    if (was_eligible || is_eligible) mark_holders(tid);
  }
  for (uint32_t d = max_df_ + 1; d <= old_max_df; ++d) {
    auto bucket = df_buckets_.find(d);
    if (bucket == df_buckets_.end()) continue;
    for (int32_t tid : bucket->second) {
      if (!old_df.count(tid)) mark_holders(tid);
    }
  }

  std::vector<RecordId> dirty_ids;
  for (size_t r = 0; r < num_records_; ++r) {
    if (dirty[r]) dirty_ids.push_back(static_cast<RecordId>(r));
  }
  std::vector<std::vector<RecordId>> new_kept(dirty_ids.size());
  ParallelFor(
      pool, 0, dirty_ids.size(),
      [&](size_t k) { new_kept[k] = RankRecord(records, dirty_ids[k]); },
      /*grain=*/4);

  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_ref;
  auto bump = [&](const RecordPair& pair, int delta) {
    uint32_t& count = refcount_[pair];
    old_ref.emplace(pair, count);
    count = static_cast<uint32_t>(static_cast<int>(count) + delta);
  };
  // The removed records' own kept-lists retract wholesale; any live record
  // keeping a removed one shares a (touched, previously eligible) token with
  // it, so it is dirty and its re-ranking retracts the other half.
  for (RecordId r : removed_ids) {
    for (RecordId o : kept_[static_cast<size_t>(r)]) {
      bump(RecordPair(r, o), -1);
    }
    kept_[static_cast<size_t>(r)].clear();
    record_tokens_[static_cast<size_t>(r)].clear();
  }
  for (size_t k = 0; k < dirty_ids.size(); ++k) {
    const RecordId i = dirty_ids[k];
    const auto& before = kept_[static_cast<size_t>(i)];
    const auto& after = new_kept[k];
    for (RecordId o : before) {
      if (std::find(after.begin(), after.end(), o) == after.end()) {
        bump(RecordPair(i, o), -1);
      }
    }
    for (RecordId o : after) {
      if (std::find(before.begin(), before.end(), o) == before.end()) {
        bump(RecordPair(i, o), +1);
      }
    }
    kept_[static_cast<size_t>(i)] = std::move(new_kept[k]);
  }
  return FinalizeDelta(old_ref, &refcount_);
}

std::vector<RecordPair> IncrementalTokenOverlapIndex::CurrentPairs() const {
  std::vector<RecordPair> out;
  out.reserve(refcount_.size());
  for (const auto& [pair, count] : refcount_) out.push_back(pair);
  return out;
}

void IncrementalTokenOverlapIndex::SaveState(BinaryWriter* writer) const {
  writer->WriteU64(options_.top_n);
  writer->WriteU64(options_.min_overlap);
  writer->WriteDouble(options_.max_token_df);
  writer->WriteU64(num_records_);
  writer->WriteU32(max_df_);

  // Tokens in id order: interning order matters because the (count desc,
  // id asc) ranking tie-break compares token-holder record ids — it must
  // survive the round trip exactly.
  std::vector<const std::string*> token_of_id(tokens_.size(), nullptr);
  for (const auto& [text, tid] : token_id_) {
    token_of_id[static_cast<size_t>(tid)] = &text;
  }
  writer->WriteU64(tokens_.size());
  for (size_t tid = 0; tid < tokens_.size(); ++tid) {
    writer->WriteString(*token_of_id[tid]);
    writer->WriteU32(tokens_[tid].df);
    WriteRecordIds(tokens_[tid].postings, writer);
  }

  writer->WriteU64(record_tokens_.size());
  for (const auto& ids : record_tokens_) {
    writer->WriteU64(ids.size());
    for (int32_t tid : ids) writer->WriteI32(tid);
  }
  writer->WriteU64(kept_.size());
  for (const auto& ids : kept_) WriteRecordIds(ids, writer);
  WriteRefcounts(refcount_, writer);
}

Status IncrementalTokenOverlapIndex::LoadState(BinaryReader* reader) {
  uint64_t top_n = 0, min_overlap = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&top_n));
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&min_overlap));
  options_.top_n = static_cast<size_t>(top_n);
  options_.min_overlap = static_cast<size_t>(min_overlap);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&options_.max_token_df));
  options_.num_threads = 1;  // ignored by this class; pools come via callers

  uint64_t num_records = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&num_records));
  num_records_ = static_cast<size_t>(num_records);
  // The serialized state predates tombstones; the owning pipeline restores
  // the live count via SetNumLive once it knows the tombstone set.
  num_live_ = num_records_;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&max_df_));

  uint64_t num_tokens = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(13, &num_tokens));
  token_id_.clear();
  tokens_.clear();
  tokens_.reserve(static_cast<size_t>(num_tokens));
  df_buckets_.clear();
  for (uint64_t tid = 0; tid < num_tokens; ++tid) {
    std::string text;
    GRALMATCH_RETURN_NOT_OK(reader->ReadString(&text));
    TokenInfo info;
    GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&info.df));
    GRALMATCH_RETURN_NOT_OK(ReadRecordIds(reader, num_records_, &info.postings));
    auto [it, inserted] =
        token_id_.emplace(std::move(text), static_cast<int32_t>(tid));
    (void)it;
    if (!inserted) {
      return Status::IOError("corrupted token index: duplicate token text");
    }
    // Rebuild the df-bucket membership from its defining invariant:
    // df_buckets_[d] holds exactly the tokens whose current df is d.
    if (info.df > 0) df_buckets_[info.df].insert(static_cast<int32_t>(tid));
    tokens_.push_back(std::move(info));
  }

  uint64_t rows = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &rows));
  if (rows != num_records_) {
    return Status::IOError("corrupted token index: per-record token rows " +
                           std::to_string(rows) + " != record count " +
                           std::to_string(num_records_));
  }
  record_tokens_.assign(static_cast<size_t>(rows), {});
  for (auto& ids : record_tokens_) {
    uint64_t count = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
    ids.reserve(static_cast<size_t>(count));
    for (uint64_t k = 0; k < count; ++k) {
      int32_t tid = -1;
      GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&tid));
      if (tid < 0 || static_cast<size_t>(tid) >= tokens_.size()) {
        return Status::IOError("corrupted token index: token id " +
                               std::to_string(tid) + " out of range");
      }
      ids.push_back(tid);
    }
  }

  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &rows));
  if (rows != num_records_) {
    return Status::IOError("corrupted token index: kept-list rows " +
                           std::to_string(rows) + " != record count " +
                           std::to_string(num_records_));
  }
  kept_.assign(static_cast<size_t>(rows), {});
  for (auto& ids : kept_) {
    GRALMATCH_RETURN_NOT_OK(ReadRecordIds(reader, num_records_, &ids));
  }
  return ReadRefcounts(reader, num_records_, &refcount_);
}

// ---------------------------------------------------------------------------
// ID Overlap
// ---------------------------------------------------------------------------

namespace {

/// Cross-source pairs of the first `count` holders of one identifier bucket
/// (sorted, deduplicated); empty when the bucket is outside [2, max_bucket].
std::vector<RecordPair> BucketPairs(const RecordTable& records,
                                    const std::vector<RecordId>& holders,
                                    size_t count, size_t max_bucket) {
  std::vector<RecordPair> out;
  if (count < 2 || count > max_bucket) return out;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      if (holders[i] == holders[j]) continue;
      if (records.at(holders[i]).source() == records.at(holders[j]).source()) {
        continue;
      }
      out.emplace_back(holders[i], holders[j]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<std::string> IncrementalIdOverlapIndex::ExtractKeys(
    const Record& record) {
  std::vector<std::string> keys;
  for (const auto& attr : IdentifierAttributes()) {
    for (auto& value : record.GetMulti(attr)) {
      keys.push_back(std::move(value));
    }
  }
  return keys;
}

CandidateDelta IncrementalIdOverlapIndex::AddRecords(const RecordTable& records,
                                                     ThreadPool* pool) {
  const size_t old_n = num_records_;
  const size_t new_n = records.size();
  if (new_n <= old_n) return {};
  std::vector<std::vector<std::string>> published;
  published.reserve(new_n - old_n);
  for (size_t r = old_n; r < new_n; ++r) {
    published.push_back(ExtractKeys(records.at(static_cast<RecordId>(r))));
  }
  return AddPublishedRecords(records, published, pool);
}

CandidateDelta IncrementalIdOverlapIndex::AddPublishedRecords(
    const RecordTable& records,
    const std::vector<std::vector<std::string>>& published, ThreadPool* pool) {
  const size_t old_n = num_records_;
  const size_t new_n = records.size();
  if (new_n <= old_n) return {};

  // Append the new holders, remembering each touched bucket's pre-batch
  // size. Bucket vectors are stable across rehashing (node-based map), so
  // pointers key the touched set safely.
  std::unordered_map<const std::vector<RecordId>*, size_t> touched;
  for (size_t r = old_n; r < new_n; ++r) {
    for (const auto& value : published[r - old_n]) {
      std::vector<RecordId>& holders = index_[value];
      touched.emplace(&holders, holders.size());
      holders.push_back(static_cast<RecordId>(r));
    }
  }
  num_records_ = new_n;

  // Per touched bucket, diff the pre-batch contribution against the current
  // one (each bucket ranks into its own slot; the merge below is serial).
  struct BucketDiff {
    const std::vector<RecordId>* holders;
    size_t old_count;
    std::vector<RecordPair> before, after;
  };
  std::vector<BucketDiff> diffs;
  diffs.reserve(touched.size());
  for (const auto& [holders, old_count] : touched) {
    diffs.push_back({holders, old_count, {}, {}});
  }
  ParallelFor(
      pool, 0, diffs.size(),
      [&](size_t k) {
        BucketDiff& d = diffs[k];
        d.before = BucketPairs(records, *d.holders, d.old_count, max_bucket_);
        d.after =
            BucketPairs(records, *d.holders, d.holders->size(), max_bucket_);
      },
      /*grain=*/4);

  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_ref;
  auto bump = [&](const RecordPair& pair, int delta) {
    uint32_t& count = refcount_[pair];
    old_ref.emplace(pair, count);
    count = static_cast<uint32_t>(static_cast<int>(count) + delta);
  };
  for (const BucketDiff& d : diffs) {
    // Both lists are sorted unique; emit set differences.
    for (const RecordPair& p : d.before) {
      if (!std::binary_search(d.after.begin(), d.after.end(), p)) bump(p, -1);
    }
    for (const RecordPair& p : d.after) {
      if (!std::binary_search(d.before.begin(), d.before.end(), p)) bump(p, +1);
    }
  }
  return FinalizeDelta(old_ref, &refcount_);
}

CandidateDelta IncrementalIdOverlapIndex::RemoveRecords(
    const RecordTable& records, const std::vector<RecordId>& removed_ids,
    ThreadPool* pool) {
  if (removed_ids.empty()) return {};

  // Re-extract each removed record's keys from its (retained) payload,
  // snapshot every touched bucket's pre-removal holders once, then erase
  // the record's occurrences in place — surviving holder order is
  // preserved, and emptied buckets stay (their residue is what future
  // diffs slice against, exactly as an overflowed bucket's is).
  struct BucketDiff {
    const std::vector<RecordId>* holders;
    std::vector<RecordId> old_holders;
    std::vector<RecordPair> before, after;
  };
  std::vector<BucketDiff> diffs;
  std::unordered_map<const std::vector<RecordId>*, size_t> touched;
  for (RecordId r : removed_ids) {
    for (const auto& value : ExtractKeys(records.at(r))) {
      auto it = index_.find(value);
      if (it == index_.end()) continue;
      std::vector<RecordId>& holders = it->second;
      auto [slot, inserted] = touched.emplace(&holders, diffs.size());
      if (inserted) diffs.push_back({&holders, holders, {}, {}});
      (void)slot;
      holders.erase(std::remove(holders.begin(), holders.end(), r),
                    holders.end());
    }
  }

  ParallelFor(
      pool, 0, diffs.size(),
      [&](size_t k) {
        BucketDiff& d = diffs[k];
        d.before = BucketPairs(records, d.old_holders, d.old_holders.size(),
                               max_bucket_);
        d.after =
            BucketPairs(records, *d.holders, d.holders->size(), max_bucket_);
      },
      /*grain=*/4);

  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_ref;
  auto bump = [&](const RecordPair& pair, int delta) {
    uint32_t& count = refcount_[pair];
    old_ref.emplace(pair, count);
    count = static_cast<uint32_t>(static_cast<int>(count) + delta);
  };
  for (const BucketDiff& d : diffs) {
    for (const RecordPair& p : d.before) {
      if (!std::binary_search(d.after.begin(), d.after.end(), p)) bump(p, -1);
    }
    for (const RecordPair& p : d.after) {
      if (!std::binary_search(d.before.begin(), d.before.end(), p)) bump(p, +1);
    }
  }
  return FinalizeDelta(old_ref, &refcount_);
}

std::vector<RecordPair> IncrementalIdOverlapIndex::CurrentPairs() const {
  std::vector<RecordPair> out;
  out.reserve(refcount_.size());
  for (const auto& [pair, count] : refcount_) out.push_back(pair);
  return out;
}

void IncrementalIdOverlapIndex::SaveState(BinaryWriter* writer) const {
  writer->WriteU64(max_bucket_);
  writer->WriteU64(num_records_);
  // Buckets in sorted value order for deterministic bytes; holder lists
  // verbatim (their insertion order is the prefix future diffs slice on).
  std::vector<const std::string*> values;
  values.reserve(index_.size());
  for (const auto& [value, holders] : index_) values.push_back(&value);
  std::sort(values.begin(), values.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  writer->WriteU64(values.size());
  for (const std::string* value : values) {
    writer->WriteString(*value);
    WriteRecordIds(index_.at(*value), writer);
  }
  WriteRefcounts(refcount_, writer);
}

Status IncrementalIdOverlapIndex::LoadState(BinaryReader* reader) {
  uint64_t max_bucket = 0, num_records = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&max_bucket));
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&num_records));
  max_bucket_ = static_cast<size_t>(max_bucket);
  num_records_ = static_cast<size_t>(num_records);

  uint64_t buckets = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &buckets));
  index_.clear();
  index_.reserve(static_cast<size_t>(buckets));
  for (uint64_t k = 0; k < buckets; ++k) {
    std::string value;
    GRALMATCH_RETURN_NOT_OK(reader->ReadString(&value));
    std::vector<RecordId> holders;
    GRALMATCH_RETURN_NOT_OK(ReadRecordIds(reader, num_records_, &holders));
    auto [it, inserted] = index_.emplace(std::move(value), std::move(holders));
    (void)it;
    if (!inserted) {
      return Status::IOError("corrupted id index: duplicate identifier value");
    }
  }
  return ReadRefcounts(reader, num_records_, &refcount_);
}

}  // namespace gralmatch

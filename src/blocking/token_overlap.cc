#include "blocking/token_overlap.h"

#include <algorithm>
#include <unordered_map>

#include "text/normalize.h"

namespace gralmatch {

void TokenOverlapBlocker::AddCandidates(const Dataset& dataset,
                                        CandidateSet* out) const {
  const size_t n = dataset.records.size();
  if (n < 2) return;

  // Tokenize every record once (deduplicated tokens).
  std::vector<std::vector<std::string>> tokens_of(n);
  std::unordered_map<std::string, uint32_t> df;
  for (size_t i = 0; i < n; ++i) {
    auto toks = TokenizeContentWords(
        dataset.records.at(static_cast<RecordId>(i)).AllText());
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    for (const auto& t : toks) ++df[t];
    tokens_of[i] = std::move(toks);
  }

  // Token ids for the inverted index, skipping ultra-frequent tokens.
  const auto max_df =
      static_cast<uint32_t>(options_.max_token_df * static_cast<double>(n)) + 1;
  std::unordered_map<std::string, int32_t> token_ids;
  std::vector<std::vector<RecordId>> postings;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& t : tokens_of[i]) {
      if (df[t] > max_df || df[t] < 2) continue;
      auto [it, inserted] =
          token_ids.emplace(t, static_cast<int32_t>(postings.size()));
      if (inserted) postings.emplace_back();
      postings[static_cast<size_t>(it->second)].push_back(
          static_cast<RecordId>(i));
    }
  }

  // For each record, count overlaps against other-source records and keep
  // the top-n by overlap count (ties resolved by record id for determinism).
  std::unordered_map<RecordId, uint32_t> overlap;
  for (size_t i = 0; i < n; ++i) {
    overlap.clear();
    const SourceId source = dataset.records.at(static_cast<RecordId>(i)).source();
    for (const auto& t : tokens_of[i]) {
      auto it = token_ids.find(t);
      if (it == token_ids.end()) continue;
      for (RecordId other : postings[static_cast<size_t>(it->second)]) {
        if (static_cast<size_t>(other) == i) continue;
        if (dataset.records.at(other).source() == source) continue;
        ++overlap[other];
      }
    }
    std::vector<std::pair<RecordId, uint32_t>> ranked;
    ranked.reserve(overlap.size());
    for (const auto& [rid, cnt] : overlap) {
      if (cnt >= options_.min_overlap) ranked.emplace_back(rid, cnt);
    }
    size_t keep = std::min(options_.top_n, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(keep),
                      ranked.end(), [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    for (size_t k = 0; k < keep; ++k) {
      out->Add(RecordPair(static_cast<RecordId>(i), ranked[k].first), kind());
    }
  }
}

}  // namespace gralmatch

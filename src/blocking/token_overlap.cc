#include "blocking/token_overlap.h"

#include <memory>

#include "blocking/incremental_index.h"
#include "exec/parallel.h"

namespace gralmatch {

void TokenOverlapBlocker::AddCandidates(const Dataset& dataset,
                                        CandidateSet* out) const {
  if (dataset.records.size() < 2) return;
  // Delegate to the incremental index with a single batch holding every
  // record: the streaming and batch paths share one implementation of the
  // blocking semantics, so incremental ingestion (stream/) is equivalent to
  // a from-scratch run by construction. Tokenization and per-record ranking
  // fan out over the pool; the result is thread-count invariant.
  std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  IncrementalTokenOverlapIndex index(options_);
  CandidateDelta delta = index.AddRecords(dataset.records, pool.get());
  for (const RecordPair& pair : delta.added) out->Add(pair, kind());
}

}  // namespace gralmatch

#include "blocking/token_overlap.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "exec/parallel.h"
#include "text/normalize.h"

namespace gralmatch {

void TokenOverlapBlocker::AddCandidates(const Dataset& dataset,
                                        CandidateSet* out) const {
  const size_t n = dataset.records.size();
  if (n < 2) return;

  std::unique_ptr<ThreadPool> pool_storage =
      MaybeMakePool(options_.num_threads);
  ThreadPool* pool = pool_storage.get();

  // Tokenize every record once (deduplicated tokens); records are
  // independent, so this fans out. Document frequencies are accumulated
  // serially afterwards to keep the counts exact and deterministic.
  std::vector<std::vector<std::string>> tokens_of(n);
  ParallelFor(
      pool, 0, n,
      [&](size_t i) {
        auto toks = TokenizeContentWords(
            dataset.records.at(static_cast<RecordId>(i)).AllText());
        std::sort(toks.begin(), toks.end());
        toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
        tokens_of[i] = std::move(toks);
      },
      /*grain=*/32);
  std::unordered_map<std::string, uint32_t> df;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& t : tokens_of[i]) ++df[t];
  }

  // Token ids for the inverted index, skipping ultra-frequent tokens.
  const auto max_df =
      static_cast<uint32_t>(options_.max_token_df * static_cast<double>(n)) + 1;
  std::unordered_map<std::string, int32_t> token_ids;
  std::vector<std::vector<RecordId>> postings;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& t : tokens_of[i]) {
      if (df[t] > max_df || df[t] < 2) continue;
      auto [it, inserted] =
          token_ids.emplace(t, static_cast<int32_t>(postings.size()));
      if (inserted) postings.emplace_back();
      postings[static_cast<size_t>(it->second)].push_back(
          static_cast<RecordId>(i));
    }
  }

  // For each record, count overlaps against other-source records and keep
  // the top-n by overlap count (ties resolved by record id for determinism).
  // Every record ranks independently into its own slot; the candidate set is
  // assembled serially in record order, so the output is thread-count
  // invariant.
  std::vector<std::vector<RecordId>> kept(n);
  ParallelFor(
      pool, 0, n,
      [&](size_t i) {
        std::unordered_map<RecordId, uint32_t> overlap;
        const SourceId source =
            dataset.records.at(static_cast<RecordId>(i)).source();
        for (const auto& t : tokens_of[i]) {
          auto it = token_ids.find(t);
          if (it == token_ids.end()) continue;
          for (RecordId other : postings[static_cast<size_t>(it->second)]) {
            if (static_cast<size_t>(other) == i) continue;
            if (dataset.records.at(other).source() == source) continue;
            ++overlap[other];
          }
        }
        std::vector<std::pair<RecordId, uint32_t>> ranked;
        ranked.reserve(overlap.size());
        for (const auto& [rid, cnt] : overlap) {
          if (cnt >= options_.min_overlap) ranked.emplace_back(rid, cnt);
        }
        size_t keep = std::min(options_.top_n, ranked.size());
        auto by_count_then_id = [](const auto& a, const auto& b) {
          if (a.second != b.second) return a.second > b.second;
          return a.first < b.first;
        };
        std::partial_sort(ranked.begin(),
                          ranked.begin() + static_cast<long>(keep),
                          ranked.end(), by_count_then_id);
        kept[i].reserve(keep);
        for (size_t k = 0; k < keep; ++k) kept[i].push_back(ranked[k].first);
      },
      /*grain=*/16);
  for (size_t i = 0; i < n; ++i) {
    for (RecordId other : kept[i]) {
      out->Add(RecordPair(static_cast<RecordId>(i), other), kind());
    }
  }
}

}  // namespace gralmatch

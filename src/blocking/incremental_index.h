#ifndef GRALMATCH_BLOCKING_INCREMENTAL_INDEX_H_
#define GRALMATCH_BLOCKING_INCREMENTAL_INDEX_H_

/// \file incremental_index.h
/// Incremental blocking indexes for streaming ingestion: the Token Overlap
/// and ID Overlap blockings maintained as in-place updatable inverted
/// indexes. Each AddRecords call absorbs a batch of appended records and
/// each RemoveRecords call retracts previously added ones; both return the
/// exact delta of the blocker's candidate-pair set, with the recomputation
/// scoped to the records the mutation can actually affect (dirty records /
/// touched identifier buckets).
///
/// Invariant: after any sequence of AddRecords/RemoveRecords calls, the
/// current pair set equals the batch blocker run on the live records. The
/// batch blockers (TokenOverlapBlocker, securities-mode IdOverlapBlocker)
/// delegate to these indexes, so the equivalence holds by construction —
/// there is one implementation of the blocking semantics, not two.
///
/// Note that both blockings are *not* monotone in their inputs: an
/// identifier bucket that grows past the bucket cap retracts every pair it
/// previously produced, a token crossing the document-frequency bounds
/// changes overlap counts globally, and a new record can displace an old one
/// from a record's top-n list. This is why AddRecords reports removed pairs
/// as well as added ones.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/id_overlap.h"
#include "blocking/token_overlap.h"
#include "common/status.h"
#include "data/record.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;
class ThreadPool;

/// Candidate-pair membership changes produced by one AddRecords or
/// RemoveRecords call. `added` pairs entered the blocker's current candidate
/// set, `removed` pairs left it; both are sorted ascending and disjoint.
struct CandidateDelta {
  std::vector<RecordPair> added;
  std::vector<RecordPair> removed;
};

/// \brief In-place updatable Token Overlap blocking (§5.3.1 semantics).
///
/// Maintains per-record token sets, document frequencies and postings. On
/// each batch, only dirty records are re-ranked: the new records themselves,
/// records sharing an eligible token with a new record, and records holding
/// a token whose document-frequency eligibility flipped (including tokens
/// re-admitted because the max-df cap rises with the record count).
class IncrementalTokenOverlapIndex {
 public:
  IncrementalTokenOverlapIndex() : options_() {}
  /// `options.num_threads` is ignored; pass a pool to AddRecords instead.
  explicit IncrementalTokenOverlapIndex(TokenOverlapBlocker::Options options)
      : options_(options) {}

  /// Absorb records [num_records(), records.size()). `records` must contain
  /// every previously added record unchanged; `pool` (optional) fans out
  /// tokenization and re-ranking without affecting the result.
  CandidateDelta AddRecords(const RecordTable& records,
                            ThreadPool* pool = nullptr);

  /// The blocking keys one record publishes to a candidate-exchange layer:
  /// its content tokens, sorted and deduplicated. Document-frequency
  /// eligibility is deliberately *not* applied here — the df bounds are a
  /// property of the global record set, which only the index (fed by every
  /// shard's publications) can evaluate.
  static std::vector<std::string> ExtractKeys(const Record& record);

  /// Key-publication hook for the candidate-exchange layer
  /// (shard/candidate_exchange.h): absorb records
  /// [num_records(), records.size()) whose keys were already extracted by
  /// the publishing side. `published[k]` must equal
  /// ExtractKeys(records.at(num_records() + k)); AddRecords is exactly
  /// ExtractKeys on each new record followed by this call, so both paths
  /// produce identical deltas and identical index state.
  CandidateDelta AddPublishedRecords(
      const RecordTable& records,
      std::vector<std::vector<std::string>> published,
      ThreadPool* pool = nullptr);

  /// Retract previously added records. Each id in `removed_ids` (in range,
  /// unique, not yet removed) gives up its tokens: document frequencies
  /// drop, the max-df cap is recomputed from the live-record count, and
  /// every record whose ranking could change — holders of a touched or
  /// eligibility-flipped token, including tokens pushed back *under* the
  /// falling cap — is re-ranked. `records` must still hold the removed
  /// records' payloads (the table is append-only; removal is logical). The
  /// delta may contain added pairs: retraction is not monotone either, a df
  /// falling back into [2, max_df] re-admits its token.
  CandidateDelta RemoveRecords(const RecordTable& records,
                               const std::vector<RecordId>& removed_ids,
                               ThreadPool* pool = nullptr);

  /// Current candidate pairs (unsorted).
  std::vector<RecordPair> CurrentPairs() const;

  size_t num_records() const { return num_records_; }
  /// Live (non-retracted) records; the max-df cap is a fraction of this
  /// count, not of the table size.
  size_t num_live() const { return num_live_; }
  /// Restore the live count after LoadState (which defaults every record to
  /// alive — the owning pipeline carries the tombstone set).
  void SetNumLive(size_t live) { num_live_ = live; }
  size_t num_tokens() const { return tokens_.size(); }

  /// Serialize the complete index state (options included) into `writer`.
  /// Map-backed members are emitted in sorted order, so the bytes are a
  /// deterministic function of the logical state.
  void SaveState(BinaryWriter* writer) const;

  /// Restore the state written by SaveState, replacing the current contents.
  /// The df-bucket structure is rebuilt from the per-token document
  /// frequencies (its defining invariant) rather than round-tripped. Returns
  /// an error on truncated or inconsistent input, leaving the index in an
  /// unspecified state that must be discarded.
  Status LoadState(BinaryReader* reader);

 private:
  struct TokenInfo {
    uint32_t df = 0;
    std::vector<RecordId> postings;  ///< holders, ascending record id
  };

  /// Top-n other-source records by token overlap for one record, using the
  /// same eligibility, min-overlap and (count desc, id asc) tie-break rules
  /// as the batch blocker.
  std::vector<RecordId> RankRecord(const RecordTable& records,
                                   RecordId record) const;

  TokenOverlapBlocker::Options options_;
  size_t num_records_ = 0;
  size_t num_live_ = 0;
  uint32_t max_df_ = 1;
  std::unordered_map<std::string, int32_t> token_id_;
  std::vector<TokenInfo> tokens_;
  /// Token ids per record (unique).
  std::vector<std::vector<int32_t>> record_tokens_;
  /// Current top-n candidate list per record.
  std::vector<std::vector<RecordId>> kept_;
  /// Pair -> number of kept-lists currently containing it (1 or 2).
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> refcount_;
  /// df value -> token ids at that df, for max-df-crossing detection. Only
  /// membership matters (iteration feeds boolean dirty flags), so the
  /// unordered iteration never reaches the output.
  std::unordered_map<uint32_t, std::unordered_set<int32_t>> df_buckets_;
};

/// \brief In-place updatable ID Overlap blocking (securities mode): records
/// sharing an identifier value become candidates while the value's bucket
/// stays within [2, max_bucket] holders. Buckets growing past the cap
/// retract their pairs, exactly as a from-scratch run would drop them.
class IncrementalIdOverlapIndex {
 public:
  IncrementalIdOverlapIndex() = default;
  explicit IncrementalIdOverlapIndex(size_t max_bucket)
      : max_bucket_(max_bucket) {}

  /// Absorb records [num_records(), records.size()); same contract as
  /// IncrementalTokenOverlapIndex::AddRecords.
  CandidateDelta AddRecords(const RecordTable& records,
                            ThreadPool* pool = nullptr);

  /// The blocking keys one record publishes: its identifier values, in
  /// attribute order with repeats preserved (a record carrying one value
  /// under several attributes publishes it once per attribute, exactly as
  /// the index ingests it).
  static std::vector<std::string> ExtractKeys(const Record& record);

  /// Key-publication hook; same contract as the token index's
  /// AddPublishedRecords: `published[k]` must equal
  /// ExtractKeys(records.at(num_records() + k)).
  CandidateDelta AddPublishedRecords(
      const RecordTable& records,
      const std::vector<std::vector<std::string>>& published,
      ThreadPool* pool = nullptr);

  /// Retract previously added records: each removed id's identifier values
  /// release their holder entries (surviving holder order preserved, empty
  /// buckets retained), and every touched bucket re-derives its pair
  /// contribution — a bucket shrinking back into [2, max_bucket] holders
  /// *re-admits* pairs it had overflowed away. Preconditions as for
  /// IncrementalTokenOverlapIndex::RemoveRecords.
  CandidateDelta RemoveRecords(const RecordTable& records,
                               const std::vector<RecordId>& removed_ids,
                               ThreadPool* pool = nullptr);

  /// Current candidate pairs (unsorted).
  std::vector<RecordPair> CurrentPairs() const;

  size_t num_records() const { return num_records_; }

  /// Serialize / restore the complete index state; same contract as the
  /// token index's SaveState/LoadState. Bucket holder order is preserved
  /// verbatim (it determines how future batches diff against the past).
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  size_t max_bucket_ = IdOverlapBlocker::kMaxBucket;
  size_t num_records_ = 0;
  /// Identifier value -> holder record ids (insertion order, may repeat a
  /// record that carries the value under several attributes).
  std::unordered_map<std::string, std::vector<RecordId>> index_;
  /// Pair -> number of identifier buckets currently producing it.
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> refcount_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_BLOCKING_INCREMENTAL_INDEX_H_

#ifndef GRALMATCH_BLOCKING_TOKEN_OVERLAP_H_
#define GRALMATCH_BLOCKING_TOKEN_OVERLAP_H_

/// \file token_overlap.h
/// Token Overlap blocking (§5.3.1): each record is viewed as its token set;
/// a record is paired with the top-n records of *other* data sources that
/// share the most tokens with it. This is the blocking that finds candidate
/// matches by text alignment — and the main source of false positive
/// predictions on records sharing common terms, which GraLMatch's
/// Pre-Cleanup specifically targets.

#include <cstdint>
#include <string>

#include "blocking/blocker.h"

namespace gralmatch {

/// \brief Token Overlap blocker.
class TokenOverlapBlocker : public Blocker {
 public:
  struct Options {
    /// Candidates kept per record (the paper's top-n).
    size_t top_n = 5;
    /// Minimum number of overlapping tokens to qualify.
    size_t min_overlap = 2;
    /// Tokens present in more than this fraction of records are ignored
    /// when counting overlaps (they carry no discriminative signal and blow
    /// up the inverted index).
    double max_token_df = 0.05;
    /// Worker threads for tokenization and per-record overlap ranking.
    /// Any value produces the exact same candidate set as 1 (serial).
    size_t num_threads = 1;
  };

  TokenOverlapBlocker() = default;
  explicit TokenOverlapBlocker(Options options) : options_(options) {}

  std::string name() const override { return "Token Overlap"; }
  BlockerKind kind() const override { return kBlockerTokenOverlap; }
  void AddCandidates(const Dataset& dataset, CandidateSet* out) const override;

 private:
  Options options_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_BLOCKING_TOKEN_OVERLAP_H_

#ifndef GRALMATCH_BLOCKING_ID_OVERLAP_H_
#define GRALMATCH_BLOCKING_ID_OVERLAP_H_

/// \file id_overlap.h
/// ID Overlap blocking (§5.3.1): candidate pairs based exclusively on
/// overlapping identifier attribute values. For company records, the overlap
/// is evaluated through the identifiers of the securities each company
/// issues — the "benchmark heuristic" used in the financial industry.

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace gralmatch {

/// Identifier attributes recognized on security records.
const std::vector<std::string>& IdentifierAttributes();

/// \brief ID Overlap blocker.
///
/// Securities mode (default construction): two security records become a
/// candidate pair when they share any identifier value.
///
/// Companies mode (constructed with the securities table): two company
/// records become a candidate pair when any securities they issue (linked
/// by the securities' "issuer_ref" attribute) share an identifier value.
class IdOverlapBlocker : public Blocker {
 public:
  struct Options {
    /// Worker threads for expanding identifier buckets into pairs. Any
    /// value produces the exact same candidate set as 1 (serial).
    size_t num_threads = 1;
  };

  /// Securities mode.
  IdOverlapBlocker() = default;
  explicit IdOverlapBlocker(Options options) : options_(options) {}

  /// Companies mode: `securities` must outlive the blocker; its records'
  /// "issuer_ref" attributes index into the blocked (company) dataset.
  explicit IdOverlapBlocker(const RecordTable* securities)
      : securities_(securities) {}
  IdOverlapBlocker(const RecordTable* securities, Options options)
      : securities_(securities), options_(options) {}

  std::string name() const override { return "ID Overlap"; }
  BlockerKind kind() const override { return kBlockerIdOverlap; }
  void AddCandidates(const Dataset& dataset, CandidateSet* out) const override;

  /// Identifier values shared by more than this many records are skipped
  /// (defensive bound against degenerate buckets).
  static constexpr size_t kMaxBucket = 64;

 private:
  const RecordTable* securities_ = nullptr;
  Options options_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_BLOCKING_ID_OVERLAP_H_

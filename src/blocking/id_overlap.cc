#include "blocking/id_overlap.h"

#include <cstdlib>
#include <unordered_map>

namespace gralmatch {

const std::vector<std::string>& IdentifierAttributes() {
  static const std::vector<std::string> kAttrs = {"isin", "cusip", "sedol",
                                                  "valor", "lei"};
  return kAttrs;
}

namespace {

/// Map identifier value -> records carrying it.
std::unordered_map<std::string, std::vector<RecordId>> BuildIdIndex(
    const RecordTable& table) {
  std::unordered_map<std::string, std::vector<RecordId>> index;
  for (size_t i = 0; i < table.size(); ++i) {
    const Record& rec = table.at(static_cast<RecordId>(i));
    for (const auto& attr : IdentifierAttributes()) {
      for (const auto& value : rec.GetMulti(attr)) {
        index[value].push_back(static_cast<RecordId>(i));
      }
    }
  }
  return index;
}

}  // namespace

void IdOverlapBlocker::AddCandidates(const Dataset& dataset,
                                     CandidateSet* out) const {
  if (securities_ == nullptr) {
    // Securities mode: direct identifier overlap.
    auto index = BuildIdIndex(dataset.records);
    for (const auto& [value, holders] : index) {
      if (holders.size() < 2 || holders.size() > kMaxBucket) continue;
      for (size_t i = 0; i < holders.size(); ++i) {
        for (size_t j = i + 1; j < holders.size(); ++j) {
          if (dataset.records.at(holders[i]).source() ==
              dataset.records.at(holders[j]).source()) {
            continue;
          }
          out->Add(RecordPair(holders[i], holders[j]), kind());
        }
      }
    }
    return;
  }

  // Companies mode: overlap through issued securities.
  // identifier value -> issuing company records.
  std::unordered_map<std::string, std::vector<RecordId>> index;
  for (size_t i = 0; i < securities_->size(); ++i) {
    const Record& sec = securities_->at(static_cast<RecordId>(i));
    std::string_view issuer = sec.Get("issuer_ref");
    if (issuer.empty()) continue;
    RecordId company =
        static_cast<RecordId>(std::atoi(std::string(issuer).c_str()));
    if (company < 0 || static_cast<size_t>(company) >= dataset.records.size()) {
      continue;
    }
    for (const auto& attr : IdentifierAttributes()) {
      for (const auto& value : sec.GetMulti(attr)) {
        index[value].push_back(company);
      }
    }
  }
  for (const auto& [value, issuers] : index) {
    if (issuers.size() < 2 || issuers.size() > kMaxBucket) continue;
    for (size_t i = 0; i < issuers.size(); ++i) {
      for (size_t j = i + 1; j < issuers.size(); ++j) {
        if (issuers[i] == issuers[j]) continue;
        if (dataset.records.at(issuers[i]).source() ==
            dataset.records.at(issuers[j]).source()) {
          continue;
        }
        out->Add(RecordPair(issuers[i], issuers[j]), kind());
      }
    }
  }
}

}  // namespace gralmatch

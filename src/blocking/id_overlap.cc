#include "blocking/id_overlap.h"

#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "blocking/incremental_index.h"
#include "exec/parallel.h"

namespace gralmatch {

const std::vector<std::string>& IdentifierAttributes() {
  static const std::vector<std::string> kAttrs = {"isin", "cusip", "sedol",
                                                  "valor", "lei"};
  return kAttrs;
}

namespace {

/// Expand every identifier bucket into its cross-source pairs, fanning the
/// buckets out over `num_threads` workers. Each bucket writes to its own
/// slot and the pairs are merged into `out` in bucket order; CandidateSet
/// deduplicates with provenance union, so the result is identical for every
/// thread count.
void EmitBucketPairs(
    const std::unordered_map<std::string, std::vector<RecordId>>& index,
    const RecordTable& records, size_t max_bucket, size_t num_threads,
    BlockerKind kind, CandidateSet* out) {
  std::vector<const std::vector<RecordId>*> buckets;
  buckets.reserve(index.size());
  for (const auto& [value, holders] : index) {
    if (holders.size() >= 2 && holders.size() <= max_bucket) {
      buckets.push_back(&holders);
    }
  }

  std::unique_ptr<ThreadPool> pool_storage = MaybeMakePool(num_threads);

  std::vector<std::vector<RecordPair>> bucket_pairs(buckets.size());
  ParallelFor(
      pool_storage.get(), 0, buckets.size(),
      [&](size_t bi) {
        const std::vector<RecordId>& holders = *buckets[bi];
        for (size_t i = 0; i < holders.size(); ++i) {
          for (size_t j = i + 1; j < holders.size(); ++j) {
            if (holders[i] == holders[j]) continue;
            if (records.at(holders[i]).source() ==
                records.at(holders[j]).source()) {
              continue;
            }
            bucket_pairs[bi].emplace_back(holders[i], holders[j]);
          }
        }
      },
      /*grain=*/8);
  for (const auto& pairs : bucket_pairs) {
    for (const RecordPair& pair : pairs) out->Add(pair, kind);
  }
}

}  // namespace

void IdOverlapBlocker::AddCandidates(const Dataset& dataset,
                                     CandidateSet* out) const {
  if (securities_ == nullptr) {
    // Securities mode: direct identifier overlap, delegated to the
    // incremental index with one batch holding every record so the
    // streaming path (stream/) shares this implementation and stays
    // equivalent to a from-scratch run by construction.
    std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
    IncrementalIdOverlapIndex index(kMaxBucket);
    CandidateDelta delta = index.AddRecords(dataset.records, pool.get());
    for (const RecordPair& pair : delta.added) out->Add(pair, kind());
    return;
  }

  // Companies mode: overlap through issued securities.
  // identifier value -> issuing company records.
  std::unordered_map<std::string, std::vector<RecordId>> index;
  for (size_t i = 0; i < securities_->size(); ++i) {
    const Record& sec = securities_->at(static_cast<RecordId>(i));
    std::string_view issuer = sec.Get("issuer_ref");
    if (issuer.empty()) continue;
    RecordId company =
        static_cast<RecordId>(std::atoi(std::string(issuer).c_str()));
    if (company < 0 || static_cast<size_t>(company) >= dataset.records.size()) {
      continue;
    }
    for (const auto& attr : IdentifierAttributes()) {
      for (const auto& value : sec.GetMulti(attr)) {
        index[value].push_back(company);
      }
    }
  }
  EmitBucketPairs(index, dataset.records, kMaxBucket, options_.num_threads,
                  kind(), out);
}

}  // namespace gralmatch

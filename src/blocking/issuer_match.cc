#include "blocking/issuer_match.h"

#include <cstdlib>
#include <unordered_map>

namespace gralmatch {

void IssuerMatchBlocker::AddCandidates(const Dataset& dataset,
                                       CandidateSet* out) const {
  // group id -> security records issued by companies of that group.
  std::unordered_map<int64_t, std::vector<RecordId>> by_group;
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    const Record& sec = dataset.records.at(static_cast<RecordId>(i));
    std::string_view issuer = sec.Get("issuer_ref");
    if (issuer.empty()) continue;
    auto company = static_cast<size_t>(std::atoll(std::string(issuer).c_str()));
    if (company >= company_group_of_->size()) continue;
    int64_t group = (*company_group_of_)[company];
    if (group < 0) continue;
    by_group[group].push_back(static_cast<RecordId>(i));
  }

  for (const auto& [group, members] : by_group) {
    if (members.size() < 2 || members.size() > kMaxGroup) continue;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (dataset.records.at(members[i]).source() ==
            dataset.records.at(members[j]).source()) {
          continue;
        }
        out->Add(RecordPair(members[i], members[j]), kind());
      }
    }
  }
}

}  // namespace gralmatch

#ifndef GRALMATCH_BLOCKING_ISSUER_MATCH_H_
#define GRALMATCH_BLOCKING_ISSUER_MATCH_H_

/// \file issuer_match.h
/// Issuer Match blocking (§5.3.1, securities only): pair each security
/// record with the securities issued by companies previously matched to the
/// security's issuer. This is how securities with non-matching identifiers
/// and generic names ("Common Stock") become candidates at all.

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace gralmatch {

/// \brief Issuer Match blocker.
///
/// Requires the output of a previous *company* matching: a group id per
/// company record (records with the same group id were matched). Securities
/// reference company records via their "issuer_ref" attribute.
class IssuerMatchBlocker : public Blocker {
 public:
  /// `company_group_of` maps each company RecordId to a group id (< 0 for
  /// ungrouped). Must outlive the blocker.
  explicit IssuerMatchBlocker(const std::vector<int64_t>* company_group_of)
      : company_group_of_(company_group_of) {}

  std::string name() const override { return "Issuer Match"; }
  BlockerKind kind() const override { return kBlockerIssuerMatch; }
  void AddCandidates(const Dataset& dataset, CandidateSet* out) const override;

  /// Issuer groups with more security records than this are skipped
  /// (defensive bound; a huge issuer group means the company matching
  /// already failed).
  static constexpr size_t kMaxGroup = 96;

 private:
  const std::vector<int64_t>* company_group_of_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_BLOCKING_ISSUER_MATCH_H_

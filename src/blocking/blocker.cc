#include "blocking/blocker.h"

#include <algorithm>

namespace gralmatch {

void CandidateSet::Add(RecordPair pair, BlockerKind kind) {
  pairs_[pair] |= static_cast<uint32_t>(kind);
}

void CandidateSet::Merge(const CandidateSet& other) {
  for (const auto& [pair, prov] : other.pairs_) pairs_[pair] |= prov;
}

std::vector<Candidate> CandidateSet::ToVector() const {
  std::vector<Candidate> out;
  out.reserve(pairs_.size());
  for (const auto& [pair, prov] : pairs_) out.push_back({pair, prov});
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.pair < b.pair;
  });
  return out;
}

uint32_t CandidateSet::ProvenanceOf(const RecordPair& pair) const {
  auto it = pairs_.find(pair);
  return it == pairs_.end() ? 0 : it->second;
}

}  // namespace gralmatch

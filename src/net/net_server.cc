#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "net/wire.h"

namespace gralmatch {

namespace {

/// Write all of `bytes` to `fd`. MSG_NOSIGNAL turns a peer that vanished
/// mid-reply into a clean error instead of SIGPIPE.
Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOErrorFromErrno("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ErrorFrame(const Status& status) {
  NetReply reply;
  reply.status = status;
  return EncodeNetFrame(EncodeNetReplyBody(reply));
}

/// Extract buffered frames into `bodies`, stopping at `max_batch`. A
/// framing error poisons the stream and is returned after the valid frames
/// extracted before it.
Status DrainFrames(NetFrameBuffer* frames, size_t max_batch,
                   std::vector<std::string>* bodies) {
  while (bodies->size() < max_batch) {
    bool has_frame = false;
    std::string body;
    GRALMATCH_RETURN_NOT_OK(frames->NextFrame(&has_frame, &body));
    if (!has_frame) break;
    bodies->push_back(std::move(body));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<NetServer>> NetServer::Start(
    const MatchService* service, const NetServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("NetServer needs a MatchService to front");
  }
  if (options.max_connections == 0 || options.max_batch == 0 ||
      options.max_in_flight_requests == 0) {
    return Status::InvalidArgument(
        "NetServer limits must be positive: max_connections, max_batch and "
        "max_in_flight_requests of 0 would admit nothing");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOErrorFromErrno("cannot create listening socket");
  }
  const int enable = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status failure = Status::IOErrorFromErrno(
        "cannot bind loopback port " + std::to_string(options.port));
    (void)close(fd);
    return failure;
  }
  if (listen(fd, 128) != 0) {
    Status failure = Status::IOErrorFromErrno("cannot listen");
    (void)close(fd);
    return failure;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status failure = Status::IOErrorFromErrno("cannot read the bound port");
    (void)close(fd);
    return failure;
  }
  return std::unique_ptr<NetServer>(
      new NetServer(service, options, fd, ntohs(bound.sin_port)));
}

NetServer::NetServer(const MatchService* service,
                     const NetServerOptions& options, int listen_fd,
                     uint16_t port)
    : service_(service),
      options_(options),
      listen_fd_(listen_fd),
      port_(port),
      pool_(std::make_unique<ThreadPool>(options.max_connections)),
      metrics_(obs::NetMetrics::Create(options.metrics)) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

NetServer::~NetServer() { Stop(); }

void NetServer::Stop() {
  if (stopping_.exchange(true)) return;  // the first caller shuts down
  // Wake the accept loop, then every reader blocked in recv. shutdown (not
  // close) is used from this thread: the owning task keeps a valid fd and
  // closes it itself, so no fd number can be recycled under a reader.
  (void)shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  {
    MutexLock lock(&conn_mu_);
    for (const int fd : conn_fds_) (void)shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains: every connection loop runs to completion
  (void)close(listen_fd_);
}

NetServerCounters NetServer::counters() const {
  NetServerCounters counters;
  counters.connections_accepted = connections_accepted_.load();
  counters.connections_rejected = connections_rejected_.load();
  counters.requests_served = requests_served_.load();
  counters.requests_rejected = requests_rejected_.load();
  counters.batches = batches_.load();
  return counters;
}

void NetServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      (void)close(fd);
      break;
    }
    // Admission at the connection boundary: admit only when a pool worker
    // is free to own the reader loop, so an admitted connection never
    // queues behind another one.
    size_t active = active_connections_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (active < options_.max_connections) {
      if (active_connections_.compare_exchange_weak(active, active + 1)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.shed_connection_cap != nullptr) {
        metrics_.shed_connection_cap->Increment();
      }
      // Discard audited: best-effort courtesy frame to a connection being
      // refused — the fd is closed right after whether the send lands or not.
      (void)SendAll(fd, ErrorFrame(Status::OutOfRange(
                            "server at connection capacity (" +
                            std::to_string(options_.max_connections) +
                            " connections)")));
      (void)close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&conn_mu_);
      conn_fds_.insert(fd);
    }
    pool_->Submit([this, fd] {
      ServeConnection(fd);
      {
        MutexLock lock(&conn_mu_);
        conn_fds_.erase(fd);
      }
      (void)close(fd);
      active_connections_.fetch_sub(1, std::memory_order_release);
    });
  }
}

void NetServer::ServeConnection(int fd) {
  NetFrameBuffer frames(options_.max_frame_size);
  std::vector<std::string> batch;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    batch.clear();
    // Block until at least one complete request frame is in.
    Status framing = DrainFrames(&frames, options_.max_batch, &batch);
    while (framing.ok() && batch.empty()) {
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // orderly EOF (mid-frame bytes are just dropped)
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // reset / shutdown — nothing sensible left to send
      }
      frames.Append(chunk, static_cast<size_t>(n));
      framing = DrainFrames(&frames, options_.max_batch, &batch);
    }
    // Opportunistically pick up the rest of a pipelined burst the kernel
    // already buffered, so the whole burst resolves against one epoch.
    while (framing.ok() && batch.size() < options_.max_batch) {
      const ssize_t n = recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n <= 0) break;
      frames.Append(chunk, static_cast<size_t>(n));
      framing = DrainFrames(&frames, options_.max_batch, &batch);
    }
    // Valid frames extracted before a framing error are still answered;
    // then the error frame is the last thing the peer reads before EOF.
    if (!batch.empty() && !ServeBatch(fd, batch)) return;
    if (!framing.ok()) {
      // Shed accounting: an over-cap length prefix is kOutOfRange (the one
      // admission-control framing rejection); everything else — bad magic,
      // future version, checksum mismatch — is a fatal framing error.
      if (framing.code() == StatusCode::kOutOfRange) {
        if (metrics_.shed_frame_size != nullptr) {
          metrics_.shed_frame_size->Increment();
        }
      } else if (metrics_.shed_framing_fatal != nullptr) {
        metrics_.shed_framing_fatal->Increment();
      }
      // Discard audited: best-effort error frame on an already-poisoned
      // stream; the connection closes either way.
      (void)SendAll(fd, ErrorFrame(framing));
      return;  // byte-stream sync is unrecoverable past a framing error
    }
  }
}

bool NetServer::ServeBatch(int fd, const std::vector<std::string>& bodies) {
  // Admit against the global in-flight cap; requests past it are answered
  // with a clean error instead of silently queuing without bound.
  size_t admitted = 0;
  size_t in_flight = in_flight_.load(std::memory_order_relaxed);
  while (in_flight < options_.max_in_flight_requests) {
    const size_t want =
        std::min(bodies.size(),
                 options_.max_in_flight_requests - in_flight);
    if (in_flight_.compare_exchange_weak(in_flight, in_flight + want)) {
      admitted = want;
      break;
    }
  }

  // One snapshot for the whole burst: every admitted request in this batch
  // is answered from the same epoch.
  const MatchSnapshotPtr view = service_->View();
  batches_.fetch_add(1, std::memory_order_relaxed);
  // Per-request phase timing is only paid when a registry is wired.
  const bool instrumented = metrics_.rpc_decode_seconds != nullptr;
  std::string out;
  for (size_t k = 0; k < bodies.size(); ++k) {
    NetReply reply;
    if (k >= admitted) {
      reply.status = Status::OutOfRange(
          "server overloaded: " +
          std::to_string(options_.max_in_flight_requests) +
          " requests already in flight");
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.shed_overload != nullptr) {
        metrics_.shed_overload->Increment();
      }
    } else {
      Stopwatch phase_watch;
      auto request = DecodeNetRequestBody(bodies[k]);
      if (instrumented) {
        metrics_.rpc_decode_seconds->Observe(phase_watch.ElapsedSeconds());
        phase_watch.Reset();
      }
      if (!request.ok()) {
        reply.status = request.status();
      } else {
        reply.op = request->op;
        reply.epoch = view->epoch();
        switch (request->op) {
          case NetOpcode::kGroupOf:
            // A record id outside the i32 range cannot name a record; a
            // raw cast would alias it onto a valid one.
            reply.group =
                request->id < std::numeric_limits<RecordId>::min() ||
                        request->id > std::numeric_limits<RecordId>::max()
                    ? kNoGroup
                    : view->GroupOf(static_cast<RecordId>(request->id));
            break;
          case NetOpcode::kMembers:
            reply.members = view->Members(request->id);
            break;
          case NetOpcode::kStats:
            reply.stats = view->stats();
            break;
          case NetOpcode::kMetrics:
            if (options_.metrics == nullptr) {
              reply.status = Status::NotFound(
                  "metrics not enabled on this server: start it with "
                  "NetServerOptions::metrics wired to a registry");
            } else {
              reply.metrics = obs::DumpMetricsText(*options_.metrics);
            }
            break;
        }
      }
      if (instrumented) {
        metrics_.rpc_dispatch_seconds->Observe(phase_watch.ElapsedSeconds());
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.requests_served != nullptr) {
        metrics_.requests_served->Increment();
      }
    }
    Stopwatch encode_watch;
    out += EncodeNetFrame(EncodeNetReplyBody(reply));
    if (instrumented) {
      metrics_.rpc_encode_seconds->Observe(encode_watch.ElapsedSeconds());
    }
  }
  if (admitted > 0) in_flight_.fetch_sub(admitted, std::memory_order_relaxed);
  return SendAll(fd, out).ok();
}

}  // namespace gralmatch

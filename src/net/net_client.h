#ifndef GRALMATCH_NET_NET_CLIENT_H_
#define GRALMATCH_NET_NET_CLIENT_H_

/// \file net_client.h
/// Blocking loopback client for the NetServer wire protocol — the client
/// side tests, examples and benchmarks speak. One NetClient owns one
/// connection; it is not thread-safe (use one client per thread, the way a
/// real connection pool would).
///
/// Two layers:
///  - Typed calls (GroupOf / Members / Stats / Metrics / Call): encode, send, and
///    decode; a server-side per-request error comes back as the Result's
///    Status.
///  - Raw access (SendBytes / ReadReply): the protocol tests inject
///    corrupt, truncated, or garbage bytes and observe exactly what the
///    server answers — or that it cleanly closed the connection.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace gralmatch {

/// \brief One blocking client connection to a NetServer.
class NetClient {
 public:
  /// Connect to a NetServer on the loopback interface. `max_frame_size`
  /// caps the reply bodies this client will accept.
  static Result<std::unique_ptr<NetClient>> Connect(
      uint16_t port, size_t max_frame_size = 1 << 20);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Single-query conveniences. The Result is non-OK on transport failure
  /// *or* when the server answered this request with an error.
  Result<NetReply> GroupOf(RecordId record);
  Result<NetReply> Members(GroupId group);
  Result<ServeStats> Stats();
  /// Scrape the server's metrics registry: the Prometheus-style text dump
  /// (obs::DumpMetricsText). Errors if the server has no registry wired.
  Result<std::string> Metrics();

  /// Pipelined burst: write every request frame back to back, then read
  /// the replies. The server resolves the burst against one epoch (up to
  /// its max_batch), so the replies' epochs agree. Per-request server
  /// errors stay embedded in each reply's `status`; the call itself fails
  /// only on transport or framing errors.
  Result<std::vector<NetReply>> Call(const std::vector<NetRequest>& batch);

  /// Write raw bytes verbatim (protocol tests).
  Status SendBytes(std::string_view raw);

  /// Read one reply frame. A server that closed the connection (its
  /// response to a framing error, or capacity rejection after its error
  /// frame) surfaces as an IOError mentioning the closed connection.
  Result<NetReply> ReadReply();

 private:
  NetClient(int fd, size_t max_frame_size);

  Result<NetReply> RoundTrip(const NetRequest& request);

  int fd_;
  NetFrameBuffer frames_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_NET_NET_CLIENT_H_

#include "net/wire.h"

#include "common/binary_io.h"
#include "serve/framing.h"

namespace gralmatch {

namespace {

constexpr char kFrameWhat[] = "RPC frame";

Status CheckOpcode(uint8_t raw, NetOpcode* op) {
  switch (raw) {
    case static_cast<uint8_t>(NetOpcode::kGroupOf):
    case static_cast<uint8_t>(NetOpcode::kMembers):
    case static_cast<uint8_t>(NetOpcode::kStats):
    case static_cast<uint8_t>(NetOpcode::kMetrics):
      *op = static_cast<NetOpcode>(raw);
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown RPC opcode " +
                                     std::to_string(raw));
  }
}

/// GroupOf and Members carry an i64 operand; Stats and Metrics carry none.
bool HasOperand(NetOpcode op) {
  return op == NetOpcode::kGroupOf || op == NetOpcode::kMembers;
}

}  // namespace

std::string EncodeNetFrame(std::string_view body) {
  BinaryWriter frame;
  frame.WriteBytes(kNetFrameMagic, sizeof(kNetFrameMagic));
  frame.WriteU32(kNetFrameVersion);
  frame.WriteString(body);
  frame.WriteU64(Fnv1a64(frame.buffer()));
  return frame.buffer();
}

Result<std::string_view> DecodeNetFrame(const std::string& image) {
  BinaryReader reader(image);
  GRALMATCH_RETURN_NOT_OK(CheckMagicBytes(&reader, kNetFrameMagic, kFrameWhat));
  GRALMATCH_RETURN_NOT_OK(
      CheckFormatVersion(&reader, kNetFrameVersion, kFrameWhat));
  GRALMATCH_ASSIGN_OR_RETURN(const uint64_t checksum,
                             CheckTrailingChecksum(image, kFrameWhat));
  std::string_view body;
  GRALMATCH_RETURN_NOT_OK(reader.ReadStringView(&body));
  uint64_t trailing = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&trailing));
  if (trailing != checksum) {
    return Status::IOError(
        "RPC frame corrupted: body length disagrees with the checksum "
        "position");
  }
  if (!reader.AtEnd()) {
    return Status::IOError("RPC frame corrupted: " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the checksum");
  }
  return body;
}

std::string EncodeNetRequestBody(const NetRequest& request) {
  BinaryWriter body;
  body.WriteU8(static_cast<uint8_t>(request.op));
  if (HasOperand(request.op)) body.WriteI64(request.id);
  return body.buffer();
}

Result<NetRequest> DecodeNetRequestBody(std::string_view body) {
  BinaryReader reader(body);
  uint8_t raw_op = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU8(&raw_op));
  NetRequest request;
  GRALMATCH_RETURN_NOT_OK(CheckOpcode(raw_op, &request.op));
  if (HasOperand(request.op)) {
    GRALMATCH_RETURN_NOT_OK(reader.ReadI64(&request.id));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed RPC request: " +
                                   std::to_string(reader.remaining()) +
                                   " trailing bytes after the operand");
  }
  return request;
}

std::string EncodeNetReplyBody(const NetReply& reply) {
  BinaryWriter body;
  body.WriteU8(static_cast<uint8_t>(reply.status.code()));
  if (!reply.status.ok()) {
    body.WriteString(reply.status.message());
    return body.buffer();
  }
  body.WriteU8(static_cast<uint8_t>(reply.op));
  body.WriteU64(reply.epoch);
  switch (reply.op) {
    case NetOpcode::kGroupOf:
      body.WriteI64(reply.group);
      break;
    case NetOpcode::kMembers:
      body.WriteU64(reply.members.size());
      for (const RecordId member : reply.members) body.WriteI32(member);
      break;
    case NetOpcode::kStats:
      body.WriteU64(reply.stats.num_records);
      body.WriteU64(reply.stats.num_groups);
      body.WriteU64(reply.stats.num_matched_groups);
      body.WriteU64(reply.stats.num_predicted_pairs);
      break;
    case NetOpcode::kMetrics:
      body.WriteString(reply.metrics);
      break;
  }
  return body.buffer();
}

Result<NetReply> DecodeNetReplyBody(std::string_view body) {
  BinaryReader reader(body);
  uint8_t raw_code = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU8(&raw_code));
  if (raw_code > static_cast<uint8_t>(StatusCode::kNotImplemented)) {
    return Status::InvalidArgument("malformed RPC response: unknown status "
                                   "code " +
                                   std::to_string(raw_code));
  }
  NetReply reply;
  if (raw_code != static_cast<uint8_t>(StatusCode::kOk)) {
    std::string message;
    GRALMATCH_RETURN_NOT_OK(reader.ReadString(&message));
    if (!reader.AtEnd()) {
      return Status::InvalidArgument(
          "malformed RPC response: trailing bytes after the error message");
    }
    reply.status = Status(static_cast<StatusCode>(raw_code), message);
    return reply;
  }
  uint8_t raw_op = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU8(&raw_op));
  GRALMATCH_RETURN_NOT_OK(CheckOpcode(raw_op, &reply.op));
  GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&reply.epoch));
  switch (reply.op) {
    case NetOpcode::kGroupOf: {
      int64_t group = kNoGroup;
      GRALMATCH_RETURN_NOT_OK(reader.ReadI64(&group));
      reply.group = group;
      break;
    }
    case NetOpcode::kMembers: {
      uint64_t count = 0;
      GRALMATCH_RETURN_NOT_OK(reader.ReadCount(4, &count));
      reply.members.resize(static_cast<size_t>(count));
      for (RecordId& member : reply.members) {
        GRALMATCH_RETURN_NOT_OK(reader.ReadI32(&member));
      }
      break;
    }
    case NetOpcode::kStats: {
      uint64_t records = 0, groups = 0, matched = 0, pairs = 0;
      GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&records));
      GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&groups));
      GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&matched));
      GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&pairs));
      reply.stats.epoch = reply.epoch;
      reply.stats.num_records = static_cast<size_t>(records);
      reply.stats.num_groups = static_cast<size_t>(groups);
      reply.stats.num_matched_groups = static_cast<size_t>(matched);
      reply.stats.num_predicted_pairs = static_cast<size_t>(pairs);
      break;
    }
    case NetOpcode::kMetrics: {
      GRALMATCH_RETURN_NOT_OK(reader.ReadString(&reply.metrics));
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "malformed RPC response: trailing bytes after the payload");
  }
  return reply;
}

Status NetFrameBuffer::NextFrame(bool* has_frame, std::string* body) {
  *has_frame = false;
  if (buf_.size() < kNetFrameHeaderSize) return Status::OK();
  // Validate the fixed prefix before the body exists in memory: a garbage
  // or hostile length prefix must be rejected *before* it sizes an
  // allocation (the streaming analogue of ReadCount).
  BinaryReader prefix(std::string_view(buf_).substr(0, kNetFrameHeaderSize));
  GRALMATCH_RETURN_NOT_OK(CheckMagicBytes(&prefix, kNetFrameMagic, kFrameWhat));
  GRALMATCH_RETURN_NOT_OK(
      CheckFormatVersion(&prefix, kNetFrameVersion, kFrameWhat));
  uint64_t body_size = 0;
  GRALMATCH_RETURN_NOT_OK(prefix.ReadU64(&body_size));
  if (body_size > max_frame_size_) {
    // kOutOfRange, distinct from the kInvalidArgument/kIoError of the other
    // framing failures: the frame is well-formed but over this receiver's
    // cap, and the server's shed accounting classifies on the code.
    return Status::OutOfRange(
        "RPC frame body of " + std::to_string(body_size) +
        " bytes exceeds this receiver's limit of " +
        std::to_string(max_frame_size_));
  }
  const size_t total = kNetFrameHeaderSize + static_cast<size_t>(body_size) +
                       kNetFrameTrailerSize;
  if (buf_.size() < total) return Status::OK();
  const std::string image = buf_.substr(0, total);
  buf_.erase(0, total);
  GRALMATCH_ASSIGN_OR_RETURN(const std::string_view view,
                             DecodeNetFrame(image));
  body->assign(view.data(), view.size());
  *has_frame = true;
  return Status::OK();
}

}  // namespace gralmatch

#ifndef GRALMATCH_NET_NET_SERVER_H_
#define GRALMATCH_NET_NET_SERVER_H_

/// \file net_server.h
/// Socket-level binary RPC server fronting a MatchService: the first half
/// of taking epoch-snapshot serving out of process. A NetServer listens on
/// a loopback TCP port, speaks the framed wire protocol of net/wire.h, and
/// answers GroupOf / Members / Stats queries against the service's current
/// epoch (plus Metrics scrapes of an optionally wired
/// obs::MetricsRegistry).
///
/// Threading model: one dedicated listener thread accepts connections;
/// each accepted connection runs a blocking reader loop as one task on an
/// exec ThreadPool sized to `max_connections`. Admission control at the
/// accept boundary therefore doubles as the no-starvation guarantee — a
/// connection is only admitted when a pool worker is free to own it, so a
/// reader loop never waits behind another connection in the queue.
///
/// Request batching: a pipelined burst of requests on one connection (all
/// frames buffered when the reader drains the socket) is resolved against
/// a *single* MatchService::View() epoch, so a client that writes N
/// requests back to back reads N answers from one consistent snapshot —
/// the network analogue of holding a View().
///
/// Admission control, in the same spirit as BinaryReader::ReadCount:
///  - `max_connections`: excess connections receive a clean error frame
///    and are closed; they never queue invisibly.
///  - `max_in_flight_requests`: requests admitted past the cap are
///    answered with a clean per-request error, not dropped.
///  - `max_frame_size`: an oversized length prefix is rejected from the
///    20-byte header alone — the body is never allocated. Garbage,
///    truncated, or corrupt frames produce a best-effort error frame and a
///    closed connection, never a crash or unbounded allocation.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/match_service.h"

namespace gralmatch {

struct NetServerOptions {
  /// TCP port to bind on the loopback interface; 0 picks an ephemeral port
  /// (read it back from NetServer::port()).
  uint16_t port = 0;
  /// Concurrent connections served; also the worker-pool size.
  size_t max_connections = 8;
  /// Requests being resolved at once across all connections; excess
  /// requests in an admitted batch get clean "overloaded" error replies.
  size_t max_in_flight_requests = 256;
  /// Largest request body accepted (bytes).
  size_t max_frame_size = 1 << 20;
  /// Most requests resolved against one snapshot per drain of a
  /// connection's pipelined burst.
  size_t max_batch = 64;
  /// Optional observability sink (obs/metrics.h). When non-null the server
  /// records RPC decode/dispatch/encode latency histograms, served-request
  /// counters, and the four load-shedding counters, and answers the
  /// kMetrics scrape opcode with this registry's text dump. Null (the
  /// default) records nothing and kMetrics gets a per-request error.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Aggregate serving counters (monotonic since Start).
struct NetServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;
  /// Snapshot resolutions; requests_served / batches is the batching rate.
  uint64_t batches = 0;
};

/// \brief Loopback binary RPC server over one MatchService.
///
/// The service must outlive the server. Stop() (or destruction) shuts the
/// listener and every open connection down and joins all serving work.
class NetServer {
 public:
  static Result<std::unique_ptr<NetServer>> Start(const MatchService* service,
                                                  const NetServerOptions& options);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Shuts the listener and every open connection down and joins all
  /// serving work. The first call does the shutdown; later calls return
  /// immediately (call Stop from one thread, or let the destructor do it).
  void Stop() EXCLUDES(conn_mu_);

  NetServerCounters counters() const;

  /// Connections currently admitted (a closed connection is reaped
  /// asynchronously by its pool worker, so this lags a client's close).
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_acquire);
  }

 private:
  NetServer(const MatchService* service, const NetServerOptions& options,
            int listen_fd, uint16_t port);

  void AcceptLoop() EXCLUDES(conn_mu_);
  void ServeConnection(int fd);
  /// Answer one drained burst against a single snapshot. Returns false when
  /// the connection should close (send failure).
  bool ServeBatch(int fd, const std::vector<std::string>& bodies);

  const MatchService* service_;
  const NetServerOptions options_;
  int listen_fd_;
  uint16_t port_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  /// Open connection fds, so Stop() can shutdown() blocked readers. The
  /// owning connection task is the only closer of an fd — Stop only ever
  /// shuts down, which is safe against concurrent use.
  Mutex conn_mu_;
  std::unordered_set<int> conn_fds_ GUARDED_BY(conn_mu_);

  /// Resolved instrument pointers (all null without options.metrics);
  /// written once in the constructor, read from listener and pool threads.
  const obs::NetMetrics metrics_;

  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace gralmatch

#endif  // GRALMATCH_NET_NET_SERVER_H_

#ifndef GRALMATCH_NET_WIRE_H_
#define GRALMATCH_NET_WIRE_H_

/// \file wire.h
/// Binary RPC wire format for the `net` serving layer. Every message —
/// request and response alike — travels as one *frame* with the same
/// discipline as the durable checkpoint files (serve/framing.h): an 8-byte
/// magic, a u32 format version, a u64-length-prefixed body, and a trailing
/// whole-frame FNV-1a 64 checksum. The framing validators are the
/// checkpoint ones (CheckMagicBytes / CheckFormatVersion /
/// CheckTrailingChecksum), not a reimplementation, so the two byte
/// disciplines cannot drift.
///
/// Frame layout (all integers little-endian via common/binary_io.h):
///
///   offset 0   8-byte magic "GRLMNETF"
///          8   u32 frame format version (kNetFrameVersion)
///         12   u64 body size, then the body bytes
///          .   u64 FNV-1a 64 checksum of every preceding byte
///
/// The fixed 20-byte prefix (magic + version + body size) is validated
/// *before* the body is read off the socket: a bad magic, a future
/// version, or a body size above the receiver's frame-size cap is rejected
/// without allocating for the body — the streaming analogue of
/// BinaryReader::ReadCount's allocation-bomb guard.
///
/// Request body:  u8 opcode, then the operand (i64 record id for GroupOf,
/// i64 group id for Members, nothing for Stats or Metrics).
/// Response body: u8 status code (StatusCode cast to u8); a non-OK code is
/// followed by the length-prefixed error message, an OK code by the u8
/// opcode being answered, the u64 epoch the answer was resolved against,
/// and the opcode's payload.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/match_service.h"

namespace gralmatch {

/// Magic bytes opening every RPC frame: ASCII "GRLMNETF".
constexpr char kNetFrameMagic[8] = {'G', 'R', 'L', 'M', 'N', 'E', 'T', 'F'};

/// Newest frame format version this binary speaks. Frames from a newer
/// version are rejected, not misread.
constexpr uint32_t kNetFrameVersion = 1;

/// Bytes before the body: magic (8) + version (4) + body size (8).
constexpr size_t kNetFrameHeaderSize = 20;

/// Bytes after the body: the trailing checksum.
constexpr size_t kNetFrameTrailerSize = 8;

/// The queries the server answers, as wire opcodes. kMetrics (added after
/// version 1 shipped) needed no frame-version bump: opcodes are validated
/// per request, so an older server answers it with a clean "unknown RPC
/// opcode" error reply instead of tearing down the connection.
enum class NetOpcode : uint8_t {
  kGroupOf = 1,
  kMembers = 2,
  kStats = 3,
  /// Scrape the server's MetricsRegistry; the payload is the Prometheus-
  /// style DumpMetricsText() string. Servers without a wired registry
  /// answer a per-request error.
  kMetrics = 4,
};

/// One decoded request.
struct NetRequest {
  NetOpcode op = NetOpcode::kStats;
  /// GroupOf: the record id. Members: the group id. Stats: unused.
  int64_t id = 0;

  /// The record id is carried at wire width (i64), not RecordId width: the
  /// *server* decides whether it names a record — a client-side narrowing
  /// would alias out-of-range ids onto valid ones before the guard runs.
  static NetRequest GroupOf(int64_t record) {
    return {NetOpcode::kGroupOf, record};
  }
  static NetRequest Members(GroupId group) {
    return {NetOpcode::kMembers, group};
  }
  static NetRequest Stats() { return {NetOpcode::kStats, 0}; }
  static NetRequest Metrics() { return {NetOpcode::kMetrics, 0}; }
};

/// One decoded response. `status` carries a per-request server-side error
/// (unknown opcode, admission-control rejection) without tearing down the
/// connection; the payload fields are meaningful only when it is OK.
struct NetReply {
  Status status;
  NetOpcode op = NetOpcode::kStats;
  /// The epoch the server resolved this request against. All requests of
  /// one pipelined burst resolve against a single epoch.
  uint64_t epoch = 0;
  GroupId group = kNoGroup;        ///< GroupOf payload
  std::vector<RecordId> members;   ///< Members payload
  ServeStats stats;                ///< Stats payload
  std::string metrics;             ///< Metrics payload (text exposition)
};

/// Wrap `body` in a complete frame (magic, version, length prefix,
/// checksum).
std::string EncodeNetFrame(std::string_view body);

/// Validate a complete frame image and return a view of its body. The view
/// borrows from `image`.
Result<std::string_view> DecodeNetFrame(const std::string& image);

std::string EncodeNetRequestBody(const NetRequest& request);
Result<NetRequest> DecodeNetRequestBody(std::string_view body);

std::string EncodeNetReplyBody(const NetReply& reply);
Result<NetReply> DecodeNetReplyBody(std::string_view body);

/// \brief Incremental frame extractor over a byte stream.
///
/// The receive side of a connection appends whatever bytes the socket
/// delivers and extracts complete frames as they become available —
/// pipelined bursts yield several frames from one buffer, which is what
/// lets the server resolve a burst against a single epoch. Framing errors
/// (bad magic, future version, oversized body) are detected from the fixed
/// prefix alone and are *fatal to the stream*: once sync with the peer is
/// lost there is no way to find the next frame boundary in a byte stream,
/// so the connection must close.
class NetFrameBuffer {
 public:
  /// `max_frame_size` caps the *body* size this receiver will accept.
  explicit NetFrameBuffer(size_t max_frame_size)
      : max_frame_size_(max_frame_size) {}

  /// Append raw bytes received from the socket.
  void Append(const char* data, size_t size) { buf_.append(data, size); }

  /// Extract the next complete frame's *body*, if one is fully buffered.
  /// Returns: OK with `*has_frame = true` and the body in `*body` when a
  /// complete valid frame was extracted; OK with `*has_frame = false` when
  /// more bytes are needed; a non-OK Status on a framing error (stream is
  /// poisoned — close the connection).
  Status NextFrame(bool* has_frame, std::string* body);

  /// Bytes currently buffered (a nonzero value at EOF means the peer died
  /// mid-frame).
  size_t buffered() const { return buf_.size(); }

 private:
  size_t max_frame_size_;
  std::string buf_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_NET_WIRE_H_

#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gralmatch {

Result<std::unique_ptr<NetClient>> NetClient::Connect(uint16_t port,
                                                      size_t max_frame_size) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOErrorFromErrno("cannot create client socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status failure = Status::IOErrorFromErrno("cannot connect to loopback port " +
                                              std::to_string(port));
    (void)close(fd);
    return failure;
  }
  return std::unique_ptr<NetClient>(new NetClient(fd, max_frame_size));
}

NetClient::NetClient(int fd, size_t max_frame_size)
    : fd_(fd), frames_(max_frame_size) {}

NetClient::~NetClient() { (void)close(fd_); }

Status NetClient::SendBytes(std::string_view raw) {
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n =
        send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOErrorFromErrno("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<NetReply> NetClient::ReadReply() {
  char chunk[4096];
  while (true) {
    bool has_frame = false;
    std::string body;
    GRALMATCH_RETURN_NOT_OK(frames_.NextFrame(&has_frame, &body));
    if (has_frame) return DecodeNetReplyBody(body);
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError(
          frames_.buffered() == 0
              ? "connection closed by server"
              : "connection closed by server mid-frame (" +
                    std::to_string(frames_.buffered()) +
                    " bytes of a partial reply)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOErrorFromErrno("recv failed");
    }
    frames_.Append(chunk, static_cast<size_t>(n));
  }
}

Result<NetReply> NetClient::RoundTrip(const NetRequest& request) {
  GRALMATCH_RETURN_NOT_OK(
      SendBytes(EncodeNetFrame(EncodeNetRequestBody(request))));
  GRALMATCH_ASSIGN_OR_RETURN(NetReply reply, ReadReply());
  GRALMATCH_RETURN_NOT_OK(reply.status);
  return reply;
}

Result<NetReply> NetClient::GroupOf(RecordId record) {
  return RoundTrip(NetRequest::GroupOf(record));
}

Result<NetReply> NetClient::Members(GroupId group) {
  return RoundTrip(NetRequest::Members(group));
}

Result<ServeStats> NetClient::Stats() {
  GRALMATCH_ASSIGN_OR_RETURN(const NetReply reply,
                             RoundTrip(NetRequest::Stats()));
  return reply.stats;
}

Result<std::string> NetClient::Metrics() {
  GRALMATCH_ASSIGN_OR_RETURN(NetReply reply,
                             RoundTrip(NetRequest::Metrics()));
  return std::move(reply.metrics);
}

Result<std::vector<NetReply>> NetClient::Call(
    const std::vector<NetRequest>& batch) {
  std::string burst;
  for (const NetRequest& request : batch) {
    burst += EncodeNetFrame(EncodeNetRequestBody(request));
  }
  GRALMATCH_RETURN_NOT_OK(SendBytes(burst));
  std::vector<NetReply> replies;
  replies.reserve(batch.size());
  for (size_t k = 0; k < batch.size(); ++k) {
    GRALMATCH_ASSIGN_OR_RETURN(NetReply reply, ReadReply());
    replies.push_back(std::move(reply));
  }
  return replies;
}

}  // namespace gralmatch

#include "datagen/wdc_gen.h"

#include <algorithm>

#include "common/strings.h"

namespace gralmatch {

namespace {

struct ProductEntity {
  std::string brand;
  std::string family;
  std::string model;
  std::string variant;   // color / capacity / size
  std::string category;
  double price = 0.0;
};

const std::vector<std::string>& Brands() {
  static const std::vector<std::string> kBrands = {
      "Acme",    "Zenwave", "Nortek",  "Luxor",  "Polarix", "Vanta",
      "Helix",   "Quarz",   "Ostro",   "Kyuden", "Mirava",  "Tesora",
      "Brightek", "Corvid", "Dynamo",  "Ettore", "Fenwick", "Gramo",
      "Halcyon", "Intrex"};
  return kBrands;
}

struct CategoryBank {
  std::string category;
  std::vector<std::string> families;
  std::vector<std::string> variants;
  double base_price;
};

const std::vector<CategoryBank>& Categories() {
  static const std::vector<CategoryBank> kCategories = {
      {"camera",
       {"Hero", "Vision", "Optic", "Shot", "Lens Pro"},
       {"Black", "Silver", "White", "Bundle"},
       299.0},
      {"phone",
       {"Galaxy", "Pixelon", "Nova", "Edge", "Flipra"},
       {"64GB", "128GB", "256GB", "512GB"},
       699.0},
      {"laptop",
       {"Book", "Blade", "Air", "Station", "Flexo"},
       {"13 inch", "14 inch", "15 inch", "17 inch"},
       1099.0},
      {"headphones",
       {"Tune", "Beat", "Quiet", "Studio", "Pods"},
       {"Black", "White", "Red", "Wireless"},
       149.0},
      {"drive",
       {"Store", "Vaultix", "Speed", "Archive", "Portable"},
       {"500GB", "1TB", "2TB", "4TB"},
       89.0},
      {"watch",
       {"Fit", "Pulse", "Trek", "Classic", "Sport"},
       {"40mm", "44mm", "GPS", "Cellular"},
       249.0}};
  return kCategories;
}

const std::vector<std::string>& ShopNoise() {
  static const std::vector<std::string> kNoise = {
      "NEW",   "OEM",     "Genuine", "Original", "Sealed",
      "2024",  "Sale",    "Hot",     "Free Shipping", "EU"};
  return kNoise;
}

ProductEntity MakeEntity(Rng* rng) {
  const auto& cats = Categories();
  const CategoryBank& cat = cats[rng->Uniform(cats.size())];
  ProductEntity e;
  e.category = cat.category;
  e.brand = rng->Choice(Brands());
  e.family = rng->Choice(cat.families);
  e.model = std::to_string(1 + rng->Uniform(9)) +
            (rng->Bernoulli(0.4) ? std::string(1, static_cast<char>(
                                       'A' + rng->Uniform(6)))
                                 : "");
  e.variant = rng->Choice(cat.variants);
  e.price = cat.base_price * rng->UniformDouble(0.8, 1.25);
  return e;
}

/// Corner case: a sibling entity sharing brand/family/variant but with a
/// different model designation (the hard negatives WDC is built around).
ProductEntity MakeCornerSibling(const ProductEntity& base, Rng* rng) {
  ProductEntity e = base;
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::string model = std::to_string(1 + rng->Uniform(9)) +
                        (rng->Bernoulli(0.4) ? std::string(1, static_cast<char>(
                                                   'A' + rng->Uniform(6)))
                                             : "");
    if (model != base.model) {
      e.model = model;
      break;
    }
  }
  e.price = base.price * rng->UniformDouble(0.9, 1.1);
  return e;
}

std::string OfferTitle(const ProductEntity& e, Rng* rng) {
  std::vector<std::string> parts;
  parts.push_back(e.brand);
  parts.push_back(e.family);
  parts.push_back(e.model);
  if (rng->Bernoulli(0.8)) parts.push_back(e.variant);
  if (rng->Bernoulli(0.35)) parts.push_back(rng->Choice(ShopNoise()));
  // Shops sometimes lead with noise or reorder brand/family.
  if (rng->Bernoulli(0.25)) std::swap(parts[0], parts[1]);
  if (rng->Bernoulli(0.2)) parts.insert(parts.begin(), rng->Choice(ShopNoise()));
  return Join(parts, " ");
}

}  // namespace

WdcProductsGenerator::WdcProductsGenerator(WdcConfig config)
    : config_(std::move(config)) {}

Dataset WdcProductsGenerator::Generate() {
  Rng rng(config_.seed);
  Dataset out;
  out.name = "wdc_products";

  std::vector<ProductEntity> entities;
  entities.reserve(config_.num_entities);
  for (size_t i = 0; i < config_.num_entities; ++i) {
    if (!entities.empty() && rng.Bernoulli(config_.corner_case_frac)) {
      entities.push_back(MakeCornerSibling(rng.Choice(entities), &rng));
    } else {
      entities.push_back(MakeEntity(&rng));
    }
  }

  for (size_t i = 0; i < entities.size(); ++i) {
    const ProductEntity& e = entities[i];
    // Heterogeneous group sizes: many singletons, a long tail of large
    // groups (approximate zipf via inverse-uniform).
    size_t group =
        std::min(config_.max_group_size,
                 static_cast<size_t>(1.0 / std::max(1e-3, rng.UniformDouble()) ));
    for (size_t k = 0; k < group; ++k) {
      Record rec(static_cast<SourceId>(rng.Uniform(config_.num_sources)),
                 RecordKind::kProduct);
      rec.Set("title", OfferTitle(e, &rng));
      if (rng.Bernoulli(0.7)) rec.Set("brand", e.brand);
      if (rng.Bernoulli(0.5)) rec.Set("category", e.category);
      if (rng.Bernoulli(0.6)) {
        rec.Set("price", StrFormat("%.2f", e.price * rng.UniformDouble(0.97, 1.03)));
      }
      RecordId rid = out.records.Add(std::move(rec));
      out.truth.Assign(rid, static_cast<EntityId>(i));
    }
  }
  return out;
}

}  // namespace gralmatch

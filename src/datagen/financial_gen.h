#ifndef GRALMATCH_DATAGEN_FINANCIAL_GEN_H_
#define GRALMATCH_DATAGEN_FINANCIAL_GEN_H_

/// \file financial_gen.h
/// Generator of the synthetic multi-source companies & securities benchmark
/// of §3.2, and of the "realistic subset" that stands in for the paper's
/// human-labelled real data (§5.1.1; see DESIGN.md substitution table).

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"
#include "datagen/artifacts.h"

namespace gralmatch {

/// Parameters of the synthetic benchmark generation. The paper's generation
/// is "fully parameterizable" in the same sense: group count, source count
/// and per-artifact proportions.
struct SyntheticConfig {
  uint64_t seed = 42;
  size_t num_groups = 2000;       ///< number of company entities
  int num_sources = 5;            ///< data sources (paper: 5)
  ArtifactConfig artifacts;       ///< per-artifact application probabilities

  /// Probability that a company record in a given source carries the
  /// description (when the base company has one).
  double p_description_per_source = 0.65;
  /// Probability that a security is present in each of its company's sources.
  double p_security_per_source = 0.75;
  /// Probability that an identifier carried by the security appears on a
  /// given record of it.
  double p_identifier_per_record = 0.85;
};

/// Companies + securities datasets that share the ground-truth entity space
/// described in §3: securities reference their issuing company record via
/// the "issuer_ref" attribute (a RecordId into `companies.records`).
struct FinancialBenchmark {
  Dataset companies;
  Dataset securities;
};

/// \brief Synthetic benchmark generator (the "datainc" pipeline).
class FinancialGenerator {
 public:
  explicit FinancialGenerator(SyntheticConfig config);

  /// Generate the benchmark. Deterministic given the config seed.
  FinancialBenchmark Generate();

  /// Artifact bitmask (ArtifactBit) applied to each company entity in the
  /// last Generate() call, indexed by group index.
  const std::vector<uint32_t>& artifact_log() const { return artifact_log_; }

 private:
  SyntheticConfig config_;
  std::vector<uint32_t> artifact_log_;
};

/// Configuration of the realistic ("real data" stand-in) subset: mostly
/// ID-matchable groups, 8 sources, very few drift events — mirroring the
/// labelled subset the paper describes as containing "a very low proportion
/// of challenging record groups".
SyntheticConfig RealisticSubsetConfig(uint64_t seed, size_t num_groups);

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_FINANCIAL_GEN_H_

#include "datagen/name_model.h"

#include <array>
#include <cctype>

#include "common/strings.h"
#include "text/corporate.h"

namespace gralmatch {

namespace namebank {

const std::vector<std::string>& Prefixes() {
  static const std::vector<std::string> kPrefixes = {
      "crowd",  "cloud",  "data",   "deep",   "quant",  "nova",   "terra",
      "aero",   "astro",  "bio",    "byte",   "cyber",  "delta",  "echo",
      "ever",   "flex",   "fusion", "gala",   "geo",    "grid",   "helio",
      "hyper",  "infra",  "inno",   "inter",  "iron",   "kinet",  "lumen",
      "macro",  "magna",  "medi",   "mega",   "meta",   "micro",  "mono",
      "neo",    "net",    "nexus",  "omni",   "open",   "opti",   "pan",
      "para",   "peak",   "pivot",  "poly",   "prime",  "proto",  "pulse",
      "quark",  "rapid",  "river",  "robo",   "sol",    "spark",  "stellar",
      "strato", "summit", "swift",  "synth",  "tech",   "tele",   "think",
      "tide",   "titan",  "trans",  "tri",    "turbo",  "ultra",  "uni",
      "urban",  "vast",   "vector", "velo",   "verde",  "vertex", "vista",
      "vital",  "volt",   "wave",   "zen",    "zenith", "alpine", "amber",
      "apex",   "aqua",   "arc",    "atlas",  "aurora", "axis",   "beacon",
      "blue",   "bold",   "bright", "cedar",  "core",   "crest",  "crystal",
      "dawn",   "ember",  "falcon", "forge",  "north",  "oak",    "onyx",
      "orbit",  "pine",   "quill",  "raven",  "sage",   "silver", "slate",
      "stone",  "storm",  "summita", "tangent"};
  return kPrefixes;
}

const std::vector<std::string>& Suffixes() {
  static const std::vector<std::string> kSuffixes = {
      "strike", "street", "stream", "strand", "works",  "wares",  "ware",
      "scape",  "scope",  "span",   "sphere", "spire",  "base",   "bank",
      "beam",   "bridge", "cast",   "chain",  "craft",  "deck",   "dock",
      "edge",   "field",  "flow",   "forge",  "form",   "front",  "gate",
      "gear",   "hub",    "lab",    "labs",   "land",   "layer",  "line",
      "link",   "lock",   "loop",   "mark",   "mesh",   "mind",   "mint",
      "net",    "node",   "path",   "pay",    "point",  "port",   "pulse",
      "rail",   "reach",  "ridge",  "rise",   "run",    "scale",  "sense",
      "shift",  "ship",   "side",   "sight",  "signal", "smith",  "source",
      "stack",  "stage",  "star",   "state",  "storm",  "sync",   "tap",
      "track",  "trade",  "trail",  "vault",  "verse",  "view",   "wise",
      "yard",   "zone"};
  return kSuffixes;
}

const std::vector<std::string>& Industries() {
  static const std::vector<std::string> kIndustries = {
      "energy",    "networks",  "resources",  "analytics", "robotics",
      "logistics", "pharma",    "capital",    "mobility",  "security",
      "biotech",   "fintech",   "media",      "gaming",    "health",
      "materials", "aviation",  "automotive", "retail",    "foods",
      "mining",    "shipping",  "telecom",    "insurance", "semiconductors"};
  return kIndustries;
}

const std::vector<std::array<std::string, 3>>& Cities() {
  static const std::vector<std::array<std::string, 3>> kCities = {
      {"Zurich", "Zurich", "CHE"},        {"Geneva", "Geneva", "CHE"},
      {"Basel", "Basel-Stadt", "CHE"},    {"London", "England", "GBR"},
      {"Manchester", "England", "GBR"},   {"Edinburgh", "Scotland", "GBR"},
      {"New York", "New York", "USA"},    {"San Francisco", "California", "USA"},
      {"Austin", "Texas", "USA"},         {"Boston", "Massachusetts", "USA"},
      {"Seattle", "Washington", "USA"},   {"Chicago", "Illinois", "USA"},
      {"Berlin", "Berlin", "DEU"},        {"Munich", "Bavaria", "DEU"},
      {"Frankfurt", "Hesse", "DEU"},      {"Paris", "Ile-de-France", "FRA"},
      {"Lyon", "Auvergne-Rhone-Alpes", "FRA"}, {"Tokyo", "Kanto", "JPN"},
      {"Osaka", "Kansai", "JPN"},         {"Toronto", "Ontario", "CAN"},
      {"Vancouver", "British Columbia", "CAN"}, {"Amsterdam", "North Holland", "NLD"},
      {"Rotterdam", "South Holland", "NLD"},    {"Stockholm", "Stockholm", "SWE"},
      {"Copenhagen", "Capital Region", "DNK"},  {"Dublin", "Leinster", "IRL"},
      {"Madrid", "Madrid", "ESP"},        {"Barcelona", "Catalonia", "ESP"},
      {"Milan", "Lombardy", "ITA"},       {"Singapore", "Singapore", "SGP"},
      {"Sydney", "New South Wales", "AUS"},     {"Melbourne", "Victoria", "AUS"},
      {"Tel Aviv", "Tel Aviv", "ISR"},    {"Bangalore", "Karnataka", "IND"},
      {"Sao Paulo", "Sao Paulo", "BRA"},  {"Mexico City", "CDMX", "MEX"}};
  return kCities;
}

namespace {

const std::vector<std::string>& DescriptionTemplates() {
  static const std::vector<std::string> kTemplates = {
      "%s provides %s solutions for enterprise customers in %s.",
      "%s is a leading provider of %s services headquartered in %s.",
      "%s develops %s products for clients worldwide from its base in %s.",
      "%s offers a platform for %s targeting mid-market firms in %s.",
      "%s builds tools for %s used by organizations across %s.",
      "Founded in %s, %s specializes in %s for regulated industries.",
      "%s delivers %s infrastructure to customers operating in %s."};
  return kTemplates;
}

std::string Capitalize(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

}  // namespace
}  // namespace namebank

CompanyNameModel::CompanyNameModel(uint64_t seed) : seed_(seed) {}

BaseCompany CompanyNameModel::Generate(size_t i) {
  // Per-entity deterministic stream: same (seed, i) -> same company.
  Rng rng(seed_ ^ (0xA5A5A5A5ULL + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL));
  const auto& prefixes = namebank::Prefixes();
  const auto& suffixes = namebank::Suffixes();
  const auto& industries = namebank::Industries();
  const auto& cities = namebank::Cities();

  BaseCompany c;
  std::string prefix = rng.Choice(prefixes);
  std::string suffix = rng.Choice(suffixes);
  c.stem_prefix = prefix;
  c.stem_suffix = suffix;
  c.industry = rng.Choice(industries);

  // Three naming shapes: fused ("CrowdStrike"), spaced ("Crowd Strike"),
  // fused + industry word ("CrowdStrike Robotics").
  std::string stem;
  switch (rng.Uniform(3)) {
    case 0:
      stem = namebank::Capitalize(prefix) + suffix;
      break;
    case 1:
      stem = namebank::Capitalize(prefix) + " " + namebank::Capitalize(suffix);
      break;
    default:
      stem = namebank::Capitalize(prefix) + suffix + " " +
             namebank::Capitalize(c.industry);
      break;
  }
  c.name = stem;
  // Roughly half of the base names carry a corporate term.
  if (rng.Bernoulli(0.5)) {
    c.name += " " + namebank::Capitalize(rng.Choice(CorporateTerms()));
  }

  const auto& city = rng.Choice(cities);
  c.city = city[0];
  c.region = city[1];
  c.country_code = city[2];

  // Ticker: 3-4 upper-case chars from the stem.
  std::string letters;
  for (char ch : prefix + suffix) {
    if (std::isalpha(static_cast<unsigned char>(ch))) {
      letters.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(ch))));
    }
  }
  size_t tick_len = 3 + rng.Uniform(2);
  c.ticker = letters.substr(0, std::min(tick_len, letters.size()));

  // Half the companies have a base description; combined with the
  // per-source drop rate this yields ~32% of records with descriptions
  // (Table 1 of the paper).
  if (rng.Bernoulli(0.5)) {
    c.short_description = MakeDescription(c, &rng);
  }
  return c;
}

std::string CompanyNameModel::MakeDescription(const BaseCompany& company,
                                              Rng* rng) const {
  const auto& templates = namebank::DescriptionTemplates();
  const std::string& tmpl = rng->Choice(templates);
  // Templates have three %s slots; the "Founded in" template starts with a
  // year-like slot which we fill with the city for simplicity of banks.
  if (StartsWith(tmpl, "Founded")) {
    return StrFormat(tmpl.c_str(), company.city.c_str(), company.name.c_str(),
                     company.industry.c_str());
  }
  return StrFormat(tmpl.c_str(), company.name.c_str(), company.industry.c_str(),
                   company.region.c_str());
}

}  // namespace gralmatch

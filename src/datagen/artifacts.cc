#include "datagen/artifacts.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "datagen/identifiers.h"
#include "text/corporate.h"

namespace gralmatch {

const char* SecurityTypeName(SecurityType type) {
  switch (type) {
    case SecurityType::kCommonStock: return "Common Stock";
    case SecurityType::kPreferredStock: return "Preferred Stock";
    case SecurityType::kAdr: return "ADR";
    case SecurityType::kBond: return "Bond";
    case SecurityType::kRight: return "Rights";
    case SecurityType::kUnit: return "Unit";
  }
  return "Security";
}

namespace {

/// Random non-empty subset of [0, n); each element kept with probability p.
std::vector<size_t> RandomSubset(size_t n, double p, Rng* rng) {
  std::vector<size_t> out;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(p)) out.push_back(i);
  }
  if (out.empty() && n > 0) out.push_back(rng->Uniform(n));
  return out;
}

}  // namespace

void ApplyAcronymName(GroupDraft* group, Rng* rng) {
  std::string acronym = MakeAcronym(group->base.name);
  if (acronym.empty()) return;
  group->use_acronym.assign(group->sources.size(), false);
  for (size_t i : RandomSubset(group->sources.size(), 0.4, rng)) {
    group->use_acronym[i] = true;
  }
}

void ApplyInsertCorporateTerm(GroupDraft* group, Rng* rng) {
  group->inserted_corporate_term = rng->Choice(CorporateTerms());
}

void ApplyParaphraseAttribute(GroupDraft* group, const Paraphraser& paraphraser,
                              Rng* rng) {
  if (group->base.short_description.empty()) return;
  group->base.short_description =
      paraphraser.Paraphrase(group->base.short_description, rng);
}

void ApplyMultipleIds(GroupDraft* group, Rng* rng) {
  if (group->securities.empty()) return;
  SecurityDraft& sec =
      group->securities[rng->Uniform(group->securities.size())];
  // Duplicate one value of each present standard with a fresh identifier.
  auto add_variant = [&](std::vector<std::string>* vals, auto generator) {
    if (!vals->empty()) vals->push_back(generator(rng));
  };
  add_variant(&sec.isins, [](Rng* r) { return GenerateIsin(r); });
  add_variant(&sec.cusips, [](Rng* r) { return GenerateCusip(r); });
  add_variant(&sec.sedols, [](Rng* r) { return GenerateSedol(r); });
  add_variant(&sec.valors, [](Rng* r) { return GenerateValor(r); });
}

void ApplyNoIdOverlaps(GroupDraft* group) {
  for (auto& sec : group->securities) sec.no_id_overlaps = true;
}

void ApplyMultipleSecurities(GroupDraft* group, Rng* rng, EntityId* next_entity) {
  static const SecurityType kExtraTypes[] = {
      SecurityType::kBond, SecurityType::kRight, SecurityType::kUnit,
      SecurityType::kPreferredStock};
  size_t extra = 1 + rng->Uniform(2);
  for (size_t k = 0; k < extra; ++k) {
    SecurityDraft sec;
    sec.entity = (*next_entity)++;
    sec.type = kExtraTypes[rng->Uniform(std::size(kExtraTypes))];
    sec.name = CanonicalCompanyName(group->base.name);
    if (!sec.name.empty()) sec.name[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(sec.name[0])));
    sec.name += std::string(" ") + SecurityTypeName(sec.type);
    sec.isins.push_back(GenerateIsin(rng));
    if (rng->Bernoulli(0.5)) sec.cusips.push_back(GenerateCusip(rng));
    if (rng->Bernoulli(0.3)) sec.sedols.push_back(GenerateSedol(rng));
    sec.present_in = RandomSubset(group->sources.size(), 0.6, rng);
    group->securities.push_back(std::move(sec));
  }
}

void ApplyAcquisition(GroupDraft* acquirer, GroupDraft* acquiree, Rng* rng) {
  acquirer->involved_in_acquisition = true;
  acquiree->involved_in_acquisition = true;
  // A random non-empty subset of the acquiree's sources records the event.
  for (size_t i : RandomSubset(acquiree->sources.size(), 0.5, rng)) {
    SourceOverwrite ow;
    ow.source_index = i;
    ow.overwrite_company = true;
    ow.overwrite_security_ids = true;
    acquiree->overwrites.push_back(ow);
  }
}

void ApplyMerger(GroupDraft* left, GroupDraft* right, Rng* rng) {
  left->involved_in_merger = true;
  right->involved_in_merger = true;
  // Some of left's sources overwrite part of its identifiers with right's.
  for (size_t i : RandomSubset(left->sources.size(), 0.4, rng)) {
    SourceOverwrite ow;
    ow.source_index = i;
    ow.overwrite_company = false;
    ow.overwrite_security_ids = true;
    left->overwrites.push_back(ow);
  }
}

}  // namespace gralmatch

#ifndef GRALMATCH_DATAGEN_IDENTIFIERS_H_
#define GRALMATCH_DATAGEN_IDENTIFIERS_H_

/// \file identifiers.h
/// Generators and validators for the (inter)national security/entity
/// identifier standards referenced by the paper: ISIN (ISO 6166), CUSIP,
/// SEDOL, VALOR and LEI (ISO 17442). Generated identifiers carry correct
/// check digits so that validator round-trips hold (property-tested).

#include <string>
#include <string_view>

#include "common/rng.h"

namespace gralmatch {

/// 12-char ISIN: 2-letter country prefix + 9 alphanumerics + Luhn check digit.
std::string GenerateIsin(Rng* rng, std::string_view country = "");

/// True iff `isin` is structurally valid including its check digit.
bool IsValidIsin(std::string_view isin);

/// 9-char CUSIP: 8 alphanumerics + modulus-10 double-add-double check digit.
std::string GenerateCusip(Rng* rng);

/// True iff `cusip` is structurally valid including its check digit.
bool IsValidCusip(std::string_view cusip);

/// 7-char SEDOL: 6 alphanumerics (no vowels) + weighted check digit.
std::string GenerateSedol(Rng* rng);

/// True iff `sedol` is structurally valid including its check digit.
bool IsValidSedol(std::string_view sedol);

/// Swiss VALOR number: 6-9 digits, no check digit.
std::string GenerateValor(Rng* rng);

/// True iff `valor` is 6-9 digits.
bool IsValidValor(std::string_view valor);

/// 20-char LEI: 4-char prefix + 14 alphanumerics + 2-digit ISO 7064
/// mod-97-10 check.
std::string GenerateLei(Rng* rng);

/// True iff `lei` is structurally valid including its check digits.
bool IsValidLei(std::string_view lei);

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_IDENTIFIERS_H_

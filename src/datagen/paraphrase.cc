#include "datagen/paraphrase.h"

#include <cctype>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "text/normalize.h"

namespace gralmatch {

namespace {

const std::unordered_map<std::string, std::vector<std::string>>& SynonymBank() {
  static const std::unordered_map<std::string, std::vector<std::string>> kBank = {
      {"provides", {"offers", "delivers", "supplies"}},
      {"offers", {"provides", "delivers"}},
      {"develops", {"builds", "creates", "engineers"}},
      {"builds", {"develops", "constructs"}},
      {"delivers", {"provides", "ships"}},
      {"leading", {"top", "prominent", "major"}},
      {"solutions", {"products", "offerings", "services"}},
      {"services", {"solutions", "offerings"}},
      {"products", {"solutions", "tools"}},
      {"platform", {"system", "suite"}},
      {"tools", {"software", "products"}},
      {"enterprise", {"corporate", "business"}},
      {"customers", {"clients", "users"}},
      {"clients", {"customers", "partners"}},
      {"specializes", {"focuses", "concentrates"}},
      {"worldwide", {"globally", "internationally"}},
      {"organizations", {"companies", "firms"}},
      {"infrastructure", {"systems", "backbone"}},
      {"targeting", {"serving", "aimed at"}},
      {"headquartered", {"based", "located"}},
      {"firms", {"companies", "businesses"}},
      {"provider", {"vendor", "supplier"}},
      {"industries", {"sectors", "markets"}},
      {"regulated", {"compliance-driven", "supervised"}},
  };
  return kBank;
}

}  // namespace

std::string Paraphraser::Paraphrase(std::string_view text, Rng* rng) const {
  const auto& bank = SynonymBank();
  std::vector<std::string> words = SplitWhitespace(text);
  if (words.empty()) return std::string(text);

  // 1) Synonym substitution on content words (strip trailing punctuation
  //    before the lookup, re-attach after).
  bool changed = false;
  for (auto& w : words) {
    std::string tail;
    std::string head = w;
    while (!head.empty() && !std::isalnum(static_cast<unsigned char>(head.back()))) {
      tail.insert(tail.begin(), head.back());
      head.pop_back();
    }
    auto it = bank.find(ToLower(head));
    if (it != bank.end() && rng->Bernoulli(0.75)) {
      std::string repl = rng->Choice(it->second);
      // Preserve initial capitalization.
      if (!head.empty() && std::isupper(static_cast<unsigned char>(head[0])) &&
          !repl.empty()) {
        repl[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(repl[0])));
      }
      w = repl + tail;
      changed = true;
    }
  }

  // 2) Clause reordering: move a trailing "in <place>." clause to the front.
  std::string joined = Join(words, " ");
  size_t in_pos = joined.rfind(" in ");
  if (in_pos != std::string::npos && in_pos > joined.size() / 2 &&
      rng->Bernoulli(0.4)) {
    std::string head = joined.substr(0, in_pos);
    std::string place = Trim(joined.substr(in_pos + 4));
    while (!place.empty() && (place.back() == '.' || place.back() == ',')) {
      place.pop_back();
    }
    if (!place.empty()) {
      joined = "In " + place + ", " + head + ".";
      changed = true;
    }
  }

  // 3) Stopword churn: guarantee a difference even if nothing fired above.
  if (!changed) {
    joined = "Notably, " + joined;
  }
  return joined;
}

}  // namespace gralmatch

#include "datagen/financial_gen.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "common/union_find.h"
#include "datagen/identifiers.h"
#include "text/corporate.h"
#include "text/normalize.h"

namespace gralmatch {

namespace {

std::string TitleCase(std::string_view lower) {
  std::string out(lower);
  bool at_start = true;
  for (char& c : out) {
    if (at_start && std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    at_start = (c == ' ');
  }
  return out;
}

/// Abbreviate a word: keep the first letter, drop vowels, cap at 4 chars,
/// add a period ("Platforms" -> "Pltf.").
std::string AbbreviateWord(std::string_view word) {
  if (word.size() <= 3) return std::string(word);
  std::string out;
  out.push_back(word[0]);
  for (size_t i = 1; i < word.size() && out.size() < 4; ++i) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(word[i])));
    if (c != 'a' && c != 'e' && c != 'i' && c != 'o' && c != 'u') {
      out.push_back(word[i]);
    }
  }
  out.push_back('.');
  return out;
}

/// Per-source name variant. `variant` is the per-source selector drawn at
/// draft time; `term` is the InsertCorporateTerm artifact's choice.
std::string CompanyNameVariant(const BaseCompany& base, int variant,
                               const std::string& term, Rng* rng) {
  std::string name = base.name;
  switch (variant) {
    case 0:
      break;  // base name unchanged
    case 1:   // strip corporate terms
      name = TitleCase(CanonicalCompanyName(name));
      break;
    case 2: {  // replace/append a (different) corporate term
      std::string canon = TitleCase(CanonicalCompanyName(name));
      name = canon + " " + TitleCase(rng->Choice(CorporateTerms()));
      break;
    }
    case 3: {  // fuse or split the stem
      std::string fused = TitleCase(base.stem_prefix) + base.stem_suffix;
      std::string split =
          TitleCase(base.stem_prefix) + " " + TitleCase(base.stem_suffix);
      std::string canon = CanonicalCompanyName(name);
      if (canon.find(' ') == std::string::npos) {
        name = ReplaceAll(name, TitleCase(fused), split);
        name = ReplaceAll(name, fused, split);
      } else {
        name = ReplaceAll(name, split, fused);
      }
      break;
    }
    case 4: {  // abbreviate the last non-corporate word
      auto words = SplitWhitespace(name);
      for (size_t i = words.size(); i-- > 0;) {
        if (!IsCorporateTerm(words[i])) {
          words[i] = AbbreviateWord(words[i]);
          break;
        }
      }
      name = Join(words, " ");
      break;
    }
    case 5:  // vendor shouting style
      name = ToUpper(name);
      break;
    case 6:  // ticker-style mention
      if (!base.ticker.empty()) name = base.ticker;
      break;
    default:
      break;
  }
  if (!term.empty()) {
    // InsertCorporateTerm: the term shows up in all mentions of the name.
    name += " " + TitleCase(term);
  }
  return name;
}

/// Draw a per-source variant id with realistic frequencies (base name most
/// common, ticker-only rare).
int DrawNameVariant(Rng* rng) {
  static const std::vector<double> kWeights = {8, 3, 3, 2, 2, 1, 0.5};
  return static_cast<int>(rng->WeightedChoice(kWeights));
}

struct SecurityIdChoice {
  std::string isin, cusip, sedol, valor;
};

/// Sample which identifier values a materialized security record shows.
SecurityIdChoice SampleRecordIds(const SecurityDraft& sec, double p_present,
                                 Rng* rng) {
  SecurityIdChoice out;
  if (sec.no_id_overlaps) {
    // Fresh identifiers per record: no value is shared across records.
    out.isin = GenerateIsin(rng);
    if (!sec.cusips.empty()) out.cusip = GenerateCusip(rng);
    if (!sec.sedols.empty()) out.sedol = GenerateSedol(rng);
    return out;
  }
  auto pick = [&](const std::vector<std::string>& vals) -> std::string {
    if (vals.empty() || !rng->Bernoulli(p_present)) return "";
    return vals[rng->Uniform(vals.size())];
  };
  out.isin = pick(sec.isins);
  out.cusip = pick(sec.cusips);
  out.sedol = pick(sec.sedols);
  out.valor = pick(sec.valors);
  return out;
}

}  // namespace

FinancialGenerator::FinancialGenerator(SyntheticConfig config)
    : config_(std::move(config)) {}

FinancialBenchmark FinancialGenerator::Generate() {
  Rng rng(config_.seed);
  CompanyNameModel names(config_.seed ^ 0xC0FFEEULL);
  Paraphraser paraphraser;
  const size_t n = config_.num_groups;
  const int num_sources = config_.num_sources;

  // ---- Phase 1: draft groups -------------------------------------------
  std::vector<GroupDraft> groups(n);
  EntityId next_sec_entity = 0;
  for (size_t i = 0; i < n; ++i) {
    GroupDraft& g = groups[i];
    g.company_entity = static_cast<EntityId>(i);
    g.base = names.Generate(i);

    // Group sizes weighted toward 4-5 records (paper: avg 7.5 matches per
    // entity, i.e. groups of ~4.3 records).
    static const std::vector<double> kSizeWeights = {1, 3, 3};
    size_t n_src = std::min<size_t>(
        static_cast<size_t>(num_sources), 3 + rng.WeightedChoice(kSizeWeights));
    std::vector<SourceId> all_sources(static_cast<size_t>(num_sources));
    for (size_t s = 0; s < all_sources.size(); ++s) {
      all_sources[s] = static_cast<SourceId>(s);
    }
    rng.Shuffle(&all_sources);
    g.sources.assign(all_sources.begin(),
                     all_sources.begin() + static_cast<long>(n_src));
    std::sort(g.sources.begin(), g.sources.end());

    g.name_variant.resize(g.sources.size());
    for (auto& v : g.name_variant) v = DrawNameVariant(&rng);
    g.use_acronym.assign(g.sources.size(), false);

    // Primary security (+ occasional second share class).
    size_t num_primary = rng.Bernoulli(0.15) ? 2 : 1;
    for (size_t k = 0; k < num_primary; ++k) {
      SecurityDraft sec;
      sec.entity = next_sec_entity++;
      sec.type = k == 0 ? (rng.Bernoulli(0.12) ? SecurityType::kAdr
                                               : SecurityType::kCommonStock)
                        : SecurityType::kPreferredStock;
      std::string canon = TitleCase(CanonicalCompanyName(g.base.name));
      sec.name = canon.empty()
                     ? std::string(SecurityTypeName(sec.type))
                     : canon + " " + SecurityTypeName(sec.type);
      sec.isins.push_back(GenerateIsin(&rng));
      if (rng.Bernoulli(0.7)) sec.cusips.push_back(GenerateCusip(&rng));
      if (rng.Bernoulli(0.5)) sec.sedols.push_back(GenerateSedol(&rng));
      if (rng.Bernoulli(0.3)) sec.valors.push_back(GenerateValor(&rng));
      for (size_t s = 0; s < g.sources.size(); ++s) {
        if (rng.Bernoulli(config_.p_security_per_source)) {
          sec.present_in.push_back(s);
        }
      }
      if (sec.present_in.empty()) {
        sec.present_in.push_back(rng.Uniform(g.sources.size()));
      }
      g.securities.push_back(std::move(sec));
    }
  }

  // ---- Phase 2: artifacts (sequential random combination, §3.2) ---------
  artifact_log_.assign(n, 0);
  UnionFind company_merge(n);  // acquisition-driven entity merges
  const ArtifactConfig& a = config_.artifacts;
  for (size_t i = 0; i < n; ++i) {
    GroupDraft& g = groups[i];
    if (rng.Bernoulli(a.p_acronym_name)) {
      ApplyAcronymName(&g, &rng);
      artifact_log_[i] |= kArtifactAcronymName;
    }
    if (rng.Bernoulli(a.p_insert_corporate_term)) {
      ApplyInsertCorporateTerm(&g, &rng);
      artifact_log_[i] |= kArtifactInsertCorporateTerm;
    }
    if (rng.Bernoulli(a.p_paraphrase)) {
      ApplyParaphraseAttribute(&g, paraphraser, &rng);
      artifact_log_[i] |= kArtifactParaphrase;
    }
    if (rng.Bernoulli(a.p_multiple_securities)) {
      ApplyMultipleSecurities(&g, &rng, &next_sec_entity);
      artifact_log_[i] |= kArtifactMultipleSecurities;
    }
    if (rng.Bernoulli(a.p_multiple_ids)) {
      ApplyMultipleIds(&g, &rng);
      artifact_log_[i] |= kArtifactMultipleIds;
    }
    if (rng.Bernoulli(a.p_no_id_overlaps)) {
      ApplyNoIdOverlaps(&g);
      artifact_log_[i] |= kArtifactNoIdOverlaps;
    }
    if (i > 0 && rng.Bernoulli(a.p_acquisition)) {
      size_t j = rng.Uniform(i);  // acquirer: an earlier group
      if (!groups[j].involved_in_merger && !g.involved_in_merger) {
        ApplyAcquisition(&groups[j], &g, &rng);
        g.counterparty = j;
        company_merge.Union(i, j);
        artifact_log_[i] |= kArtifactAcquisition;
        artifact_log_[j] |= kArtifactAcquisition;
      }
    }
    if (i > 0 && rng.Bernoulli(a.p_merger)) {
      size_t j = rng.Uniform(i);
      if (!g.involved_in_acquisition && !groups[j].involved_in_acquisition &&
          !groups[j].involved_in_merger) {
        ApplyMerger(&g, &groups[j], &rng);
        g.counterparty = j;
        artifact_log_[i] |= kArtifactMerger;
        artifact_log_[j] |= kArtifactMerger;
      }
    }
  }

  // ---- Phase 3: materialization ------------------------------------------
  FinancialBenchmark bench;
  bench.companies.name = "companies";
  bench.securities.name = "securities";

  // Company records; remember per (group, source-index) record id for
  // issuer_ref links.
  std::vector<std::vector<RecordId>> company_record_of(n);
  for (size_t i = 0; i < n; ++i) {
    GroupDraft& g = groups[i];
    company_record_of[i].assign(g.sources.size(), kInvalidRecord);
    for (size_t s = 0; s < g.sources.size(); ++s) {
      // Event overwrite: a recording source displays the counterparty's
      // company attributes.
      const BaseCompany* eff = &g.base;
      bool overwritten = false;
      for (const auto& ow : g.overwrites) {
        if (ow.source_index == s && ow.overwrite_company &&
            g.counterparty != SIZE_MAX) {
          eff = &groups[g.counterparty].base;
          overwritten = true;
          break;
        }
      }

      Record rec(g.sources[s], RecordKind::kCompany);
      std::string name;
      if (g.use_acronym[s]) {
        std::string acro = MakeAcronym(eff->name);
        name = acro.empty() ? eff->name : acro;
      } else {
        name = CompanyNameVariant(*eff, overwritten ? 0 : g.name_variant[s],
                                  g.inserted_corporate_term, &rng);
      }
      rec.Set("name", name);
      if (rng.Bernoulli(0.92)) rec.Set("city", eff->city);
      if (rng.Bernoulli(0.80)) rec.Set("region", eff->region);
      if (rng.Bernoulli(0.92)) rec.Set("country_code", eff->country_code);
      if (!eff->short_description.empty() &&
          rng.Bernoulli(config_.p_description_per_source)) {
        rec.Set("short_description", eff->short_description);
      }
      if (rng.Bernoulli(0.5) && !eff->ticker.empty()) {
        rec.Set("ticker", eff->ticker);
      }
      if (g.involved_in_acquisition) rec.Set("_event", "acquisition");
      if (g.involved_in_merger) rec.Set("_event", "merger");

      RecordId rid = bench.companies.records.Add(std::move(rec));
      company_record_of[i][s] = rid;
      bench.companies.truth.Assign(
          rid, static_cast<EntityId>(company_merge.Find(i)));
    }
  }

  // Security records. Acquisition merges the acquiree's securities into the
  // acquirer's primary security entity; recording sources overwrite ids.
  UnionFind security_merge(static_cast<size_t>(next_sec_entity));
  for (size_t i = 0; i < n; ++i) {
    GroupDraft& g = groups[i];
    if (g.involved_in_acquisition && g.counterparty != SIZE_MAX) {
      const GroupDraft& acq = groups[g.counterparty];
      if (!acq.securities.empty() && !g.securities.empty()) {
        security_merge.Union(static_cast<size_t>(g.securities[0].entity),
                             static_cast<size_t>(acq.securities[0].entity));
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    GroupDraft& g = groups[i];
    for (size_t sec_idx = 0; sec_idx < g.securities.size(); ++sec_idx) {
      const SecurityDraft& sec = g.securities[sec_idx];
      for (size_t s : sec.present_in) {
        Record rec(g.sources[s], RecordKind::kSecurity);

        // Generic names ("Common Stock") on a fraction of records: these can
        // only be matched through their issuer (paper §5.3.1, Issuer Match).
        bool generic = rng.Bernoulli(0.25);
        rec.Set("name", generic ? SecurityTypeName(sec.type) : sec.name);
        rec.Set("type", SecurityTypeName(sec.type));

        // Identifier overwrite from merger/acquisition events (only the
        // group's primary security is affected, like record #21 / #30 of
        // the paper's Figure 2).
        bool ids_overwritten = false;
        if (sec_idx == 0 && g.counterparty != SIZE_MAX) {
          for (const auto& ow : g.overwrites) {
            if (ow.source_index == s && ow.overwrite_security_ids &&
                !groups[g.counterparty].securities.empty()) {
              const SecurityDraft& other = groups[g.counterparty].securities[0];
              SecurityIdChoice ids = SampleRecordIds(
                  other, config_.p_identifier_per_record, &rng);
              if (!ids.isin.empty()) rec.Set("isin", ids.isin);
              if (!ids.cusip.empty()) rec.Set("cusip", ids.cusip);
              if (!ids.sedol.empty()) rec.Set("sedol", ids.sedol);
              if (!ids.valor.empty()) rec.Set("valor", ids.valor);
              ids_overwritten = true;
              break;
            }
          }
        }
        if (!ids_overwritten) {
          SecurityIdChoice ids =
              SampleRecordIds(sec, config_.p_identifier_per_record, &rng);
          if (!ids.isin.empty()) rec.Set("isin", ids.isin);
          if (!ids.cusip.empty()) rec.Set("cusip", ids.cusip);
          if (!ids.sedol.empty()) rec.Set("sedol", ids.sedol);
          if (!ids.valor.empty()) rec.Set("valor", ids.valor);
        }

        RecordId issuer = company_record_of[i][s];
        rec.Set("issuer_ref", std::to_string(issuer));
        if (g.involved_in_acquisition) rec.Set("_event", "acquisition");
        if (g.involved_in_merger) rec.Set("_event", "merger");

        RecordId rid = bench.securities.records.Add(std::move(rec));
        bench.securities.truth.Assign(
            rid, static_cast<EntityId>(
                     security_merge.Find(static_cast<size_t>(sec.entity))));
      }
    }
  }

  bench.securities.issuer_records = bench.companies.records;
  bench.securities.issuer_truth = bench.companies.truth;
  return bench;
}

SyntheticConfig RealisticSubsetConfig(uint64_t seed, size_t num_groups) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_groups = num_groups;
  config.num_sources = 8;
  // The labelled real subset is dominated by groups matchable through
  // identifier codes: drift events and identifier pathologies are rare.
  config.artifacts.p_acronym_name = 0.02;
  config.artifacts.p_insert_corporate_term = 0.10;
  config.artifacts.p_acquisition = 0.008;
  config.artifacts.p_merger = 0.008;
  config.artifacts.p_paraphrase = 0.10;
  config.artifacts.p_multiple_ids = 0.03;
  config.artifacts.p_no_id_overlaps = 0.015;
  config.artifacts.p_multiple_securities = 0.30;
  config.p_description_per_source = 0.5;
  config.p_identifier_per_record = 0.95;
  return config;
}

}  // namespace gralmatch

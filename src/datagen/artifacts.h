#ifndef GRALMATCH_DATAGEN_ARTIFACTS_H_
#define GRALMATCH_DATAGEN_ARTIFACTS_H_

/// \file artifacts.h
/// The seven data artifacts of §3.2 of the paper, implemented as composable
/// draft mutations. Multiple artifacts are applied sequentially to a group,
/// so their effects intertwine, as in the paper.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/drafts.h"
#include "datagen/paraphrase.h"

namespace gralmatch {

/// Which artifacts were applied to a group (bitmask, for logging/tests).
enum ArtifactBit : uint32_t {
  kArtifactAcronymName = 1u << 0,
  kArtifactInsertCorporateTerm = 1u << 1,
  kArtifactAcquisition = 1u << 2,
  kArtifactMerger = 1u << 3,
  kArtifactParaphrase = 1u << 4,
  kArtifactMultipleIds = 1u << 5,
  kArtifactNoIdOverlaps = 1u << 6,
  kArtifactMultipleSecurities = 1u << 7,
};

/// Per-artifact application probabilities (per record group).
struct ArtifactConfig {
  double p_acronym_name = 0.08;
  double p_insert_corporate_term = 0.20;
  double p_acquisition = 0.03;
  double p_merger = 0.03;
  double p_paraphrase = 0.30;       ///< of groups that carry a description
  double p_multiple_ids = 0.10;
  double p_no_id_overlaps = 0.06;
  double p_multiple_securities = 0.22;
};

/// AcronymName: a random non-empty subset of sources displays the acronym
/// of the company name instead of the name. No-op if the acronym is empty.
void ApplyAcronymName(GroupDraft* group, Rng* rng);

/// InsertCorporateTerm: choose a corporate term inserted into all mentions
/// of the name in a random subset of sources.
void ApplyInsertCorporateTerm(GroupDraft* group, Rng* rng);

/// ParaphraseAttribute: paraphrase the base short description (no-op when
/// the company has none).
void ApplyParaphraseAttribute(GroupDraft* group, const Paraphraser& paraphraser,
                              Rng* rng);

/// MultipleIDs: add a second identifier value of each present standard to a
/// random security of the group; records then sample among the values.
void ApplyMultipleIds(GroupDraft* group, Rng* rng);

/// NoIdOverlaps: mark every security of the group so that materialized
/// records share no identifier values (text-only matchable group).
void ApplyNoIdOverlaps(GroupDraft* group);

/// MultipleSecurities: add 1-2 extra securities (bond / right / unit /
/// preferred) issued by the company. `next_entity` supplies fresh security
/// entity ids.
void ApplyMultipleSecurities(GroupDraft* group, Rng* rng, EntityId* next_entity);

/// CreateCorporateAcquisition: `acquirer` absorbs `acquiree`. A random
/// non-empty subset of the acquiree's sources records the event: their
/// company attributes and primary-security identifiers are overwritten with
/// the acquirer's. Per the paper, ALL records of both groups are matches:
/// the caller must merge the entity ids (the generator does this at
/// materialization via the returned bookkeeping on the drafts).
void ApplyAcquisition(GroupDraft* acquirer, GroupDraft* acquiree, Rng* rng);

/// CreateCorporateMerger: `left` and `right` merge into a new entity. Some
/// of `left`'s sources overwrite part of its security identifiers with
/// `right`'s, but the records are NOT matches (paper §3.2).
void ApplyMerger(GroupDraft* left, GroupDraft* right, Rng* rng);

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_ARTIFACTS_H_

#ifndef GRALMATCH_DATAGEN_WDC_GEN_H_
#define GRALMATCH_DATAGEN_WDC_GEN_H_

/// \file wdc_gen.h
/// Generator of a WDC-Products-style benchmark (§5.1.4): multi-source
/// product offers with heterogeneous group sizes and a high proportion of
/// "corner cases" — offers of *different* entities whose titles share long
/// token sequences (same brand/family, different model). This reproduces
/// the structure that breaks Algorithm 1's homogeneous group-size
/// assumption (μ = number of sources) in the paper's WDC experiment.

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace gralmatch {

/// Parameters of the product benchmark.
struct WdcConfig {
  uint64_t seed = 7;
  size_t num_entities = 250;     ///< product entities
  int num_sources = 10;          ///< web shops
  double corner_case_frac = 0.8; ///< entities derived from a sibling entity
  size_t max_group_size = 12;    ///< offers per entity, heterogeneous
};

/// \brief WDC-Products-style generator.
class WdcProductsGenerator {
 public:
  explicit WdcProductsGenerator(WdcConfig config);

  /// Generate the product dataset. Deterministic given the config seed.
  Dataset Generate();

 private:
  WdcConfig config_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_WDC_GEN_H_

#ifndef GRALMATCH_DATAGEN_NAME_MODEL_H_
#define GRALMATCH_DATAGEN_NAME_MODEL_H_

/// \file name_model.h
/// Compositional base-record generator standing in for the Crunchbase
/// export of §3.2 (see DESIGN.md, substitution table). Company names are
/// built from stem prefixes and suffixes so that distinct entities share
/// long character sequences ("Crowdstrike" vs "Crowdstreet"), the collision
/// structure that drives Token-Overlap false positives in the paper.

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gralmatch {

/// Base attributes of a generated company, before any per-source variation
/// or data artifact is applied.
struct BaseCompany {
  std::string name;               ///< display name, e.g. "CrowdStrike Holdings"
  std::string stem_prefix;        ///< name stem parts, kept for per-source
  std::string stem_suffix;        ///<   fuse/split naming variants
  std::string city;
  std::string region;
  std::string country_code;
  std::string industry;           ///< industry keyword, may appear in the name
  std::string short_description;  ///< empty for ~2/3 of companies
  std::string ticker;             ///< stock-ticker-style abbreviation
};

/// \brief Deterministic compositional generator of base company records.
class CompanyNameModel {
 public:
  explicit CompanyNameModel(uint64_t seed);

  /// Generate the base record for entity index `i`. Deterministic given the
  /// model seed: the same (seed, i) always produces the same company.
  BaseCompany Generate(size_t i);

  /// A description sentence for the given company (used when an artifact
  /// needs fresh text).
  std::string MakeDescription(const BaseCompany& company, Rng* rng) const;

 private:
  uint64_t seed_;
};

/// Word banks exposed for tests and for the paraphraser.
namespace namebank {
const std::vector<std::string>& Prefixes();
const std::vector<std::string>& Suffixes();
const std::vector<std::string>& Industries();
/// (city, region, country_code) triples.
const std::vector<std::array<std::string, 3>>& Cities();
}  // namespace namebank

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_NAME_MODEL_H_

#include "datagen/identifiers.h"

#include <cctype>
#include <vector>

namespace gralmatch {

namespace {

const char kAlnum[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const char kDigits[] = "0123456789";
// SEDOL alphabet excludes vowels.
const char kSedolAlphabet[] = "0123456789BCDFGHJKLMNPQRSTVWXYZ";
const char* kIsinCountries[] = {"US", "GB", "CH", "DE", "FR", "JP", "CA", "NL"};

int CharValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'Z') return c - 'A' + 10;
  return -1;
}

/// Luhn "double-add-double" over the digit expansion of an alphanumeric
/// payload (letters expand to two digits), as used by both ISIN and CUSIP
/// (CUSIP applies it to per-character values instead of the expansion; see
/// CusipCheckDigit below).
int IsinCheckDigit(std::string_view payload) {
  std::vector<int> digits;
  for (char c : payload) {
    int v = CharValue(c);
    if (v < 0) return -1;
    if (v >= 10) {
      digits.push_back(v / 10);
      digits.push_back(v % 10);
    } else {
      digits.push_back(v);
    }
  }
  // Double every other digit starting from the rightmost.
  int sum = 0;
  bool dbl = true;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    int d = *it;
    if (dbl) {
      d *= 2;
      if (d > 9) d -= 9;
    }
    sum += d;
    dbl = !dbl;
  }
  return (10 - sum % 10) % 10;
}

int CusipCheckDigit(std::string_view payload) {
  int sum = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    int v = CharValue(payload[i]);
    if (v < 0) return -1;
    if (i % 2 == 1) v *= 2;
    sum += v / 10 + v % 10;
  }
  return (10 - sum % 10) % 10;
}

const int kSedolWeights[] = {1, 3, 1, 7, 3, 9};

int SedolCheckDigit(std::string_view payload) {
  int sum = 0;
  for (size_t i = 0; i < 6; ++i) {
    int v = CharValue(payload[i]);
    if (v < 0) return -1;
    sum += v * kSedolWeights[i];
  }
  return (10 - sum % 10) % 10;
}

/// ISO 7064 mod 97-10 over the digit expansion (letters -> value 10..35).
int Mod97(std::string_view s) {
  long long rem = 0;
  for (char c : s) {
    int v = CharValue(c);
    if (v < 0) return -1;
    if (v >= 10) {
      rem = (rem * 100 + v) % 97;
    } else {
      rem = (rem * 10 + v) % 97;
    }
  }
  return static_cast<int>(rem);
}

}  // namespace

std::string GenerateIsin(Rng* rng, std::string_view country) {
  std::string out;
  if (country.size() == 2) {
    out = std::string(country);
  } else {
    out = kIsinCountries[rng->Uniform(std::size(kIsinCountries))];
  }
  for (int i = 0; i < 9; ++i) out.push_back(kAlnum[rng->Uniform(36)]);
  out.push_back(static_cast<char>('0' + IsinCheckDigit(out)));
  return out;
}

bool IsValidIsin(std::string_view isin) {
  if (isin.size() != 12) return false;
  if (!std::isupper(static_cast<unsigned char>(isin[0])) ||
      !std::isupper(static_cast<unsigned char>(isin[1]))) {
    return false;
  }
  int check = IsinCheckDigit(isin.substr(0, 11));
  return check >= 0 && isin[11] == static_cast<char>('0' + check);
}

std::string GenerateCusip(Rng* rng) {
  std::string out;
  for (int i = 0; i < 8; ++i) out.push_back(kAlnum[rng->Uniform(36)]);
  out.push_back(static_cast<char>('0' + CusipCheckDigit(out)));
  return out;
}

bool IsValidCusip(std::string_view cusip) {
  if (cusip.size() != 9) return false;
  int check = CusipCheckDigit(cusip.substr(0, 8));
  return check >= 0 && cusip[8] == static_cast<char>('0' + check);
}

std::string GenerateSedol(Rng* rng) {
  std::string out;
  for (int i = 0; i < 6; ++i) {
    out.push_back(kSedolAlphabet[rng->Uniform(std::size(kSedolAlphabet) - 1)]);
  }
  out.push_back(static_cast<char>('0' + SedolCheckDigit(out)));
  return out;
}

bool IsValidSedol(std::string_view sedol) {
  if (sedol.size() != 7) return false;
  for (char c : sedol.substr(0, 6)) {
    if (c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U') return false;
    if (CharValue(c) < 0) return false;
  }
  int check = SedolCheckDigit(sedol.substr(0, 6));
  return check >= 0 && sedol[6] == static_cast<char>('0' + check);
}

std::string GenerateValor(Rng* rng) {
  size_t len = 6 + rng->Uniform(4);
  std::string out;
  out.push_back(kDigits[1 + rng->Uniform(9)]);  // no leading zero
  for (size_t i = 1; i < len; ++i) out.push_back(kDigits[rng->Uniform(10)]);
  return out;
}

bool IsValidValor(std::string_view valor) {
  if (valor.size() < 6 || valor.size() > 9) return false;
  for (char c : valor) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string GenerateLei(Rng* rng) {
  std::string out;
  // 4-char LOU prefix (digits in practice, alnum allowed).
  for (int i = 0; i < 4; ++i) out.push_back(kDigits[rng->Uniform(10)]);
  for (int i = 0; i < 14; ++i) out.push_back(kAlnum[rng->Uniform(36)]);
  // Check digits: append "00", compute 98 - mod97.
  int rem = Mod97(out + "00");
  int check = 98 - rem;
  out.push_back(static_cast<char>('0' + check / 10));
  out.push_back(static_cast<char>('0' + check % 10));
  return out;
}

bool IsValidLei(std::string_view lei) {
  if (lei.size() != 20) return false;
  return Mod97(lei) == 1;
}

}  // namespace gralmatch

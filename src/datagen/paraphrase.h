#ifndef GRALMATCH_DATAGEN_PARAPHRASE_H_
#define GRALMATCH_DATAGEN_PARAPHRASE_H_

/// \file paraphrase.h
/// Rule-based paraphraser standing in for the Pegasus summarization model
/// used by the ParaphraseAttribute artifact (§3.2). It substitutes synonyms,
/// reorders clauses and churns determiners/stopwords so that exact equality
/// breaks while token overlap partially survives — the two properties the
/// downstream matching task depends on (see DESIGN.md).

#include <string>
#include <string_view>

#include "common/rng.h"

namespace gralmatch {

/// \brief Deterministic rule-based paraphraser.
class Paraphraser {
 public:
  /// Rewrite `text`. The result differs from the input for non-trivial
  /// inputs while preserving a substantial fraction of content words.
  std::string Paraphrase(std::string_view text, Rng* rng) const;
};

}  // namespace gralmatch

#endif  // GRALMATCH_DATAGEN_PARAPHRASE_H_

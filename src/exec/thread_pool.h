#ifndef GRALMATCH_EXEC_THREAD_POOL_H_
#define GRALMATCH_EXEC_THREAD_POOL_H_

/// \file thread_pool.h
/// Fixed-size worker pool for the embarrassingly parallel loops of the
/// GraLMatch pipeline (candidate scoring, blocking, per-component graph
/// cleanup). Deliberately work-stealing-free: tasks are taken from a single
/// FIFO queue, which keeps scheduling simple and cache behaviour predictable
/// for the contiguous-chunk decomposition used by ParallelFor (parallel.h).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gralmatch {

/// \brief Fixed-size FIFO thread pool.
///
/// Lifecycle: workers are spawned in the constructor and joined in the
/// destructor. The destructor *drains* the queue — every task submitted
/// before destruction runs to completion — so destroying a pool under load
/// is well-defined.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw out of the callable when submitted
  /// directly (ParallelFor wraps user code and captures exceptions); a task
  /// may Submit further tasks, including from inside a worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// True iff the calling thread is one of *this* pool's workers. Used by
  /// ParallelFor to run nested parallel sections inline instead of
  /// deadlocking on a saturated queue.
  bool InWorkerThread() const;

  /// Hardware concurrency, clamped to at least 1.
  static size_t DefaultNumThreads();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Written only by the constructor, before any concurrency; read-only
  /// afterwards (num_threads, InWorkerThread, join) — no guard needed.
  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

/// A pool of `num_threads` workers, or null when `num_threads <= 1` — the
/// shape every ParallelFor call site wants for its serial fallback.
std::unique_ptr<ThreadPool> MaybeMakePool(size_t num_threads);

/// Validate a user-supplied thread-count request (--num_threads flags and
/// config fields): positive values pass through, 0 resolves to the hardware
/// concurrency, and negative values clamp to 1 (serial). Call this at the
/// flag boundary — a negative value cast straight to the size_t fields of
/// PipelineConfig or the blocker Options would wrap to ~2^64 and try to
/// spawn that many workers.
size_t ResolveNumThreads(int64_t requested);

}  // namespace gralmatch

#endif  // GRALMATCH_EXEC_THREAD_POOL_H_

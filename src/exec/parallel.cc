#include "exec/parallel.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gralmatch {

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t grain) {
  if (end <= begin) return;
  const size_t n = end - begin;
  if (grain == 0) grain = 1;
  const bool serial = pool == nullptr || pool->num_threads() <= 1 ||
                      pool->InWorkerThread() || n <= grain;
  if (serial) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Static contiguous chunking: a few chunks per worker to absorb skew
  // without giving up cache locality.
  const size_t max_chunks = pool->num_threads() * 4;
  const size_t num_chunks = std::min((n + grain - 1) / grain, max_chunks);

  struct State {
    // Constructor-initialized: TSA exempts constructors, so no lock is
    // needed before the state is shared with the workers.
    explicit State(size_t chunks) : remaining(chunks) {}
    Mutex mu;
    CondVar cv;
    size_t remaining GUARDED_BY(mu);
    std::exception_ptr error GUARDED_BY(mu);
    size_t error_chunk GUARDED_BY(mu) = std::numeric_limits<size_t>::max();
  };
  // shared_ptr: chunk tasks may briefly outlive the wait loop's final wakeup.
  auto state = std::make_shared<State>(num_chunks);

  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;
  size_t lo = begin;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t hi = lo + base + (c < extra ? 1 : 0);
    pool->Submit([state, &fn, c, lo, hi] {
      std::exception_ptr err;
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(&state->mu);
      if (err && c < state->error_chunk) {
        state->error_chunk = c;
        state->error = err;
      }
      if (--state->remaining == 0) state->cv.NotifyAll();
    });
    lo = hi;
  }

  // Take ownership of the error so the exception object's final release
  // (and the free) happens on this thread, not inside a worker's late
  // ~State — the exception_ptr refcount lives in libstdc++ and is invisible
  // to TSan, so a cross-thread release would be flagged (and genuinely
  // leaves the caller reading an object a worker may free).
  std::exception_ptr error;
  {
    MutexLock lock(&state->mu);
    while (state->remaining != 0) state->cv.Wait(&state->mu);
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace gralmatch

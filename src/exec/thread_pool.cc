#include "exec/thread_pool.h"

#include <algorithm>

namespace gralmatch {

namespace {
/// The pool whose worker loop the current thread is running, if any.
thread_local const ThreadPool* g_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::InWorkerThread() const { return g_current_pool == this; }

size_t ThreadPool::DefaultNumThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // Predicate loop instead of the two-argument wait: the guarded reads
      // stay in this scope, where the analysis can see the lock is held.
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain-then-stop: only exit once the queue is empty so destruction
      // under load completes every submitted task.
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  g_current_pool = nullptr;
}

std::unique_ptr<ThreadPool> MaybeMakePool(size_t num_threads) {
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

size_t ResolveNumThreads(int64_t requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  if (requested == 0) return ThreadPool::DefaultNumThreads();
  return 1;
}

}  // namespace gralmatch

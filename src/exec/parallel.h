#ifndef GRALMATCH_EXEC_PARALLEL_H_
#define GRALMATCH_EXEC_PARALLEL_H_

/// \file parallel.h
/// Deterministic data-parallel helpers on top of ThreadPool. The iteration
/// space is split into contiguous chunks (cache-friendly, no work stealing)
/// and every iteration writes only to state owned by its own index, so the
/// result is bitwise-identical for every thread count — including the serial
/// inline path taken when no pool is given.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace gralmatch {

/// Invoke `fn(i)` for every i in [begin, end) and block until all complete.
///
/// Runs inline (plain serial loop) when `pool` is null, has a single worker,
/// the range is no larger than `grain`, or the caller *is* one of `pool`'s
/// workers — the latter makes nested parallel sections safe instead of
/// deadlocking on a saturated queue.
///
/// Exceptions thrown by `fn` are captured per chunk; the exception of the
/// lowest-indexed failing chunk is rethrown in the caller (deterministic
/// regardless of scheduling). All chunks run to completion either way.
///
/// `grain` is the minimum number of iterations per chunk (amortizes
/// scheduling overhead for cheap bodies); it never affects results.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t grain = 1);

/// Map `fn` over [0, n) into a vector with deterministic (index) ordering.
/// T must be default-constructible; same serial/nested semantics as
/// ParallelFor.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool* pool, size_t n, Fn&& fn,
                           size_t grain = 1) {
  std::vector<T> out(n);
  ParallelFor(
      pool, 0, n, [&out, &fn](size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace gralmatch

#endif  // GRALMATCH_EXEC_PARALLEL_H_

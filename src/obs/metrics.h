#ifndef GRALMATCH_OBS_METRICS_H_
#define GRALMATCH_OBS_METRICS_H_

/// \file metrics.h
/// Process-local observability: named counters, gauges and fixed-bucket
/// latency histograms behind a `MetricsRegistry`, plus the `TraceScope`
/// RAII span that feeds phase durations into a histogram.
///
/// Design rules (docs/observability.md):
///  - The hot path is lock-free: `Counter::Increment`, `Gauge::Set` and
///    `Histogram::Observe` are relaxed atomic operations. The registry
///    mutex guards only registration (name → instrument lookup) and
///    scraping, both of which happen off the request path.
///  - Instrument pointers returned by the registry are stable for the
///    registry's lifetime, so callers resolve names once (see the
///    `PipelineMetrics`/`ServeMetrics`/`NetMetrics` bundles) and keep raw
///    pointers.
///  - Instrumentation is **inert**: nothing in this module is reachable
///    from checkpoint bytes, snapshots, `Fingerprint()`s or any
///    `operator==`. Pipelines take an optional `MetricsRegistry*` that
///    defaults to `nullptr`, every recording site is null-guarded, and
///    `tests/obs_test.cc` pins an instrumented run bitwise-identical to an
///    uninstrumented one. `tools/check_invariants.py` (`obs-inertness`)
///    keeps obs includes out of serialization code.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"

namespace gralmatch {
namespace obs {

/// Upper bounds (seconds, `le` convention) of the shared latency-histogram
/// bucket layout: a 1–2–5 ladder from 1µs to 100s. One extra overflow
/// bucket catches anything slower. Every histogram in the process uses
/// this layout, so dumps are directly comparable across phases.
inline constexpr std::array<double, 25> kLatencyBucketBounds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1,
    1.0,  2.0,  5.0,  1e1,  2e1,  5e1,  1e2};

/// Total bucket count including the overflow bucket.
inline constexpr size_t kNumLatencyBuckets = kLatencyBucketBounds.size() + 1;

/// \brief Monotonically increasing event count (relaxed atomic).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (relaxed atomic).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket latency histogram over kLatencyBucketBounds.
///
/// Observations land in the first bucket whose upper bound is >= the
/// value (the Prometheus `le` convention); values past the last bound go
/// to the overflow bucket. Count, per-bucket tallies and the running sum
/// are all relaxed atomics, so concurrent Observe/scrape is race-free
/// without locks. The sum is a double carried as a bit pattern in a
/// uint64 (C++17 has no std::atomic<double>::fetch_add) updated by a CAS
/// loop.
class Histogram {
 public:
  /// Record one observation, in seconds. Negative values clamp to zero.
  void Observe(double seconds);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double SumSeconds() const;

  /// Quantile estimate from the bucket tallies: the upper bound of the
  /// bucket holding the ceil(q * count)-th smallest observation (the
  /// overflow bucket reports the last finite bound). Returns 0 for an
  /// empty histogram. q must be in (0, 1].
  double Quantile(double q) const;

  /// Non-cumulative per-bucket counts; index kNumLatencyBuckets - 1 is
  /// the overflow bucket.
  std::array<uint64_t, kNumLatencyBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<uint64_t>, kNumLatencyBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit pattern of a double
};

/// One scraped counter / gauge / histogram, in registration-name order.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::array<uint64_t, kNumLatencyBuckets> bucket_counts{};
};

/// A consistent-order scrape of every registered instrument.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Name → instrument registry with stable instrument pointers.
///
/// GetCounter/GetGauge/GetHistogram register on first use and return the
/// same pointer for the same name thereafter; a name may only be used for
/// one instrument kind. The registry owns the instruments and never
/// removes one, so returned pointers stay valid for the registry's
/// lifetime and may be cached and incremented without the lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Scrape every instrument, sorted by name within each kind.
  MetricsSnapshot Snapshot() const;

  /// The process-wide default registry, created lazily on first call —
  /// a process that never scrapes or wires metrics never constructs it.
  static MetricsRegistry* Default();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  /// Sorted-insert lookup keeping each vector name-ordered.
  template <typename T>
  static T* GetOrCreate(std::vector<Named<T>>* instruments,
                        const std::string& name);

  mutable Mutex mu_;
  std::vector<Named<Counter>> counters_ GUARDED_BY(mu_);
  std::vector<Named<Gauge>> gauges_ GUARDED_BY(mu_);
  std::vector<Named<Histogram>> histograms_ GUARDED_BY(mu_);
};

/// \brief RAII phase span: times its scope on a Stopwatch and records the
/// elapsed seconds into `histogram` on destruction. A null histogram makes
/// the scope a no-op, so uninstrumented runs pay one branch per phase.
class TraceScope {
 public:
  explicit TraceScope(Histogram* histogram) : histogram_(histogram) {}
  ~TraceScope() {
    if (histogram_ != nullptr) histogram_->Observe(watch_.ElapsedSeconds());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Histogram* const histogram_;
  Stopwatch watch_;
};

/// Exact nearest-rank sample quantile: the ceil(q * n)-th smallest of
/// `samples` (q in (0, 1]; returns 0 on an empty input). This is the one
/// percentile definition shared by the bench harness and the tests —
/// unlike Histogram::Quantile it is exact, not bucket-rounded.
double SampleQuantile(std::vector<double> samples, double q);

/// Prometheus-style text exposition: `# TYPE` comments, `_total` counter
/// lines, cumulative `_bucket{le="..."}` lines plus `_sum`/`_count` and
/// `{quantile="0.5|0.95|0.99"}` lines per histogram. Deterministic
/// ordering (registration-name order) and formatting.
std::string DumpMetricsText(const MetricsRegistry& registry);

/// The same scrape as one JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,p50,...}}}.
std::string DumpMetricsJson(const MetricsRegistry& registry);

/// \brief Pipeline-phase instruments (core/stream/shard). `Create`
/// resolves every name once; all members stay null when `registry` is
/// null, which is what makes `PipelineConfig::metrics = nullptr` free.
struct PipelineMetrics {
  static PipelineMetrics Create(MetricsRegistry* registry);

  Histogram* blocking_seconds = nullptr;   ///< incremental index delta apply
  Histogram* scoring_seconds = nullptr;    ///< batched matcher inference
  Histogram* cleanup_seconds = nullptr;    ///< dirty-component graph cleanup
  Histogram* route_seconds = nullptr;      ///< shard routing of a mutation
  Histogram* exchange_seconds = nullptr;   ///< global candidate exchange
  Histogram* merge_seconds = nullptr;      ///< cross-shard component merge
  Counter* mutations = nullptr;            ///< ingest/remove/update batches
  Counter* records_added = nullptr;
  Counter* records_removed = nullptr;
  Counter* pairs_scored = nullptr;
  Counter* cache_hits = nullptr;
  Counter* cache_evictions = nullptr;
  Counter* components_rebuilt = nullptr;
  Counter* components_reused = nullptr;
  Counter* cascade_gate_resolved = nullptr;
  Counter* cascade_escalated = nullptr;
};

/// \brief Serving-layer instruments (MatchService + checkpoints).
struct ServeMetrics {
  static ServeMetrics Create(MetricsRegistry* registry);

  Histogram* publish_seconds = nullptr;
  Histogram* checkpoint_save_seconds = nullptr;
  Histogram* checkpoint_load_seconds = nullptr;
  Counter* epochs_published = nullptr;
  Gauge* current_epoch = nullptr;
  Gauge* serving_records = nullptr;
};

/// \brief RPC-layer instruments (NetServer), including the four
/// load-shedding classes of the admission-control design.
struct NetMetrics {
  static NetMetrics Create(MetricsRegistry* registry);

  Histogram* rpc_decode_seconds = nullptr;
  Histogram* rpc_dispatch_seconds = nullptr;
  Histogram* rpc_encode_seconds = nullptr;
  Counter* requests_served = nullptr;
  Counter* shed_connection_cap = nullptr;  ///< connections past max_connections
  Counter* shed_overload = nullptr;        ///< requests past max_in_flight
  Counter* shed_frame_size = nullptr;      ///< bodies past max_frame_size
  Counter* shed_framing_fatal = nullptr;   ///< bad magic/version/checksum
};

}  // namespace obs
}  // namespace gralmatch

#endif  // GRALMATCH_OBS_METRICS_H_

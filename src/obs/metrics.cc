#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace gralmatch {
namespace obs {
namespace {

/// Shortest round-trippable-ish deterministic double rendering; enough
/// precision that distinct sums/quantiles render distinctly.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

size_t BucketIndex(double seconds) {
  const auto it = std::lower_bound(kLatencyBucketBounds.begin(),
                                   kLatencyBucketBounds.end(), seconds);
  return static_cast<size_t>(it - kLatencyBucketBounds.begin());
}

}  // namespace

void Histogram::Observe(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;  // clamp negatives and NaN
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++17 lacks std::atomic<double>::fetch_add: carry the sum as a bit
  // pattern and CAS the addition in.
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + seconds;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(observed, next_bits,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

double Histogram::SumSeconds() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  std::memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

double Histogram::Quantile(double q) const {
  const std::array<uint64_t, kNumLatencyBuckets> counts = BucketCounts();
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return i < kLatencyBucketBounds.size() ? kLatencyBucketBounds[i]
                                             : kLatencyBucketBounds.back();
    }
  }
  return kLatencyBucketBounds.back();
}

std::array<uint64_t, kNumLatencyBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumLatencyBuckets> counts{};
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::vector<Named<T>>* instruments,
                                const std::string& name) {
  const auto it = std::lower_bound(
      instruments->begin(), instruments->end(), name,
      [](const Named<T>& entry, const std::string& key) {
        return entry.name < key;
      });
  if (it != instruments->end() && it->name == name) {
    return it->instrument.get();
  }
  const auto inserted =
      instruments->insert(it, Named<T>{name, std::make_unique<T>()});
  return inserted->instrument.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  return GetOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  return GetOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  return GetOrCreate(&histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snapshot.counters.push_back({entry.name, entry.instrument->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snapshot.gauges.push_back({entry.name, entry.instrument->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    HistogramSample sample;
    sample.name = entry.name;
    sample.count = entry.instrument->TotalCount();
    sample.sum_seconds = entry.instrument->SumSeconds();
    sample.p50 = entry.instrument->Quantile(0.50);
    sample.p95 = entry.instrument->Quantile(0.95);
    sample.p99 = entry.instrument->Quantile(0.99);
    sample.bucket_counts = entry.instrument->BucketCounts();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

MetricsRegistry* MetricsRegistry::Default() {
  // Leaked on purpose: instrument pointers handed out by the default
  // registry must outlive every thread that might still increment them.
  static MetricsRegistry* const instance = new MetricsRegistry();
  return instance;
}

double SampleQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const uint64_t rank = std::min<uint64_t>(
      samples.size(),
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(samples.size())))));
  return samples[rank - 1];
}

std::string DumpMetricsText(const MetricsRegistry& registry) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::string out;
  for (const CounterSample& counter : snapshot.counters) {
    out += "# TYPE " + counter.name + " counter\n";
    out += counter.name + " " + std::to_string(counter.value) + "\n";
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    out += "# TYPE " + gauge.name + " gauge\n";
    out += gauge.name + " " + std::to_string(gauge.value) + "\n";
  }
  for (const HistogramSample& histogram : snapshot.histograms) {
    out += "# TYPE " + histogram.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kLatencyBucketBounds.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      out += histogram.name + "_bucket{le=\"" +
             FormatDouble(kLatencyBucketBounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += histogram.bucket_counts[kNumLatencyBuckets - 1];
    out += histogram.name + "_bucket{le=\"+Inf\"} " +
           std::to_string(cumulative) + "\n";
    out += histogram.name + "_sum " + FormatDouble(histogram.sum_seconds) +
           "\n";
    out += histogram.name + "_count " + std::to_string(histogram.count) +
           "\n";
    out += histogram.name + "{quantile=\"0.5\"} " +
           FormatDouble(histogram.p50) + "\n";
    out += histogram.name + "{quantile=\"0.95\"} " +
           FormatDouble(histogram.p95) + "\n";
    out += histogram.name + "{quantile=\"0.99\"} " +
           FormatDouble(histogram.p99) + "\n";
  }
  return out;
}

std::string DumpMetricsJson(const MetricsRegistry& registry) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + snapshot.counters[i].name +
           "\":" + std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + snapshot.gauges[i].name +
           "\":" + std::to_string(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& histogram = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += "\"" + histogram.name + "\":{";
    out += "\"count\":" + std::to_string(histogram.count);
    out += ",\"sum_seconds\":" + FormatDouble(histogram.sum_seconds);
    out += ",\"p50\":" + FormatDouble(histogram.p50);
    out += ",\"p95\":" + FormatDouble(histogram.p95);
    out += ",\"p99\":" + FormatDouble(histogram.p99);
    out += ",\"buckets\":[";
    for (size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
      if (b > 0) out += ",";
      out += std::to_string(histogram.bucket_counts[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

PipelineMetrics PipelineMetrics::Create(MetricsRegistry* registry) {
  PipelineMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.blocking_seconds =
      registry->GetHistogram("pipeline_blocking_seconds");
  metrics.scoring_seconds = registry->GetHistogram("pipeline_scoring_seconds");
  metrics.cleanup_seconds = registry->GetHistogram("pipeline_cleanup_seconds");
  metrics.route_seconds = registry->GetHistogram("shard_route_seconds");
  metrics.exchange_seconds = registry->GetHistogram("shard_exchange_seconds");
  metrics.merge_seconds = registry->GetHistogram("shard_merge_seconds");
  metrics.mutations = registry->GetCounter("pipeline_mutations_total");
  metrics.records_added = registry->GetCounter("pipeline_records_added_total");
  metrics.records_removed =
      registry->GetCounter("pipeline_records_removed_total");
  metrics.pairs_scored = registry->GetCounter("pipeline_pairs_scored_total");
  metrics.cache_hits = registry->GetCounter("pipeline_cache_hits_total");
  metrics.cache_evictions =
      registry->GetCounter("pipeline_cache_evictions_total");
  metrics.components_rebuilt =
      registry->GetCounter("pipeline_components_rebuilt_total");
  metrics.components_reused =
      registry->GetCounter("pipeline_components_reused_total");
  metrics.cascade_gate_resolved =
      registry->GetCounter("cascade_gate_resolved_total");
  metrics.cascade_escalated = registry->GetCounter("cascade_escalated_total");
  return metrics;
}

ServeMetrics ServeMetrics::Create(MetricsRegistry* registry) {
  ServeMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.publish_seconds = registry->GetHistogram("serve_publish_seconds");
  metrics.checkpoint_save_seconds =
      registry->GetHistogram("checkpoint_save_seconds");
  metrics.checkpoint_load_seconds =
      registry->GetHistogram("checkpoint_load_seconds");
  metrics.epochs_published =
      registry->GetCounter("serve_epochs_published_total");
  metrics.current_epoch = registry->GetGauge("serve_current_epoch");
  metrics.serving_records = registry->GetGauge("serve_snapshot_records");
  return metrics;
}

NetMetrics NetMetrics::Create(MetricsRegistry* registry) {
  NetMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.rpc_decode_seconds =
      registry->GetHistogram("net_rpc_decode_seconds");
  metrics.rpc_dispatch_seconds =
      registry->GetHistogram("net_rpc_dispatch_seconds");
  metrics.rpc_encode_seconds =
      registry->GetHistogram("net_rpc_encode_seconds");
  metrics.requests_served = registry->GetCounter("net_requests_served_total");
  metrics.shed_connection_cap =
      registry->GetCounter("net_shed_connection_cap_total");
  metrics.shed_overload = registry->GetCounter("net_shed_overload_total");
  metrics.shed_frame_size = registry->GetCounter("net_shed_frame_size_total");
  metrics.shed_framing_fatal =
      registry->GetCounter("net_shed_framing_fatal_total");
  return metrics;
}

}  // namespace obs
}  // namespace gralmatch

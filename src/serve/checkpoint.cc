#include "serve/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "common/binary_io.h"

namespace gralmatch {

namespace {

constexpr char kMagic[8] = {'G', 'R', 'L', 'M', 'C', 'K', 'P', 'T'};

}  // namespace

std::string SerializeCheckpoint(const IncrementalPipeline& pipeline) {
  BinaryWriter image;
  image.WriteBytes(kMagic, sizeof(kMagic));
  image.WriteU32(kCheckpointVersion);
  image.WriteString(pipeline.fingerprint());
  // The body serializes straight into the image (checkpoints scale with the
  // full pipeline state — no second copy of it); its u64 length prefix is
  // back-patched once the size is known.
  const size_t body_size_pos = image.size();
  image.WriteU64(0);
  pipeline.Serialize(&image);
  image.PatchU64(body_size_pos, image.size() - body_size_pos - 8);
  // Trailing checksum over every preceding byte — header included, so a bit
  // flip in the stored fingerprint reads as corruption, not as a
  // plausible-but-wrong "matcher changed" diagnosis.
  image.WriteU64(Fnv1a64(image.buffer()));
  return image.buffer();
}

Status SaveCheckpoint(const IncrementalPipeline& pipeline,
                      const std::string& path) {
  const std::string image = SerializeCheckpoint(pipeline);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::IOError("cannot open for writing: " + tmp_path);
    }
    file.write(image.data(), static_cast<std::streamsize>(image.size()));
    file.flush();
    if (!file) return Status::IOError("write failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<IncrementalPipeline>> ParseCheckpoint(
    const std::string& image, const PairwiseMatcher& matcher,
    size_t num_threads_override) {
  BinaryReader reader(image);
  for (size_t k = 0; k < sizeof(kMagic); ++k) {
    uint8_t byte = 0;
    GRALMATCH_RETURN_NOT_OK(reader.ReadU8(&byte));
    if (byte != static_cast<uint8_t>(kMagic[k])) {
      return Status::InvalidArgument(
          "not a gralmatch checkpoint (bad magic bytes)");
    }
  }

  uint32_t version = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version > kCheckpointVersion) {
    return Status::InvalidArgument(
        "checkpoint version " + std::to_string(version) +
        " is newer than this binary's format version " +
        std::to_string(kCheckpointVersion) + "; refusing to guess its layout");
  }
  if (version == 0) {
    return Status::InvalidArgument("checkpoint version 0 is not valid");
  }

  // Verify the trailing whole-image checksum before trusting any
  // variable-length field (after the version check, so files from a newer
  // layout still get the version diagnosis).
  if (reader.remaining() < 8) {
    return Status::IOError("truncated checkpoint: missing checksum");
  }
  BinaryReader tail(std::string_view(image).substr(image.size() - 8));
  uint64_t stored_checksum = 0;
  GRALMATCH_RETURN_NOT_OK(tail.ReadU64(&stored_checksum));
  if (stored_checksum !=
      Fnv1a64(std::string_view(image.data(), image.size() - 8))) {
    return Status::IOError(
        "checkpoint corrupted: checksum mismatch (file damaged or partially "
        "written)");
  }

  std::string fingerprint;
  GRALMATCH_RETURN_NOT_OK(reader.ReadString(&fingerprint));
  // "" means the pipeline never ingested: its score cache is empty, so any
  // matcher can take over. Otherwise the fingerprints must agree.
  if (!fingerprint.empty() && fingerprint != matcher.Fingerprint()) {
    return Status::InvalidArgument(
        "matcher fingerprint mismatch: checkpoint was saved under \"" +
        fingerprint + "\" but the serving matcher is \"" +
        matcher.Fingerprint() +
        "\"; the cached pair scores are only valid for the saved matcher");
  }

  std::string_view body;  // borrows from `image`, which outlives this call
  GRALMATCH_RETURN_NOT_OK(reader.ReadStringView(&body));
  uint64_t checksum = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&checksum));
  if (checksum != stored_checksum) {
    return Status::IOError(
        "checkpoint corrupted: body length disagrees with the checksum "
        "position");
  }
  if (!reader.AtEnd()) {
    return Status::IOError("checkpoint corrupted: " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the checksum");
  }

  BinaryReader body_reader(body);
  auto result =
      IncrementalPipeline::Deserialize(&body_reader, num_threads_override);
  if (!result.ok()) return result.status();
  if (!body_reader.AtEnd()) {
    return Status::IOError("checkpoint corrupted: " +
                           std::to_string(body_reader.remaining()) +
                           " unconsumed body bytes");
  }
  if (result.ValueOrDie()->fingerprint() != fingerprint) {
    return Status::IOError(
        "checkpoint corrupted: header fingerprint disagrees with the "
        "serialized pipeline state");
  }
  return result;
}

Result<std::unique_ptr<IncrementalPipeline>> LoadCheckpoint(
    const std::string& path, const PairwiseMatcher& matcher,
    size_t num_threads_override) {
  // One read into one buffer: checkpoints scale with the full pipeline
  // state, so the restore path avoids stream-copy detours.
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  const std::streamoff size = file.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  std::string image(static_cast<size_t>(size), '\0');
  file.seekg(0);
  if (size > 0) file.read(&image[0], size);
  if (!file) return Status::IOError("read failed: " + path);
  return ParseCheckpoint(image, matcher, num_threads_override);
}

}  // namespace gralmatch

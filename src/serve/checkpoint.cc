#include "serve/checkpoint.h"

#include "common/binary_io.h"
#include "serve/framing.h"

namespace gralmatch {

namespace {

constexpr char kMagic[8] = {'G', 'R', 'L', 'M', 'C', 'K', 'P', 'T'};

}  // namespace

Result<std::string> SerializeCheckpoint(const IncrementalPipeline& pipeline) {
  BinaryWriter image;
  image.WriteBytes(kMagic, sizeof(kMagic));
  // Lowest version that can represent the state: the tombstone section (and
  // with it version 2) exists only when some record is dead, so a
  // tombstone-free pipeline keeps producing byte-identical version 1 images.
  image.WriteU32(pipeline.num_dead() > 0 ? kCheckpointVersion : 1);
  image.WriteString(pipeline.fingerprint());
  // The body serializes straight into the image (checkpoints scale with the
  // full pipeline state — no second copy of it); its u64 length prefix is
  // back-patched once the size is known.
  const size_t body_size_pos = image.size();
  image.WriteU64(0);
  GRALMATCH_RETURN_NOT_OK(pipeline.Serialize(&image));
  image.PatchU64(body_size_pos, image.size() - body_size_pos - 8);
  // Trailing checksum over every preceding byte — header included, so a bit
  // flip in the stored fingerprint reads as corruption, not as a
  // plausible-but-wrong "matcher changed" diagnosis.
  image.WriteU64(Fnv1a64(image.buffer()));
  return image.buffer();
}

Status SaveCheckpoint(const IncrementalPipeline& pipeline,
                      const std::string& path) {
  GRALMATCH_ASSIGN_OR_RETURN(const std::string image,
                             SerializeCheckpoint(pipeline));
  return WriteFileAtomically(path, image);
}

Result<std::unique_ptr<IncrementalPipeline>> ParseCheckpoint(
    const std::string& image, const PairwiseMatcher& matcher,
    size_t num_threads_override) {
  BinaryReader reader(image);
  GRALMATCH_RETURN_NOT_OK(CheckMagicBytes(&reader, kMagic, "checkpoint"));
  // Version before checksum, so files from a newer layout still get the
  // version diagnosis; checksum before any variable-length field.
  uint32_t version = 0;
  GRALMATCH_RETURN_NOT_OK(
      CheckFormatVersion(&reader, kCheckpointVersion, "checkpoint", &version));
  GRALMATCH_ASSIGN_OR_RETURN(const uint64_t stored_checksum,
                             CheckTrailingChecksum(image, "checkpoint"));

  std::string fingerprint;
  GRALMATCH_RETURN_NOT_OK(reader.ReadString(&fingerprint));
  // "" means the pipeline never ingested: its score cache is empty, so any
  // matcher can take over. Otherwise the fingerprints must agree.
  if (!fingerprint.empty() && fingerprint != matcher.Fingerprint()) {
    return Status::InvalidArgument(
        "matcher fingerprint mismatch: checkpoint was saved under \"" +
        fingerprint + "\" but the serving matcher is \"" +
        matcher.Fingerprint() +
        "\"; the cached pair scores are only valid for the saved matcher");
  }

  std::string_view body;  // borrows from `image`, which outlives this call
  GRALMATCH_RETURN_NOT_OK(reader.ReadStringView(&body));
  uint64_t checksum = 0;
  GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&checksum));
  if (checksum != stored_checksum) {
    return Status::IOError(
        "checkpoint corrupted: body length disagrees with the checksum "
        "position");
  }
  if (!reader.AtEnd()) {
    return Status::IOError("checkpoint corrupted: " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the checksum");
  }

  BinaryReader body_reader(body);
  auto result = IncrementalPipeline::Deserialize(&body_reader, version,
                                                 num_threads_override);
  if (!result.ok()) return result.status();
  if (!body_reader.AtEnd()) {
    return Status::IOError("checkpoint corrupted: " +
                           std::to_string(body_reader.remaining()) +
                           " unconsumed body bytes");
  }
  if (result.ValueOrDie()->fingerprint() != fingerprint) {
    return Status::IOError(
        "checkpoint corrupted: header fingerprint disagrees with the "
        "serialized pipeline state");
  }
  return result;
}

Result<std::unique_ptr<IncrementalPipeline>> LoadCheckpoint(
    const std::string& path, const PairwiseMatcher& matcher,
    size_t num_threads_override) {
  GRALMATCH_ASSIGN_OR_RETURN(const std::string image, ReadWholeFile(path));
  return ParseCheckpoint(image, matcher, num_threads_override);
}

}  // namespace gralmatch

#include "serve/match_service.h"

#include <algorithm>
#include <utility>

namespace gralmatch {

MatchSnapshot::MatchSnapshot(uint64_t epoch, const PipelineResult& result,
                             size_t num_records) {
  groups_.reserve(result.groups.size());
  group_of_.assign(num_records, kNoGroup);
  for (const auto& group : result.groups) {
    const GroupId gid = static_cast<GroupId>(groups_.size());
    std::vector<RecordId> members;
    members.reserve(group.size());
    for (NodeId u : group) {
      if (u < 0 || static_cast<size_t>(u) >= num_records) continue;
      members.push_back(static_cast<RecordId>(u));
      group_of_[static_cast<size_t>(u)] = gid;
    }
    std::sort(members.begin(), members.end());
    groups_.push_back(std::move(members));
  }

  stats_.epoch = epoch;
  stats_.num_records = num_records;
  stats_.num_groups = groups_.size();
  stats_.num_predicted_pairs = result.predicted_pairs.size();
  for (const auto& members : groups_) {
    if (members.size() >= 2) ++stats_.num_matched_groups;
  }
}

GroupId MatchSnapshot::GroupOf(RecordId record) const {
  if (record < 0 || static_cast<size_t>(record) >= group_of_.size()) {
    return kNoGroup;
  }
  return group_of_[static_cast<size_t>(record)];
}

const std::vector<RecordId>& MatchSnapshot::Members(GroupId group) const {
  if (group < 0 || static_cast<size_t>(group) >= groups_.size()) {
    return empty_;
  }
  return groups_[static_cast<size_t>(group)];
}

MatchService::MatchService(obs::MetricsRegistry* metrics)
    : metrics_(obs::ServeMetrics::Create(metrics)) {
  current_ = std::make_shared<const MatchSnapshot>(0, PipelineResult{}, 0);
}

uint64_t MatchService::Publish(const PipelineResult& result,
                               size_t num_records) {
  obs::TraceScope publish_span(metrics_.publish_seconds);
  // The publish mutex serializes writers only (epoch draw + snapshot build
  // + swap). Readers never take it: they keep serving their previous
  // snapshot, which its shared_ptr keeps alive, until the swap lands.
  MutexLock lock(&publish_mu_);
  const uint64_t epoch = next_epoch_++;
  auto snapshot =
      std::make_shared<const MatchSnapshot>(epoch, result, num_records);
  std::atomic_store_explicit(&current_, MatchSnapshotPtr(std::move(snapshot)),
                             std::memory_order_release);
  if (metrics_.epochs_published != nullptr) {
    metrics_.epochs_published->Increment();
    metrics_.current_epoch->Set(static_cast<int64_t>(epoch));
    metrics_.serving_records->Set(static_cast<int64_t>(num_records));
  }
  return epoch;
}

MatchSnapshotPtr MatchService::View() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

}  // namespace gralmatch

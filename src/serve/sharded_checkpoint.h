#ifndef GRALMATCH_SERVE_SHARDED_CHECKPOINT_H_
#define GRALMATCH_SERVE_SHARDED_CHECKPOINT_H_

/// \file sharded_checkpoint.h
/// Durable checkpoints for the sharded pipeline, partitioned the way the
/// state is: one framed file per shard plus a manifest. A checkpoint is a
/// directory:
///
///   <dir>/manifest.grlm            the manifest (layout below)
///   <dir>/shard-<k>-<checksum>.grlm  shard k's slice, k in [0, S)
///
/// Shard file names are *content-addressed*: `<checksum>` is the 16-hex
/// FNV-1a 64 digest of the complete file image — the same value the
/// manifest records. A save therefore never overwrites the previous
/// checkpoint's shard files (changed content gets a new name); the
/// manifest is replaced atomically and *last*, so until the new manifest
/// lands the previous checkpoint remains complete and loadable, and a
/// crash at any point leaves either the old or the new checkpoint
/// authoritative — never neither. Shard files no manifest references are
/// garbage-collected after a successful save.
///
/// Shard file (all integers little-endian, common/binary_io.h):
///
///   offset 0   8-byte magic "GRLMSHRD"
///          8   u32 format version (see stamping below)
///         12   u32 shard index
///         16   u64 body size, then the body: the slice produced by
///              ShardedPipeline::SerializeShardBodies
///          .   u64 FNV-1a 64 checksum of every preceding byte
///
/// Version stamping: version 2 added the per-shard tombstone section
/// (ShardState::Save) for pipelines with removals. The writer stamps the
/// *lowest* version that can represent the state — a pipeline with no dead
/// records produces byte-identical version 1 files, so pre-tombstone
/// readers keep loading tombstone-free checkpoints. The stamp is uniform:
/// the manifest and every shard file of one checkpoint carry the same
/// version, and the loader rejects a mix (a version 1 shard file under a
/// version 2 manifest is a stale file, not a layout choice).
///
/// Manifest:
///
///   offset 0   8-byte magic "GRLMMNFT"
///          8   u32 format version
///         12   matcher fingerprint (u64 length + bytes)
///          .   u64 shard count S
///          .   S u64s: the FNV-1a 64 checksum of each *complete* shard
///              file image (framing included) — also each file's name
///          .   u64 body size, then the body: the coordinator state
///              produced by ShardedPipeline::SerializeManifestBody
///          .   u64 FNV-1a 64 checksum of every preceding manifest byte
///
/// The per-shard checksum list makes the manifest the single source of
/// truth for which shard files belong to this checkpoint: a missing,
/// truncated, bit-flipped, swapped-in or stale shard file fails the load
/// with a clean Status before any of its content is trusted. Validation
/// order per file mirrors the single-pipeline checkpoint: magic, version
/// (newer formats rejected, not misread), checksum, then bounds-checked
/// body reads with every cross-shard invariant re-verified
/// (ShardedPipeline::DeserializeFromParts).
///
/// Save -> Load -> Snapshot() is bitwise-identical, re-saving a restored
/// pipeline reproduces every file byte for byte (names included — the
/// addresses are deterministic in the content), and further Ingest()
/// calls behave exactly as they would have on the original instance.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "matching/matcher.h"
#include "obs/metrics.h"
#include "shard/sharded_pipeline.h"

namespace gralmatch {

/// Newest sharded-checkpoint format version this binary reads and writes.
/// Bump on any layout change. Writers stamp the lowest version representing
/// the state (see the file comment), so this is a ceiling, not the stamp.
constexpr uint32_t kShardedCheckpointVersion = 2;

/// Write a checkpoint of `pipeline` under the directory `dir` (created if
/// absent). Content-addressed shard files first, the manifest atomically
/// last (see file comment for the crash-safety argument), then unreferenced
/// shard files are garbage-collected. A non-null `metrics` records the
/// save's wall-clock into `checkpoint_save_seconds` — timing only; the
/// checkpoint bytes are identical either way (the single-file checkpoint
/// API in checkpoint.h stays metrics-free entirely; its callers time it).
Status SaveShardedCheckpoint(const ShardedPipeline& pipeline,
                             const std::string& dir,
                             obs::MetricsRegistry* metrics = nullptr);

/// Read and validate a checkpoint directory; `matcher` must carry the
/// fingerprint the checkpoint was saved under ("" pre-ingest checkpoints
/// load under any matcher). `num_threads_override` replaces the saved
/// thread count when nonzero. A non-null `metrics` records the load's
/// wall-clock into `checkpoint_load_seconds`; the restored pipeline itself
/// always starts with `PipelineConfig::metrics == nullptr` — re-wire it
/// via `config()` semantics at the call site if scraping should continue.
Result<std::unique_ptr<ShardedPipeline>> LoadShardedCheckpoint(
    const std::string& dir, const PairwiseMatcher& matcher,
    size_t num_threads_override = 0, obs::MetricsRegistry* metrics = nullptr);

/// Path of the manifest inside a checkpoint directory.
std::string ShardedManifestPath(const std::string& dir);

/// Paths of the shard files the directory's current manifest references,
/// in shard order (resolved through the manifest, because the names embed
/// the content checksums). Shared with tests that corrupt specific files.
Result<std::vector<std::string>> ShardFilePaths(const std::string& dir);

}  // namespace gralmatch

#endif  // GRALMATCH_SERVE_SHARDED_CHECKPOINT_H_

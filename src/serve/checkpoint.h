#ifndef GRALMATCH_SERVE_CHECKPOINT_H_
#define GRALMATCH_SERVE_CHECKPOINT_H_

/// \file checkpoint.h
/// Durable checkpoints for the incremental pipeline. A checkpoint captures
/// the complete IncrementalPipeline state — records, both incremental
/// blocking indexes, the pair-score cache with its matcher fingerprint, the
/// positive-edge graph and the per-component cleanup results — so a restart
/// resumes exactly where ingestion stopped instead of recomputing from
/// scratch: Load(Save(p))->Snapshot() is bitwise-identical to p->Snapshot(),
/// and further Ingest() calls behave as they would have on the original.
///
/// File format (all integers little-endian, see common/binary_io.h):
///
///   offset 0   8-byte magic "GRLMCKPT"
///          8   u32 format version (1 or 2, see below)
///         12   matcher fingerprint (u64 length + bytes)
///          .   u64 body size, then the body: the pipeline state produced
///              by IncrementalPipeline::Serialize
///          .   u64 FNV-1a 64 checksum of every preceding byte (header and
///              body both — a flipped fingerprint byte is diagnosed as
///              corruption, not as a matcher change)
///
/// Version stamping: version 2 added the tombstone section (sorted dead
/// record ids after the record table) for pipelines with removals. The
/// writer stamps the *lowest* version that can represent the state — a
/// pipeline with no dead records produces a byte-identical version 1 image,
/// so pre-tombstone readers keep loading tombstone-free checkpoints and
/// every version 1 file round-trips unchanged through this binary.
///
/// Load validation order: magic, version (files from a *newer* format are
/// rejected, not misread), whole-image checksum, header fingerprint against
/// the serving matcher (the score cache is only valid for the matcher that
/// produced it), then the body itself (every read bounds-checked,
/// cross-field invariants re-verified). Any violation returns a clean
/// non-OK Status — truncated or bit-flipped files never crash and never
/// load partially.

#include <memory>
#include <string>

#include "common/status.h"
#include "matching/matcher.h"
#include "stream/incremental_pipeline.h"

namespace gralmatch {

/// Newest checkpoint format version this binary reads and writes. Bump on
/// any layout change. Writers stamp the lowest version representing the
/// state (see the file comment), so this is a ceiling, not the stamp.
constexpr uint32_t kCheckpointVersion = 2;

/// Serialize `pipeline` into an in-memory checkpoint image (magic, version,
/// fingerprint header, body, checksum). Fails on a poisoned pipeline — an
/// aborted ingest's inconsistent state must never become a checkpoint.
Result<std::string> SerializeCheckpoint(const IncrementalPipeline& pipeline);

/// Write a checkpoint of `pipeline` to `path` (atomically: a temp file next
/// to `path` is renamed over it, so a crash mid-write never leaves a torn
/// checkpoint under the final name).
Status SaveCheckpoint(const IncrementalPipeline& pipeline,
                      const std::string& path);

/// Parse a checkpoint image. `matcher` must have the fingerprint the
/// checkpoint was saved under; a mismatch (the matcher changed between save
/// and load) is an InvalidArgument error, because the restored score cache
/// would attribute the old matcher's scores to the new one.
/// `num_threads_override` replaces the saved thread count when nonzero.
Result<std::unique_ptr<IncrementalPipeline>> ParseCheckpoint(
    const std::string& image, const PairwiseMatcher& matcher,
    size_t num_threads_override = 0);

/// Read and parse a checkpoint file; same contract as ParseCheckpoint.
Result<std::unique_ptr<IncrementalPipeline>> LoadCheckpoint(
    const std::string& path, const PairwiseMatcher& matcher,
    size_t num_threads_override = 0);

}  // namespace gralmatch

#endif  // GRALMATCH_SERVE_CHECKPOINT_H_
